#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root; any failing step fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo doc --no-deps (warnings denied) =="
# Document the repo's own crates; the vendored stand-ins under vendor/
# are out of scope for the doc lint.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  $(sed -n 's|^name = "\(odx[a-z0-9-]*\)"|-p \1|p' crates/*/Cargo.toml)

echo "== repro smoke: headline --scenario paper-default =="
cargo run --release -p odx-bench --bin repro -- headline \
  --scenario paper-default --scale 0.01 --sample 200

echo "CI OK"
