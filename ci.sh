#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root; any failing step fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== test registration guard: every tests/*.rs has a [[test]] entry =="
# Root-level integration tests only run if some crate's manifest points a
# [[test]] target at them; an unregistered file is silently dead code.
for t in tests/*.rs; do
  name="$(basename "$t")"
  if ! grep -q "path = \"../../tests/$name\"" crates/*/Cargo.toml; then
    echo "tests/$name has no [[test]] entry in any crates/*/Cargo.toml" >&2
    exit 1
  fi
done
echo "all $(ls tests/*.rs | wc -l) root test files registered"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo doc --no-deps (warnings denied) =="
# Document the repo's own crates; the vendored stand-ins under vendor/
# are out of scope for the doc lint.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  $(sed -n 's|^name = "\(odx[a-z0-9-]*\)"|-p \1|p' crates/*/Cargo.toml)

echo "== repro smoke: headline --scenario paper-default =="
cargo run --release -p odx-bench --bin repro -- headline \
  --scenario paper-default --scale 0.01 --sample 200

echo "== config smoke: canonical dumps, scenario files, axis sweeps =="
CONFIG_TMP="$(mktemp -d)"
# Every built-in preset's canonical dump must validate when fed back in.
cargo run --release -p odx-bench --bin repro -- scenario dump --all \
  | cargo run --release -p odx-bench --bin repro -- scenario check
# The checked-in example file: validate, then run the headline under it.
cargo run --release -p odx-bench --bin repro -- scenario check \
  --json examples/campus-pressure.json
cargo run --release -p odx-bench --bin repro -- \
  --scenario-file examples/campus-pressure.json headline \
  --scenario campus-pressure --scale 0.01 --sample 200
# The fault-plan example: validate, then replay its base cell — the
# headline must print the fault/retry taxonomy under an active plan.
cargo run --release -p odx-bench --bin repro -- scenario check \
  --json examples/flaky-week.json
cargo run --release -p odx-bench --bin repro -- \
  --scenario-file examples/flaky-week.json headline \
  --scenario flaky-week --scale 0.01 --sample 200 > "$CONFIG_TMP/flaky.out"
grep -q "fault injection & recovery" "$CONFIG_TMP/flaky.out"
# Its 2×2 axis grid must sweep --jobs-independently.
cargo run --release -p odx-bench --bin repro -- \
  --scenario-file examples/campus-pressure.json sweep \
  --scenario campus-pressure --seeds 1 --jobs 1 --scale 0.002 --out "$CONFIG_TMP/j1"
cargo run --release -p odx-bench --bin repro -- \
  --scenario-file examples/campus-pressure.json sweep \
  --scenario campus-pressure --seeds 1 --jobs 4 --scale 0.002 --out "$CONFIG_TMP/j4"
diff "$CONFIG_TMP/j1/sweep.json" "$CONFIG_TMP/j4/sweep.json"
diff "$CONFIG_TMP/j1/sweep.csv" "$CONFIG_TMP/j4/sweep.csv"
rm -rf "$CONFIG_TMP"
echo "config smoke OK"

echo "== sweep determinism: --jobs 1 vs --jobs 4 must be byte-identical =="
SWEEP_TMP="$(mktemp -d)"
trap 'rm -rf "$SWEEP_TMP"' EXIT
cargo run --release -p odx-bench --bin repro -- sweep \
  --scenario all --seeds 2 --jobs 1 --scale 0.002 --out "$SWEEP_TMP/j1"
cargo run --release -p odx-bench --bin repro -- sweep \
  --scenario all --seeds 2 --jobs 4 --scale 0.002 --out "$SWEEP_TMP/j4"
diff "$SWEEP_TMP/j1/sweep.json" "$SWEEP_TMP/j4/sweep.json"
diff "$SWEEP_TMP/j1/sweep.csv" "$SWEEP_TMP/j4/sweep.csv"
echo "sweep snapshots identical"

echo "== scheduler parity: heap vs timing wheel must be byte-identical =="
cargo run --release -p odx-bench --bin repro -- sweep \
  --scenario all --seeds 1 --jobs 1 --scale 0.002 --out "$SWEEP_TMP/heap"
cargo run --release -p odx-bench --bin repro -- sweep \
  --scenario all --seeds 1 --jobs 1 --scale 0.002 \
  --set sim.scheduler=wheel --out "$SWEEP_TMP/wheel"
diff "$SWEEP_TMP/heap/sweep.json" "$SWEEP_TMP/wheel/sweep.json"
diff "$SWEEP_TMP/heap/sweep.csv" "$SWEEP_TMP/wheel/sweep.csv"
echo "scheduler snapshots identical"

echo "== cache-compare smoke: all policies x 2 seeds, --jobs invariant =="
cargo run --release -p odx-bench --bin repro -- cache-compare \
  --scenario all --seeds 2 --jobs 1 --scale 0.001 --out "$SWEEP_TMP/cc1"
cargo run --release -p odx-bench --bin repro -- cache-compare \
  --scenario all --seeds 2 --jobs 4 --scale 0.001 --out "$SWEEP_TMP/cc4"
diff "$SWEEP_TMP/cc1/cache_compare.json" "$SWEEP_TMP/cc4/cache_compare.json"
diff "$SWEEP_TMP/cc1/cache_compare.csv" "$SWEEP_TMP/cc4/cache_compare.csv"
echo "cache-compare snapshots identical"

echo "== resilience smoke: fault grid --jobs/scheduler invariant; zero-fault cell = baseline =="
cargo run --release -p odx-bench --bin repro -- resilience \
  --scenario cache-pressure --seeds 1 --jobs 1 --scale 0.002 --out "$SWEEP_TMP/r1"
cargo run --release -p odx-bench --bin repro -- resilience \
  --scenario cache-pressure --seeds 1 --jobs 4 --scale 0.002 --out "$SWEEP_TMP/r4"
diff "$SWEEP_TMP/r1/resilience.json" "$SWEEP_TMP/r4/resilience.json"
diff "$SWEEP_TMP/r1/resilience.csv" "$SWEEP_TMP/r4/resilience.csv"
# Swapping the future-event list must not move a byte, faults included.
cargo run --release -p odx-bench --bin repro -- resilience \
  --scenario cache-pressure --seeds 1 --jobs 2 --scale 0.002 \
  --set sim.scheduler=wheel --out "$SWEEP_TMP/rw"
diff "$SWEEP_TMP/r1/resilience.json" "$SWEEP_TMP/rw/resilience.json"
# The grid's zero-fault/no-retry cell must match a plain sweep of the
# same scenario byte-for-byte (cell name aside): injection machinery off
# is indistinguishable from injection machinery absent.
cargo run --release -p odx-bench --bin repro -- sweep \
  --scenario cache-pressure --seeds 1 --jobs 1 --scale 0.002 --out "$SWEEP_TMP/rbase"
base_cell="$(grep -o '{"scenario":"cache-pressure","seed[^}]*}' "$SWEEP_TMP/rbase/sweep.json" | sed 's/^[^,]*,//')"
zero_cell="$(grep -o '{"scenario":"cache-pressure/fault=0/retry=none"[^}]*}' "$SWEEP_TMP/r1/resilience.json" | sed 's/^[^,]*,//')"
test -n "$base_cell"
[ "$base_cell" = "$zero_cell" ]
echo "resilience snapshots identical; zero-fault cell matches the baseline sweep"

echo "== series smoke: --progress stays off stdout; series export --jobs invariant =="
# A --progress sweep piped through a file: stdout must be byte-identical
# to the same sweep without --progress (the reporter is stderr-only).
# The one documented wall-clock line (events/sec aggregate) is filtered;
# everything else on stdout is deterministic.
cargo run --release -p odx-bench --bin repro -- sweep \
  --scenario paper-default --seeds 2 --jobs 2 --scale 0.002 \
  --progress 2> /dev/null | grep -v "events/sec aggregate" \
  > "$SWEEP_TMP/progress.out"
cargo run --release -p odx-bench --bin repro -- sweep \
  --scenario paper-default --seeds 2 --jobs 2 --scale 0.002 \
  | grep -v "events/sec aggregate" > "$SWEEP_TMP/plain.out"
diff "$SWEEP_TMP/progress.out" "$SWEEP_TMP/plain.out"
# The virtual-time series export must be byte-identical for any --jobs.
cargo run --release -p odx-bench --bin repro -- series \
  --scenario paper-default --seeds 2 --jobs 1 --scale 0.002 \
  --out "$SWEEP_TMP/s1" > /dev/null
cargo run --release -p odx-bench --bin repro -- series \
  --scenario paper-default --seeds 2 --jobs 4 --scale 0.002 \
  --progress --out "$SWEEP_TMP/s4" > /dev/null 2> /dev/null
diff "$SWEEP_TMP/s1/series.json" "$SWEEP_TMP/s4/series.json"
diff "$SWEEP_TMP/s1/series.csv" "$SWEEP_TMP/s4/series.csv"
cargo run --release -p odx-bench --bin repro -- profile \
  --scenario paper-default --scale 0.002
echo "series export identical; progress stayed off stdout"

echo "== trace smoke: lifecycle export must be valid Chrome trace JSON =="
cargo run --release -p odx-bench --bin repro -- trace \
  --scenario paper-default --scale 0.002 --trace-sample 4 \
  --out "$SWEEP_TMP/trace.json"
cargo run --release -p odx-bench --bin repro -- check-trace \
  --json "$SWEEP_TMP/trace.json"
cargo run --release -p odx-bench --bin repro -- attribute \
  --scenario paper-default --scale 0.002

echo "== criterion benches (quick mode; incl. disabled-tracing overhead) =="
ODX_BENCH_QUICK=1 cargo bench -p odx-bench --bench des
ODX_BENCH_QUICK=1 cargo bench -p odx-bench --bench cache

echo "CI OK"
