//! ISPs and the user population's ISP mix.

use rand::Rng;
use serde::Serialize;
use std::fmt;

use odx_stats::dist::u01;

/// An Internet service provider in the study's topology.
///
/// The four majors are where Xuanfeng deploys uploading servers (§2.1);
/// `Other` collects the long tail of small ISPs whose users always cross the
/// ISP barrier when fetching from the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Isp {
    /// China Unicom — the ISP the §5.1 benchmark links belong to.
    Unicom,
    /// China Telecom — the largest fixed-line ISP.
    Telecom,
    /// China Mobile.
    Mobile,
    /// CERNET, the education and research network.
    Cernet,
    /// Any ISP outside the four majors (no privileged path available).
    Other,
}

impl Isp {
    /// All four major ISPs, in the order used for per-ISP capacity arrays.
    pub const MAJORS: [Isp; 4] = [Isp::Unicom, Isp::Telecom, Isp::Mobile, Isp::Cernet];

    /// Whether Xuanfeng has uploading servers inside this ISP.
    pub fn is_major(self) -> bool {
        !matches!(self, Isp::Other)
    }

    /// The lowercase ASCII name used wherever ISP names are stringified
    /// into metric keys and trace labels (`cloud.upload.admit.<name>`).
    /// Note `Cernet` displays as "CERNET" but keys stay lowercase.
    pub const fn lowercase_name(self) -> &'static str {
        match self {
            Isp::Unicom => "unicom",
            Isp::Telecom => "telecom",
            Isp::Mobile => "mobile",
            Isp::Cernet => "cernet",
            Isp::Other => "other",
        }
    }

    /// Index into per-major-ISP arrays; `None` for [`Isp::Other`].
    pub fn major_index(self) -> Option<usize> {
        match self {
            Isp::Unicom => Some(0),
            Isp::Telecom => Some(1),
            Isp::Mobile => Some(2),
            Isp::Cernet => Some(3),
            Isp::Other => None,
        }
    }
}

impl fmt::Display for Isp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Isp::Unicom => "Unicom",
            Isp::Telecom => "Telecom",
            Isp::Mobile => "Mobile",
            Isp::Cernet => "CERNET",
            Isp::Other => "Other",
        };
        f.write_str(name)
    }
}

/// The ISP mix of the user population.
///
/// Calibrated so that the share of users outside the four majors matches the
/// paper's 9.6 % of fetch processes limited by the ISP barrier (§4.2); the
/// split among the majors follows their rough 2015 fixed-broadband market
/// shares.
#[derive(Debug, Clone, Copy)]
pub struct IspMix {
    /// `(isp, probability)` rows; probabilities sum to 1.
    pub shares: [(Isp, f64); 5],
}

impl Default for IspMix {
    fn default() -> Self {
        IspMix {
            shares: [
                (Isp::Telecom, 0.42),
                (Isp::Unicom, 0.28),
                (Isp::Mobile, 0.15),
                (Isp::Cernet, 0.054),
                (Isp::Other, 0.096),
            ],
        }
    }
}

impl IspMix {
    /// The default mix with CERNET pinned to `cernet` and every other ISP
    /// rescaled proportionally, so the shares still sum to 1. `cernet` must
    /// lie in `[0, 1)` — `odx-config` validates this before any scenario
    /// reaches here.
    pub fn with_cernet_share(cernet: f64) -> IspMix {
        let mut mix = IspMix::default();
        let old_cernet: f64 =
            mix.shares.iter().filter(|(isp, _)| *isp == Isp::Cernet).map(|(_, s)| s).sum();
        let rescale = (1.0 - cernet) / (1.0 - old_cernet);
        for (isp, share) in &mut mix.shares {
            *share = if *isp == Isp::Cernet { cernet } else { *share * rescale };
        }
        mix
    }

    /// Sample a user's ISP.
    pub fn sample(&self, rng: &mut dyn Rng) -> Isp {
        let mut u = u01(rng);
        for (isp, share) in self.shares {
            if u < share {
                return isp;
            }
            u -= share;
        }
        self.shares[0].0
    }

    /// The probability a user is outside the four major ISPs.
    pub fn outside_majors(&self) -> f64 {
        self.shares.iter().filter(|(isp, _)| !isp.is_major()).map(|(_, s)| s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_mix_sums_to_one() {
        let total: f64 = IspMix::default().shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outside_majors_matches_paper() {
        // 9.6 % of fetches are limited by the ISP barrier (§4.2).
        assert!((IspMix::default().outside_majors() - 0.096).abs() < 1e-12);
    }

    #[test]
    fn sampling_tracks_shares() {
        let mix = IspMix::default();
        let mut rng = StdRng::seed_from_u64(20);
        let n = 100_000;
        let mut other = 0;
        for _ in 0..n {
            if mix.sample(&mut rng) == Isp::Other {
                other += 1;
            }
        }
        let frac = other as f64 / n as f64;
        assert!((frac - 0.096).abs() < 0.005, "{frac}");
    }

    #[test]
    fn major_indexing_is_consistent() {
        for (i, isp) in Isp::MAJORS.iter().enumerate() {
            assert_eq!(isp.major_index(), Some(i));
            assert!(isp.is_major());
        }
        assert_eq!(Isp::Other.major_index(), None);
        assert!(!Isp::Other.is_major());
    }

    #[test]
    fn display_names() {
        assert_eq!(Isp::Cernet.to_string(), "CERNET");
        assert_eq!(Isp::Unicom.to_string(), "Unicom");
    }

    #[test]
    fn lowercase_names_match_display_except_cernet() {
        for isp in [Isp::Unicom, Isp::Telecom, Isp::Mobile, Isp::Other] {
            assert_eq!(isp.lowercase_name(), isp.to_string().to_lowercase());
        }
        // CERNET's metric key has always been lowercase despite the
        // all-caps display name.
        assert_eq!(Isp::Cernet.lowercase_name(), "cernet");
        assert_eq!(Isp::Cernet.lowercase_name(), Isp::Cernet.to_string().to_lowercase());
    }
}
