//! The ISP barrier: throughput collapse on cross-ISP paths.

use odx_stats::dist::{Dist, LogNormal};
use rand::Rng;

/// Cross-ISP path throughput model.
///
/// China's AS topology is a handful of giant per-ISP ASes over nationwide
/// backbones; peering between them is thin, so data crossing ISP boundaries
/// slows dramatically (§2.1, "ISP barrier"). Xuanfeng works around it with
/// same-ISP uploading servers; when that fails (user outside the four
/// majors, or the same-ISP servers are saturated) the transfer crosses the
/// barrier.
///
/// The model: a cross-ISP path contributes an independent capacity sample,
/// log-normal with median 70 KBps — low enough that nearly every
/// barrier-crossing fetch lands under the 125 KBps HD threshold, matching
/// the paper's attribution of that whole population (9.6 %) to Bottleneck 1.
#[derive(Debug, Clone, Copy)]
pub struct BarrierModel {
    dist: LogNormal,
    max_kbps: f64,
}

impl Default for BarrierModel {
    fn default() -> Self {
        BarrierModel { dist: LogNormal::from_median(70.0, 0.55), max_kbps: 400.0 }
    }
}

impl BarrierModel {
    /// A model with explicit parameters.
    pub fn new(median_kbps: f64, sigma: f64, max_kbps: f64) -> Self {
        BarrierModel { dist: LogNormal::from_median(median_kbps, sigma), max_kbps }
    }

    /// Sample the capacity of one cross-ISP path (KBps). Each sample is a
    /// barrier activation, counted in the global telemetry registry.
    pub fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // Cached handle: barrier sampling sits on the fetch-admission hot
        // path, so pay the registry name lookup only once.
        static ACTIVATIONS: std::sync::OnceLock<odx_telemetry::Counter> =
            std::sync::OnceLock::new();
        ACTIVATIONS
            .get_or_init(|| odx_telemetry::global().counter("net.barrier.activations"))
            .inc();
        self.dist.sample(rng).min(self.max_kbps)
    }

    /// Analytic probability a barrier-crossing path stays under `kbps`.
    pub fn below_probability(&self, kbps: f64) -> f64 {
        self.dist.cdf(kbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HD_THRESHOLD_KBPS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn barrier_paths_mostly_below_hd_threshold() {
        let m = BarrierModel::default();
        // §4.2 counts the entire barrier-crossing population as impeded.
        assert!(
            m.below_probability(HD_THRESHOLD_KBPS) > 0.80,
            "{}",
            m.below_probability(HD_THRESHOLD_KBPS)
        );
        let mut rng = StdRng::seed_from_u64(24);
        let below = (0..100_000).filter(|_| m.sample(&mut rng) < HD_THRESHOLD_KBPS).count() as f64
            / 100_000.0;
        assert!(below > 0.80, "sampled {below}");
    }

    #[test]
    fn sampling_counts_barrier_activations() {
        // Other tests share the global registry, so only assert the
        // counter moved by at least our contribution.
        let counter = odx_telemetry::global().counter("net.barrier.activations");
        let before = counter.get();
        let m = BarrierModel::default();
        let mut rng = StdRng::seed_from_u64(27);
        for _ in 0..10 {
            m.sample(&mut rng);
        }
        assert!(counter.get() >= before + 10);
    }

    #[test]
    fn capped_at_max() {
        let m = BarrierModel::default();
        let mut rng = StdRng::seed_from_u64(25);
        for _ in 0..10_000 {
            assert!(m.sample(&mut rng) <= 400.0);
        }
    }

    #[test]
    fn barrier_is_much_slower_than_privileged() {
        // The privileged path allows up to 6250 KBps; a barrier path's
        // median is two orders of magnitude lower.
        let m = BarrierModel::default();
        let mut rng = StdRng::seed_from_u64(26);
        let xs: Vec<f64> = (0..10_000).map(|_| m.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean < 150.0, "{mean}");
    }
}
