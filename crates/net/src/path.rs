//! Network paths: capacity composition along a transfer route.

use serde::Serialize;

/// One capacity-bearing segment of a path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Segment {
    /// The user's (or proxy's) last-mile access link.
    Access {
        /// Capacity (KBps).
        kbps: f64,
    },
    /// A share of a server pool's upload capacity.
    ServerShare {
        /// Capacity granted to this flow (KBps).
        kbps: f64,
    },
    /// A cross-ISP barrier crossing.
    Barrier {
        /// Sampled barrier capacity (KBps).
        kbps: f64,
    },
    /// The data source's effective serving rate (swarm or HTTP/FTP server).
    Source {
        /// Capacity (KBps).
        kbps: f64,
    },
    /// A LAN hop (wired or WiFi) between a smart AP and the user device.
    Lan {
        /// Capacity (KBps).
        kbps: f64,
    },
    /// An application-level limit (e.g. Xuanfeng's 6.25 MBps fetch cap, or
    /// the §5.1 replay restriction to the sampled user's recorded access
    /// bandwidth).
    AppCap {
        /// Capacity (KBps).
        kbps: f64,
    },
}

impl Segment {
    /// The capacity this segment contributes (KBps).
    pub fn kbps(&self) -> f64 {
        match *self {
            Segment::Access { kbps }
            | Segment::ServerShare { kbps }
            | Segment::Barrier { kbps }
            | Segment::Source { kbps }
            | Segment::Lan { kbps }
            | Segment::AppCap { kbps } => kbps,
        }
    }
}

/// A transfer path: an ordered list of segments. Steady-state throughput is
/// the minimum segment capacity (single-flow fluid model); which segment is
/// the minimum identifies the bottleneck the paper's analysis names.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Path {
    segments: Vec<Segment>,
}

impl Path {
    /// An empty path (infinite capacity until segments are added).
    pub fn new() -> Self {
        Path { segments: Vec::new() }
    }

    /// Append a segment, builder-style.
    pub fn with(mut self, seg: Segment) -> Self {
        self.segments.push(seg);
        self
    }

    /// The path's segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Steady-state throughput: the minimum segment capacity.
    /// An empty path has infinite throughput (callers always add at least a
    /// source or an access segment).
    pub fn throughput_kbps(&self) -> f64 {
        self.segments.iter().map(Segment::kbps).fold(f64::INFINITY, f64::min)
    }

    /// The bottleneck segment (the first of minimum capacity), if any.
    pub fn bottleneck(&self) -> Option<Segment> {
        let min = self.throughput_kbps();
        self.segments.iter().copied().find(|s| s.kbps() <= min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_min_segment() {
        let p = Path::new()
            .with(Segment::Source { kbps: 900.0 })
            .with(Segment::Barrier { kbps: 80.0 })
            .with(Segment::Access { kbps: 400.0 });
        assert_eq!(p.throughput_kbps(), 80.0);
        assert_eq!(p.bottleneck(), Some(Segment::Barrier { kbps: 80.0 }));
    }

    #[test]
    fn ties_pick_first() {
        let p =
            Path::new().with(Segment::Access { kbps: 100.0 }).with(Segment::AppCap { kbps: 100.0 });
        assert_eq!(p.bottleneck(), Some(Segment::Access { kbps: 100.0 }));
    }

    #[test]
    fn empty_path() {
        let p = Path::new();
        assert!(p.throughput_kbps().is_infinite());
        assert_eq!(p.bottleneck(), None);
    }

    #[test]
    fn privileged_fetch_shape() {
        // A privileged (same-ISP) fetch: server share and the 6.25 MBps app
        // cap are generous; the user's access link is the bottleneck — the
        // common case behind the paper's high fetch speeds.
        let p = Path::new()
            .with(Segment::ServerShare { kbps: 5000.0 })
            .with(Segment::AppCap { kbps: crate::CLOUD_FETCH_CAP_KBPS })
            .with(Segment::Access { kbps: 480.0 });
        assert_eq!(p.throughput_kbps(), 480.0);
        assert!(matches!(p.bottleneck(), Some(Segment::Access { .. })));
    }
}
