//! Last-mile access bandwidth.

use odx_stats::dist::{Dist, LogNormal};
use rand::Rng;

use crate::HD_THRESHOLD_KBPS;

/// Per-user access (download) bandwidth model.
///
/// The paper doesn't publish the raw access-bandwidth distribution, but pins
/// it down indirectly:
///
/// * 10.8 % of fetch processes are limited by access bandwidth below
///   125 KBps (§4.2) — so ~11 % of the population sits under the HD
///   threshold;
/// * the median and average fetch speeds are 287 / 504 KBps, and fetch speed
///   is essentially `min(access, privileged-path rate)` — so the body of the
///   distribution sits in the few-hundred-KBps range;
/// * the maximum observed fetch is 6.1 MBps, just under the 6.25 MBps cloud
///   cap — so a small tail of users has far more than the cap.
///
/// A log-normal with median 410 KBps and σ = 0.97 satisfies all three
/// (P(X < 125) ≈ 10.8 %), clamped to a sane range.
#[derive(Debug, Clone, Copy)]
pub struct AccessModel {
    dist: LogNormal,
    min_kbps: f64,
    max_kbps: f64,
}

impl Default for AccessModel {
    fn default() -> Self {
        AccessModel {
            dist: LogNormal::from_median(410.0, 0.97),
            // Dial-up-ish floor to fiber-ish ceiling (100 Mbps).
            min_kbps: 16.0,
            max_kbps: 12_500.0,
        }
    }
}

impl AccessModel {
    /// A model with explicit parameters (for sweeps and tests).
    pub fn new(median_kbps: f64, sigma: f64, min_kbps: f64, max_kbps: f64) -> Self {
        assert!(min_kbps > 0.0 && min_kbps < max_kbps, "bad clamp range");
        AccessModel { dist: LogNormal::from_median(median_kbps, sigma), min_kbps, max_kbps }
    }

    /// Sample one user's access bandwidth (KBps).
    pub fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.dist.sample(rng).clamp(self.min_kbps, self.max_kbps)
    }

    /// Analytic probability of being below the HD threshold.
    pub fn below_hd_probability(&self) -> f64 {
        self.dist.cdf(HD_THRESHOLD_KBPS)
    }

    /// The model's median (KBps).
    pub fn median(&self) -> f64 {
        self.dist.median()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn below_hd_fraction_matches_paper() {
        let m = AccessModel::default();
        // §4.2: 10.8 % of fetches limited by access bandwidth < 125 KBps.
        assert!((m.below_hd_probability() - 0.108).abs() < 0.01, "{}", m.below_hd_probability());
        let mut rng = StdRng::seed_from_u64(21);
        let n = 200_000;
        let below =
            (0..n).filter(|_| m.sample(&mut rng) < HD_THRESHOLD_KBPS).count() as f64 / n as f64;
        assert!((below - 0.108).abs() < 0.01, "sampled {below}");
    }

    #[test]
    fn samples_respect_clamps() {
        let m = AccessModel::default();
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..10_000 {
            let x = m.sample(&mut rng);
            assert!((16.0..=12_500.0).contains(&x));
        }
    }

    #[test]
    fn a_tail_exceeds_the_cloud_cap() {
        let m = AccessModel::default();
        let mut rng = StdRng::seed_from_u64(23);
        let fast = (0..200_000).filter(|_| m.sample(&mut rng) > 6250.0).count();
        assert!(fast > 0, "some users must out-provision the cloud fetch cap");
        assert!((fast as f64) < 2000.0, "...but only a small tail: {fast}");
    }

    #[test]
    fn median_is_parameter() {
        assert!((AccessModel::default().median() - 410.0).abs() < 1e-9);
    }
}
