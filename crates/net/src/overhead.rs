//! Protocol traffic-overhead models (§4.1 "Network traffic cost").

use odx_stats::dist::u01;
use rand::Rng;

/// Traffic overhead factors: actual bytes on the wire divided by file size.
///
/// * HTTP/FTP: 7–10 % of header overhead (HTTP/FTP/TCP/IP headers), so the
///   factor is uniform in `[1.07, 1.10]`.
/// * P2P: tit-for-tat forces uploading while downloading, so total traffic is
///   50–150 % *larger* than the file — factor in `[1.5, 2.5]`. Xuanfeng
///   observed overall P2P pre-downloading traffic of 196 % of the total file
///   size, i.e. the mean factor ≈ 1.96; the default range is centered there.
#[derive(Debug, Clone, Copy)]
pub struct OverheadModel {
    /// HTTP/FTP factor range.
    pub http_lo: f64,
    /// HTTP/FTP factor upper bound.
    pub http_hi: f64,
    /// P2P factor range lower bound.
    pub p2p_lo: f64,
    /// P2P factor upper bound.
    pub p2p_hi: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel { http_lo: 1.07, http_hi: 1.10, p2p_lo: 1.5, p2p_hi: 2.42 }
    }
}

impl OverheadModel {
    /// Sample the wire/file traffic factor for an HTTP or FTP transfer.
    pub fn http_ftp_factor(&self, rng: &mut dyn Rng) -> f64 {
        self.http_lo + (self.http_hi - self.http_lo) * u01(rng)
    }

    /// Sample the wire/file traffic factor for a P2P transfer.
    pub fn p2p_factor(&self, rng: &mut dyn Rng) -> f64 {
        self.p2p_lo + (self.p2p_hi - self.p2p_lo) * u01(rng)
    }

    /// Mean of the P2P factor (`1.96` by default, the paper's measurement).
    pub fn p2p_mean(&self) -> f64 {
        (self.p2p_lo + self.p2p_hi) / 2.0
    }

    /// User-side traffic saving from fetching via the cloud instead of the
    /// original swarm (§4.2): P2P factor minus the cloud-fetch factor.
    pub fn cloud_saving_fraction(&self) -> f64 {
        self.p2p_mean() - (self.http_lo + self.http_hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn p2p_mean_matches_xuanfeng_observation() {
        // §4.1: overall P2P pre-downloading traffic = 196 % of file size.
        assert!((OverheadModel::default().p2p_mean() - 1.96).abs() < 1e-9);
    }

    #[test]
    fn factors_in_documented_ranges() {
        let m = OverheadModel::default();
        let mut rng = StdRng::seed_from_u64(27);
        for _ in 0..10_000 {
            let h = m.http_ftp_factor(&mut rng);
            assert!((1.07..=1.10).contains(&h), "{h}");
            let p = m.p2p_factor(&mut rng);
            assert!((1.5..=2.42).contains(&p), "{p}");
        }
    }

    #[test]
    fn cloud_saving_is_86_to_89_percent() {
        // §4.2: cloud fetching saves traffic comparable to 86–89 % of the
        // file size for an average P2P user.
        let saving = OverheadModel::default().cloud_saving_fraction();
        assert!((0.86..=0.89).contains(&saving), "{saving}");
    }
}
