#![warn(missing_docs)]

//! # odx-net — the network substrate of the offline-downloading study
//!
//! China's Internet (as of the paper's 2015 measurement) is modeled by three
//! pieces, each the direct cause of one of the paper's findings:
//!
//! * [`Isp`] — a small number of giant ASes (Unicom, Telecom, Mobile,
//!   CERNET) plus a long tail of small ISPs. Cloud uploading servers exist
//!   only inside the four major ISPs.
//! * [`AccessModel`] — per-user last-mile bandwidth. The paper attributes
//!   10.8 % of impeded fetches to access links below the 1 Mbps (125 KBps)
//!   HD-video threshold.
//! * [`BarrierModel`] — the "ISP barrier": cross-ISP paths collapse to a
//!   small fraction of either endpoint's capacity. This causes 9.6 % of
//!   impeded fetches (users outside the four major ISPs).
//!
//! [`Path`] composes these into per-transfer throughput, and the max–min
//! fluid solver from `odx-sim` covers flows that share links (LAN fetches,
//! upload-server pools).
//!
//! ## Units
//!
//! Throughout the workspace: **bandwidth is KBps** (kilobytes per second,
//! decimal) and **file sizes are MB** (decimal megabytes), matching the
//! paper's conventions: 1 Mbps = 125 KBps, 20 Mbps = 2.5 MBps = 2500 KBps.

mod access;
mod barrier;
mod isp;
pub mod latency;
mod overhead;
mod path;

pub use access::AccessModel;
pub use barrier::BarrierModel;
pub use isp::{Isp, IspMix};
pub use overhead::OverheadModel;
pub use path::{Path, Segment};

/// 1 Mbps expressed in KBps — the HD-video playback threshold (§4.2).
pub const HD_THRESHOLD_KBPS: f64 = 125.0;

/// A cloud pre-downloader's access bandwidth: 20 Mbps = 2.5 MBps (§2.1).
pub const PREDOWNLOADER_KBPS: f64 = 2500.0;

/// Maximum per-user fetch speed from the cloud: 50 Mbps = 6.25 MBps (§2.1).
pub const CLOUD_FETCH_CAP_KBPS: f64 = 6250.0;

/// The benchmark ADSL lines used in §5.1: 20 Mbps down.
pub const ADSL_LINK_KBPS: f64 = 2500.0;

/// Maximum *payload* rate ever observed on one of those 20 Mbps lines:
/// 2.37 MBps, the ceiling of the Fig 13 and Fig 17 speed CDFs (the link
/// rate less framing/TCP overhead). Every per-download rate cap in the
/// workspace derives from this single constant.
pub const ADSL_PAYLOAD_KBPS: f64 = 2370.0;

/// Convert Mbps (megabits/s) to KBps (kilobytes/s).
pub fn mbps_to_kbps(mbps: f64) -> f64 {
    mbps * 125.0
}

/// Convert KBps to Gbps (gigabits/s) — the unit of Figure 11's y-axis.
pub fn kbps_to_gbps(kbps: f64) -> f64 {
    kbps * 8.0 / 1_000_000.0
}

/// Transfer time in seconds for `size_mb` megabytes at `rate_kbps`.
/// Returns `f64::INFINITY` for non-positive rates.
pub fn transfer_secs(size_mb: f64, rate_kbps: f64) -> f64 {
    if rate_kbps <= 0.0 {
        f64::INFINITY
    } else {
        size_mb * 1000.0 / rate_kbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_match_paper() {
        assert_eq!(mbps_to_kbps(1.0), HD_THRESHOLD_KBPS);
        assert_eq!(mbps_to_kbps(20.0), PREDOWNLOADER_KBPS);
        assert_eq!(mbps_to_kbps(50.0), CLOUD_FETCH_CAP_KBPS);
        // 30 Gbps in KBps is 3.75e6; round-trips through kbps_to_gbps.
        assert!((kbps_to_gbps(3_750_000.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time() {
        // 115 MB (the median file) at 287 KBps (the median fetch speed)
        // ≈ 6.7 minutes — consistent with the paper's 7-minute median fetch.
        let secs = transfer_secs(115.0, 287.0);
        assert!((secs / 60.0 - 6.68).abs() < 0.05, "{}", secs / 60.0);
        assert!(transfer_secs(1.0, 0.0).is_infinite());
    }
}
