//! Inter-ISP latency model.
//!
//! §2.1: when a privileged (same-ISP) uploading server is unavailable,
//! Xuanfeng "would select an alternative uploading server that has the
//! shortest network latency from the user". This module provides that
//! latency surface: an RTT matrix over the major ISPs plus the outside
//! world, shaped by China's topology (intra-ISP backbones are fast; paths
//! between ISPs cross thin interconnects; CERNET peers poorly with the
//! commercial networks).

use crate::Isp;
use odx_stats::dist::{u01, Dist, LogNormal};
use rand::Rng;

/// Baseline RTT in milliseconds between a user in `from` and a server in
/// `to` (medians; jitter comes from [`rtt_ms`]).
pub fn base_rtt_ms(from: Isp, to: Isp) -> f64 {
    use Isp::*;
    match (from, to) {
        // Same-ISP paths ride the national backbone.
        (a, b) if a == b && a.is_major() => 25.0,
        // Commercial big-3 peer with each other at congested NAPs.
        (Unicom, Telecom) | (Telecom, Unicom) => 75.0,
        (Unicom, Mobile) | (Mobile, Unicom) => 70.0,
        (Telecom, Mobile) | (Mobile, Telecom) => 72.0,
        // CERNET's commercial interconnects are notoriously slow.
        (Cernet, x) | (x, Cernet) if x != Cernet => 110.0,
        (Cernet, Cernet) => 25.0,
        // Small ISPs transit through a commercial carrier.
        (Other, x) | (x, Other) if x != Other => 95.0,
        (Other, Other) => 60.0,
        _ => 75.0,
    }
}

/// One sampled RTT (ms): the base value with log-normal jitter.
pub fn rtt_ms(from: Isp, to: Isp, rng: &mut dyn Rng) -> f64 {
    let jitter = LogNormal::from_median(1.0, 0.25).sample(rng);
    base_rtt_ms(from, to) * jitter * (1.0 + 0.1 * u01(rng))
}

/// The alternative-server choice rule of §2.1: among candidate server ISPs,
/// pick the one with the lowest base RTT from the user (ties broken by
/// enumeration order).
pub fn nearest_major(from: Isp, candidates: &[Isp]) -> Option<Isp> {
    candidates
        .iter()
        .copied()
        .filter(|isp| isp.is_major())
        .min_by(|&a, &b| base_rtt_ms(from, a).partial_cmp(&base_rtt_ms(from, b)).expect("finite"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn same_isp_is_fastest() {
        for isp in Isp::MAJORS {
            for other in Isp::MAJORS {
                if other != isp {
                    assert!(base_rtt_ms(isp, isp) < base_rtt_ms(isp, other), "{isp} → {other}");
                }
            }
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let all = [Isp::Unicom, Isp::Telecom, Isp::Mobile, Isp::Cernet, Isp::Other];
        for a in all {
            for b in all {
                assert_eq!(base_rtt_ms(a, b), base_rtt_ms(b, a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn cernet_crossings_are_the_worst() {
        assert!(base_rtt_ms(Isp::Cernet, Isp::Telecom) > base_rtt_ms(Isp::Unicom, Isp::Telecom));
    }

    #[test]
    fn sampled_rtt_is_positive_with_bounded_jitter() {
        let mut rng = StdRng::seed_from_u64(200);
        for _ in 0..2000 {
            let rtt = rtt_ms(Isp::Other, Isp::Telecom, &mut rng);
            assert!(rtt > 30.0 && rtt < 400.0, "{rtt}");
        }
    }

    #[test]
    fn nearest_major_selection() {
        // A Cernet user prefers any commercial ISP equally (all 110 ms) —
        // enumeration order breaks the tie to the first candidate.
        let pick = nearest_major(Isp::Unicom, &[Isp::Telecom, Isp::Mobile]).unwrap();
        assert_eq!(pick, Isp::Mobile, "Mobile is nearer Unicom than Telecom");
        assert_eq!(nearest_major(Isp::Other, &[]), None);
        assert_eq!(nearest_major(Isp::Other, &[Isp::Other]), None);
    }
}
