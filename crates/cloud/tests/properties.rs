//! Property-based tests for the cloud's stateful components.

use odx_cloud::{Admission, LruCache, UploadPool};
use odx_net::Isp;
use proptest::prelude::*;

proptest! {
    /// LRU invariant: used bytes never exceed capacity, and used bytes
    /// always equal the sum of resident entries.
    #[test]
    fn lru_never_exceeds_capacity(
        ops in prop::collection::vec((0u32..200, 1.0f64..50.0, any::<bool>()), 1..300),
    ) {
        let mut cache = LruCache::new(300.0);
        let mut sizes = std::collections::HashMap::new();
        for (key, size, touch) in ops {
            if touch {
                let hit = cache.touch(&key);
                prop_assert_eq!(hit.is_some(), sizes.contains_key(&key));
            } else {
                for evicted in cache.insert(key, size) {
                    sizes.remove(&evicted);
                }
                sizes.insert(key, size);
                // The model can drift when an eviction removes the entry we
                // think resident; resync from membership.
                sizes.retain(|k, _| cache.contains(k));
            }
            prop_assert!(cache.used_mb() <= cache.capacity_mb() + 1e-9);
            let model_total: f64 = sizes.values().sum();
            prop_assert!((cache.used_mb() - model_total).abs() < 1e-6,
                "cache {} vs model {}", cache.used_mb(), model_total);
            prop_assert_eq!(cache.len(), sizes.len());
        }
    }

    /// LRU eviction order: after arbitrary operations, the reported MRU
    /// order contains each resident key exactly once.
    #[test]
    fn lru_mru_order_is_a_permutation(
        ops in prop::collection::vec((0u32..50, any::<bool>()), 1..200),
    ) {
        let mut cache = LruCache::new(30.0);
        for (key, touch) in ops {
            if touch {
                cache.touch(&key);
            } else {
                cache.insert(key, 1.0);
            }
        }
        let mut order = cache.keys_mru();
        prop_assert_eq!(order.len(), cache.len());
        order.sort_unstable();
        order.dedup();
        prop_assert_eq!(order.len(), cache.len(), "duplicates in MRU order");
    }

    /// Upload pool conservation: in-use never exceeds capacity; releases
    /// return the pool to empty; admissions are all-or-nothing.
    #[test]
    fn upload_pool_conservation(
        requests in prop::collection::vec((0usize..5, 10.0f64..500.0), 1..100),
    ) {
        let isps = [Isp::Unicom, Isp::Telecom, Isp::Mobile, Isp::Cernet, Isp::Other];
        let mut pool = UploadPool::new(2000.0, [0.25, 0.25, 0.25, 0.25], 10.0);
        let mut admitted: Vec<(Isp, f64)> = Vec::new();
        for (isp_idx, desired) in requests {
            let cross = desired * 0.4;
            match pool.admit(isps[isp_idx], desired, cross) {
                Admission::Privileged { isp, rate_kbps } => {
                    prop_assert!((rate_kbps - desired.max(10.0)).abs() < 1e-9,
                        "privileged grants are full-rate");
                    admitted.push((isp, rate_kbps));
                }
                Admission::CrossIsp { server_isp, rate_kbps } => {
                    prop_assert!(rate_kbps <= desired + 1e-9);
                    admitted.push((server_isp, rate_kbps));
                }
                Admission::Rejected => {}
            }
            let total: f64 = admitted.iter().map(|(_, r)| r).sum();
            prop_assert!((pool.total_in_use() - total).abs() < 1e-6);
            prop_assert!(pool.total_in_use() <= 2000.0 + 1e-6);
        }
        for (isp, rate) in admitted.drain(..) {
            pool.release(isp, rate);
        }
        prop_assert!(pool.total_in_use().abs() < 1e-6, "{}", pool.total_in_use());
        prop_assert!((pool.total_headroom() - 2000.0).abs() < 1e-6);
    }
}
