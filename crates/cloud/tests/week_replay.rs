//! Integration test: the full measurement-week replay at a scale large
//! enough for the per-ISP pool granularity to wash out, pinned against the
//! paper's §4 numbers (see EXPERIMENTS.md for the full ledger).

use odx_cloud::{CloudConfig, XuanfengCloud};
use odx_sim::RngFactory;
use odx_trace::{Catalog, CatalogConfig, Population, PopulationConfig, Workload, WorkloadConfig};
use rand::SeedableRng;

const SCALE: f64 = 0.05;

fn replay() -> odx_cloud::WeekReport {
    let rngs = RngFactory::new(2015);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2015);
    let catalog = Catalog::generate(&CatalogConfig::scaled(SCALE), &mut rng);
    let population = Population::generate(&PopulationConfig::scaled(SCALE), &mut rng);
    let workload = Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
    XuanfengCloud::replay(&catalog, &population, &workload, CloudConfig::at_scale(SCALE), &rngs)
}

#[test]
fn week_replay_reproduces_section4() {
    let report = replay();

    // §2.1: 89 % of requests instantly satisfied from the pool.
    let hit = report.hit_ratio();
    assert!((hit - 0.89).abs() < 0.04, "cache hit ratio {hit}");

    // §4.1: overall failure ratio 8.7 %.
    let fail = report.failure_ratio();
    assert!((fail - 0.087).abs() < 0.035, "failure ratio {fail}");

    // Fig 8: fetch speed median 287 / mean 504 KBps, max 6.1 MBps.
    let fetch = report.fetch_speed_ecdf().summary().unwrap();
    assert!((fetch.median - 287.0).abs() / 287.0 < 0.20, "fetch median {}", fetch.median);
    assert!((fetch.mean - 504.0).abs() / 504.0 < 0.20, "fetch mean {}", fetch.mean);
    assert!(fetch.max <= 6250.0);

    // §4.2: 28 % of fetches below the 125 KBps HD threshold.
    let impeded = report.impeded_ratio();
    assert!((impeded - 0.28).abs() < 0.06, "impeded {impeded}");

    // §4.2: a small fraction of fetches rejected at the peak.
    let rejected = report.rejection_ratio();
    assert!(rejected > 0.0 && rejected < 0.03, "rejection ratio {rejected}");

    // Fig 9: pre-download delay median 82 minutes over misses.
    let pd_delay = report.predownload_delay_ecdf().summary().unwrap();
    assert!((pd_delay.median - 82.0).abs() / 82.0 < 0.25, "pd delay median {}", pd_delay.median);
    assert!(pd_delay.mean > 2.0 * pd_delay.median, "pd delay heavy tail");

    // Fig 9: fetch delay median 7 minutes.
    let fetch_delay = report.fetch_delay_ecdf().summary().unwrap();
    assert!((fetch_delay.median - 7.0).abs() < 3.5, "fetch delay median {}", fetch_delay.median);

    // §4.3: the end-to-end CDFs sit between the phase CDFs, closer to the
    // fetch phase (most requests hit the cache).
    let e2e_delay = report.end_to_end_delay_ecdf().median().unwrap();
    assert!(e2e_delay >= fetch_delay.median && e2e_delay < pd_delay.median);

    // §4.1: pre-download traffic ≈ 196 % of payload.
    let overhead = report.traffic_overhead_factor();
    assert!((overhead - 1.96).abs() < 0.2, "traffic overhead {overhead}");

    // Fig 11: burden peaks late in the week near/above the 30 Gbps cap
    // (scaled), with ≈ 40 % of it from highly popular files.
    let cap_gbps = odx_net::kbps_to_gbps(CloudConfig::at_scale(SCALE).scaled_upload_kbps());
    let peak = report.peak_burden_gbps();
    assert!(peak > 0.95 * cap_gbps, "peak {peak} vs cap {cap_gbps}");
    let (peak_bin, _) = report.burden_kbps.peak_bin();
    let peak_day = peak_bin as f64 * 300.0 / 86_400.0;
    assert!(peak_day > 5.0, "peak should land on the last days: day {peak_day:.1}");
    let hot = report.hot_burden_fraction();
    assert!((hot - 0.40).abs() < 0.12, "hot burden fraction {hot}");

    // Fig 10: failure ratio falls with popularity.
    let bins = &report.failure_by_popularity;
    assert!(bins.first().unwrap().1 > bins.last().unwrap().1 + 0.05);
}

#[test]
fn no_cache_counterfactual_matches_section4() {
    let rngs = RngFactory::new(2016);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2016);
    let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
    let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
    let workload = Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
    let mut cfg = CloudConfig::at_scale(0.02);
    let with_cache =
        XuanfengCloud::replay(&catalog, &population, &workload, cfg, &rngs).failure_ratio();
    cfg.cache_enabled = false;
    let without =
        XuanfengCloud::replay(&catalog, &population, &workload, cfg, &rngs).failure_ratio();
    // §4.1: 8.7 % → 16.4 % without the pool.
    assert!((without - 0.164).abs() < 0.05, "no-cache failure {without}");
    assert!(without > 1.5 * with_cache, "{with_cache} → {without}");
}
