//! Chunk-level deduplication estimator (§2.1's design choice).
//!
//! Xuanfeng dedups at *file* level (MD5 of the whole content) and explicitly
//! rejects chunk-level dedup: "to avoid trading high chunking complexity for
//! low (< 1 %) storage space savings. The low storage savings come from the
//! fact that there do exist a few videos sharing a portion of
//! frames/chunks." This module puts a number on that choice: it assigns each
//! catalog file a synthetic chunk recipe in which a small fraction of videos
//! share chunk runs (re-encodes, trailers, series intros), then measures the
//! extra bytes chunk-level dedup would save beyond file-level dedup.

use odx_stats::dist::u01;
use odx_trace::{Catalog, FileType};
use rand::Rng;

/// Chunking parameters.
#[derive(Debug, Clone, Copy)]
pub struct DedupConfig {
    /// Chunk size in MB (content-defined chunking averages a few MB for
    /// video workloads).
    pub chunk_mb: f64,
    /// Fraction of videos that share material with some other video.
    pub sharing_video_fraction: f64,
    /// Among sharing videos, the fraction of their chunks that duplicate
    /// another file's chunks.
    pub shared_chunk_fraction: f64,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig { chunk_mb: 4.0, sharing_video_fraction: 0.03, shared_chunk_fraction: 0.25 }
    }
}

/// Result of the estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DedupEstimate {
    /// Unique bytes after file-level dedup (MB) — what Xuanfeng stores.
    pub file_level_mb: f64,
    /// Unique bytes after chunk-level dedup (MB).
    pub chunk_level_mb: f64,
    /// Number of chunks the chunk index would need to track.
    pub chunk_count: u64,
}

impl DedupEstimate {
    /// Fractional extra saving of chunk-level over file-level dedup.
    pub fn extra_saving(&self) -> f64 {
        if self.file_level_mb <= 0.0 {
            return 0.0;
        }
        1.0 - self.chunk_level_mb / self.file_level_mb
    }
}

/// Estimate chunk-level savings over a catalog (which is already
/// deduplicated at file level by construction: one entry per unique id).
pub fn estimate(catalog: &Catalog, cfg: &DedupConfig, rng: &mut dyn Rng) -> DedupEstimate {
    let mut file_level_mb = 0.0;
    let mut duplicate_mb = 0.0;
    let mut chunk_count = 0u64;
    for file in catalog.files() {
        file_level_mb += file.size_mb;
        let chunks = (file.size_mb / cfg.chunk_mb).ceil().max(1.0);
        chunk_count += chunks as u64;
        // Only videos share frame/chunk runs (§2.1's stated cause).
        if file.ftype == FileType::Video && u01(rng) < cfg.sharing_video_fraction {
            duplicate_mb += file.size_mb * cfg.shared_chunk_fraction * u01(rng);
        }
    }
    DedupEstimate { file_level_mb, chunk_level_mb: file_level_mb - duplicate_mb, chunk_count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_trace::CatalogConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut rng = StdRng::seed_from_u64(220);
        Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng)
    }

    #[test]
    fn chunk_savings_are_below_one_percent() {
        // The §2.1 design rationale, quantified.
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(221);
        let est = estimate(&c, &DedupConfig::default(), &mut rng);
        let saving = est.extra_saving();
        assert!(saving < 0.01, "chunk-level dedup saves {:.3}%", 100.0 * saving);
        assert!(saving > 0.0005, "…but not literally nothing: {:.4}%", 100.0 * saving);
    }

    #[test]
    fn chunk_index_is_enormous_compared_to_file_index() {
        // The complexity side of the trade: orders of magnitude more index
        // entries for sub-percent savings.
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(222);
        let est = estimate(&c, &DedupConfig::default(), &mut rng);
        assert!(est.chunk_count as usize > 20 * c.len(), "{} chunks", est.chunk_count);
    }

    #[test]
    fn more_sharing_means_more_savings() {
        let c = catalog();
        let mut rng1 = StdRng::seed_from_u64(223);
        let mut rng2 = StdRng::seed_from_u64(223);
        let small = estimate(&c, &DedupConfig::default(), &mut rng1);
        let big = estimate(
            &c,
            &DedupConfig { sharing_video_fraction: 0.5, ..DedupConfig::default() },
            &mut rng2,
        );
        assert!(big.extra_saving() > small.extra_saving());
    }

    #[test]
    fn empty_estimate_is_sane() {
        let est = DedupEstimate { file_level_mb: 0.0, chunk_level_mb: 0.0, chunk_count: 0 };
        assert_eq!(est.extra_saving(), 0.0);
    }
}
