//! View-as-download streaming viability (§4.2).
//!
//! Xuanfeng lets users play a video *while* fetching it ("view-as-download",
//! the mode most users choose). Continuous playback of an HD video needs the
//! fetch rate to keep up with the ~1 Mbps (125 KBps) playback rate — that is
//! where the paper's bandwidth-bottleneck threshold comes from. This module
//! models the buffer dynamics: startup delay, rebuffering, and whether a
//! given fetch can stream at all.

use odx_net::HD_THRESHOLD_KBPS;

/// Playback parameters.
#[derive(Debug, Clone, Copy)]
pub struct PlaybackConfig {
    /// Video playback rate (KBps). 125 = the paper's 1 Mbps HD rate.
    pub bitrate_kbps: f64,
    /// Startup buffer the player fills before playing (seconds of content).
    pub startup_buffer_secs: f64,
}

impl Default for PlaybackConfig {
    fn default() -> Self {
        PlaybackConfig { bitrate_kbps: HD_THRESHOLD_KBPS, startup_buffer_secs: 10.0 }
    }
}

/// The streaming experience of one view-as-download session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingOutcome {
    /// Seconds until playback starts (startup buffer fill time).
    pub startup_secs: f64,
    /// Whether playback runs to the end without stalling.
    pub continuous: bool,
    /// Total stall time after start (seconds); zero when `continuous`.
    pub total_stall_secs: f64,
}

/// Evaluate a constant-rate fetch of a `video_mb` video played at `playback`.
///
/// With a constant fetch rate the fluid buffer model is exact: if the fetch
/// rate is at least the bitrate, one startup fill suffices; otherwise the
/// player must pre-buffer enough that the remaining download finishes
/// exactly when playback does (a single up-front stall in the optimal
/// policy; greedy players spread it over many rebuffers — same total).
pub fn evaluate(video_mb: f64, fetch_kbps: f64, playback: &PlaybackConfig) -> StreamingOutcome {
    assert!(video_mb > 0.0, "empty video");
    let startup = playback.startup_buffer_secs * playback.bitrate_kbps / fetch_kbps.max(1e-9);
    if fetch_kbps >= playback.bitrate_kbps {
        return StreamingOutcome { startup_secs: startup, continuous: true, total_stall_secs: 0.0 };
    }
    let duration_secs = video_mb * 1000.0 / playback.bitrate_kbps;
    let download_secs = video_mb * 1000.0 / fetch_kbps.max(1e-9);
    StreamingOutcome {
        startup_secs: startup,
        continuous: false,
        total_stall_secs: (download_secs - duration_secs).max(0.0),
    }
}

/// Fraction of a fetch-speed sample that can view-as-download continuously.
pub fn streamable_fraction(fetch_speeds_kbps: &[f64], playback: &PlaybackConfig) -> f64 {
    if fetch_speeds_kbps.is_empty() {
        return 0.0;
    }
    fetch_speeds_kbps.iter().filter(|&&r| r >= playback.bitrate_kbps).count() as f64
        / fetch_speeds_kbps.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_fetch_streams_continuously() {
        let out = evaluate(700.0, 300.0, &PlaybackConfig::default());
        assert!(out.continuous);
        assert_eq!(out.total_stall_secs, 0.0);
        // 10 s of content at 125 KBps fetched at 300 KBps ≈ 4.2 s startup.
        assert!((out.startup_secs - 10.0 * 125.0 / 300.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_is_the_papers_125_kbps() {
        let cfg = PlaybackConfig::default();
        assert!(evaluate(700.0, 125.0, &cfg).continuous);
        assert!(!evaluate(700.0, 124.9, &cfg).continuous);
    }

    #[test]
    fn slow_fetch_stall_time_is_the_rate_deficit() {
        let cfg = PlaybackConfig::default();
        // 100 MB at 62.5 KBps (half the bitrate): download takes 1600 s,
        // playback 800 s → 800 s of stalling.
        let out = evaluate(100.0, 62.5, &cfg);
        assert!(!out.continuous);
        assert!((out.total_stall_secs - 800.0).abs() < 1e-6);
    }

    #[test]
    fn streamable_fraction_matches_impeded_complement() {
        // The paper's "28 % of fetches are below 125 KBps" is exactly
        // "72 % can view-as-download".
        let speeds = vec![50.0, 100.0, 125.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 900.0];
        let frac = streamable_fraction(&speeds, &PlaybackConfig::default());
        assert!((frac - 0.8).abs() < 1e-12);
        assert_eq!(streamable_fraction(&[], &PlaybackConfig::default()), 0.0);
    }

    #[test]
    fn pre_download_speeds_cannot_stream() {
        // §4.1: the 25 KBps median pre-download speed "is unfit for
        // continuous video streaming" — a feature-length video would stall
        // for hours.
        let out = evaluate(700.0, 25.0, &PlaybackConfig::default());
        assert!(!out.continuous);
        assert!(out.total_stall_secs > 4.0 * 3600.0, "{}", out.total_stall_secs);
    }
}
