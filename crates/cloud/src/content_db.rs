//! The content database: per-file metadata and popularity statistics.
//!
//! §2.1: every file is identified by the MD5 of its content; the DB tracks
//! users and cached files. §6.1: ODR's first step on every request is to
//! "query the content database of Xuanfeng to obtain the popularity
//! information of the requested file" — this type is that queryable surface.

use odx_sim::FxHashMap;
use odx_stats::dist::u01;
use odx_trace::{Catalog, FileId, PopularityClass};
use rand::Rng;

/// Dynamic per-file state tracked by the database.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileState {
    /// Requests observed so far (running popularity statistic).
    pub observed_requests: u32,
    /// Whether the file currently sits in the cloud storage pool.
    pub cached: bool,
    /// Whether a pre-downloader is currently working on this file.
    pub in_flight: bool,
    /// Failed pre-download attempts so far.
    pub failed_attempts: u32,
}

/// The metadata database over a catalog.
pub struct ContentDb {
    states: Vec<FileState>,
    // MD5-style ids are already uniform, so the cheap FxHash mix loses
    // nothing; lookups happen per request in the replay hot loop.
    by_id: FxHashMap<FileId, u32>,
}

impl ContentDb {
    /// An empty (cold) database over the catalog's file universe.
    pub fn new(catalog: &Catalog) -> Self {
        let by_id = catalog.files().iter().enumerate().map(|(i, f)| (f.id, i as u32)).collect();
        ContentDb { states: vec![FileState::default(); catalog.len()], by_id }
    }

    /// Warm the cache state as of the start of the measurement week: a file
    /// with `w` weekly requests is already cached with probability
    /// `w / (w + pivot)` (§2.1's pool accumulated it in previous weeks).
    /// Returns the indices warmed, so the caller can populate the LRU pool.
    pub fn warm(&mut self, catalog: &Catalog, pivot: f64, rng: &mut dyn Rng) -> Vec<u32> {
        let mut warmed = Vec::new();
        for (i, f) in catalog.files().iter().enumerate() {
            let w = f.weekly_requests as f64;
            if u01(rng) < w / (w + pivot) {
                self.states[i].cached = true;
                warmed.push(i as u32);
            }
        }
        warmed
    }

    /// Resolve a file id to its index.
    pub fn index_of(&self, id: FileId) -> Option<u32> {
        self.by_id.get(&id).copied()
    }

    /// State of a file.
    pub fn state(&self, index: u32) -> &FileState {
        &self.states[index as usize]
    }

    /// Mutable state of a file.
    pub fn state_mut(&mut self, index: u32) -> &mut FileState {
        &mut self.states[index as usize]
    }

    /// The popularity-class answer ODR receives for a file, from the
    /// catalog's ground truth (the real DB has the trailing week's counts).
    pub fn popularity_class(&self, catalog: &Catalog, index: u32) -> PopularityClass {
        catalog.file(index).class()
    }

    /// Fraction of files currently cached.
    pub fn cached_fraction(&self) -> f64 {
        if self.states.is_empty() {
            return 0.0;
        }
        self.states.iter().filter(|s| s.cached).count() as f64 / self.states.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_trace::CatalogConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Catalog, ContentDb) {
        let mut rng = StdRng::seed_from_u64(80);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let db = ContentDb::new(&catalog);
        (catalog, db)
    }

    #[test]
    fn cold_db_has_nothing_cached() {
        let (_, db) = setup();
        assert_eq!(db.cached_fraction(), 0.0);
    }

    #[test]
    fn id_resolution() {
        let (catalog, db) = setup();
        for (i, f) in catalog.files().iter().enumerate().take(100) {
            assert_eq!(db.index_of(f.id), Some(i as u32));
        }
        assert_eq!(db.index_of(FileId(u128::MAX)), None);
    }

    #[test]
    fn warming_favours_popular_files() {
        let (catalog, mut db) = setup();
        let mut rng = StdRng::seed_from_u64(81);
        db.warm(&catalog, 1.1, &mut rng);
        let mut hot = (0, 0);
        let mut cold = (0, 0);
        for (i, f) in catalog.files().iter().enumerate() {
            let cached = db.state(i as u32).cached;
            if f.class() == PopularityClass::HighlyPopular {
                hot = (hot.0 + cached as u32, hot.1 + 1);
            } else if f.weekly_requests <= 2 {
                cold = (cold.0 + cached as u32, cold.1 + 1);
            }
        }
        let hot_rate = hot.0 as f64 / hot.1 as f64;
        let cold_rate = cold.0 as f64 / cold.1 as f64;
        assert!(hot_rate > 0.97, "hot files nearly always pre-cached: {hot_rate}");
        assert!(cold_rate < 0.70, "rarely requested files mostly cold: {cold_rate}");
    }

    #[test]
    fn state_mutation_round_trips() {
        let (_, mut db) = setup();
        db.state_mut(3).cached = true;
        db.state_mut(3).observed_requests = 5;
        assert!(db.state(3).cached);
        assert_eq!(db.state(3).observed_requests, 5);
    }

    #[test]
    fn popularity_class_passthrough() {
        let (catalog, db) = setup();
        for i in 0..100u32 {
            assert_eq!(db.popularity_class(&catalog, i), catalog.file(i).class());
        }
    }
}
