//! Cloud system constants (§2.1) and replay calibration.

use odx_cache::CacheConfig;
use odx_faults::{FaultsConfig, RetryConfig};
use odx_sim::{SchedulerKind, SimDuration};

/// Configuration of the Xuanfeng-like cloud.
#[derive(Debug, Clone, Copy)]
pub struct CloudConfig {
    /// Workload scale relative to the paper's week (1.0 = 4.08 M tasks).
    /// Capacities below are quoted at scale 1.0 and multiplied by this.
    pub scale: f64,
    /// Total purchased upload bandwidth across the four major ISPs at scale
    /// 1.0: 30 Gbps = 3.75e6 KBps.
    pub upload_total_kbps: f64,
    /// Split of upload capacity across [Unicom, Telecom, Mobile, CERNET];
    /// proportional to their user bases.
    pub upload_split: [f64; 4],
    /// A pre-downloader VM's access bandwidth: 20 Mbps = 2500 KBps.
    pub predownloader_kbps: f64,
    /// Per-fetch application cap: 50 Mbps = 6250 KBps.
    pub fetch_cap_kbps: f64,
    /// Give up a pre-download whose progress stagnates this long.
    pub stagnation_timeout: SimDuration,
    /// Cloud storage pool capacity at scale 1.0: 2 PB = 2e9 MB.
    pub cache_capacity_mb: f64,
    /// Which replacement policy runs the storage pool, and across how many
    /// shards. Defaults to single-shard LRU — the paper's pool model.
    pub cache: CacheConfig,
    /// Popularity pivot of warm-cache coverage: a file with `w` weekly
    /// requests starts the week cached with probability `w / (w + pivot)`
    /// (popular content accumulated in the pool during previous weeks).
    /// Calibrated to the paper's 89 % cache-hit ratio.
    pub warm_cache_pivot: f64,
    /// Minimum grant below which the upload pool rejects a fetch instead of
    /// admitting it at a useless rate (KBps).
    pub admission_floor_kbps: f64,
    /// Probability a fetch is degraded by transient network dynamics — the
    /// paper's unexplained 6.1 % slice of Bottleneck 1.
    pub dynamics_probability: f64,
    /// Failure-probability decay per prior failed attempt on the same file
    /// (seed churn: dead swarms revive between attempts). Defaults to the
    /// shared [`odx_backend::BackendConfig`] value so the week replay and
    /// the one-shot evaluators decay retries identically.
    pub retry_decay: f64,
    /// Ablation: disable the storage pool entirely (the paper's "assume the
    /// cloud storage pool does not exist" counterfactual, §4.1).
    pub cache_enabled: bool,
    /// Ablation: disable privileged-path construction, forcing every fetch
    /// across the ISP barrier.
    pub privileged_paths_enabled: bool,
    /// Which future-event list the replay runs on. A wall-clock knob only:
    /// heap and wheel replays are byte-identical.
    pub scheduler: SchedulerKind,
    /// Fault-injection knobs: compiled into an `odx_faults::FaultPlan` at
    /// replay start. Zero intensity (the default) injects nothing and
    /// consumes no RNG draws.
    pub faults: FaultsConfig,
    /// Retry/backoff knobs for stagnated pre-downloads. Policy `none`
    /// (the default) matches the paper's observed no-retry behaviour.
    pub retry: RetryConfig,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            scale: 1.0,
            upload_total_kbps: 3_750_000.0,
            upload_split: [0.31, 0.46, 0.17, 0.06],
            predownloader_kbps: 2500.0,
            fetch_cap_kbps: 6250.0,
            stagnation_timeout: SimDuration::from_hours(1),
            cache_capacity_mb: 2.0e9,
            cache: CacheConfig::default(),
            warm_cache_pivot: 5.5,
            admission_floor_kbps: 25.0,
            dynamics_probability: 0.14,
            retry_decay: odx_backend::BackendConfig::default().retry_decay,
            cache_enabled: true,
            privileged_paths_enabled: true,
            scheduler: SchedulerKind::default(),
            faults: FaultsConfig::default(),
            retry: RetryConfig::default(),
        }
    }
}

impl CloudConfig {
    /// Config for a replay at the given workload scale.
    pub fn at_scale(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        CloudConfig { scale, ..CloudConfig::default() }
    }

    /// Config for a replay of a scenario at the given workload scale: the
    /// cache and privileged-path ablation flags, the cache policy and
    /// capacity factor, the shared retry decay, and the user-base sweep
    /// (demand growing `demand_factor`× against fixed upload capacity).
    pub fn for_scenario(scale: f64, scenario: &odx_backend::Scenario) -> Self {
        let mut cfg = CloudConfig::at_scale(scale);
        cfg.cache_enabled = scenario.cache_enabled;
        cfg.cache = scenario.cache;
        cfg.cache_capacity_mb *= scenario.cache_capacity_factor;
        cfg.privileged_paths_enabled = scenario.privileged_paths;
        cfg.retry_decay = scenario.backend.retry_decay;
        cfg.upload_total_kbps /= scenario.demand_factor;
        cfg.scheduler = scenario.scheduler;
        cfg.faults = scenario.faults;
        cfg.retry = scenario.retry;
        cfg
    }

    /// Upload capacity at this scale (KBps).
    pub fn scaled_upload_kbps(&self) -> f64 {
        self.upload_total_kbps * self.scale
    }

    /// Cache capacity at this scale (MB).
    pub fn scaled_cache_mb(&self) -> f64 {
        self.cache_capacity_mb * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = CloudConfig::default();
        // 30 Gbps in KBps.
        assert!((odx_net::kbps_to_gbps(c.upload_total_kbps) - 30.0).abs() < 1e-9);
        assert_eq!(c.predownloader_kbps, odx_net::PREDOWNLOADER_KBPS);
        assert_eq!(c.fetch_cap_kbps, odx_net::CLOUD_FETCH_CAP_KBPS);
        assert_eq!(c.stagnation_timeout, SimDuration::from_hours(1));
        // 2 PB in MB.
        assert_eq!(c.cache_capacity_mb, 2.0e9);
        let split: f64 = c.upload_split.iter().sum();
        assert!((split - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling() {
        let c = CloudConfig::at_scale(0.1);
        assert!((c.scaled_upload_kbps() - 375_000.0).abs() < 1e-6);
        assert!((c.scaled_cache_mb() - 2.0e8).abs() < 1e-3);
    }
}
