//! Deprecated home of the pool LRU — the implementation moved to
//! [`odx_cache`], where it is one of several [`odx_cache::CachePolicy`]
//! implementations. This alias keeps existing `odx_cloud::LruCache` callers
//! compiling (with a deprecation nudge) while the replay itself now goes
//! through `CloudConfig::cache` and the policy trait.

/// Byte-budget LRU cache over file keys (moved to [`odx_cache::LruCache`]).
#[deprecated(
    since = "0.1.0",
    note = "the LRU pool moved to the odx-cache crate; use odx_cache::LruCache"
)]
pub type LruCache<K> = odx_cache::LruCache<K>;

#[cfg(test)]
mod tests {
    // Within the defining crate the deprecated alias is warning-free; this
    // pins the re-export's API surface so external callers keep compiling.
    use super::LruCache;

    #[test]
    fn alias_still_behaves_like_the_pool_lru() {
        let mut c = LruCache::new(100.0);
        c.insert("a", 40.0);
        c.insert("b", 40.0);
        c.touch(&"a");
        let evicted = c.insert("c", 40.0);
        assert_eq!(evicted, vec!["b"]);
        assert_eq!(c.keys_mru(), vec!["c", "a"]);
        assert!((c.used_mb() - 80.0).abs() < 1e-9);
        assert_eq!(c.capacity_mb(), 100.0);
        assert!(!c.is_empty());
        assert_eq!(c.len(), 2);
        assert!(c.contains(&"a"));
        assert_eq!(c.remove(&"c"), Some(40.0));
    }
}
