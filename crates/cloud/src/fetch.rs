//! The fetch engine: per-user fetch rate determination (§4.2).

use odx_net::BarrierModel;
use odx_stats::dist::{u01, Dist, LogNormal};
use odx_trace::User;
use rand::Rng;

use crate::{Admission, CloudConfig, UploadPool};

/// The outcome of planning one fetch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchPlan {
    /// Pool admission (rate reserved until the fetch ends).
    pub admission: Admission,
    /// The end-to-end fetch rate the user experiences (KBps); zero when
    /// rejected.
    pub rate_kbps: f64,
    /// Whether the path crossed the ISP barrier.
    pub crossed_barrier: bool,
    /// Whether transient network dynamics degraded this fetch (the paper's
    /// unexplained 6.1 % slice).
    pub dynamics_degraded: bool,
    /// Fraction of the file the user actually fetches. Most fetches run to
    /// completion; view-as-download users abandon some partway (the fetch
    /// trace's "finish/pause time" and partial "acquired file size").
    pub fetched_fraction: f64,
}

/// Plans fetches against the upload pool.
#[derive(Debug, Clone, Copy)]
pub struct FetchModel {
    barrier: BarrierModel,
    fetch_cap_kbps: f64,
    dynamics_probability: f64,
    efficiency: LogNormal,
}

impl FetchModel {
    /// Model from the cloud config.
    pub fn new(cfg: &CloudConfig) -> Self {
        FetchModel {
            barrier: BarrierModel::default(),
            fetch_cap_kbps: cfg.fetch_cap_kbps,
            dynamics_probability: cfg.dynamics_probability,
            // TCP efficiency on the last mile: just below 1 with a small
            // spread.
            efficiency: LogNormal::from_median(0.95, 0.10),
        }
    }

    /// Plan a fetch for `user`, reserving bandwidth in `pool`. The caller
    /// must [`UploadPool::release`] the admission when the fetch completes.
    pub fn plan(&self, user: &User, pool: &mut UploadPool, rng: &mut dyn Rng) -> FetchPlan {
        let efficiency = self.efficiency.sample(rng).clamp(0.3, 1.0);
        let mut desired = (user.access_kbps * efficiency).min(self.fetch_cap_kbps);

        // Transient network dynamics degrade the deliverable rate before
        // admission, so the pool reserves what the flow actually consumes.
        let dynamics_degraded = u01(rng) < self.dynamics_probability;
        if dynamics_degraded {
            desired *= 0.05 + 0.45 * u01(rng);
        }

        // What the flow would get if it has to cross the ISP barrier.
        let cross = desired.min(self.barrier.sample(rng));
        let admission = pool.admit(user.isp, desired, cross);
        let rate = admission.rate_kbps();
        let crossed_barrier = matches!(admission, Admission::CrossIsp { .. });

        // Users abandon fetches partway (the trace's "finish/pause time"),
        // and they abandon *slow* fetches far more often — nobody watches a
        // stalled video to the end.
        let abandon_p = if rate < odx_net::HD_THRESHOLD_KBPS { 0.55 } else { 0.10 };
        let fetched_fraction = if u01(rng) < abandon_p { 0.15 + 0.70 * u01(rng) } else { 1.0 };

        FetchPlan {
            admission,
            rate_kbps: rate,
            crossed_barrier,
            dynamics_degraded: dynamics_degraded && !matches!(admission, Admission::Rejected),
            fetched_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_net::Isp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (FetchModel, UploadPool, StdRng) {
        let cfg = CloudConfig::default();
        (
            FetchModel::new(&cfg),
            UploadPool::new(1.0e6, cfg.upload_split, cfg.admission_floor_kbps),
            StdRng::seed_from_u64(100),
        )
    }

    fn user(isp: Isp, access: f64) -> User {
        User { isp, access_kbps: access, reports_bandwidth: true }
    }

    #[test]
    fn major_isp_fetch_tracks_access_bandwidth() {
        let (m, mut pool, mut rng) = setup();
        let mut rates = Vec::new();
        for _ in 0..2000 {
            let plan = m.plan(&user(Isp::Telecom, 400.0), &mut pool, &mut rng);
            if !plan.dynamics_degraded {
                rates.push(plan.rate_kbps);
            }
            pool.release(plan.admission.server_isp().unwrap(), plan.admission.rate_kbps());
        }
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!((mean - 400.0 * 0.95).abs() < 20.0, "mean {mean}");
        assert!(rates.iter().all(|&r| r <= 400.0));
    }

    #[test]
    fn outside_isp_users_are_barrier_limited() {
        let (m, mut pool, mut rng) = setup();
        let mut below_hd = 0;
        let n = 2000;
        for _ in 0..n {
            let plan = m.plan(&user(Isp::Other, 2000.0), &mut pool, &mut rng);
            assert!(plan.crossed_barrier);
            if plan.rate_kbps < odx_net::HD_THRESHOLD_KBPS {
                below_hd += 1;
            }
            pool.release(plan.admission.server_isp().unwrap(), plan.admission.rate_kbps());
        }
        assert!(
            below_hd as f64 / n as f64 > 0.8,
            "barrier users mostly below HD threshold: {below_hd}/{n}"
        );
    }

    #[test]
    fn fetch_rate_never_exceeds_cloud_cap() {
        let (m, mut pool, mut rng) = setup();
        for _ in 0..500 {
            let plan = m.plan(&user(Isp::Unicom, 12_500.0), &mut pool, &mut rng);
            assert!(plan.rate_kbps <= odx_net::CLOUD_FETCH_CAP_KBPS);
            pool.release(plan.admission.server_isp().unwrap(), plan.admission.rate_kbps());
        }
    }

    #[test]
    fn dynamics_hits_a_small_fraction() {
        let (m, mut pool, mut rng) = setup();
        let n = 20_000;
        let mut hit = 0;
        for _ in 0..n {
            let plan = m.plan(&user(Isp::Mobile, 400.0), &mut pool, &mut rng);
            if plan.dynamics_degraded {
                hit += 1;
                assert!(plan.rate_kbps < 400.0 * 0.51);
            }
            pool.release(plan.admission.server_isp().unwrap(), plan.admission.rate_kbps());
        }
        let frac = hit as f64 / n as f64;
        assert!((frac - 0.14).abs() < 0.015, "{frac}");
    }

    #[test]
    fn exhausted_pool_rejects() {
        let cfg = CloudConfig::default();
        let m = FetchModel::new(&cfg);
        let mut pool = UploadPool::new(100.0, cfg.upload_split, cfg.admission_floor_kbps);
        let mut rng = StdRng::seed_from_u64(101);
        // Saturate.
        for _ in 0..50 {
            let _ = m.plan(&user(Isp::Telecom, 6000.0), &mut pool, &mut rng);
        }
        let plan = m.plan(&user(Isp::Telecom, 400.0), &mut pool, &mut rng);
        assert_eq!(plan.admission, Admission::Rejected);
        assert_eq!(plan.rate_kbps, 0.0);
    }
}
