//! The cloud's [`ProxyBackend`]: per-request mechanism shared between the
//! event-driven week replay and the one-shot evaluators.
//!
//! [`CloudWeekBackend`] owns the VM pre-downloaders, the per-ISP upload
//! pool and the two RNG streams the replay draws from, plus the upload
//! admission telemetry. The DES in [`crate::XuanfengCloud`] calls the phase
//! methods ([`CloudWeekBackend::predownload`], [`CloudWeekBackend::plan_fetch`],
//! [`CloudWeekBackend::release`]) at its event sites so the simulated week
//! and the trait's one-shot [`ProxyBackend::execute`] exercise the exact
//! same mechanism code.

use odx_backend::{BackendMetrics, ExecCtx, Outcome, ProxyBackend, ProxyRequest};
use odx_net::Isp;
use odx_p2p::{HttpFtpModel, SwarmModel};
use odx_sim::{RngFactory, SimRng};
use odx_stats::dist::u01;
use odx_telemetry::{Counter, Registry};
use odx_trace::{FileMeta, User};

use crate::{CloudConfig, FetchModel, FetchPlan, PredownloadModel, PredownloadOutcome, UploadPool};

/// Upload-pool admission telemetry (`cloud.upload.*`): one admit counter per
/// major ISP, plus cross-ISP and rejection counts.
struct UploadMetrics {
    admit: [Counter; 4],
    cross_isp: Counter,
    reject: Counter,
}

impl UploadMetrics {
    fn new(registry: &Registry) -> UploadMetrics {
        let admit =
            |isp: Isp| registry.counter(&format!("cloud.upload.admit.{}", isp.lowercase_name()));
        UploadMetrics {
            admit: [
                admit(Isp::Unicom),
                admit(Isp::Telecom),
                admit(Isp::Mobile),
                admit(Isp::Cernet),
            ],
            cross_isp: registry.counter("cloud.upload.cross_isp"),
            reject: registry.counter("cloud.upload.reject"),
        }
    }
}

/// The cloud mechanism behind the week replay: pre-download VMs, the per-ISP
/// upload pool with privileged-path selection, and the retry-decay history.
pub struct CloudWeekBackend {
    predl: PredownloadModel,
    fetch: FetchModel,
    upload: UploadPool,
    rng_source: SimRng,
    rng_fetch: SimRng,
    privileged_paths: bool,
    retry_decay: f64,
    upload_metrics: UploadMetrics,
    metrics: BackendMetrics,
}

impl CloudWeekBackend {
    /// Build the backend from the cloud config, drawing its `cloud-source`
    /// and `cloud-fetch` streams from `rngs`. Metric handles point at the
    /// process-wide registry until [`CloudWeekBackend::rebind_metrics`].
    pub fn new(cfg: &CloudConfig, rngs: &RngFactory) -> Self {
        CloudWeekBackend {
            predl: PredownloadModel::new(SwarmModel::default(), HttpFtpModel::default(), cfg),
            fetch: FetchModel::new(cfg),
            upload: UploadPool::new(
                cfg.scaled_upload_kbps(),
                cfg.upload_split,
                cfg.admission_floor_kbps,
            ),
            rng_source: rngs.stream("cloud-source"),
            rng_fetch: rngs.stream("cloud-fetch"),
            privileged_paths: cfg.privileged_paths_enabled,
            retry_decay: cfg.retry_decay,
            upload_metrics: UploadMetrics::new(odx_telemetry::global()),
            metrics: BackendMetrics::global("cloud"),
        }
    }

    /// Re-resolve every metric handle against `registry` (fresh-registry
    /// replays need byte-identical snapshots across same-seed runs).
    pub fn rebind_metrics(&mut self, registry: &Registry) {
        self.upload_metrics = UploadMetrics::new(registry);
        self.metrics = BackendMetrics::new(registry, "cloud");
    }

    /// One VM pre-download attempt for `file` with `prior` failed attempts
    /// on record, drawn from the `cloud-source` stream.
    pub fn predownload(&mut self, file: &FileMeta, prior: u32) -> PredownloadOutcome {
        self.predl.attempt_with_history(
            file,
            f64::INFINITY,
            prior,
            self.retry_decay,
            &mut self.rng_source,
        )
    }

    /// Plan a fetch for `user` against the upload pool, drawn from the
    /// `cloud-fetch` stream. Applies the privileged-path ablation (without
    /// privileged paths every flow plans as an outside-ISP user), records
    /// admission telemetry, and reserves pool bandwidth the caller must
    /// [`CloudWeekBackend::release`] when the fetch ends. A rejected plan is
    /// recorded as a failed backend request here; admitted plans are
    /// recorded on completion via [`CloudWeekBackend::note_fetched`].
    pub fn plan_fetch(&mut self, user: &User) -> FetchPlan {
        let plan_isp = if self.privileged_paths { user.isp } else { Isp::Other };
        let plan_user = User { isp: plan_isp, ..*user };
        let plan = self.fetch.plan(&plan_user, &mut self.upload, &mut self.rng_fetch);
        match plan.admission.server_isp() {
            Some(isp) => {
                if let Some(i) = isp.major_index() {
                    self.upload_metrics.admit[i].inc();
                }
                if plan.crossed_barrier {
                    self.upload_metrics.cross_isp.inc();
                }
            }
            None => {
                self.upload_metrics.reject.inc();
                self.metrics.record(&Outcome::failure(None));
            }
        }
        plan
    }

    /// Release an admitted fetch's pool reservation.
    pub fn release(&mut self, server_isp: Isp, reserved_kbps: f64) {
        self.upload.release(server_isp, reserved_kbps);
    }

    /// Record one completed fetch into the `backend.cloud.*` bundle.
    pub fn note_fetched(&mut self, rate_kbps: f64, acquired_mb: f64) {
        let mut out = Outcome::success(rate_kbps, acquired_mb);
        out.cloud_upload_mb = acquired_mb;
        self.metrics.record(&out);
    }

    /// Peak-to-average factor of a pre-download transfer (drawn from the
    /// `cloud-source` stream, matching the replay's draw order).
    pub fn predl_peak_factor(&mut self) -> f64 {
        1.1 + 0.3 * u01(&mut self.rng_source)
    }

    /// Peak-to-average factor of a fetch (drawn from the `cloud-fetch`
    /// stream, matching the replay's draw order).
    pub fn fetch_peak_factor(&mut self) -> f64 {
        1.05 + 0.25 * u01(&mut self.rng_fetch)
    }
}

impl ProxyBackend for CloudWeekBackend {
    fn name(&self) -> &'static str {
        "cloud-week"
    }

    /// One-shot composition of the two phases for a single request: a
    /// pre-download when the file is not yet cached (updating the shared
    /// retry history), then a fetch planned against the upload pool. All
    /// randomness comes from `ctx.rng`; the pool reservation is released
    /// immediately since a one-shot evaluation has no concurrent flows.
    fn execute(&mut self, req: &ProxyRequest, ctx: &mut ExecCtx) -> Outcome {
        let meta = req.file_meta();
        let mut pd_traffic = 0.0;
        let mut pd_duration = odx_sim::SimDuration::ZERO;
        if !req.cached_in_cloud {
            let prior = ctx.cloud.failed_attempts(req.file_index);
            let attempt = self.predl.attempt_with_history(
                &meta,
                f64::INFINITY,
                prior,
                self.retry_decay,
                ctx.rng,
            );
            match attempt {
                PredownloadOutcome::Failure { cause, duration, traffic_mb } => {
                    ctx.cloud.note_failure(req.file_index);
                    let mut out = Outcome::failure(Some(cause));
                    out.duration = duration;
                    out.source_traffic_mb = traffic_mb;
                    self.metrics.record(&out);
                    return out;
                }
                PredownloadOutcome::Success { duration, traffic_mb, .. } => {
                    ctx.cloud.mark_cached(req.file_index);
                    pd_traffic = traffic_mb;
                    pd_duration = duration;
                }
            }
        }

        let plan_isp = if self.privileged_paths { req.isp } else { Isp::Other };
        let user = User { isp: plan_isp, access_kbps: req.access_kbps, reports_bandwidth: true };
        let plan = self.fetch.plan(&user, &mut self.upload, ctx.rng);
        match plan.admission.server_isp() {
            Some(isp) => {
                if let Some(i) = isp.major_index() {
                    self.upload_metrics.admit[i].inc();
                }
                if plan.crossed_barrier {
                    self.upload_metrics.cross_isp.inc();
                }
                self.upload.release(isp, plan.admission.rate_kbps());
            }
            None => self.upload_metrics.reject.inc(),
        }
        if plan.rate_kbps <= 0.0 {
            let mut out = Outcome::failure(None);
            out.duration = pd_duration;
            out.source_traffic_mb = pd_traffic;
            self.metrics.record(&out);
            return out;
        }
        let acquired_mb = meta.size_mb * plan.fetched_fraction;
        let mut out = Outcome::success(plan.rate_kbps, acquired_mb);
        out.duration = out.duration + pd_duration;
        out.cloud_upload_mb = acquired_mb;
        out.source_traffic_mb = pd_traffic;
        self.metrics.record(&out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_backend::CloudContentState;
    use odx_trace::{FileType, Protocol, SampledRequest};

    fn request(cached: bool, w: u32) -> ProxyRequest {
        ProxyRequest::from_sampled(
            &SampledRequest {
                isp: Isp::Telecom,
                access_kbps: 800.0,
                file_type: FileType::Video,
                size_mb: 80.0,
                protocol: Protocol::Http,
                weekly_requests: w,
                file_index: 7,
            },
            cached,
            None,
        )
    }

    #[test]
    fn one_shot_execute_fills_cloud_leg() {
        let rngs = RngFactory::new(42);
        let mut backend = CloudWeekBackend::new(&CloudConfig::at_scale(0.01), &rngs);
        let mut cloud = CloudContentState::new();
        let mut rng = rngs.stream("test");
        let mut successes = 0;
        for _ in 0..200 {
            let mut ctx = ExecCtx { rng: &mut rng, cloud: &mut cloud };
            let out = backend.execute(&request(true, 5000), &mut ctx);
            if out.success {
                successes += 1;
                assert!(out.cloud_upload_mb > 0.0, "cloud fetches upload from the pool");
                assert_eq!(out.source_traffic_mb, 0.0, "cache hit pulls nothing from sources");
                assert!(out.rate_kbps <= 6250.0);
            }
        }
        assert!(successes > 150, "pool-cached fetches mostly succeed: {successes}");
    }

    #[test]
    fn uncached_requests_pay_the_predownload() {
        let rngs = RngFactory::new(43);
        let mut backend = CloudWeekBackend::new(&CloudConfig::at_scale(0.01), &rngs);
        let mut cloud = CloudContentState::new();
        let mut rng = rngs.stream("test");
        let mut ctx = ExecCtx { rng: &mut rng, cloud: &mut cloud };
        let out = backend.execute(&request(false, 5000), &mut ctx);
        if out.success {
            assert!(out.source_traffic_mb > 0.0, "miss must pull the file from the source");
            assert!(cloud.warm_cached(7, 5000, 2.5, &mut rng), "success marks the file cached");
        } else {
            assert_eq!(cloud.failed_attempts(7), 1, "failure feeds the retry history");
        }
    }

    #[test]
    fn ablating_privileged_paths_forces_the_barrier() {
        let rngs = RngFactory::new(44);
        let mut cfg = CloudConfig::at_scale(0.01);
        cfg.privileged_paths_enabled = false;
        let mut backend = CloudWeekBackend::new(&cfg, &rngs);
        let user = User { isp: Isp::Telecom, access_kbps: 2000.0, reports_bandwidth: true };
        let mut crossed = 0;
        for _ in 0..100 {
            let plan = backend.plan_fetch(&user);
            if plan.crossed_barrier {
                crossed += 1;
            }
            if let Some(isp) = plan.admission.server_isp() {
                backend.release(isp, plan.admission.rate_kbps());
            }
        }
        assert_eq!(crossed, 100, "without privileged paths every flow crosses the barrier");
    }

    #[test]
    fn rebind_metrics_points_at_the_fresh_registry() {
        let rngs = RngFactory::new(45);
        let mut backend = CloudWeekBackend::new(&CloudConfig::at_scale(0.01), &rngs);
        let registry = Registry::new();
        backend.rebind_metrics(&registry);
        backend.note_fetched(500.0, 10.0);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["backend.cloud.requests"], 1);
        assert_eq!(snap.counters["backend.cloud.success"], 1);
    }
}
