//! The pre-downloader VM pool (§2.1 / §4.1).

use odx_net::OverheadModel;
use odx_p2p::{FailureCause, HttpFtpModel, SourceOutcome, SwarmModel};
use odx_sim::SimDuration;
use odx_stats::dist::u01;
use odx_trace::FileMeta;
use rand::Rng;

use crate::CloudConfig;

/// Result of one pre-download attempt by a cloud VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredownloadOutcome {
    /// The file downloads at `rate_kbps`, taking `duration` and consuming
    /// `traffic_mb` of network traffic (payload + protocol overhead).
    Success {
        /// Average downloading rate (KBps).
        rate_kbps: f64,
        /// Wall-clock duration of the pre-download.
        duration: SimDuration,
        /// Total traffic consumed (MB).
        traffic_mb: f64,
    },
    /// The attempt stagnates and is abandoned after `duration` (stagnation
    /// timeout plus whatever partial progress preceded it).
    Failure {
        /// Why it failed.
        cause: FailureCause,
        /// Time from start until the service gives up.
        duration: SimDuration,
        /// Partial traffic wasted before giving up (MB).
        traffic_mb: f64,
    },
}

impl PredownloadOutcome {
    /// Whether the attempt succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, PredownloadOutcome::Success { .. })
    }

    /// The attempt's duration.
    pub fn duration(&self) -> SimDuration {
        match self {
            PredownloadOutcome::Success { duration, .. }
            | PredownloadOutcome::Failure { duration, .. } => *duration,
        }
    }

    /// Traffic consumed (MB).
    pub fn traffic_mb(&self) -> f64 {
        match self {
            PredownloadOutcome::Success { traffic_mb, .. }
            | PredownloadOutcome::Failure { traffic_mb, .. } => *traffic_mb,
        }
    }
}

/// The VM pre-downloader model: source attempt capped by the VM's 20 Mbps
/// access link, with the production stagnation-timeout failure rule.
#[derive(Debug, Clone, Copy)]
pub struct PredownloadModel {
    swarm: SwarmModel,
    http: HttpFtpModel,
    overhead: OverheadModel,
    vm_kbps: f64,
    timeout: SimDuration,
}

impl PredownloadModel {
    /// Model using the given source models and cloud config.
    pub fn new(swarm: SwarmModel, http: HttpFtpModel, cfg: &CloudConfig) -> Self {
        PredownloadModel {
            swarm,
            http,
            overhead: OverheadModel::default(),
            vm_kbps: cfg.predownloader_kbps,
            timeout: cfg.stagnation_timeout,
        }
    }

    /// Attempt to pre-download `file`. `rate_cap_kbps` further restricts the
    /// download rate (smart APs pass the benchmark restriction here; the
    /// cloud passes infinity).
    pub fn attempt(
        &self,
        file: &FileMeta,
        rate_cap_kbps: f64,
        rng: &mut dyn Rng,
    ) -> PredownloadOutcome {
        self.attempt_with_history(file, rate_cap_kbps, 0, 1.0, rng)
    }

    /// Retry-aware attempt: the cloud re-tries a file on every new request
    /// for it, and each prior failure decays the failure probability by
    /// `retry_decay` (seed churn / server recovery).
    pub fn attempt_with_history(
        &self,
        file: &FileMeta,
        rate_cap_kbps: f64,
        prior_failures: u32,
        retry_decay: f64,
        rng: &mut dyn Rng,
    ) -> PredownloadOutcome {
        let w = f64::from(file.weekly_requests);
        let source = if file.protocol.is_p2p() {
            self.swarm.proxy_attempt_decayed(w, prior_failures, retry_decay, rng)
        } else {
            self.http.attempt_decayed(w, prior_failures, retry_decay, rng)
        };
        self.resolve(file, source, rate_cap_kbps, rng)
    }

    /// Turn a source outcome into timing and traffic. Exposed so the smart-AP
    /// engine can share the exact same resolution semantics.
    pub fn resolve(
        &self,
        file: &FileMeta,
        source: SourceOutcome,
        rate_cap_kbps: f64,
        rng: &mut dyn Rng,
    ) -> PredownloadOutcome {
        match source {
            SourceOutcome::Serving { rate_kbps } => {
                let rate = rate_kbps.min(self.vm_kbps).min(rate_cap_kbps).max(0.01);
                let secs = odx_net::transfer_secs(file.size_mb, rate);
                // A transfer that cannot complete within a week is
                // indistinguishable from stagnation: the service prunes it
                // (the paper's pre-download delays max out around 10^4
                // minutes — one measurement week).
                if secs > 7.0 * 86_400.0 {
                    let partial_secs = u01(rng) * 3600.0;
                    return PredownloadOutcome::Failure {
                        cause: if file.protocol.is_p2p() {
                            FailureCause::InsufficientSeeds
                        } else {
                            FailureCause::PoorConnection
                        },
                        duration: self.timeout + SimDuration::from_secs_f64(partial_secs),
                        traffic_mb: file.size_mb * u01(rng) * 0.15,
                    };
                }
                let factor = if file.protocol.is_p2p() {
                    self.overhead.p2p_factor(rng)
                } else {
                    self.overhead.http_ftp_factor(rng)
                };
                PredownloadOutcome::Success {
                    rate_kbps: rate,
                    duration: SimDuration::from_secs_f64(secs),
                    traffic_mb: file.size_mb * factor,
                }
            }
            SourceOutcome::Failed { cause } => {
                // The downloader makes partial progress, stalls, and the
                // service times it out an hour after the last byte moved.
                let partial_secs = u01(rng) * 3600.0;
                let wasted_mb = file.size_mb * u01(rng) * 0.15;
                PredownloadOutcome::Failure {
                    cause,
                    duration: self.timeout + SimDuration::from_secs_f64(partial_secs),
                    traffic_mb: wasted_mb,
                }
            }
        }
    }

    /// The stagnation timeout in force.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_trace::{FileId, FileType, Protocol};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> PredownloadModel {
        PredownloadModel::new(
            SwarmModel::default(),
            HttpFtpModel::default(),
            &CloudConfig::default(),
        )
    }

    fn file(size_mb: f64, protocol: Protocol, w: u32) -> FileMeta {
        FileMeta { id: FileId(1), size_mb, ftype: FileType::Video, protocol, weekly_requests: w }
    }

    #[test]
    fn success_timing_is_size_over_rate() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(90);
        let f = file(100.0, Protocol::Http, 500);
        loop {
            if let PredownloadOutcome::Success { rate_kbps, duration, .. } =
                m.attempt(&f, f64::INFINITY, &mut rng)
            {
                let expect = 100.0 * 1000.0 / rate_kbps;
                assert!((duration.as_secs_f64() - expect).abs() < 1.0);
                break;
            }
        }
    }

    #[test]
    fn rate_never_exceeds_vm_or_cap() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(91);
        for _ in 0..2000 {
            if let PredownloadOutcome::Success { rate_kbps, .. } =
                m.attempt(&file(10.0, Protocol::BitTorrent, 50_000), 300.0, &mut rng)
            {
                assert!(rate_kbps <= 300.0);
            }
        }
    }

    #[test]
    fn failures_take_at_least_the_stagnation_timeout() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(92);
        let f = file(700.0, Protocol::BitTorrent, 1);
        let mut seen_failure = false;
        for _ in 0..200 {
            if let PredownloadOutcome::Failure { duration, .. } =
                m.attempt(&f, f64::INFINITY, &mut rng)
            {
                assert!(duration >= SimDuration::from_hours(1));
                assert!(duration <= SimDuration::from_hours(2));
                seen_failure = true;
            }
        }
        assert!(seen_failure, "unpopular torrents should fail often");
    }

    #[test]
    fn p2p_traffic_overhead_is_large() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(93);
        let f = file(100.0, Protocol::BitTorrent, 10_000);
        let mut total_traffic = 0.0;
        let mut successes = 0;
        for _ in 0..2000 {
            if let PredownloadOutcome::Success { traffic_mb, .. } =
                m.attempt(&f, f64::INFINITY, &mut rng)
            {
                total_traffic += traffic_mb;
                successes += 1;
            }
        }
        let mean_factor = total_traffic / successes as f64 / 100.0;
        // §4.1: overall pre-downloading traffic ≈ 196 % of the file size.
        assert!((mean_factor - 1.96).abs() < 0.05, "mean factor {mean_factor}");
    }

    #[test]
    fn http_traffic_overhead_is_small() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(94);
        let f = file(100.0, Protocol::Ftp, 10_000);
        for _ in 0..500 {
            if let PredownloadOutcome::Success { traffic_mb, .. } =
                m.attempt(&f, f64::INFINITY, &mut rng)
            {
                assert!((107.0..=110.0).contains(&traffic_mb), "{traffic_mb}");
            }
        }
    }

    #[test]
    fn failure_causes_follow_protocol() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(95);
        for _ in 0..500 {
            if let PredownloadOutcome::Failure { cause, .. } =
                m.attempt(&file(1.0, Protocol::BitTorrent, 1), f64::INFINITY, &mut rng)
            {
                assert_eq!(cause, FailureCause::InsufficientSeeds);
            }
            if let PredownloadOutcome::Failure { cause, .. } =
                m.attempt(&file(1.0, Protocol::Http, 1), f64::INFINITY, &mut rng)
            {
                assert_eq!(cause, FailureCause::PoorConnection);
            }
        }
    }
}
