//! Event-driven replay of the measurement week on the Xuanfeng model.
//!
//! Drives the full pipeline of Figure 1 for every request in a workload:
//! arrival → cache lookup → (pre-download | instant hit) → fetch admission →
//! fetch completion, producing the per-request pre-downloading and fetching
//! traces plus the 5-minute upload-burden series of Figure 11.

use odx_faults::{FaultDomain, FaultKind, FaultPlan, FaultWindow, RetryPolicy};
use odx_net::{Isp, HD_THRESHOLD_KBPS};
use odx_p2p::FailureCause;
use odx_sim::{
    ArrivalSource, Ctx, RngFactory, Scheduler, SimDuration, SimRng, SimTime, Simulation, World,
};
use odx_stats::dist::u01;
use odx_stats::{BinnedSeries, Ecdf};
use odx_telemetry::{
    Counter, Gauge, Histogram, HistogramHandle, Lifecycle, LifecycleReport, Registry,
    SeriesRecorder, Stage, TaskEnd, TraceConfig,
};
use odx_trace::records::{FetchRecord, PredownloadRecord};
use odx_trace::{Catalog, PopularityClass, Population, Request, Workload};

use odx_cache::InstrumentedCache;

use crate::{CloudConfig, CloudWeekBackend, ContentDb, PredownloadOutcome};

/// End-to-end view of one completed offline-downloading task (§4.3): total
/// delay is pre-downloading delay plus fetching delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndToEnd {
    /// File size (MB).
    pub size_mb: f64,
    /// Pre-downloading delay (zero on cache hits).
    pub pd_delay: SimDuration,
    /// Fetching delay.
    pub fetch_delay: SimDuration,
}

impl EndToEnd {
    /// End-to-end delay.
    pub fn delay(&self) -> SimDuration {
        self.pd_delay + self.fetch_delay
    }

    /// End-to-end speed (KBps): size over total delay.
    pub fn speed_kbps(&self) -> f64 {
        let secs = self.delay().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.size_mb * 1000.0 / secs
        }
    }
}

/// Aggregate counters of the replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Requests processed.
    pub requests: u64,
    /// Requests satisfied directly from the pool (or an in-flight
    /// pre-download another user started).
    pub cache_hits: u64,
    /// Requests whose pre-download failed.
    pub predownload_failures: u64,
    /// Failures by cause: [insufficient seeds, poor connection, system bug].
    pub failures_by_cause: [u64; 3],
    /// Fetch requests rejected by the upload pool.
    pub rejected_fetches: u64,
    /// Fetches completed (admitted and finished).
    pub completed_fetches: u64,
    /// Fetches below the 125 KBps HD threshold (including rejected).
    pub impeded_fetches: u64,
    /// Impeded fetches crossing the ISP barrier.
    pub impeded_barrier: u64,
    /// Impeded fetches whose user access link is below the threshold.
    pub impeded_low_access: u64,
    /// Impeded fetches degraded by transient dynamics.
    pub impeded_dynamics: u64,
    /// Cloud-side pre-download traffic (MB).
    pub predownload_traffic_mb: f64,
    /// Payload bytes pre-downloaded (MB).
    pub predownload_payload_mb: f64,
    /// Injected fault windows that opened during the replay.
    pub fault_windows: u64,
    /// Pre-downloads forced to stagnate by a cloud outage window.
    pub fault_forced_failures: u64,
    /// Pre-downloads slowed by a cloud brownout window.
    pub fault_slowed_predownloads: u64,
    /// Fetches degraded by a net fault window.
    pub fault_degraded_fetches: u64,
    /// Stagnated pre-downloads re-dispatched by the retry policy.
    pub retry_attempts: u64,
    /// Requests rescued by a retry (waiters of a task that succeeded
    /// after at least one re-dispatch).
    pub retry_rescued: u64,
    /// Tasks whose retry budget ran out (they failed their waiters).
    pub retry_exhausted: u64,
}

/// Everything the week replay produces.
#[derive(Debug)]
pub struct WeekReport {
    /// One record per request (cache hits included with zero delay).
    pub predownloads: Vec<PredownloadRecord>,
    /// One record per attempted fetch (rejected ones have zero speed).
    pub fetches: Vec<FetchRecord>,
    /// End-to-end view of tasks that completed both phases.
    pub end_to_end: Vec<EndToEnd>,
    /// Cloud upload burden (KBps) in 5-minute bins — Fig 11's upper curve.
    pub burden_kbps: BinnedSeries,
    /// Burden attributable to highly popular files — Fig 11's lower curve.
    pub burden_hot_kbps: BinnedSeries,
    /// Aggregate counters.
    pub counters: Counters,
    /// Per-popularity failure ratio bins for Fig 10: `(popularity,
    /// failure_ratio)` per weekly-request-count bucket.
    pub failure_by_popularity: Vec<(f64, f64)>,
}

impl WeekReport {
    /// Cache-hit ratio over all requests (§2.1: 89 %).
    pub fn hit_ratio(&self) -> f64 {
        self.counters.cache_hits as f64 / self.counters.requests.max(1) as f64
    }

    /// Per-request pre-download failure ratio (§4.1: 8.7 %).
    pub fn failure_ratio(&self) -> f64 {
        self.counters.predownload_failures as f64 / self.counters.requests.max(1) as f64
    }

    /// Fraction of fetch attempts rejected (§4.2: 1.5 %).
    pub fn rejection_ratio(&self) -> f64 {
        let attempts = self.fetches.len().max(1);
        self.counters.rejected_fetches as f64 / attempts as f64
    }

    /// Fraction of fetches below the HD threshold (§4.2: 28 %).
    pub fn impeded_ratio(&self) -> f64 {
        let attempts = self.fetches.len().max(1);
        self.counters.impeded_fetches as f64 / attempts as f64
    }

    /// Pre-download speed ECDF over cache misses (failures contribute ~0),
    /// the Fig 8 upper curve.
    pub fn predownload_speed_ecdf(&self) -> Ecdf {
        Ecdf::new(self.predownloads.iter().filter(|r| !r.cache_hit).map(|r| r.avg_kbps).collect())
    }

    /// Pre-download delay ECDF over cache misses (minutes), Fig 9's lower
    /// curve.
    pub fn predownload_delay_ecdf(&self) -> Ecdf {
        Ecdf::new(
            self.predownloads
                .iter()
                .filter(|r| !r.cache_hit)
                .map(|r| r.delay().as_mins_f64())
                .collect(),
        )
    }

    /// Fetch speed ECDF including rejected fetches at 0 KBps, Fig 8's lower
    /// curve.
    pub fn fetch_speed_ecdf(&self) -> Ecdf {
        Ecdf::new(self.fetches.iter().map(|r| r.avg_kbps).collect())
    }

    /// Fetch delay ECDF (minutes) over completed fetches, Fig 9's upper
    /// curve.
    pub fn fetch_delay_ecdf(&self) -> Ecdf {
        Ecdf::new(
            self.fetches.iter().filter(|r| !r.rejected).map(|r| r.delay().as_mins_f64()).collect(),
        )
    }

    /// End-to-end speed ECDF (KBps).
    pub fn end_to_end_speed_ecdf(&self) -> Ecdf {
        Ecdf::new(self.end_to_end.iter().map(EndToEnd::speed_kbps).collect())
    }

    /// End-to-end delay ECDF (minutes).
    pub fn end_to_end_delay_ecdf(&self) -> Ecdf {
        Ecdf::new(self.end_to_end.iter().map(|e| e.delay().as_mins_f64()).collect())
    }

    /// Overall pre-download traffic divided by payload (§4.1: ≈ 196 % for
    /// the P2P-dominated mix).
    pub fn traffic_overhead_factor(&self) -> f64 {
        self.counters.predownload_traffic_mb / self.counters.predownload_payload_mb.max(1e-9)
    }

    /// Peak burden in Gbps (Fig 11: > 30 on day 7).
    pub fn peak_burden_gbps(&self) -> f64 {
        odx_net::kbps_to_gbps(self.burden_kbps.peak())
    }

    /// Mean fraction of the burden spent on highly popular files (§4.2:
    /// ≈ 40 %).
    pub fn hot_burden_fraction(&self) -> f64 {
        if self.burden_kbps.total_amount() <= 0.0 {
            return 0.0;
        }
        self.burden_hot_kbps.total_amount() / self.burden_kbps.total_amount()
    }
}

/// Event alphabet of the cloud replay (public because `World::Event`
/// appears in the trait implementation; construct via the replay API).
pub enum Ev {
    /// A request arrives (index into the workload).
    Arrive(u32),
    /// A pre-download finishes (success or give-up) for a file index.
    PredlDone {
        /// Catalog index.
        file: u32,
    },
    /// A user starts fetching (request index).
    FetchBegin {
        /// Workload request index.
        req: u32,
    },
    /// A fetch completes and its reservation is released.
    FetchEnd {
        /// Workload request index.
        req: u32,
        /// Pool that served the flow.
        server_isp: Option<Isp>,
        /// Bandwidth reserved in that pool (KBps).
        reserved_kbps: f64,
        /// User-visible fetch rate (KBps).
        rate_kbps: f64,
        /// When the fetch began.
        began: SimTime,
    },
    /// An injected fault window opens (scheduled up front from the
    /// compiled plan; purely observational — active-window queries go
    /// through the plan, so the handler only counts and the event's
    /// label stamps the window into the flight-recorder ring).
    FaultWindow {
        /// What the window injects (carries the `'static` label).
        kind: FaultKind,
    },
    /// A stagnated pre-download's backoff expires: re-dispatch it for
    /// the waiters still parked on the file.
    RetryPredl {
        /// Catalog index.
        file: u32,
    },
}

/// Sentinel terminating the per-file waiter lists in the task arena.
const NO_WAITER: u32 = u32::MAX;

/// How many arrivals [`ArrivalChunks`] schedules per injection. Small
/// enough that the future-event list holds one chunk plus in-flight
/// follow-ups instead of the whole 4 M-request week, large enough that
/// chunk-boundary bookkeeping is noise.
const ARRIVAL_CHUNK: usize = 65_536;

/// Streams the workload's arrivals into the scheduler chunk by chunk.
///
/// Arrivals keep the sequence numbers `0..N` they would have drawn under
/// eager up-front scheduling ([`Simulation::reserve_seqs`] moves follow-up
/// seqs past `N`), and [`Simulation::run_streamed`] injects a chunk before
/// any event at or past its start time fires — so the replay's pop order
/// (and therefore every export) is byte-identical to the eager scheme.
struct ArrivalChunks<'a> {
    requests: &'a [Request],
    next: usize,
}

impl ArrivalSource<Ev> for ArrivalChunks<'_> {
    fn peek(&mut self) -> Option<SimTime> {
        self.requests.get(self.next).map(|r| r.at)
    }

    fn inject(&mut self, sched: &mut Scheduler<Ev>) {
        let end = (self.next + ARRIVAL_CHUNK).min(self.requests.len());
        for i in self.next..end {
            sched.schedule_with_seq(self.requests[i].at, i as u64, Ev::Arrive(i as u32));
        }
        self.next = end;
    }
}

/// Cached telemetry handles for the cloud replay. Handles are resolved
/// once at world construction so the per-event cost is an atomic add,
/// not a name lookup.
struct CloudMetrics {
    requests: Counter,
    cache_hit: Counter,
    cache_miss: Counter,
    dedup_joined: Counter,
    predownload_success: Counter,
    predownload_stagnation: Counter,
    failures_by_cause: [Counter; 3],
    fetch_completed: Counter,
    fetch_impeded: Counter,
    fault_window: Counter,
    fault_predownload_forced: Counter,
    fault_predownload_slowed: Counter,
    fault_fetch_degraded: Counter,
    retry_attempt: Counter,
    retry_rescued: Counter,
    retry_exhausted: Counter,
    fetch_rate_kbps: HistogramHandle,
    predownload_delay_ms: HistogramHandle,
    // Headline ratio gauges, also refreshed at every series sample so
    // mid-run curves show the pool warming (the paper's Fig-shaped
    // evolution), not just the end-of-week value.
    hit_ratio: Gauge,
    failure_ratio: Gauge,
    rejection_ratio: Gauge,
    impeded_ratio: Gauge,
}

/// Hot-path mirrors of the registry metrics: plain integers and local
/// histograms bumped by the event handler and flushed to the shared
/// handles once per replay, so the per-event cost is an add — no `Arc`
/// chase, no atomic RMW, no mutex. The flush is exact (counter totals
/// and the integral histogram merge), so the final snapshot is
/// byte-identical to per-event recording.
#[derive(Default)]
struct HotMetrics {
    requests: u64,
    cache_hit: u64,
    cache_miss: u64,
    dedup_joined: u64,
    predownload_success: u64,
    predownload_stagnation: u64,
    failures_by_cause: [u64; 3],
    fetch_completed: u64,
    fetch_impeded: u64,
    fault_window: u64,
    fault_predownload_forced: u64,
    fault_predownload_slowed: u64,
    fault_fetch_degraded: u64,
    retry_attempt: u64,
    retry_rescued: u64,
    retry_exhausted: u64,
    fetch_rate_kbps: Histogram,
    predownload_delay_ms: Histogram,
}

impl CloudMetrics {
    fn new(registry: &Registry) -> CloudMetrics {
        CloudMetrics {
            requests: registry.counter("cloud.requests"),
            cache_hit: registry.counter("cloud.cache.hit"),
            cache_miss: registry.counter("cloud.cache.miss"),
            dedup_joined: registry.counter("cloud.dedup.joined"),
            predownload_success: registry.counter("cloud.predownload.success"),
            predownload_stagnation: registry.counter("cloud.predownload.stagnation"),
            failures_by_cause: [
                registry.counter("cloud.predownload.fail.seeds"),
                registry.counter("cloud.predownload.fail.connection"),
                registry.counter("cloud.predownload.fail.bug"),
            ],
            fetch_completed: registry.counter("cloud.fetch.completed"),
            fetch_impeded: registry.counter("cloud.fetch.impeded"),
            fault_window: registry.counter("cloud.fault.window"),
            fault_predownload_forced: registry.counter("cloud.fault.predownload.forced"),
            fault_predownload_slowed: registry.counter("cloud.fault.predownload.slowed"),
            fault_fetch_degraded: registry.counter("cloud.fault.fetch.degraded"),
            retry_attempt: registry.counter("cloud.retry.attempt"),
            retry_rescued: registry.counter("cloud.retry.rescued"),
            retry_exhausted: registry.counter("cloud.retry.exhausted"),
            fetch_rate_kbps: registry.histogram("cloud.fetch.rate_kbps"),
            predownload_delay_ms: registry.histogram("cloud.predownload.delay_ms"),
            hit_ratio: registry.gauge("cloud.hit_ratio"),
            failure_ratio: registry.gauge("cloud.failure_ratio"),
            rejection_ratio: registry.gauge("cloud.rejection_ratio"),
            impeded_ratio: registry.gauge("cloud.impeded_ratio"),
        }
    }

    /// Drain the accumulated hot-path tallies into the shared handles
    /// (see [`HotMetrics`]), leaving the batch empty. Draining (rather
    /// than adding and keeping) lets mid-run series samples flush the
    /// same batch repeatedly without double-counting; the end-of-run
    /// call just pushes whatever accumulated since the last sample.
    fn drain(&self, hot: &mut HotMetrics) {
        self.requests.add(std::mem::take(&mut hot.requests));
        self.cache_hit.add(std::mem::take(&mut hot.cache_hit));
        self.cache_miss.add(std::mem::take(&mut hot.cache_miss));
        self.dedup_joined.add(std::mem::take(&mut hot.dedup_joined));
        self.predownload_success.add(std::mem::take(&mut hot.predownload_success));
        self.predownload_stagnation.add(std::mem::take(&mut hot.predownload_stagnation));
        for (handle, n) in self.failures_by_cause.iter().zip(&mut hot.failures_by_cause) {
            handle.add(std::mem::take(n));
        }
        self.fetch_completed.add(std::mem::take(&mut hot.fetch_completed));
        self.fetch_impeded.add(std::mem::take(&mut hot.fetch_impeded));
        self.fault_window.add(std::mem::take(&mut hot.fault_window));
        self.fault_predownload_forced.add(std::mem::take(&mut hot.fault_predownload_forced));
        self.fault_predownload_slowed.add(std::mem::take(&mut hot.fault_predownload_slowed));
        self.fault_fetch_degraded.add(std::mem::take(&mut hot.fault_fetch_degraded));
        self.retry_attempt.add(std::mem::take(&mut hot.retry_attempt));
        self.retry_rescued.add(std::mem::take(&mut hot.retry_rescued));
        self.retry_exhausted.add(std::mem::take(&mut hot.retry_exhausted));
        self.fetch_rate_kbps.merge(&std::mem::take(&mut hot.fetch_rate_kbps));
        self.predownload_delay_ms.merge(&std::mem::take(&mut hot.predownload_delay_ms));
    }
}

/// Optional observers for a cloud replay: any combination of per-task
/// lifecycle tracing, virtual-time series recording, and wall profiling.
/// [`Default`] is the unobserved replay.
#[derive(Default)]
pub struct Observers<'a> {
    /// Per-task lifecycle tracing (`None` = off).
    pub trace: Option<&'a TraceConfig>,
    /// Virtual-time series recording: the replay registers the cloud's
    /// headline metrics on the recorder, samples them on the engine's
    /// grid, and finishes the series at the end-of-run clock.
    pub series: Option<SeriesRecorder>,
    /// Wall profiling: per-handler and scheduler-pop `Instant` buckets,
    /// flushed into the registry's wall section.
    pub profile: bool,
}

/// Register the cloud replay's headline metrics on a series recorder:
/// engine throughput, the request/cache/pre-download/fetch counters, the
/// per-ISP upload admissions (the paper's per-ISP weekly curves), the
/// headline ratio gauges, and the median fetch rate.
fn register_cloud_series(series: &SeriesRecorder, registry: &Registry) {
    const COUNTERS: [&str; 24] = [
        "sim.events",
        "cloud.requests",
        "cloud.cache.hit",
        "cloud.cache.miss",
        "cloud.dedup.joined",
        "cloud.predownload.success",
        "cloud.predownload.stagnation",
        "cloud.predownload.fail.seeds",
        "cloud.predownload.fail.connection",
        "cloud.predownload.fail.bug",
        "cloud.fetch.completed",
        "cloud.fetch.impeded",
        "cloud.fault.window",
        "cloud.fault.predownload.forced",
        "cloud.fault.predownload.slowed",
        "cloud.fault.fetch.degraded",
        "cloud.retry.attempt",
        "cloud.retry.rescued",
        "cloud.retry.exhausted",
        "cloud.upload.admit.unicom",
        "cloud.upload.admit.telecom",
        "cloud.upload.admit.mobile",
        "cloud.upload.admit.cernet",
        "cloud.upload.reject",
    ];
    for name in COUNTERS {
        series.track_counter(name, registry.counter(name));
    }
    const GAUGES: [&str; 5] = [
        "sim.queue_depth",
        "cloud.hit_ratio",
        "cloud.failure_ratio",
        "cloud.rejection_ratio",
        "cloud.impeded_ratio",
    ];
    for name in GAUGES {
        series.track_gauge(name, registry.gauge(name));
    }
    series.track_quantile(
        "cloud.fetch.rate_kbps.p50",
        registry.histogram("cloud.fetch.rate_kbps"),
        0.5,
    );
}

/// The cloud world driven by the simulation engine.
pub struct XuanfengCloud<'a> {
    cfg: CloudConfig,
    catalog: &'a Catalog,
    population: &'a Population,
    workload: &'a Workload,
    db: ContentDb,
    pool: InstrumentedCache,
    backend: CloudWeekBackend,
    rng_think: SimRng,
    // Compiled fault schedule plus the runtime streams it draws from.
    // Zero-intensity plans are empty and the streams stay untouched, so
    // a fault-free replay is byte-identical to one built before this
    // machinery existed.
    plan: FaultPlan,
    rng_faults: SimRng,
    rng_retry: SimRng,
    retry_policy: RetryPolicy,
    // Attempts burned so far on the file's in-flight pre-download;
    // reset on final success/failure. File-indexed like the arena.
    retry_attempts: Vec<u32>,
    // The task arena: a preallocated struct-of-arrays replacing the old
    // `FxHashMap<u32, Pending>` and its per-task waiter Vecs. File-indexed
    // (catalog size): the in-flight pre-download's outcome plus the
    // head/tail of that file's waiter list. Task-indexed (workload size):
    // the intrusive next pointer chaining waiters in arrival order. The
    // per-event path is two array reads — no hashing, no rehash stalls,
    // no waiter-Vec growth. Waiter arrival times are not stored: an
    // arrival fires at exactly `workload.requests()[req].at` (scheduled
    // from time zero, never clamped), so they are recovered from the
    // workload on completion.
    pending_outcome: Vec<Option<PredownloadOutcome>>,
    waiter_head: Vec<u32>,
    waiter_tail: Vec<u32>,
    next_waiter: Vec<u32>,
    pd_delay_ms: Vec<u64>,
    predownloads: Vec<PredownloadRecord>,
    fetches: Vec<FetchRecord>,
    end_to_end: Vec<EndToEnd>,
    burden: BinnedSeries,
    burden_hot: BinnedSeries,
    counters: Counters,
    // (failures, attempts) per popularity bucket for Fig 10.
    failure_bins: Vec<(u64, u64)>,
    // Precomputed Fig 10 bucket per file: every arrival and failure
    // bins by popularity, and reading a byte-sized bin from this dense
    // side table (≲1 MB, L2-resident) replaces a `FileMeta` fetch from
    // the much larger catalog — one fewer DRAM miss per event.
    fig10_bin: Vec<u16>,
    metrics: CloudMetrics,
    hot: HotMetrics,
    // Per-task lifecycle tracing; None keeps the hot path one branch.
    lifecycle: Option<Lifecycle>,
}

/// Static label for the ISP admitting an upload flow.
fn isp_label(isp: Option<Isp>) -> &'static str {
    match isp {
        Some(isp) => isp.lowercase_name(),
        None => "none",
    }
}

/// Static label for a pre-download failure cause (§5.2 taxonomy).
fn cause_label(cause: FailureCause) -> &'static str {
    match cause {
        FailureCause::InsufficientSeeds => "seeds",
        FailureCause::PoorConnection => "connection",
        FailureCause::SystemBug => "bug",
    }
}

const FIG10_BIN_WIDTH: f64 = 10.0;
const FIG10_BINS: usize = 21;

impl<'a> XuanfengCloud<'a> {
    /// Build the world around a generated workload.
    pub fn new(
        cfg: CloudConfig,
        catalog: &'a Catalog,
        population: &'a Population,
        workload: &'a Workload,
        rngs: &RngFactory,
    ) -> Self {
        let mut db = ContentDb::new(catalog);
        // The scenario picks the replacement policy; single-shard LRU is the
        // paper's pool. Preallocate for the catalog so warming never regrows.
        let mut pool = InstrumentedCache::new(
            cfg.cache.build(cfg.scaled_cache_mb(), catalog.len()),
            odx_telemetry::global(),
        );
        if cfg.cache_enabled {
            let mut warm_rng = rngs.stream("cloud-warm");
            for idx in db.warm(catalog, cfg.warm_cache_pivot, &mut warm_rng) {
                // Warm evictions only happen under pressure-scaled budgets,
                // but whenever they do the DB flag must follow the pool.
                for evicted in pool.insert(u64::from(idx), catalog.file(idx).size_mb, 0) {
                    db.state_mut(evicted as u32).cached = false;
                }
            }
        }
        let backend = CloudWeekBackend::new(&cfg, rngs);
        let horizon_secs = (odx_trace::WEEK + SimDuration::from_days(2)).as_secs_f64();
        let plan = FaultPlan::compile(&cfg.faults, &mut rngs.stream("faults"));
        XuanfengCloud {
            retry_policy: RetryPolicy::new(cfg.retry),
            cfg,
            catalog,
            population,
            workload,
            db,
            pool,
            backend,
            rng_think: rngs.stream("cloud-think"),
            plan,
            rng_faults: rngs.stream("faults-runtime"),
            rng_retry: rngs.stream("retry"),
            retry_attempts: vec![0; catalog.len()],
            pending_outcome: vec![None; catalog.len()],
            waiter_head: vec![NO_WAITER; catalog.len()],
            waiter_tail: vec![NO_WAITER; catalog.len()],
            next_waiter: vec![NO_WAITER; workload.len()],
            pd_delay_ms: vec![0; workload.len()],
            predownloads: Vec::with_capacity(workload.len()),
            fetches: Vec::with_capacity(workload.len()),
            end_to_end: Vec::with_capacity(workload.len()),
            burden: BinnedSeries::new(horizon_secs, 300.0),
            burden_hot: BinnedSeries::new(horizon_secs, 300.0),
            counters: Counters::default(),
            failure_bins: vec![(0, 0); FIG10_BINS],
            fig10_bin: catalog
                .files()
                .iter()
                .map(|f| {
                    ((f64::from(f.weekly_requests) / FIG10_BIN_WIDTH) as usize).min(FIG10_BINS - 1)
                        as u16
                })
                .collect(),
            metrics: CloudMetrics::new(odx_telemetry::global()),
            hot: HotMetrics::default(),
            lifecycle: None,
        }
    }

    fn trace_instant(&self, task: u32, stage: Stage, at: SimTime, detail: Option<&'static str>) {
        if let Some(lifecycle) = &self.lifecycle {
            lifecycle.tasks.instant(u64::from(task), stage, at.as_millis(), detail);
        }
    }

    fn trace_span(
        &self,
        task: u32,
        stage: Stage,
        start: SimTime,
        end: SimTime,
        detail: Option<&'static str>,
    ) {
        if let Some(lifecycle) = &self.lifecycle {
            lifecycle.tasks.span(
                u64::from(task),
                stage,
                start.as_millis(),
                end.as_millis(),
                detail,
            );
        }
    }

    /// Record a task's terminal outcome; anomalous terminals also dump
    /// the flight recorder's recent-event ring.
    fn trace_finish(&self, task: u32, end: TaskEnd, at: SimTime, anomaly: Option<&'static str>) {
        if let Some(lifecycle) = &self.lifecycle {
            lifecycle.tasks.finish(u64::from(task), end, at.as_millis());
            if let Some(kind) = anomaly {
                if lifecycle.tasks.sampled(u64::from(task)) {
                    lifecycle.flight.dump(u64::from(task), kind, at.as_millis());
                }
            }
        }
    }

    /// Run the full replay, consuming the world. Metrics land in the
    /// process-wide [`odx_telemetry::global`] registry.
    pub fn replay(
        catalog: &Catalog,
        population: &Population,
        workload: &Workload,
        cfg: CloudConfig,
        rngs: &RngFactory,
    ) -> WeekReport {
        Self::replay_with_registry(
            catalog,
            population,
            workload,
            cfg,
            rngs,
            odx_telemetry::global(),
        )
    }

    /// Run the full replay, recording metrics and sim spans into an
    /// explicit registry. With a fresh registry per call, two same-seed
    /// replays produce byte-identical metric snapshots.
    pub fn replay_with_registry(
        catalog: &Catalog,
        population: &Population,
        workload: &Workload,
        cfg: CloudConfig,
        rngs: &RngFactory,
        registry: &Registry,
    ) -> WeekReport {
        Self::replay_observed(
            catalog,
            population,
            workload,
            cfg,
            rngs,
            registry,
            Observers::default(),
        )
        .0
    }

    /// Run the full replay with per-task lifecycle tracing on: every
    /// sampled task gets a [`odx_telemetry::TaskTrace`] covering arrival,
    /// cache/dedup lookups, pre-downloading, queueing, upload admission,
    /// and the fetch, and anomalous terminals dump the flight recorder.
    /// All trace timestamps are virtual, so the returned
    /// [`LifecycleReport`] is byte-identical across same-seed runs.
    pub fn replay_traced(
        catalog: &Catalog,
        population: &Population,
        workload: &Workload,
        cfg: CloudConfig,
        rngs: &RngFactory,
        registry: &Registry,
        trace: &TraceConfig,
    ) -> (WeekReport, LifecycleReport) {
        let observers = Observers { trace: Some(trace), ..Observers::default() };
        let (report, lifecycle) =
            Self::replay_observed(catalog, population, workload, cfg, rngs, registry, observers);
        (report, lifecycle.expect("tracing was requested"))
    }

    /// Run the full replay with an explicit [`Observers`] bundle: any
    /// combination of lifecycle tracing, virtual-time series recording,
    /// and wall profiling. The deterministic outputs (week report,
    /// metric snapshot, series, lifecycle) are byte-identical to an
    /// unobserved same-seed replay; only the wall section differs.
    #[allow(clippy::too_many_arguments)]
    pub fn replay_observed(
        catalog: &Catalog,
        population: &Population,
        workload: &Workload,
        cfg: CloudConfig,
        rngs: &RngFactory,
        registry: &Registry,
        observers: Observers<'_>,
    ) -> (WeekReport, Option<LifecycleReport>) {
        let scheduler = cfg.scheduler;
        let mut world = XuanfengCloud::new(cfg, catalog, population, workload, rngs);
        world.metrics = CloudMetrics::new(registry);
        world.backend.rebind_metrics(registry);
        world.pool.rebind(registry);
        world.lifecycle = observers.trace.map(Lifecycle::new);
        let flight = world.lifecycle.as_ref().map(|lifecycle| lifecycle.flight.clone());
        // Snapshot the compiled fault windows before the world moves into
        // the simulation; they are scheduled up front after the arrival
        // seq reservation, in domain-then-start order, so every window's
        // `(time, seq)` is a pure function of the plan. An empty plan
        // schedules nothing and leaves seq allocation untouched.
        let fault_windows: Vec<FaultWindow> = FaultDomain::ALL
            .iter()
            .flat_map(|domain| world.plan.windows(*domain))
            .copied()
            .collect();
        if let Some(series) = &observers.series {
            register_cloud_series(series, registry);
        }
        // Arrivals stream in chunk by chunk, so the queue only ever holds
        // one chunk plus in-flight follow-ups — not the whole week. The
        // slab still grows on demand if follow-ups pile past the chunk.
        let capacity = workload.len().min(2 * ARRIVAL_CHUNK) + 16;
        let mut sim = Simulation::with_scheduler(world, scheduler, capacity);
        sim.attach_telemetry(registry.clone());
        if let Some(flight) = flight {
            sim.attach_flight_recorder(flight);
        }
        if let Some(series) = &observers.series {
            sim.attach_series(series.clone());
        }
        if observers.profile {
            sim.attach_profiler();
        }
        // Arrivals keep seqs 0..N; follow-ups scheduled by handlers draw
        // from N up, exactly as if every arrival were scheduled up front.
        sim.reserve_seqs(workload.len() as u64);
        for window in &fault_windows {
            sim.schedule_at(
                SimTime::from_millis(window.start_ms),
                Ev::FaultWindow { kind: window.kind },
            );
        }
        let mut arrivals = ArrivalChunks { requests: workload.requests(), next: 0 };
        sim.run_streamed(&mut arrivals);
        let final_now_ms = sim.now().as_millis();
        let mut world = sim.into_world();
        world.metrics.drain(&mut world.hot);
        let lifecycle = world.lifecycle.take().map(|lifecycle| lifecycle.report());
        world.pool.finish(registry);
        let report = world.into_report();
        registry.gauge("cloud.hit_ratio").set(report.hit_ratio());
        registry.gauge("cloud.failure_ratio").set(report.failure_ratio());
        registry.gauge("cloud.rejection_ratio").set(report.rejection_ratio());
        registry.gauge("cloud.impeded_ratio").set(report.impeded_ratio());
        // The final sample lands after every drain and gauge write, so
        // each series ends exactly at its end-of-run snapshot value.
        if let Some(series) = &observers.series {
            series.finish(final_now_ms);
        }
        (report, lifecycle)
    }

    fn into_report(self) -> WeekReport {
        let failure_by_popularity = self
            .failure_bins
            .iter()
            .enumerate()
            .filter(|(_, (_, attempts))| *attempts > 0)
            .map(|(i, (fails, attempts))| {
                ((i as f64 + 0.5) * FIG10_BIN_WIDTH, *fails as f64 / *attempts as f64)
            })
            .collect();
        WeekReport {
            predownloads: self.predownloads,
            fetches: self.fetches,
            end_to_end: self.end_to_end,
            burden_kbps: self.burden,
            burden_hot_kbps: self.burden_hot,
            counters: self.counters,
            failure_by_popularity,
        }
    }

    fn record_failure_stats(&mut self, file: u32, requests: u64, cause: FailureCause) {
        self.counters.predownload_failures += requests;
        let slot = match cause {
            FailureCause::InsufficientSeeds => 0,
            FailureCause::PoorConnection => 1,
            FailureCause::SystemBug => 2,
        };
        self.counters.failures_by_cause[slot] += requests;
        self.hot.failures_by_cause[slot] += requests;
        self.failure_bins[self.fig10_bin[file as usize] as usize].0 += requests;
    }

    fn note_request(&mut self, file: u32) {
        self.failure_bins[self.fig10_bin[file as usize] as usize].1 += 1;
    }

    fn hit_record(&self, at: SimTime) -> PredownloadRecord {
        PredownloadRecord {
            start: at,
            finish: at,
            acquired_mb: 0.0,
            traffic_mb: 0.0,
            cache_hit: true,
            avg_kbps: 0.0,
            peak_kbps: 0.0,
            success: true,
            failure_cause: None,
        }
    }

    fn think_after_hit(&mut self) -> SimDuration {
        // View-as-download users start fetching almost immediately.
        SimDuration::from_secs_f64(30.0 + 270.0 * u01(&mut self.rng_think))
    }

    fn think_after_predownload(&mut self) -> SimDuration {
        // The user gets a notification and comes back a while later.
        let mins = -(1.0 - u01(&mut self.rng_think)).ln() * 20.0;
        SimDuration::from_secs_f64((mins * 60.0).min(6.0 * 3600.0))
    }

    /// Dispatch a pre-download through the fault plan. The backend draw
    /// happens first either way, so the cloud-source stream order is
    /// identical with and without a plan; an active outage window then
    /// overrides the outcome with a forced stagnation, and a brownout
    /// window stretches a success by its severity.
    fn predownload_with_faults(&mut self, file_idx: u32, now: SimTime) -> PredownloadOutcome {
        let meta = *self.catalog.file(file_idx);
        let prior = self.db.state(file_idx).failed_attempts;
        let outcome = self.backend.predownload(&meta, prior);
        if self.plan.is_empty() {
            return outcome;
        }
        let Some(window) = self.plan.active(FaultDomain::Cloud, now.as_millis()) else {
            return outcome;
        };
        match window.kind {
            FaultKind::CloudOutage => {
                self.counters.fault_forced_failures += 1;
                self.hot.fault_predownload_forced += 1;
                PredownloadOutcome::Failure {
                    cause: FailureCause::SystemBug,
                    duration: self.cfg.stagnation_timeout
                        + SimDuration::from_secs_f64(u01(&mut self.rng_faults) * 3600.0),
                    traffic_mb: meta.size_mb * u01(&mut self.rng_faults) * 0.15,
                }
            }
            FaultKind::CloudBrownout => match outcome {
                PredownloadOutcome::Success { rate_kbps, duration, traffic_mb } => {
                    self.counters.fault_slowed_predownloads += 1;
                    self.hot.fault_predownload_slowed += 1;
                    PredownloadOutcome::Success {
                        rate_kbps: rate_kbps * window.severity,
                        duration: SimDuration::from_secs_f64(
                            duration.as_secs_f64() / window.severity,
                        ),
                        traffic_mb,
                    }
                }
                failure => failure,
            },
            _ => outcome,
        }
    }

    fn begin_fetch(&mut self, ctx: &mut Ctx<Ev>, req: u32) {
        let request = &self.workload.requests()[req as usize];
        let user = self.population.user(request.user);
        let file = self.catalog.file(request.file);
        let mut plan = self.backend.plan_fetch(user);

        let now = ctx.now();
        if plan.rate_kbps > 0.0 {
            if let Some(window) = self.plan.active(FaultDomain::Net, now.as_millis()) {
                // User-visible rate only: the ISP pool reservation keeps
                // the admission grant, so release stays consistent.
                plan.rate_kbps *= window.severity;
                self.counters.fault_degraded_fetches += 1;
                self.hot.fault_fetch_degraded += 1;
            }
        }
        if plan.rate_kbps <= 0.0 {
            // Rejected outright.
            self.counters.rejected_fetches += 1;
            self.counters.impeded_fetches += 1;
            self.hot.fetch_impeded += 1;
            self.trace_instant(req, Stage::Admission, now, Some("reject"));
            self.trace_finish(req, TaskEnd::Rejected, now, Some("rejection"));
            self.fetches.push(FetchRecord {
                user_id: request.user,
                isp: user.isp,
                access_kbps: user.reports_bandwidth.then_some(user.access_kbps),
                start: now,
                finish: now,
                acquired_mb: 0.0,
                traffic_mb: 0.0,
                avg_kbps: 0.0,
                peak_kbps: 0.0,
                rejected: true,
            });
            // Fig 11 includes the estimated burden of rejected fetches at
            // the population's average fetch speed (504 KBps).
            let est_secs = odx_net::transfer_secs(file.size_mb, 504.0);
            let hot = file.class() == PopularityClass::HighlyPopular;
            self.burden.add_rate_interval(now.as_secs_f64(), now.as_secs_f64() + est_secs, 504.0);
            if hot {
                self.burden_hot.add_rate_interval(
                    now.as_secs_f64(),
                    now.as_secs_f64() + est_secs,
                    504.0,
                );
            }
            return;
        }

        let acquired_mb = file.size_mb * plan.fetched_fraction;
        let secs = odx_net::transfer_secs(acquired_mb, plan.rate_kbps);
        if plan.rate_kbps < HD_THRESHOLD_KBPS {
            self.counters.impeded_fetches += 1;
            self.hot.fetch_impeded += 1;
            if plan.crossed_barrier {
                self.counters.impeded_barrier += 1;
            } else if user.access_kbps < HD_THRESHOLD_KBPS {
                self.counters.impeded_low_access += 1;
            } else if plan.dynamics_degraded {
                self.counters.impeded_dynamics += 1;
            }
        }
        self.trace_instant(
            req,
            Stage::Admission,
            now,
            Some(isp_label(plan.admission.server_isp())),
        );
        ctx.schedule_in(
            SimDuration::from_secs_f64(secs),
            Ev::FetchEnd {
                req,
                server_isp: plan.admission.server_isp(),
                reserved_kbps: plan.admission.rate_kbps(),
                rate_kbps: plan.rate_kbps,
                began: now,
            },
        );
    }
}

impl World for XuanfengCloud<'_> {
    type Event = Ev;

    fn event_label(&self, event: &Ev) -> &'static str {
        match event {
            Ev::Arrive(_) => "arrive",
            Ev::PredlDone { .. } => "predl_done",
            Ev::FetchBegin { .. } => "fetch_begin",
            Ev::FetchEnd { .. } => "fetch_end",
            Ev::FaultWindow { kind } => kind.label(),
            Ev::RetryPredl { .. } => "retry_predl",
        }
    }

    /// Make every sampled metric current at a series grid point: drain
    /// the hot-path batch into the registry (exact and idempotent — the
    /// batch empties, so the end-of-run drain only adds the tail) and
    /// refresh the headline ratio gauges with the same formulas the
    /// final [`WeekReport`] uses, so mid-run samples show the ratios
    /// evolving and the final sample matches the report exactly.
    fn pre_sample(&mut self, _at_ms: u64) {
        self.metrics.drain(&mut self.hot);
        let requests = self.counters.requests.max(1) as f64;
        let attempts = self.fetches.len().max(1) as f64;
        self.metrics.hit_ratio.set(self.counters.cache_hits as f64 / requests);
        self.metrics.failure_ratio.set(self.counters.predownload_failures as f64 / requests);
        self.metrics.rejection_ratio.set(self.counters.rejected_fetches as f64 / attempts);
        self.metrics.impeded_ratio.set(self.counters.impeded_fetches as f64 / attempts);
    }

    fn handle(&mut self, ctx: &mut Ctx<Ev>, ev: Ev) {
        match ev {
            Ev::Arrive(req) => {
                self.counters.requests += 1;
                self.hot.requests += 1;
                let request = &self.workload.requests()[req as usize];
                let file_idx = request.file;
                self.db.state_mut(file_idx).observed_requests += 1;
                self.note_request(file_idx);
                let now = ctx.now();
                self.trace_instant(req, Stage::Arrival, now, None);

                if self.pool.lookup(u64::from(file_idx), now.as_millis()).is_some() {
                    debug_assert!(self.db.state(file_idx).cached, "pool/DB flag drift");
                    self.counters.cache_hits += 1;
                    self.hot.cache_hit += 1;
                    self.predownloads.push(self.hit_record(now));
                    self.pd_delay_ms[req as usize] = 0;
                    let think = self.think_after_hit();
                    self.trace_instant(req, Stage::CacheLookup, now, Some("hit"));
                    self.trace_span(req, Stage::Queue, now, now + think, None);
                    ctx.schedule_in(think, Ev::FetchBegin { req });
                } else if self.waiter_head[file_idx as usize] != NO_WAITER {
                    // Another user's pre-download is already in flight; this
                    // request will be satisfied (or fail) with it. Append to
                    // the file's waiter list (arrival order preserved).
                    let tail = self.waiter_tail[file_idx as usize];
                    self.next_waiter[tail as usize] = req;
                    self.waiter_tail[file_idx as usize] = req;
                    self.counters.cache_hits += 1;
                    self.hot.cache_hit += 1;
                    self.hot.dedup_joined += 1;
                    self.trace_instant(req, Stage::CacheLookup, now, Some("miss"));
                    self.trace_instant(req, Stage::DedupLookup, now, Some("joined"));
                } else {
                    self.hot.cache_miss += 1;
                    self.trace_instant(req, Stage::CacheLookup, now, Some("miss"));
                    self.trace_instant(req, Stage::DedupLookup, now, Some("initiated"));
                    let outcome = self.predownload_with_faults(file_idx, now);
                    self.db.state_mut(file_idx).in_flight = true;
                    ctx.schedule_in(outcome.duration(), Ev::PredlDone { file: file_idx });
                    self.pending_outcome[file_idx as usize] = Some(outcome);
                    self.waiter_head[file_idx as usize] = req;
                    self.waiter_tail[file_idx as usize] = req;
                }
            }
            Ev::PredlDone { file } => {
                let outcome =
                    self.pending_outcome[file as usize].take().expect("pending entry exists");
                self.db.state_mut(file).in_flight = false;
                let meta = *self.catalog.file(file);
                let now = ctx.now();
                match outcome {
                    PredownloadOutcome::Success { rate_kbps, traffic_mb, .. } => {
                        let attempts = std::mem::take(&mut self.retry_attempts[file as usize]);
                        self.hot.predownload_success += 1;
                        if self.cfg.cache_enabled {
                            self.db.state_mut(file).cached = true;
                            // The eviction list may include `file` itself if
                            // the policy refused admission; the flag loop
                            // handles both cases uniformly.
                            for evicted in
                                self.pool.insert(u64::from(file), meta.size_mb, now.as_millis())
                            {
                                self.db.state_mut(evicted as u32).cached = false;
                            }
                        }
                        self.counters.predownload_traffic_mb += traffic_mb;
                        self.counters.predownload_payload_mb += meta.size_mb;
                        let mut cursor = self.waiter_head[file as usize];
                        let mut i = 0usize;
                        while cursor != NO_WAITER {
                            let req = cursor;
                            // Arrivals fire at exactly their workload time.
                            let arrived = self.workload.requests()[req as usize].at;
                            // The initiator's record carries the transfer;
                            // joiners were satisfied by the same process.
                            self.predownloads.push(PredownloadRecord {
                                start: arrived,
                                finish: now,
                                acquired_mb: meta.size_mb,
                                traffic_mb: if i == 0 { traffic_mb } else { 0.0 },
                                cache_hit: i != 0,
                                avg_kbps: if i == 0 { rate_kbps } else { 0.0 },
                                peak_kbps: rate_kbps * self.backend.predl_peak_factor(),
                                success: true,
                                failure_cause: None,
                            });
                            let delay_ms = now.since(arrived).as_millis();
                            self.hot.predownload_delay_ms.record(delay_ms);
                            self.pd_delay_ms[req as usize] = delay_ms;
                            let think = self.think_after_predownload();
                            let detail = if i == 0 { "initiator" } else { "joined" };
                            self.trace_span(req, Stage::Predownload, arrived, now, Some(detail));
                            self.trace_span(req, Stage::Queue, now, now + think, None);
                            ctx.schedule_in(think, Ev::FetchBegin { req });
                            cursor = self.next_waiter[req as usize];
                            i += 1;
                        }
                        if attempts > 0 {
                            // Every waiter on a retried file would have been
                            // failed under `retry.policy=none`.
                            self.counters.retry_rescued += i as u64;
                            self.hot.retry_rescued += i as u64;
                        }
                    }
                    PredownloadOutcome::Failure { cause, traffic_mb, .. } => {
                        // A granted backoff re-dispatches the pre-download
                        // instead of failing the waiters. The attempt still
                        // burns a stagnation timeout, its wasted traffic,
                        // and a content-DB failed attempt (so the shared
                        // retry decay applies to the re-dispatch), but no
                        // failure records are cut and the waiter list stays
                        // parked on the file.
                        let attempt = self.retry_attempts[file as usize];
                        if let Some(delay) =
                            self.retry_policy.backoff_delay(attempt, &mut self.rng_retry)
                        {
                            self.retry_attempts[file as usize] = attempt + 1;
                            self.counters.retry_attempts += 1;
                            self.hot.retry_attempt += 1;
                            self.hot.predownload_stagnation += 1;
                            self.db.state_mut(file).failed_attempts += 1;
                            self.counters.predownload_traffic_mb += traffic_mb;
                            self.db.state_mut(file).in_flight = true;
                            ctx.schedule_in(delay, Ev::RetryPredl { file });
                            return;
                        }
                        if self.retry_policy.is_active() && attempt > 0 {
                            self.counters.retry_exhausted += 1;
                            self.hot.retry_exhausted += 1;
                            self.retry_attempts[file as usize] = 0;
                        }
                        // Failed attempts are abandoned by the stagnation
                        // timeout rule, one firing per attempt.
                        self.hot.predownload_stagnation += 1;
                        self.db.state_mut(file).failed_attempts += 1;
                        self.counters.predownload_traffic_mb += traffic_mb;
                        let mut cursor = self.waiter_head[file as usize];
                        let mut n = 0u64;
                        while cursor != NO_WAITER {
                            let req = cursor;
                            let arrived = self.workload.requests()[req as usize].at;
                            self.predownloads.push(PredownloadRecord {
                                start: arrived,
                                finish: now,
                                acquired_mb: 0.0,
                                traffic_mb,
                                cache_hit: false,
                                avg_kbps: 0.0,
                                peak_kbps: 0.0,
                                success: false,
                                failure_cause: Some(cause),
                            });
                            self.trace_span(
                                req,
                                Stage::Predownload,
                                arrived,
                                now,
                                Some(cause_label(cause)),
                            );
                            self.trace_finish(req, TaskEnd::Stagnated, now, Some("stagnation"));
                            cursor = self.next_waiter[req as usize];
                            n += 1;
                        }
                        self.record_failure_stats(file, n, cause);
                        // Joiners (everyone but the initiator) were
                        // optimistically counted as hits on arrival.
                        self.counters.cache_hits -= n - 1;
                    }
                }
                self.waiter_head[file as usize] = NO_WAITER;
                self.waiter_tail[file as usize] = NO_WAITER;
            }
            Ev::FetchBegin { req } => self.begin_fetch(ctx, req),
            Ev::FetchEnd { req, server_isp, reserved_kbps, rate_kbps, began } => {
                if let Some(isp) = server_isp {
                    self.backend.release(isp, reserved_kbps);
                }
                let now = ctx.now();
                let request = &self.workload.requests()[req as usize];
                let user = self.population.user(request.user);
                let delay = now.since(began);
                let acquired_mb = rate_kbps * delay.as_secs_f64() / 1000.0;
                self.counters.completed_fetches += 1;
                self.hot.fetch_completed += 1;
                self.hot.fetch_rate_kbps.record_f64(rate_kbps);
                self.backend.note_fetched(rate_kbps, acquired_mb);
                self.fetches.push(FetchRecord {
                    user_id: request.user,
                    isp: user.isp,
                    access_kbps: user.reports_bandwidth.then_some(user.access_kbps),
                    start: began,
                    finish: now,
                    acquired_mb,
                    traffic_mb: acquired_mb * 1.085,
                    avg_kbps: rate_kbps,
                    peak_kbps: rate_kbps * self.backend.fetch_peak_factor(),
                    rejected: false,
                });
                self.end_to_end.push(EndToEnd {
                    size_mb: acquired_mb,
                    pd_delay: SimDuration::from_millis(self.pd_delay_ms[req as usize]),
                    fetch_delay: delay,
                });
                self.trace_span(req, Stage::Fetch, began, now, None);
                self.trace_finish(req, TaskEnd::Completed, now, None);
                let file = self.catalog.file(request.file);
                let hot = file.class() == PopularityClass::HighlyPopular;
                self.burden.add_rate_interval(
                    began.as_secs_f64(),
                    now.as_secs_f64(),
                    reserved_kbps,
                );
                if hot {
                    self.burden_hot.add_rate_interval(
                        began.as_secs_f64(),
                        now.as_secs_f64(),
                        reserved_kbps,
                    );
                }
            }
            Ev::FaultWindow { .. } => {
                // Observational only: active-window queries go through the
                // plan, so the handler just counts and the event's label
                // stamps the opening into the flight-recorder ring.
                self.counters.fault_windows += 1;
                self.hot.fault_window += 1;
            }
            Ev::RetryPredl { file } => {
                let now = ctx.now();
                let outcome = self.predownload_with_faults(file, now);
                ctx.schedule_in(outcome.duration(), Ev::PredlDone { file });
                self.pending_outcome[file as usize] = Some(outcome);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_trace::{CatalogConfig, PopulationConfig, WorkloadConfig};
    use rand::SeedableRng;

    fn replay_at(scale: f64, seed: u64) -> WeekReport {
        let rngs = RngFactory::new(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(&CatalogConfig::scaled(scale), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(scale), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        XuanfengCloud::replay(&catalog, &population, &workload, CloudConfig::at_scale(scale), &rngs)
    }

    #[test]
    fn replay_accounts_for_every_request() {
        let report = replay_at(0.005, 110);
        assert_eq!(report.predownloads.len() as u64, report.counters.requests);
        assert!(report.counters.requests > 10_000);
        // Every successful task either fetched or was rejected.
        let successes = report.predownloads.iter().filter(|r| r.success).count();
        assert_eq!(successes, report.fetches.len());
    }

    #[test]
    fn cache_hit_ratio_near_paper() {
        let report = replay_at(0.005, 111);
        let hit = report.hit_ratio();
        assert!((hit - 0.89).abs() < 0.05, "hit ratio {hit}");
    }

    #[test]
    fn failure_ratios_near_paper() {
        let report = replay_at(0.005, 112);
        let failure = report.failure_ratio();
        assert!((failure - 0.087).abs() < 0.04, "failure ratio {failure}");
    }

    fn replay_with(scale: f64, seed: u64, cfg: CloudConfig) -> WeekReport {
        let rngs = RngFactory::new(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(&CatalogConfig::scaled(scale), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(scale), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        XuanfengCloud::replay(&catalog, &population, &workload, cfg, &rngs)
    }

    #[test]
    fn fault_injection_raises_failures_and_degrades_fetches() {
        let baseline = replay_with(0.005, 2015, CloudConfig::at_scale(0.005));
        let mut cfg = CloudConfig::at_scale(0.005);
        cfg.faults.intensity = 0.15;
        let faulted = replay_with(0.005, 2015, cfg);
        assert!(faulted.counters.fault_windows > 0, "windows should open");
        assert!(faulted.counters.fault_degraded_fetches > 0, "net windows should bite");
        assert!(
            faulted.counters.fault_forced_failures > 0
                || faulted.counters.fault_slowed_predownloads > 0,
            "cloud windows should bite"
        );
        assert!(
            faulted.failure_ratio() > baseline.failure_ratio(),
            "injection should raise failures: {} vs {}",
            faulted.failure_ratio(),
            baseline.failure_ratio()
        );
    }

    #[test]
    fn expo_backoff_rescues_tasks_under_the_same_fault_plan() {
        let mut cfg = CloudConfig::at_scale(0.005);
        cfg.faults.intensity = 0.15;
        let no_retry = replay_with(0.005, 2015, cfg);
        cfg.retry.kind = odx_faults::RetryKind::Expo;
        let expo = replay_with(0.005, 2015, cfg);
        assert!(expo.counters.retry_attempts > 0, "retries should fire");
        assert!(expo.counters.retry_rescued > 0, "some retries should succeed");
        assert!(
            expo.failure_ratio() < no_retry.failure_ratio(),
            "backoff should rescue tasks: {} vs {}",
            expo.failure_ratio(),
            no_retry.failure_ratio()
        );
        // The fault plan itself is retry-independent: same windows opened.
        assert_eq!(expo.counters.fault_windows, no_retry.counters.fault_windows);
    }

    #[test]
    fn zero_intensity_plan_is_byte_identical_to_the_default_replay() {
        let baseline = replay_with(0.005, 2015, CloudConfig::at_scale(0.005));
        // Any zero-intensity config — whatever the other knobs say — must
        // compile to an empty plan, consume no draws, schedule no events.
        let mut cfg = CloudConfig::at_scale(0.005);
        cfg.faults.window_s = 60.0;
        cfg.faults.net_slowdown = 0.9;
        cfg.retry.base_delay_s = 5.0;
        let quiet = replay_with(0.005, 2015, cfg);
        assert_eq!(format!("{baseline:?}"), format!("{quiet:?}"));
    }

    #[test]
    fn no_cache_ablation_roughly_doubles_failures() {
        let rngs = RngFactory::new(113);
        let mut rng = rand::rngs::StdRng::seed_from_u64(113);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.005), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.005), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        let mut cfg = CloudConfig::at_scale(0.005);
        let with_cache =
            XuanfengCloud::replay(&catalog, &population, &workload, cfg, &rngs).failure_ratio();
        cfg.cache_enabled = false;
        let without_cache =
            XuanfengCloud::replay(&catalog, &population, &workload, cfg, &rngs).failure_ratio();
        // §4.1: 8.7 % with the pool vs 16.4 % without.
        assert!(
            without_cache > with_cache * 1.4,
            "cache should mask failures: {with_cache} vs {without_cache}"
        );
        assert!((without_cache - 0.164).abs() < 0.05, "no-cache failure {without_cache}");
    }

    #[test]
    fn fetch_speeds_match_fig8_shape() {
        // Scale 0.005 suffers per-ISP pool granularity (tens of concurrent
        // flows per pool), so the bands here are wide; the integration tests
        // and the repro harness check the tight Fig 8 numbers at scale ≥ 0.05.
        let report = replay_at(0.005, 114);
        let s = report.fetch_speed_ecdf().summary().unwrap();
        assert!((s.median - 287.0).abs() / 287.0 < 0.45, "median {}", s.median);
        assert!((s.mean - 504.0).abs() / 504.0 < 0.35, "mean {}", s.mean);
        assert!(s.max <= 6250.0);
        let impeded = report.impeded_ratio();
        assert!((impeded - 0.28).abs() < 0.15, "impeded {impeded}");
    }

    #[test]
    fn predownload_speeds_match_fig8_shape() {
        let report = replay_at(0.005, 115);
        let s = report.predownload_speed_ecdf().summary().unwrap();
        assert!(s.median < 60.0, "median {}", s.median);
        assert!(s.mean > s.median, "heavy tail");
        assert!(s.max <= 2500.0);
    }

    #[test]
    fn traffic_overhead_near_196_percent() {
        let report = replay_at(0.005, 116);
        let factor = report.traffic_overhead_factor();
        assert!((factor - 1.96).abs() < 0.25, "overhead factor {factor}");
    }

    #[test]
    fn end_to_end_sits_between_phases() {
        let report = replay_at(0.005, 117);
        let pd = report.predownload_delay_ecdf().median().unwrap();
        let fetch = report.fetch_delay_ecdf().median().unwrap();
        let e2e = report.end_to_end_delay_ecdf().median().unwrap();
        assert!(fetch <= e2e + 1e-9, "fetch {fetch} <= e2e {e2e}");
        assert!(e2e <= pd, "e2e {e2e} <= pd {pd} (most requests are hits)");
    }

    #[test]
    fn failure_ratio_decreases_with_popularity() {
        let report = replay_at(0.005, 118);
        let bins = &report.failure_by_popularity;
        assert!(bins.len() >= 3);
        let first = bins.first().unwrap().1;
        let last = bins.last().unwrap().1;
        assert!(
            first > last + 0.05,
            "unpopular files should fail more: first bin {first}, last bin {last}"
        );
    }

    #[test]
    fn burden_peaks_late_in_week() {
        let report = replay_at(0.005, 119);
        let (peak_bin, peak) = report.burden_kbps.peak_bin();
        assert!(peak > 0.0);
        let peak_day = peak_bin as f64 * 300.0 / 86_400.0;
        assert!(peak_day > 3.5, "peak on day {peak_day:.1} should be late in the week");
        let hot_frac = report.hot_burden_fraction();
        assert!((hot_frac - 0.40).abs() < 0.12, "hot burden fraction {hot_frac}");
    }

    #[test]
    fn metrics_snapshot_is_byte_identical_across_same_seed_replays() {
        let run = || {
            let registry = odx_telemetry::Registry::new();
            let rngs = RngFactory::new(121);
            let mut rng = rand::rngs::StdRng::seed_from_u64(121);
            let catalog = Catalog::generate(&CatalogConfig::scaled(0.002), &mut rng);
            let population = Population::generate(&PopulationConfig::scaled(0.002), &mut rng);
            let workload =
                Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
            let report = XuanfengCloud::replay_with_registry(
                &catalog,
                &population,
                &workload,
                CloudConfig::at_scale(0.002),
                &rngs,
                &registry,
            );
            (registry.snapshot(), report)
        };
        let (snap_a, report) = run();
        let (snap_b, _) = run();
        assert_eq!(snap_a.to_json(), snap_b.to_json());

        // The snapshot agrees with the report the harness prints.
        assert_eq!(snap_a.counters["cloud.requests"], report.counters.requests);
        assert_eq!(snap_a.counters["cloud.fetch.completed"], report.counters.completed_fetches);
        assert_eq!(snap_a.counters["cloud.upload.reject"], report.counters.rejected_fetches);
        assert!((snap_a.gauges["cloud.hit_ratio"] - report.hit_ratio()).abs() < 1e-12);
        assert!((snap_a.gauges["cloud.rejection_ratio"] - report.rejection_ratio()).abs() < 1e-12);
        // Per-ISP admissions plus rejections cover every fetch attempt.
        let admitted: u64 = Isp::MAJORS
            .iter()
            .map(|isp| snap_a.counters[&format!("cloud.upload.admit.{}", isp.lowercase_name())])
            .sum();
        assert_eq!(admitted + snap_a.counters["cloud.upload.reject"], report.fetches.len() as u64);
        // The sim hooks saw every scheduled event.
        assert!(snap_a.counters["sim.events"] >= report.counters.requests);
    }

    #[test]
    fn lifecycle_spans_tile_completion_times_exactly() {
        let registry = odx_telemetry::Registry::new();
        let rngs = RngFactory::new(122);
        let mut rng = rand::rngs::StdRng::seed_from_u64(122);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.002), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.002), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        let (report, lifecycle) = XuanfengCloud::replay_traced(
            &catalog,
            &population,
            &workload,
            CloudConfig::at_scale(0.002),
            &rngs,
            &registry,
            &TraceConfig::full(),
        );
        assert_eq!(lifecycle.traces.traces.len(), report.counters.requests as usize);
        // Per task: the timed stages tile arrival → terminal exactly.
        let mut ended = 0u64;
        for trace in &lifecycle.traces.traces {
            let Some(completion) = trace.completion_ms() else { continue };
            ended += 1;
            let timed: u64 = [Stage::Predownload, Stage::Queue, Stage::Fetch]
                .into_iter()
                .map(|s| trace.stage_ms(s))
                .sum();
            assert_eq!(timed, completion, "task {} spans do not tile", trace.task);
        }
        assert!(ended > 0);
        // And therefore in aggregate: the attribution's stage total equals
        // its completion total (the waterfall sums to 100 %).
        let attribution = lifecycle.attribution();
        assert_eq!(attribution.total_stage_ms(), attribution.total_completion_ms);
        assert_eq!(attribution.tasks, ended);
        assert_eq!(
            attribution.ends[TaskEnd::Stagnated.index()],
            report.counters.predownload_failures
        );
        assert_eq!(attribution.ends[TaskEnd::Rejected.index()], report.counters.rejected_fetches);
        assert_eq!(attribution.ends[TaskEnd::Completed.index()], report.counters.completed_fetches);
        // Every anomalous terminal produced a flight dump (up to the cap).
        let anomalies = report.counters.predownload_failures + report.counters.rejected_fetches;
        assert_eq!(lifecycle.flight.dumps.len() as u64 + lifecycle.flight.dropped_dumps, anomalies);
        assert!(lifecycle.flight.dumps.iter().all(|d| !d.recent.is_empty()));
    }

    #[test]
    fn lifecycle_trace_is_deterministic_and_sampling_drops_whole_tasks() {
        let run = |sample| {
            let registry = odx_telemetry::Registry::new();
            let rngs = RngFactory::new(123);
            let mut rng = rand::rngs::StdRng::seed_from_u64(123);
            let catalog = Catalog::generate(&CatalogConfig::scaled(0.001), &mut rng);
            let population = Population::generate(&PopulationConfig::scaled(0.001), &mut rng);
            let workload =
                Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
            XuanfengCloud::replay_traced(
                &catalog,
                &population,
                &workload,
                CloudConfig::at_scale(0.001),
                &rngs,
                &registry,
                &TraceConfig::sampled(sample),
            )
            .1
        };
        let full_a = run(1);
        let full_b = run(1);
        assert_eq!(full_a.traces.to_chrome_json(), full_b.traces.to_chrome_json());
        assert_eq!(full_a.attribution(), full_b.attribution());
        assert_eq!(full_a.flight.to_json(), full_b.flight.to_json());
        // Sampling keeps every 7th task, each with its complete span set.
        let sampled = run(7);
        assert!(!sampled.traces.traces.is_empty());
        for trace in &sampled.traces.traces {
            assert_eq!(trace.task % 7, 0);
            let full = full_a.traces.get(trace.task).expect("task exists in the full trace");
            assert_eq!(trace, full, "sampling must never truncate a task's spans");
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let a = replay_at(0.002, 120);
        let b = replay_at(0.002, 120);
        assert_eq!(a.counters.requests, b.counters.requests);
        assert_eq!(a.counters.cache_hits, b.counters.cache_hits);
        assert_eq!(a.counters.rejected_fetches, b.counters.rejected_fetches);
        assert_eq!(a.fetches.len(), b.fetches.len());
        assert_eq!(a.predownloads[..100], b.predownloads[..100]);
    }
}
