#![warn(missing_docs)]

//! # odx-cloud — the cloud-based offline downloading system (Xuanfeng)
//!
//! A full system model of the cloud studied in §2.1 / §4 of the paper:
//!
//! * [`ContentDb`] — metadata for every known file (MD5-keyed), including
//!   popularity statistics (what ODR queries) and cached status.
//! * the 2 PB collaborative storage pool, now a pluggable
//!   [`odx_cache::CachePolicy`] selected by [`CloudConfig`]'s `cache` field
//!   (single-shard [`odx_cache::LruCache`] by default — the paper's model);
//!   the old `odx_cloud::LruCache` name remains as a deprecated alias.
//! * [`PredownloadModel`] — virtual-machine pre-downloaders on 20 Mbps links
//!   with the production 1-hour stagnation timeout.
//! * [`dedup`] — the chunk-level-dedup estimator behind §2.1's design
//!   choice (file-level MD5 dedup; chunking saves < 1 %).
//! * [`streaming`] — view-as-download buffer dynamics: where the 125 KBps
//!   "impeded fetch" threshold comes from.
//! * [`UploadPool`] — per-ISP uploading servers (30 Gbps aggregate),
//!   privileged-path selection, and admission control that *rejects* new
//!   fetches rather than degrade active ones.
//! * [`XuanfengCloud`] / [`WeekReport`] — an event-driven replay of the whole
//!   measurement week on the `odx-sim` engine, producing the pre-downloading
//!   and fetching traces behind Figures 8–11.
//!
//! The replay is scale-parameterized: `scale = 1.0` reproduces the paper's
//! 4.08 M tasks; capacities (upload bandwidth, cache bytes) scale linearly so
//! the congestion behaviour (Bottleneck 2) is scale-invariant.

mod backend;
mod cache;
mod config;
mod content_db;
pub mod dedup;
mod fetch;
mod predownload;
pub mod streaming;
mod system;
mod upload;

pub use backend::CloudWeekBackend;
#[allow(deprecated)]
pub use cache::LruCache;
pub use config::CloudConfig;
pub use content_db::{ContentDb, FileState};
pub use fetch::{FetchModel, FetchPlan};
pub use odx_cache::{CacheConfig, PolicyKind};
pub use predownload::{PredownloadModel, PredownloadOutcome};
pub use system::{Counters, Observers, WeekReport, XuanfengCloud};
pub use upload::{Admission, UploadPool};
