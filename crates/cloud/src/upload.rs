//! The uploading-server pool: privileged paths and admission control (§2.1).

use odx_net::Isp;

/// Where a fetch was admitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Served by a same-ISP uploading server — the privileged path.
    Privileged {
        /// ISP whose pool serves the flow.
        isp: Isp,
        /// Rate granted (KBps).
        rate_kbps: f64,
    },
    /// Served by an alternative server in a different ISP — the flow crosses
    /// the ISP barrier.
    CrossIsp {
        /// ISP whose pool serves the flow.
        server_isp: Isp,
        /// Rate granted (KBps), already barrier-limited by the caller.
        rate_kbps: f64,
    },
    /// All uploading servers are out of bandwidth: the request is rejected
    /// outright (Xuanfeng never degrades active flows, §2.1).
    Rejected,
}

impl Admission {
    /// The granted rate; zero when rejected.
    pub fn rate_kbps(&self) -> f64 {
        match self {
            Admission::Privileged { rate_kbps, .. } | Admission::CrossIsp { rate_kbps, .. } => {
                *rate_kbps
            }
            Admission::Rejected => 0.0,
        }
    }

    /// The serving pool's ISP, if admitted.
    pub fn server_isp(&self) -> Option<Isp> {
        match self {
            Admission::Privileged { isp, .. } => Some(*isp),
            Admission::CrossIsp { server_isp, .. } => Some(*server_isp),
            Admission::Rejected => None,
        }
    }
}

/// Fleet-wide utilization above which "all the uploading servers have
/// exhausted their upload bandwidth" (§2.1) and new fetches are rejected
/// instead of spilled to an alternative server.
const REJECT_UTILIZATION: f64 = 0.97;

/// Per-ISP upload capacity with reserve-on-admit accounting.
#[derive(Debug, Clone)]
pub struct UploadPool {
    capacity: [f64; 4],
    in_use: [f64; 4],
    floor: f64,
}

impl UploadPool {
    /// A pool with `total_kbps` split across the four major ISPs. `floor` is
    /// the smallest grant worth admitting; anything lower rejects.
    pub fn new(total_kbps: f64, split: [f64; 4], floor: f64) -> Self {
        assert!(total_kbps > 0.0, "capacity must be positive");
        let capacity = [
            total_kbps * split[0],
            total_kbps * split[1],
            total_kbps * split[2],
            total_kbps * split[3],
        ];
        UploadPool { capacity, in_use: [0.0; 4], floor }
    }

    /// Remaining capacity in an ISP's pool (KBps).
    pub fn headroom(&self, isp: Isp) -> f64 {
        match isp.major_index() {
            Some(i) => (self.capacity[i] - self.in_use[i]).max(0.0),
            None => 0.0,
        }
    }

    /// Total remaining capacity (KBps).
    pub fn total_headroom(&self) -> f64 {
        Isp::MAJORS.iter().map(|&i| self.headroom(i)).sum()
    }

    /// Total capacity in use (KBps) — the Fig 11 burden at this instant.
    pub fn total_in_use(&self) -> f64 {
        self.in_use.iter().sum()
    }

    /// Try to admit a fetch for a user in `user_isp` wanting `desired_kbps`.
    ///
    /// Xuanfeng "sets no limitation on the user's fetching speed" and, when
    /// out of bandwidth, "temporarily rejects new fetching requests rather
    /// than degrade the speeds of active downloads" (§2.1) — so admission is
    /// all-or-nothing: the flow gets its full desired rate from some pool or
    /// it is rejected. Selection order: a same-ISP server if the user is
    /// inside a major ISP and that pool can carry the flow; otherwise the
    /// least-loaded alternative pool (standing in for "shortest network
    /// latency"), whose path crosses the ISP barrier — the caller is
    /// expected to have already folded the barrier cap into `desired_kbps`
    /// for that case via `UploadPool::would_cross_barrier`.
    ///
    /// The granted rate is reserved until [`UploadPool::release`].
    /// `cross_kbps` is the rate the flow would get on a barrier-crossing
    /// path (`min(desired, barrier sample)`), used when the home pool cannot
    /// carry the full rate.
    pub fn admit(&mut self, user_isp: Isp, desired_kbps: f64, cross_kbps: f64) -> Admission {
        let desired = desired_kbps.max(self.floor);
        if let Some(i) = user_isp.major_index() {
            if self.capacity[i] - self.in_use[i] >= desired {
                self.in_use[i] += desired;
                return Admission::Privileged { isp: user_isp, rate_kbps: desired };
            }
        }
        // At the peak point all servers are effectively exhausted: reject
        // rather than squeeze flows into the last few percent (§2.1).
        let total_cap: f64 = self.capacity.iter().sum();
        if self.total_in_use() >= REJECT_UTILIZATION * total_cap {
            return Admission::Rejected;
        }
        // Alternative server (§2.1): the lowest-latency major pool that can
        // still carry the flow, reached across the ISP barrier.
        let cross = cross_kbps.min(desired).max(self.floor);
        let candidates: Vec<Isp> =
            Isp::MAJORS.into_iter().filter(|&isp| self.headroom(isp) >= cross).collect();
        match odx_net::latency::nearest_major(user_isp, &candidates) {
            Some(server) => {
                let i = server.major_index().expect("major");
                self.in_use[i] += cross;
                Admission::CrossIsp { server_isp: server, rate_kbps: cross }
            }
            None => Admission::Rejected,
        }
    }

    /// Release a previously admitted flow's reservation.
    pub fn release(&mut self, server_isp: Isp, rate_kbps: f64) {
        if let Some(i) = server_isp.major_index() {
            self.in_use[i] = (self.in_use[i] - rate_kbps).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> UploadPool {
        UploadPool::new(1000.0, [0.25, 0.25, 0.25, 0.25], 10.0)
    }

    #[test]
    fn same_isp_users_get_privileged_paths() {
        let mut p = pool();
        match p.admit(Isp::Unicom, 100.0, 100.0) {
            Admission::Privileged { isp, rate_kbps } => {
                assert_eq!(isp, Isp::Unicom);
                assert_eq!(rate_kbps, 100.0);
            }
            other => panic!("expected privileged, got {other:?}"),
        }
        assert_eq!(p.headroom(Isp::Unicom), 150.0);
    }

    #[test]
    fn outside_users_cross_the_barrier() {
        let mut p = pool();
        match p.admit(Isp::Other, 50.0, 30.0) {
            Admission::CrossIsp { rate_kbps, .. } => assert_eq!(rate_kbps, 30.0),
            other => panic!("expected cross-ISP, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_home_pool_spills_to_alternative() {
        let mut p = pool();
        p.admit(Isp::Unicom, 250.0, 250.0); // exhaust Unicom's pool
        match p.admit(Isp::Unicom, 50.0, 35.0) {
            Admission::CrossIsp { server_isp, .. } => assert_ne!(server_isp, Isp::Unicom),
            other => panic!("expected spill, got {other:?}"),
        }
    }

    #[test]
    fn full_pools_reject() {
        let mut p = pool();
        for isp in Isp::MAJORS {
            p.admit(isp, 250.0, 250.0);
        }
        assert_eq!(p.admit(Isp::Telecom, 50.0, 35.0), Admission::Rejected);
        assert_eq!(p.admit(Isp::Other, 50.0, 30.0), Admission::Rejected);
        assert!(p.total_headroom() < 1.0);
    }

    #[test]
    fn release_restores_capacity() {
        let mut p = pool();
        let adm = p.admit(Isp::Mobile, 200.0, 200.0);
        assert_eq!(p.total_in_use(), 200.0);
        p.release(adm.server_isp().unwrap(), adm.rate_kbps());
        assert_eq!(p.total_in_use(), 0.0);
        assert_eq!(p.headroom(Isp::Mobile), 250.0);
    }

    #[test]
    fn no_partial_grants_when_headroom_is_tight() {
        // All-or-nothing admission: a flow the home pool cannot fully carry
        // spills to an alternative pool at its FULL desired rate — active
        // flows are never degraded and new ones never throttled.
        let mut p = pool();
        p.admit(Isp::Cernet, 200.0, 200.0);
        match p.admit(Isp::Cernet, 100.0, 100.0) {
            Admission::CrossIsp { rate_kbps, server_isp } => {
                assert_eq!(rate_kbps, 100.0);
                assert_ne!(server_isp, Isp::Cernet);
            }
            other => panic!("expected full-rate spill, got {other:?}"),
        }
    }

    #[test]
    fn admission_rate_zero_when_rejected() {
        assert_eq!(Admission::Rejected.rate_kbps(), 0.0);
        assert_eq!(Admission::Rejected.server_isp(), None);
    }
}
