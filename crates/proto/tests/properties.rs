//! Property-based tests for the wire formats.

use odx_proto::cookie::{percent_decode, percent_encode};
use odx_proto::http::{Method, Request};
use odx_proto::Json;
use proptest::prelude::*;

/// Strategy for arbitrary JSON values of bounded depth.
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1e12f64..1e12).prop_map(Json::Num),
        "[a-zA-Z0-9 _\\-\u{00e9}\u{65cb}\"\\\\\n\t]{0,24}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            prop::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Json::Obj),
        ]
    })
}

proptest! {
    /// Serialize → parse is the identity for every JSON value.
    #[test]
    fn json_round_trips(v in arb_json()) {
        let text = v.to_string_compact();
        let parsed = Json::parse(&text).expect("own output parses");
        prop_assert_eq!(parsed, v);
    }

    /// The parser never panics on arbitrary input (it may error).
    #[test]
    fn json_parser_is_total(input in "\\PC{0,256}") {
        let _ = Json::parse(&input);
    }

    /// Percent-encoding round-trips arbitrary UTF-8.
    #[test]
    fn percent_round_trips(s in "\\PC{0,128}") {
        let enc = percent_encode(&s);
        let dec = percent_decode(&enc);
        prop_assert_eq!(dec.as_deref(), Some(s.as_str()));
        // The encoded form is cookie-safe.
        prop_assert!(enc.bytes().all(|b| b.is_ascii_alphanumeric()
            || matches!(b, b'-' | b'_' | b'.' | b'~' | b'%')));
    }

    /// HTTP requests round-trip through the wire format for arbitrary
    /// bodies and header values.
    #[test]
    fn http_request_round_trips(
        body in prop::collection::vec(any::<u8>(), 0..512),
        host in "[a-z0-9.\\-]{1,32}",
        post in any::<bool>(),
    ) {
        let req = Request {
            method: if post { Method::Post } else { Method::Get },
            target: "/decide".into(),
            headers: vec![("host".into(), host.clone())],
            body: body.clone().into(),
        };
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let parsed = Request::read_from(&wire[..]).unwrap().expect("request present");
        prop_assert_eq!(parsed.method, req.method);
        prop_assert_eq!(parsed.header("host"), Some(host.as_str()));
        prop_assert_eq!(&parsed.body[..], &body[..]);
    }

    /// The HTTP parser never panics on arbitrary bytes.
    #[test]
    fn http_parser_is_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::read_from(&bytes[..]);
    }
}
