//! Cookie handling for the ODR web service.
//!
//! §6.1: "ODR maintains a web cookie at the user side (if her web browser
//! permits), so that the user does not need to repeatedly input the
//! auxiliary information every time." The cookie stores the user's ISP,
//! access bandwidth and AP configuration; subsequent `/decide` calls may
//! omit those fields.

use crate::http::Request;

/// Cookie name carrying the user's auxiliary context.
pub const CONTEXT_COOKIE: &str = "odr_ctx";

/// Parse a `Cookie:` header value into `(name, value)` pairs.
pub fn parse_cookie_header(header: &str) -> Vec<(String, String)> {
    header
        .split(';')
        .filter_map(|pair| {
            let (name, value) = pair.split_once('=')?;
            let name = name.trim();
            if name.is_empty() {
                return None;
            }
            Some((name.to_owned(), value.trim().to_owned()))
        })
        .collect()
}

/// Look up a cookie by name on a request.
pub fn get_cookie(req: &Request, name: &str) -> Option<String> {
    let header = req.header("cookie")?;
    parse_cookie_header(header).into_iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

/// A `Set-Cookie:` header value for the context cookie. The value is
/// percent-encoded so JSON survives the cookie grammar.
pub fn set_context_cookie(json_value: &str) -> String {
    format!("{CONTEXT_COOKIE}={}; Path=/; Max-Age=31536000", percent_encode(json_value))
}

/// Decode a stored context-cookie value back into its JSON text.
pub fn decode_context(value: &str) -> Option<String> {
    percent_decode(value)
}

/// Minimal percent-encoding: everything outside cookie-safe bytes.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Inverse of [`percent_encode`]. `None` on malformed escapes or invalid
/// UTF-8.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 3 > bytes.len() {
                return None;
            }
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use bytes::Bytes;

    fn req_with_cookie(value: &str) -> Request {
        Request {
            method: Method::Get,
            target: "/".into(),
            headers: vec![("cookie".into(), value.into())],
            body: Bytes::new(),
        }
    }

    #[test]
    fn parse_multiple_cookies() {
        let pairs = parse_cookie_header("a=1; odr_ctx=xyz;b = 2");
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[1], ("odr_ctx".to_owned(), "xyz".to_owned()));
    }

    #[test]
    fn get_cookie_finds_named_value() {
        let req = req_with_cookie("session=q; odr_ctx=abc%7B");
        assert_eq!(get_cookie(&req, "odr_ctx").as_deref(), Some("abc%7B"));
        assert_eq!(get_cookie(&req, "missing"), None);
    }

    #[test]
    fn percent_round_trip() {
        let json = r#"{"isp":"unicom","access_kbps":400,"旋":"风"}"#;
        let encoded = percent_encode(json);
        assert!(!encoded.contains('{') && !encoded.contains('"'));
        assert_eq!(percent_decode(&encoded).as_deref(), Some(json));
    }

    #[test]
    fn set_cookie_round_trips_through_decode() {
        let header = set_context_cookie(r#"{"a":1}"#);
        let value =
            header.strip_prefix("odr_ctx=").and_then(|rest| rest.split(';').next()).unwrap();
        assert_eq!(decode_context(value).as_deref(), Some(r#"{"a":1}"#));
    }

    #[test]
    fn malformed_escapes_are_rejected() {
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("%4"), None);
        assert_eq!(percent_decode("ok%20fine").as_deref(), Some("ok fine"));
    }
}
