//! A tiny blocking HTTP client (tests, examples, health checks).

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{HttpError, Method, Request, Response};

fn send(addr: SocketAddr, req: &Request) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    req.write_to(&stream)?;
    Response::read_from(&stream).map_err(|e| match e {
        HttpError::Io(io) => io,
        HttpError::Bad(m) => io::Error::new(io::ErrorKind::InvalidData, m),
    })
}

/// GET `path` from `addr`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    send(
        addr,
        &Request {
            method: Method::Get,
            target: path.to_owned(),
            headers: vec![("host".into(), addr.to_string())],
            body: Default::default(),
        },
    )
}

/// POST a JSON `body` to `path` at `addr`.
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> io::Result<Response> {
    send(
        addr,
        &Request {
            method: Method::Post,
            target: path.to_owned(),
            headers: vec![
                ("host".into(), addr.to_string()),
                ("content-type".into(), "application/json".into()),
            ],
            body: body.to_owned().into(),
        },
    )
}
