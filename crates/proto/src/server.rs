//! A blocking TCP server on a worker thread pool.

use crossbeam::channel::{bounded, Sender};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{Request, Response};

/// A request handler: anything callable from multiple worker threads.
pub trait Handler: Send + Sync + 'static {
    /// Handle one request.
    fn handle(&self, req: Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: Request) -> Response {
        self(req)
    }
}

/// A running HTTP server. Dropping it shuts the listener and workers down.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `handler` on `workers` threads.
    pub fn bind(addr: &str, workers: usize, handler: impl Handler) -> io::Result<Server> {
        assert!(workers > 0, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // A short accept timeout lets the accept loop observe shutdown.
        listener.set_nonblocking(false)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(handler);

        let (tx, rx) = bounded::<TcpStream>(64);
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        serve_connection(stream, handler.as_ref());
                    }
                })
            })
            .collect();

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, tx, accept_shutdown);
        });

        Ok(Server {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
            workers: worker_handles,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the workers, and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop so it notices the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<TcpStream>, shutdown: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
                let _ = s.set_write_timeout(Some(Duration::from_secs(10)));
                if tx.send(s).is_err() {
                    break;
                }
            }
            Err(_) => continue,
        }
    }
    // Dropping tx disconnects the channel; workers drain and exit.
}

fn serve_connection(stream: TcpStream, handler: &impl Handler) {
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let response = match Request::read_from(read_half) {
        Ok(Some(req)) => handler.handle(req),
        Ok(None) => return,
        Err(e) => Response::error(400, &e.to_string()),
    };
    let _ = response.write_to(&stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::http::Method;

    fn echo_server() -> Server {
        Server::bind("127.0.0.1:0", 2, |req: Request| {
            if req.method == Method::Post {
                Response::text(format!("echo:{}", String::from_utf8_lossy(&req.body)))
            } else {
                Response::text(format!("path:{}", req.path()))
            }
        })
        .expect("bind")
    }

    #[test]
    fn serves_get_and_post() {
        let server = echo_server();
        let addr = server.addr();
        let get = client::get(addr, "/hello").unwrap();
        assert_eq!(get.status, 200);
        assert_eq!(&get.body[..], b"path:/hello");
        let post = client::post_json(addr, "/x", "{\"a\":1}").unwrap();
        assert_eq!(&post.body[..], b"echo:{\"a\":1}");
        server.shutdown();
    }

    #[test]
    fn handles_concurrent_clients() {
        let server = echo_server();
        let addr = server.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let resp = client::post_json(addr, "/c", &format!("{{\"i\":{i}}}")).unwrap();
                    assert_eq!(resp.status, 200);
                    assert!(String::from_utf8_lossy(&resp.body).contains(&format!("{i}")));
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        use std::io::Write;
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"BREW / HTTP/1.1\r\n\r\n").unwrap();
        let resp = Response::read_from(&stream).unwrap();
        assert_eq!(resp.status, 400);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let server = echo_server();
        let addr = server.addr();
        server.shutdown();
        // Port is released: a new server can bind to the same address.
        let again = Server::bind(&addr.to_string(), 1, |_req: Request| Response::text("ok"));
        assert!(again.is_ok());
    }
}
