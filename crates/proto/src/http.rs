//! A small HTTP/1.1 subset: enough to serve and consume the ODR API.
//!
//! Supported: request line + headers + `Content-Length` bodies, response
//! writing, case-insensitive header lookup. Not supported (deliberately):
//! chunked encoding, pipelining, TLS — the ODR service is a tiny
//! JSON-over-POST API.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Upper bound on header section size (DoS guard).
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on body size (DoS guard).
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// HTTP request methods the service accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target (path + optional query).
    pub target: String,
    /// Headers as received (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Request body.
    pub body: Bytes,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The path portion of the target (without query string).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The query portion of the target (after the first `?`), `""` when
    /// the target carries none.
    pub fn query(&self) -> &str {
        self.target.split_once('?').map_or("", |(_, q)| q)
    }

    /// Read one request from a stream. `Ok(None)` means the peer closed the
    /// connection cleanly before sending anything.
    pub fn read_from(stream: impl Read) -> Result<Option<Request>, HttpError> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(HttpError::io)?;
        if n == 0 {
            return Ok(None);
        }
        let mut parts = line.trim_end().split(' ');
        let method = parts
            .next()
            .and_then(Method::parse)
            .ok_or_else(|| HttpError::bad("unsupported method"))?;
        let target = parts.next().ok_or_else(|| HttpError::bad("missing target"))?.to_owned();
        let version = parts.next().ok_or_else(|| HttpError::bad("missing version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::bad("unsupported version"));
        }

        let mut headers = Vec::new();
        let mut header_bytes = 0;
        loop {
            let mut hline = String::new();
            reader.read_line(&mut hline).map_err(HttpError::io)?;
            header_bytes += hline.len();
            if header_bytes > MAX_HEADER_BYTES {
                return Err(HttpError::bad("headers too large"));
            }
            let trimmed = hline.trim_end();
            if trimmed.is_empty() {
                break;
            }
            let (name, value) =
                trimmed.split_once(':').ok_or_else(|| HttpError::bad("malformed header"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }

        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| v.parse().map_err(|_| HttpError::bad("bad content-length")))
            .transpose()?
            .unwrap_or(0);
        if length > MAX_BODY_BYTES {
            return Err(HttpError::bad("body too large"));
        }
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).map_err(HttpError::io)?;
        Ok(Some(Request { method, target, headers, body: Bytes::from(body) }))
    }

    /// Serialize for sending (client side).
    pub fn write_to(&self, mut w: impl Write) -> std::io::Result<()> {
        let mut buf = BytesMut::new();
        buf.put_slice(format!("{} {} HTTP/1.1\r\n", self.method, self.target).as_bytes());
        for (name, value) in &self.headers {
            buf.put_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        buf.put_slice(format!("content-length: {}\r\n\r\n", self.body.len()).as_bytes());
        buf.put_slice(&self.body);
        w.write_all(&buf)
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type of the body.
    pub content_type: &'static str,
    /// Additional headers (e.g. `Set-Cookie`).
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: Bytes,
}

impl Response {
    /// 200 with a JSON body.
    pub fn json(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into().into(),
        }
    }

    /// 200 with a plain-text body.
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain",
            extra_headers: Vec::new(),
            body: body.into().into(),
        }
    }

    /// 200 with an HTML body (the service's front page).
    pub fn html(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/html; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into(),
        }
    }

    /// Attach an extra header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.to_owned(), value.into()));
        self
    }

    /// An error response with a JSON `{"error": …}` body.
    pub fn error(status: u16, message: &str) -> Response {
        let body = crate::Json::obj([("error", crate::Json::Str(message.to_owned()))]);
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.to_string_compact().into(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serialize onto a stream.
    pub fn write_to(&self, mut w: impl Write) -> std::io::Result<()> {
        let mut buf = BytesMut::new();
        buf.put_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason()).as_bytes());
        buf.put_slice(format!("content-type: {}\r\n", self.content_type).as_bytes());
        buf.put_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        for (name, value) in &self.extra_headers {
            buf.put_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        buf.put_slice(b"connection: close\r\n\r\n");
        buf.put_slice(&self.body);
        w.write_all(&buf)
    }

    /// Parse a response from a stream (client side).
    pub fn read_from(stream: impl Read) -> Result<Response, HttpError> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).map_err(HttpError::io)?;
        let mut parts = line.trim_end().split(' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::bad("bad status line"));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::bad("bad status code"))?;
        let mut length = 0usize;
        loop {
            let mut hline = String::new();
            reader.read_line(&mut hline).map_err(HttpError::io)?;
            let trimmed = hline.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    length =
                        value.trim().parse().map_err(|_| HttpError::bad("bad content-length"))?;
                }
            }
        }
        if length > MAX_BODY_BYTES {
            return Err(HttpError::bad("body too large"));
        }
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).map_err(HttpError::io)?;
        Ok(Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: Bytes::from(body),
        })
    }
}

/// Errors from HTTP parsing/IO.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed message.
    Bad(String),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl HttpError {
    fn bad(msg: &str) -> HttpError {
        HttpError::Bad(msg.to_owned())
    }

    fn io(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Bad(m) => write!(f, "bad request: {m}"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /decide HTTP/1.1\r\nHost: odr\r\nContent-Length: 4\r\n\r\nabcd";
        let req = Request::read_from(&raw[..]).unwrap().unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path(), "/decide");
        assert_eq!(req.header("host"), Some("odr"));
        assert_eq!(req.header("HOST"), Some("odr"));
        assert_eq!(&req.body[..], b"abcd");
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /healthz?x=1 HTTP/1.1\r\n\r\n";
        let req = Request::read_from(&raw[..]).unwrap().unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path(), "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn empty_stream_is_clean_close() {
        assert!(Request::read_from(&b""[..]).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            &b"BREW /coffee HTTP/1.1\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / HTTP/2\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n"[..],
        ] {
            assert!(Request::read_from(raw).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn request_round_trips() {
        let req = Request {
            method: Method::Post,
            target: "/decide".into(),
            headers: vec![("host".into(), "odr.thucloud.com".into())],
            body: Bytes::from_static(b"{\"x\":1}"),
        };
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let parsed = Request::read_from(&wire[..]).unwrap().unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.target, "/decide");
        assert_eq!(&parsed.body[..], b"{\"x\":1}");
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::json("{\"ok\":true}");
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let parsed = Response::read_from(&wire[..]).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(&parsed.body[..], b"{\"ok\":true}");
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(Request::read_from(raw.as_bytes()).is_err());
    }

    #[test]
    fn error_responses_carry_json() {
        let resp = Response::error(404, "no such endpoint");
        assert_eq!(resp.status, 404);
        let body = std::str::from_utf8(&resp.body).unwrap();
        assert!(body.contains("no such endpoint"));
    }
}
