//! The ODR web service: decision engine + content directory behind HTTP.
//!
//! Endpoints:
//!
//! * `GET /healthz` — liveness.
//! * `GET /metrics` — JSON snapshot of the process-wide telemetry registry;
//!   `GET /metrics?series=1` serves the published virtual-time series
//!   document instead (what `repro series` records).
//! * `GET /popularity/<file-id-hex>` — the content-DB lookup ODR performs.
//! * `POST /decide` — submit a link + user context, receive a verdict.
//!
//! Like the deployed prototype at `odr.thucloud.com`, the service "never
//! delivers file contents by itself" — it is pure control plane.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use odx_odr::OdrEngine;
use odx_trace::{Catalog, PopularityClass};

use crate::api::{verdict_to_json, DecideRequest};
use crate::cookie;
use crate::http::{Method, Request, Response};
use crate::server::Server;
use crate::Json;

/// The front page served at `GET /` — the shape of the prototype's web form
/// (submit a link plus auxiliary information; a cookie remembers the rest).
const FRONT_PAGE: &str = r#"<!doctype html>
<html><head><meta charset="utf-8"><title>ODR — Offline Downloading Redirector</title></head>
<body>
<h1>ODR — Offline Downloading Redirector</h1>
<p>Paste an HTTP/FTP/magnet/ed2k link. ODR looks up the file's popularity in
the cloud's content database and tells you where to download it: the cloud,
your smart AP, your own device, or cloud&rarr;AP relay.</p>
<p>POST JSON to <code>/decide</code>:
<code>{"link": "...", "isp": "unicom", "access_kbps": 400,
"ap": {"model": "newifi", "device": "usb-flash", "fs": "ntfs"}}</code></p>
<p>Your ISP / bandwidth / AP details are remembered in a cookie, so later
requests may send just the link.</p>
<p>Endpoints: <code>GET /healthz</code>, <code>GET /popularity/&lt;md5&gt;</code>,
<code>POST /decide</code>.</p>
</body></html>
"#;

/// Content-directory row: what the cloud's database knows about a file.
#[derive(Debug, Clone, Copy)]
struct DirectoryEntry {
    popularity: PopularityClass,
    cached: bool,
}

/// The ODR service state.
pub struct OdrService {
    engine: OdrEngine,
    directory: RwLock<HashMap<String, DirectoryEntry>>,
}

impl OdrService {
    /// An empty service (unknown files are treated as uncached and
    /// unpopular — the conservative answer).
    pub fn new(engine: OdrEngine) -> Arc<OdrService> {
        Arc::new(OdrService { engine, directory: RwLock::new(HashMap::new()) })
    }

    /// Populate the directory from a catalog, marking files cached with the
    /// given predicate.
    pub fn load_catalog(&self, catalog: &Catalog, cached: impl Fn(u32) -> bool) {
        let mut dir = self.directory.write();
        for (i, f) in catalog.files().iter().enumerate() {
            dir.insert(
                f.id.to_string(),
                DirectoryEntry { popularity: f.class(), cached: cached(i as u32) },
            );
        }
    }

    /// Register or update a single file.
    pub fn upsert(&self, id_hex: &str, popularity: PopularityClass, cached: bool) {
        self.directory.write().insert(id_hex.to_owned(), DirectoryEntry { popularity, cached });
    }

    /// Number of known files.
    pub fn directory_len(&self) -> usize {
        self.directory.read().len()
    }

    /// Look up the directory entry for a source link by scanning for a
    /// 32-hex-digit content id in it (how the prototype keys its DB).
    fn lookup(&self, link: &str) -> DirectoryEntry {
        let dir = self.directory.read();
        extract_id(link)
            .and_then(|id| dir.get(&id).copied())
            .unwrap_or(DirectoryEntry { popularity: PopularityClass::Unpopular, cached: false })
    }

    /// Route one HTTP request.
    pub fn handle(&self, req: Request) -> Response {
        // Cached handle: every routed request bumps one counter.
        static REQUESTS: std::sync::OnceLock<odx_telemetry::Counter> = std::sync::OnceLock::new();
        REQUESTS.get_or_init(|| odx_telemetry::global().counter("proto.requests")).inc();
        match (req.method, req.path()) {
            (Method::Get, "/") => Response::html(FRONT_PAGE),
            (Method::Get, "/healthz") => {
                Response::json(Json::obj([("status", Json::Str("ok".into()))]).to_string_compact())
            }
            (Method::Get, "/metrics") => {
                // `?series=1` serves the most recently published
                // virtual-time series document instead of the snapshot
                // (404 until a run publishes one — `repro series` does).
                if req.query().split('&').any(|kv| kv == "series=1") {
                    match odx_telemetry::published_series() {
                        Some(json) => Response::json(json),
                        None => Response::error(404, "no series published"),
                    }
                } else {
                    Response::json(odx_telemetry::global().snapshot().to_json())
                }
            }
            (Method::Get, path) if path.starts_with("/popularity/") => {
                let id = path.trim_start_matches("/popularity/");
                let dir = self.directory.read();
                match dir.get(id) {
                    Some(entry) => Response::json(
                        Json::obj([
                            ("class", Json::Str(entry.popularity.to_string())),
                            ("cached", Json::Bool(entry.cached)),
                        ])
                        .to_string_compact(),
                    ),
                    None => Response::error(404, "unknown file"),
                }
            }
            (Method::Post, "/decide") => self.decide(&req),
            (Method::Get, _) => Response::error(404, "no such endpoint"),
            (Method::Post, _) => Response::error(404, "no such endpoint"),
        }
    }

    fn decide(&self, req: &Request) -> Response {
        let body = match std::str::from_utf8(&req.body) {
            Ok(s) => s,
            Err(_) => return Response::error(400, "body is not utf-8"),
        };
        let json = match Json::parse(body) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        // §6.1: the context cookie fills in whatever auxiliary fields the
        // body omits (the body always wins on conflicts).
        let json = match Self::merge_cookie_context(req, json) {
            Ok(v) => v,
            Err(resp) => return *resp,
        };
        let decide_req = match DecideRequest::from_json(&json) {
            Ok(r) => r,
            Err(e) => return Response::error(400, &e.message),
        };
        let entry = self.lookup(&decide_req.link);
        let odr_req = match decide_req.resolve(entry.popularity, entry.cached) {
            Ok(r) => r,
            Err(e) => return Response::error(400, &e.message),
        };
        let verdict = self.engine.decide(&odr_req);
        // Remember the auxiliary context for next time.
        let mut ctx = decide_req.to_json();
        if let Json::Obj(map) = &mut ctx {
            map.remove("link");
        }
        Response::json(verdict_to_json(&verdict, entry.popularity).to_string_compact())
            .with_header("set-cookie", cookie::set_context_cookie(&ctx.to_string_compact()))
    }

    /// Overlay the request body on the stored cookie context.
    fn merge_cookie_context(req: &Request, body: Json) -> Result<Json, Box<Response>> {
        let Some(raw) = cookie::get_cookie(req, cookie::CONTEXT_COOKIE) else {
            return Ok(body);
        };
        let Some(stored) = cookie::decode_context(&raw) else {
            return Ok(body); // Corrupt cookie: ignore it.
        };
        let Ok(Json::Obj(mut base)) = Json::parse(&stored) else {
            return Ok(body);
        };
        match body {
            Json::Obj(overlay) => {
                for (k, v) in overlay {
                    base.insert(k, v);
                }
                Ok(Json::Obj(base))
            }
            other => {
                let _ = other;
                Err(Box::new(Response::error(400, "body must be a JSON object")))
            }
        }
    }

    /// Bind the service to `addr` on a worker pool.
    pub fn serve(self: &Arc<Self>, addr: &str, workers: usize) -> std::io::Result<Server> {
        let this = Arc::clone(self);
        Server::bind(addr, workers, move |req: Request| this.handle(req))
    }
}

/// Extract a 32-hex-digit content id from a link.
fn extract_id(link: &str) -> Option<String> {
    let bytes = link.as_bytes();
    let mut start = 0;
    while start < bytes.len() {
        if bytes[start].is_ascii_hexdigit() {
            let mut end = start;
            while end < bytes.len() && bytes[end].is_ascii_hexdigit() {
                end += 1;
            }
            if end - start == 32 {
                return Some(link[start..end].to_ascii_lowercase());
            }
            start = end;
        } else {
            start += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use odx_trace::FileId;

    fn id_hex(n: u128) -> String {
        FileId(n).to_string()
    }

    fn service_with_file(pop: PopularityClass, cached: bool) -> Arc<OdrService> {
        let svc = OdrService::new(OdrEngine::default());
        svc.upsert(&id_hex(0xabc), pop, cached);
        svc
    }

    #[test]
    fn extract_id_finds_32_hex_digits() {
        let link = format!("magnet:?xt=urn:btih:{}", id_hex(0xabc));
        assert_eq!(extract_id(&link), Some(id_hex(0xabc)));
        assert_eq!(extract_id("http://host/no-id-here"), None);
        assert_eq!(extract_id("deadbeef"), None, "too short");
    }

    #[test]
    fn healthz_over_the_wire() {
        let svc = service_with_file(PopularityClass::Popular, true);
        let server = svc.serve("127.0.0.1:0", 2).unwrap();
        let resp = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).contains("ok"));
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_serves_global_snapshot() {
        // Seed a metric we can look for, then read it back over the wire.
        odx_telemetry::global().counter("proto.test.sentinel").inc();
        let svc = service_with_file(PopularityClass::Popular, true);
        let server = svc.serve("127.0.0.1:0", 2).unwrap();
        let resp = client::get(server.addr(), "/metrics").unwrap();
        assert_eq!(resp.status, 200);
        let body = String::from_utf8_lossy(&resp.body);
        let parsed = Json::parse(&body).expect("metrics snapshot is valid JSON");
        assert!(matches!(parsed, Json::Obj(_)));
        assert!(body.contains("proto.test.sentinel"));
        assert!(body.contains("proto.requests"));
        server.shutdown();
    }

    #[test]
    fn metrics_series_variant_serves_the_published_document() {
        let svc = service_with_file(PopularityClass::Popular, true);
        let server = svc.serve("127.0.0.1:0", 2).unwrap();
        // This test is the process's only publisher, so before it
        // publishes the variant must 404 (the plain snapshot never does).
        let missing = client::get(server.addr(), "/metrics?series=1").unwrap();
        assert_eq!(missing.status, 404);
        let doc = r#"{"cells":[{"scenario":"proto-test","seed":7,"series":{"interval_ms":3600000,"times":[3600000],"series":{}}}]}"#;
        odx_telemetry::publish_series(doc.to_string());
        let requests_before = odx_telemetry::global().counter("proto.requests").get();
        let resp = client::get(server.addr(), "/metrics?series=1").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(std::str::from_utf8(&resp.body).unwrap(), doc, "published bytes verbatim");
        // The flag only swaps the document; the plain snapshot endpoint
        // still serves the registry, which carries the request counter
        // the series requests themselves bumped.
        let plain = client::get(server.addr(), "/metrics").unwrap();
        assert!(String::from_utf8_lossy(&plain.body).contains("proto.requests"));
        let after = odx_telemetry::global().counter("proto.requests").get();
        // ≥: other tests in this binary route requests concurrently.
        assert!(after >= requests_before + 2, "series + plain both counted: {after}");
        server.shutdown();
    }

    #[test]
    fn popularity_endpoint() {
        let svc = service_with_file(PopularityClass::HighlyPopular, true);
        let server = svc.serve("127.0.0.1:0", 2).unwrap();
        let resp = client::get(server.addr(), &format!("/popularity/{}", id_hex(0xabc))).unwrap();
        assert_eq!(resp.status, 200);
        let v = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("class").and_then(Json::as_str), Some("highly-popular"));
        assert_eq!(v.get("cached").and_then(Json::as_bool), Some(true));
        let missing = client::get(server.addr(), "/popularity/ffff").unwrap();
        assert_eq!(missing.status, 404);
        server.shutdown();
    }

    #[test]
    fn decide_end_to_end() {
        let svc = service_with_file(PopularityClass::HighlyPopular, true);
        let server = svc.serve("127.0.0.1:0", 2).unwrap();
        let body = format!(
            r#"{{"link": "magnet:?xt=urn:btih:{}", "isp": "unicom",
                "access_kbps": 2500.0,
                "ap": {{"model": "newifi", "device": "usb-flash", "fs": "ntfs"}}}}"#,
            id_hex(0xabc)
        );
        let resp = client::post_json(server.addr(), "/decide", &body).unwrap();
        assert_eq!(resp.status, 200);
        let v = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        // §6.1's worked example: hot P2P file + fast line + NTFS flash AP
        // → download on the user's own device.
        assert_eq!(v.get("decision").and_then(Json::as_str), Some("user-device"));
        server.shutdown();
    }

    #[test]
    fn decide_unknown_file_defaults_to_cloud_predownload() {
        let svc = service_with_file(PopularityClass::Popular, true);
        let server = svc.serve("127.0.0.1:0", 2).unwrap();
        let body = r#"{"link": "http://elsewhere/file.bin", "isp": "telecom",
                       "access_kbps": 400.0}"#;
        let resp = client::post_json(server.addr(), "/decide", body).unwrap();
        let v = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("decision").and_then(Json::as_str), Some("cloud-predownload"));
        server.shutdown();
    }

    #[test]
    fn decide_rejects_bad_bodies() {
        let svc = service_with_file(PopularityClass::Popular, true);
        let server = svc.serve("127.0.0.1:0", 2).unwrap();
        for bad in ["not json", "{}", r#"{"link": "gopher://x", "access_kbps": 1}"#] {
            let resp = client::post_json(server.addr(), "/decide", bad).unwrap();
            assert_eq!(resp.status, 400, "{bad}");
        }
        server.shutdown();
    }

    #[test]
    fn front_page_is_served() {
        let svc = service_with_file(PopularityClass::Popular, true);
        let server = svc.serve("127.0.0.1:0", 2).unwrap();
        let resp = client::get(server.addr(), "/").unwrap();
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).contains("Offline Downloading Redirector"));
        server.shutdown();
    }

    #[test]
    fn decide_sets_and_honours_the_context_cookie() {
        use crate::http::{Method, Request};
        let svc = service_with_file(PopularityClass::Popular, true);

        // First request carries everything; the response sets a cookie.
        let first = svc.handle(Request {
            method: Method::Post,
            target: "/decide".into(),
            headers: vec![],
            body: format!(
                r#"{{"link": "magnet:?xt=urn:btih:{}", "isp": "other",
                    "access_kbps": 80.0,
                    "ap": {{"model": "miwifi", "device": "sata-hdd", "fs": "ext4"}}}}"#,
                id_hex(0xabc)
            )
            .into_bytes()
            .into(),
        });
        assert_eq!(first.status, 200);
        let set_cookie = first
            .extra_headers
            .iter()
            .find(|(n, _)| n == "set-cookie")
            .map(|(_, v)| v.clone())
            .expect("context cookie set");

        // Second request sends only the link; the cookie supplies the
        // impeded-user context, so the decision is the cloud→AP relay.
        let cookie_value = set_cookie.split(';').next().unwrap().to_owned();
        let second = svc.handle(Request {
            method: Method::Post,
            target: "/decide".into(),
            headers: vec![("cookie".into(), cookie_value)],
            body: format!(r#"{{"link": "magnet:?xt=urn:btih:{}"}}"#, id_hex(0xabc))
                .into_bytes()
                .into(),
        });
        assert_eq!(second.status, 200, "{:?}", second.body);
        let v = Json::parse(std::str::from_utf8(&second.body).unwrap()).unwrap();
        assert_eq!(v.get("decision").and_then(Json::as_str), Some("cloud+smart-ap"));
    }

    #[test]
    fn body_overrides_cookie() {
        use crate::http::{Method, Request};
        let svc = service_with_file(PopularityClass::Popular, true);
        let ctx = r#"{"access_kbps":80,"isp":"other"}"#;
        let header = format!("odr_ctx={}", cookie::percent_encode(ctx));
        let resp = svc.handle(Request {
            method: Method::Post,
            target: "/decide".into(),
            headers: vec![("cookie".into(), header)],
            body: format!(
                r#"{{"link": "magnet:?xt=urn:btih:{}", "isp": "telecom", "access_kbps": 900.0}}"#,
                id_hex(0xabc)
            )
            .into_bytes()
            .into(),
        });
        let v = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        // With the body's healthy context the decision is a plain cloud
        // fetch, not the relay the cookie context would imply.
        assert_eq!(v.get("decision").and_then(Json::as_str), Some("cloud"));
    }

    #[test]
    fn unknown_endpoint_is_404() {
        let svc = service_with_file(PopularityClass::Popular, true);
        let server = svc.serve("127.0.0.1:0", 2).unwrap();
        let resp = client::get(server.addr(), "/nope").unwrap();
        assert_eq!(resp.status, 404);
        server.shutdown();
    }

    #[test]
    fn load_catalog_populates_directory() {
        use odx_trace::CatalogConfig;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(170);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.002), &mut rng);
        let svc = OdrService::new(OdrEngine::default());
        svc.load_catalog(&catalog, |i| i % 2 == 0);
        assert_eq!(svc.directory_len(), catalog.len());
    }
}
