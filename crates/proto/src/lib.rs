#![warn(missing_docs)]

//! # odx-proto — the deployable ODR web service
//!
//! §6.1 presents ODR "as a public web service … deployed on any dedicated
//! servers or virtual machines" (the authors ran it on a $20/month VM).
//! This crate is that deployment surface, built from scratch on `std::net`:
//!
//! * [`json`] — a minimal JSON value model, serializer and recursive-descent
//!   parser (no external codec crates).
//! * [`http`] — an HTTP/1.1 subset: request/response parsing and writing
//!   with `Content-Length` bodies.
//! * [`server`] — a blocking TCP server on a crossbeam-channel worker pool
//!   with graceful shutdown.
//! * [`client`] — a tiny blocking HTTP client for tests and examples.
//! * [`cookie`] — §6.1's auxiliary-information cookie, so users don't
//!   re-enter their ISP/bandwidth/AP details on every request.
//! * [`api`] — the wire schema of the ODR endpoints.
//! * [`service`] — ties the `odx-odr` decision engine and a content
//!   database into the server: `POST /decide`, `GET /popularity/:id`,
//!   `GET /healthz`.
//!
//! A request/response decision service at this scale needs no async runtime:
//! a small thread pool handles it comfortably while keeping the whole stack
//! synchronous and deterministic under test.

pub mod api;
pub mod client;
pub mod cookie;
pub mod http;
pub use odx_config::json;
pub mod server;
pub mod service;

pub use json::Json;
pub use server::Server;
pub use service::OdrService;
