//! The ODR wire API: JSON encodings of requests and verdicts.
//!
//! `POST /decide` body:
//!
//! ```json
//! {
//!   "link": "magnet:?xt=urn:btih:<hex>",
//!   "isp": "unicom",
//!   "access_kbps": 400.0,
//!   "ap": {"model": "newifi", "device": "usb-flash", "fs": "ntfs"}
//! }
//! ```
//!
//! Response:
//!
//! ```json
//! {"decision": "cloud+smart-ap", "popularity": "popular",
//!  "addresses": ["B1 (impeded cloud fetch)"]}
//! ```

use odx_net::Isp;
use odx_odr::{ApContext, OdrRequest, Verdict};
use odx_smartap::ApModel;
use odx_storage::{DeviceKind, FsKind};
use odx_trace::{PopularityClass, Protocol};

use crate::Json;

/// A `/decide` request before popularity resolution: what the user submits.
#[derive(Debug, Clone, PartialEq)]
pub struct DecideRequest {
    /// Link to the original data source.
    pub link: String,
    /// The user's ISP.
    pub isp: Isp,
    /// Reported access bandwidth (KBps).
    pub access_kbps: f64,
    /// The user's smart AP, if any.
    pub ap: Option<ApContext>,
}

impl DecideRequest {
    /// Infer the transfer protocol from the submitted link's scheme.
    pub fn protocol(&self) -> Result<Protocol, ApiError> {
        let scheme = self.link.split(':').next().unwrap_or("");
        match scheme {
            "magnet" => Ok(Protocol::BitTorrent),
            "ed2k" => Ok(Protocol::EMule),
            "http" | "https" => Ok(Protocol::Http),
            "ftp" => Ok(Protocol::Ftp),
            other => Err(ApiError::new(format!("unsupported link scheme {other:?}"))),
        }
    }

    /// Parse from a JSON body.
    pub fn from_json(v: &Json) -> Result<DecideRequest, ApiError> {
        let link = v
            .get("link")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::new("missing \"link\""))?
            .to_owned();
        let isp = match v.get("isp").and_then(Json::as_str) {
            Some("unicom") => Isp::Unicom,
            Some("telecom") => Isp::Telecom,
            Some("mobile") => Isp::Mobile,
            Some("cernet") => Isp::Cernet,
            Some("other") | None => Isp::Other,
            Some(x) => return Err(ApiError::new(format!("unknown isp {x:?}"))),
        };
        let access_kbps = v
            .get("access_kbps")
            .and_then(Json::as_f64)
            .ok_or_else(|| ApiError::new("missing \"access_kbps\""))?;
        if !(access_kbps > 0.0 && access_kbps.is_finite()) {
            return Err(ApiError::new("access_kbps must be positive"));
        }
        let ap = match v.get("ap") {
            None | Some(Json::Null) => None,
            Some(ap) => Some(parse_ap(ap)?),
        };
        Ok(DecideRequest { link, isp, access_kbps, ap })
    }

    /// Serialize to a JSON body.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("link", Json::Str(self.link.clone())),
            ("isp", Json::Str(isp_str(self.isp).to_owned())),
            ("access_kbps", Json::Num(self.access_kbps)),
        ];
        if let Some(ap) = self.ap {
            fields.push((
                "ap",
                Json::obj([
                    ("model", Json::Str(ap_model_str(ap.model).to_owned())),
                    ("device", Json::Str(device_str(ap.device).to_owned())),
                    ("fs", Json::Str(fs_str(ap.fs).to_owned())),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Build the engine-level request given content-DB facts.
    pub fn resolve(
        &self,
        popularity: PopularityClass,
        cached_in_cloud: bool,
    ) -> Result<OdrRequest, ApiError> {
        Ok(OdrRequest {
            popularity,
            protocol: self.protocol()?,
            cached_in_cloud,
            isp: self.isp,
            access_kbps: self.access_kbps,
            ap: self.ap,
        })
    }
}

fn parse_ap(v: &Json) -> Result<ApContext, ApiError> {
    let model = match v.get("model").and_then(Json::as_str) {
        Some("hiwifi") => ApModel::HiWiFi,
        Some("miwifi") => ApModel::MiWiFi,
        Some("newifi") => ApModel::Newifi,
        other => return Err(ApiError::new(format!("unknown ap model {other:?}"))),
    };
    let device = match v.get("device").and_then(Json::as_str) {
        Some("sd") => DeviceKind::SdCard,
        Some("usb-flash") => DeviceKind::UsbFlash,
        Some("sata-hdd") => DeviceKind::SataHdd,
        Some("usb-hdd") => DeviceKind::UsbHdd,
        other => return Err(ApiError::new(format!("unknown device {other:?}"))),
    };
    let fs = match v.get("fs").and_then(Json::as_str) {
        Some("fat") => FsKind::Fat,
        Some("ntfs") => FsKind::Ntfs,
        Some("ext4") => FsKind::Ext4,
        other => return Err(ApiError::new(format!("unknown fs {other:?}"))),
    };
    Ok(ApContext { model, device, fs })
}

fn isp_str(isp: Isp) -> &'static str {
    match isp {
        Isp::Unicom => "unicom",
        Isp::Telecom => "telecom",
        Isp::Mobile => "mobile",
        Isp::Cernet => "cernet",
        Isp::Other => "other",
    }
}

fn ap_model_str(m: ApModel) -> &'static str {
    match m {
        ApModel::HiWiFi => "hiwifi",
        ApModel::MiWiFi => "miwifi",
        ApModel::Newifi => "newifi",
    }
}

fn device_str(d: DeviceKind) -> &'static str {
    match d {
        DeviceKind::SdCard => "sd",
        DeviceKind::UsbFlash => "usb-flash",
        DeviceKind::SataHdd => "sata-hdd",
        DeviceKind::UsbHdd => "usb-hdd",
    }
}

fn fs_str(f: FsKind) -> &'static str {
    match f {
        FsKind::Fat => "fat",
        FsKind::Ntfs => "ntfs",
        FsKind::Ext4 => "ext4",
    }
}

/// Encode a verdict (plus the popularity the DB reported) as the `/decide`
/// response body.
pub fn verdict_to_json(verdict: &Verdict, popularity: PopularityClass) -> Json {
    Json::obj([
        ("decision", Json::Str(verdict.decision.to_string())),
        ("popularity", Json::Str(popularity.to_string())),
        (
            "addresses",
            Json::Arr(verdict.addresses.iter().map(|b| Json::Str(b.to_string())).collect()),
        ),
    ])
}

/// API-level error (maps to HTTP 400).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Human-readable description.
    pub message: String,
}

impl ApiError {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> ApiError {
        ApiError { message: message.into() }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecideRequest {
        DecideRequest {
            link: "magnet:?xt=urn:btih:00ff".into(),
            isp: Isp::Cernet,
            access_kbps: 512.0,
            ap: Some(ApContext::bench(ApModel::Newifi)),
        }
    }

    #[test]
    fn decide_request_round_trips() {
        let req = sample();
        let parsed = DecideRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn protocol_from_scheme() {
        let mut req = sample();
        assert_eq!(req.protocol().unwrap(), Protocol::BitTorrent);
        req.link = "ed2k://|file|x|1|y|/".into();
        assert_eq!(req.protocol().unwrap(), Protocol::EMule);
        req.link = "https://host/file".into();
        assert_eq!(req.protocol().unwrap(), Protocol::Http);
        req.link = "gopher://old".into();
        assert!(req.protocol().is_err());
    }

    #[test]
    fn missing_fields_are_rejected() {
        for body in [
            "{}",
            r#"{"link": "magnet:?x"}"#,
            r#"{"link": "magnet:?x", "access_kbps": -5, "isp": "unicom"}"#,
            r#"{"link": "magnet:?x", "access_kbps": 10, "isp": "unicom", "ap": {"model": "tplink"}}"#,
        ] {
            let v = Json::parse(body).unwrap();
            assert!(DecideRequest::from_json(&v).is_err(), "{body}");
        }
    }

    #[test]
    fn verdict_encodes_with_rationale() {
        let verdict = Verdict {
            decision: odx_odr::Decision::CloudThenSmartAp,
            addresses: vec![odx_odr::Bottleneck::B1CloudFetchImpeded],
        };
        let v = verdict_to_json(&verdict, PopularityClass::Popular);
        assert_eq!(v.get("decision").and_then(Json::as_str), Some("cloud+smart-ap"));
        assert_eq!(v.get("popularity").and_then(Json::as_str), Some("popular"));
        match v.get("addresses") {
            Some(Json::Arr(a)) => assert_eq!(a.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ap_less_request_round_trips() {
        let mut req = sample();
        req.ap = None;
        let parsed = DecideRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(parsed.ap, None);
    }
}
