//! Effective write throughput and iowait under the pre-download pattern.
//!
//! Pre-downloading produces *frequent, small data writes*: aria2/wget append
//! 16 KiB-ish chunks as pieces arrive, interleaved across files and with
//! per-piece fsync-like metadata updates. Table 2 of the paper measures the
//! resulting maximum pre-download speed and iowait ratio for each (device,
//! filesystem) pair on Newifi (580 MHz), HiWiFi (580 MHz) and MiWiFi (1 GHz).
//!
//! Two regimes:
//!
//! * **Kernel path (FAT/EXT4).** Throughput limit = the pair's *sustained*
//!   small-write rate; `iowait = achieved / burst` where *burst* is the
//!   instantaneous service rate. Flash media sustain much less than they
//!   burst (FTL erase/GC stalls), which is exactly why Newifi's USB flash
//!   caps out at 2.12–2.13 MBps with 55–66 % iowait while the disks cruise
//!   at the full 2.37 MBps network rate.
//! * **FUSE path (NTFS).** Throughput limit = `1 / (cpu_cost + dev_cost)`
//!   with `cpu_cost = K_FUSE / cpu_mhz` — each megabyte must be copied and
//!   processed in user space, so a 580 MHz MIPS core caps around 1 MBps no
//!   matter how fast the device is. The device sees batched sequential
//!   writes, so iowait is *low* — the counter-intuitive Table 2 signature.
//!
//! The burst/sustained constants below are calibrated so every Table 2 cell
//! reproduces within a few percent; the unit tests pin each one.

use serde::Serialize;

use crate::{DeviceKind, FsKind};

/// FUSE CPU cost in (MHz · seconds) per megabyte written: at 580 MHz this is
/// 0.73 s/MB of pure CPU work, reproducing Newifi's 0.93–1.13 MBps NTFS caps.
pub const K_FUSE_MHZ_S_PER_MB: f64 = 423.4;

/// The receiver-side TCP window the paper observed nearly always full during
/// storage-limited pre-downloads (bytes).
pub const TCP_WINDOW_BYTES: f64 = 14_608.0;

/// A (device, filesystem) pair's write capability under the frequent
/// small-write pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WriteProfile {
    /// Long-run sustainable write rate (MBps). The pre-download speed is
    /// `min(network rate, sustained)`.
    pub sustained_mbps: f64,
    /// Instantaneous service rate (MBps) used for the iowait ratio.
    pub burst_service_mbps: f64,
    /// Whether this pair goes through the user-space (FUSE) driver.
    pub user_space: bool,
}

impl WriteProfile {
    /// The iowait ratio observed when writing at `achieved_mbps`: the
    /// fraction of wall time the writer sits in I/O wait.
    pub fn iowait_at(&self, achieved_mbps: f64) -> f64 {
        (achieved_mbps / self.burst_service_mbps).clamp(0.0, 1.0)
    }

    /// The achievable pre-download rate (MBps) given the network offers
    /// `network_mbps`.
    pub fn effective_mbps(&self, network_mbps: f64) -> f64 {
        network_mbps.min(self.sustained_mbps)
    }
}

/// Kernel-path calibration table: `(burst, sustained)` MBps per pair.
fn kernel_profile(dev: DeviceKind, fs: FsKind) -> (f64, f64) {
    use DeviceKind::*;
    use FsKind::*;
    match (dev, fs) {
        // HiWiFi's SD card (FAT-only): network-limited, 42.1 % iowait.
        (SdCard, Fat) => (5.63, 4.50),
        (SdCard, Ext4) => (6.00, 4.80),
        // Newifi's USB flash: the Bottleneck 4 poster child.
        (UsbFlash, Fat) => (3.20, 2.12),
        (UsbFlash, Ext4) => (3.87, 2.13),
        // MiWiFi's SATA disk: comfortable headroom (29.7 % iowait).
        (SataHdd, Fat) => (7.00, 5.50),
        (SataHdd, Ext4) => (7.98, 6.50),
        // The Table 2 USB hard disk.
        (UsbHdd, Fat) => (5.64, 4.50),
        (UsbHdd, Ext4) => (13.60, 8.00),
        (_, Ntfs) => unreachable!("NTFS uses the FUSE path"),
    }
}

/// The write profile for a (device, filesystem) pair on an AP with the given
/// CPU clock.
pub fn write_profile(dev: DeviceKind, fs: FsKind, cpu_mhz: f64) -> WriteProfile {
    assert!(cpu_mhz > 0.0, "cpu_mhz must be positive");
    if fs.is_user_space() {
        // CPU copy/translate cost plus the device's share, in s/MB.
        let cpu_cost = K_FUSE_MHZ_S_PER_MB / cpu_mhz;
        let dev_cost = 1.0 / kernel_profile(dev, FsKind::Fat).0;
        WriteProfile {
            sustained_mbps: 1.0 / (cpu_cost + dev_cost),
            burst_service_mbps: dev.fuse_seq_service_mbps(),
            user_space: true,
        }
    } else {
        let (burst, sustained) = kernel_profile(dev, fs);
        WriteProfile { sustained_mbps: sustained, burst_service_mbps: burst, user_space: false }
    }
}

/// Convenience: the effective pre-download rate in **KBps** for a network
/// offer in KBps (the unit the rest of the workspace uses).
pub fn effective_rate_kbps(dev: DeviceKind, fs: FsKind, cpu_mhz: f64, network_kbps: f64) -> f64 {
    write_profile(dev, fs, cpu_mhz).effective_mbps(network_kbps / 1000.0) * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §5.2 replay offered the full ADSL rate: 2.37 MBps.
    const NET: f64 = 2.37;
    /// Newifi's and HiWiFi's CPU clock.
    const MHZ_580: f64 = 580.0;
    /// MiWiFi's CPU clock.
    const MHZ_1000: f64 = 1000.0;

    fn check(dev: DeviceKind, fs: FsKind, mhz: f64, want_rate: f64, want_iowait: f64) {
        let p = write_profile(dev, fs, mhz);
        let rate = p.effective_mbps(NET);
        let iowait = p.iowait_at(rate);
        assert!(
            (rate - want_rate).abs() / want_rate < 0.05,
            "{dev} {fs}: rate {rate:.3} vs Table 2 {want_rate}"
        );
        assert!(
            (iowait - want_iowait).abs() < 0.02,
            "{dev} {fs}: iowait {iowait:.3} vs Table 2 {want_iowait}"
        );
    }

    #[test]
    fn table2_hiwifi_sd_fat() {
        check(DeviceKind::SdCard, FsKind::Fat, MHZ_580, 2.37, 0.421);
    }

    #[test]
    fn table2_miwifi_sata_ext4() {
        check(DeviceKind::SataHdd, FsKind::Ext4, MHZ_1000, 2.37, 0.297);
    }

    #[test]
    fn table2_newifi_flash_fat() {
        check(DeviceKind::UsbFlash, FsKind::Fat, MHZ_580, 2.12, 0.663);
    }

    #[test]
    fn table2_newifi_flash_ntfs() {
        check(DeviceKind::UsbFlash, FsKind::Ntfs, MHZ_580, 0.93, 0.151);
    }

    #[test]
    fn table2_newifi_flash_ext4() {
        check(DeviceKind::UsbFlash, FsKind::Ext4, MHZ_580, 2.13, 0.55);
    }

    #[test]
    fn table2_newifi_usbhdd_fat() {
        check(DeviceKind::UsbHdd, FsKind::Fat, MHZ_580, 2.37, 0.42);
    }

    #[test]
    fn table2_newifi_usbhdd_ntfs() {
        check(DeviceKind::UsbHdd, FsKind::Ntfs, MHZ_580, 1.13, 0.098);
    }

    #[test]
    fn table2_newifi_usbhdd_ext4() {
        check(DeviceKind::UsbHdd, FsKind::Ext4, MHZ_580, 2.37, 0.174);
    }

    #[test]
    fn ntfs_signature_low_iowait_low_throughput() {
        // The Table 2 paradox: NTFS has the lowest iowait *and* the lowest
        // throughput of any filesystem on the same device.
        for dev in [DeviceKind::UsbFlash, DeviceKind::UsbHdd] {
            let ntfs = write_profile(dev, FsKind::Ntfs, MHZ_580);
            let fat = write_profile(dev, FsKind::Fat, MHZ_580);
            let r_ntfs = ntfs.effective_mbps(NET);
            let r_fat = fat.effective_mbps(NET);
            assert!(r_ntfs < r_fat, "{dev}: NTFS {r_ntfs} should be slower than FAT {r_fat}");
            assert!(ntfs.iowait_at(r_ntfs) < fat.iowait_at(r_fat), "{dev}: NTFS iowait lower");
        }
    }

    #[test]
    fn faster_cpu_lifts_the_fuse_ceiling() {
        let slow = write_profile(DeviceKind::UsbFlash, FsKind::Ntfs, 580.0);
        let fast = write_profile(DeviceKind::UsbFlash, FsKind::Ntfs, 1200.0);
        assert!(fast.sustained_mbps > slow.sustained_mbps * 1.3);
    }

    #[test]
    fn slow_network_is_never_storage_limited() {
        // At typical swarm rates (tens of KBps) storage never binds — which
        // is why Bottleneck 4 only shows up on fast (popular-file) downloads.
        let rate = effective_rate_kbps(DeviceKind::UsbFlash, FsKind::Ntfs, MHZ_580, 64.0);
        assert!((rate - 64.0).abs() < 1e-9);
    }

    #[test]
    fn effective_rate_kbps_unit_round_trip() {
        let r = effective_rate_kbps(DeviceKind::UsbFlash, FsKind::Fat, MHZ_580, 2500.0);
        assert!((r - 2120.0).abs() / 2120.0 < 0.01, "{r}");
    }

    #[test]
    fn iowait_clamped_to_unit_interval() {
        let p = write_profile(DeviceKind::UsbFlash, FsKind::Fat, MHZ_580);
        assert_eq!(p.iowait_at(1e9), 1.0);
        assert_eq!(p.iowait_at(0.0), 0.0);
    }
}
