//! Storage device models (§5.1 hardware).

use serde::Serialize;
use std::fmt;

/// The storage devices used by the three benchmarked smart APs, plus the USB
/// hard disk used in the Table 2 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum DeviceKind {
    /// HiWiFi's embedded 8 GB SD card (max write/read 15/30 MBps).
    SdCard,
    /// Newifi's external 8 GB USB 2.0 flash drive (max write/read 10/20 MBps).
    UsbFlash,
    /// MiWiFi's internal 1 TB 5400 RPM SATA disk (max write/read 30/70 MBps).
    SataHdd,
    /// The 5400 RPM USB hard disk from the Table 2 sweep (max write/read
    /// 10/25 MBps).
    UsbHdd,
}

impl DeviceKind {
    /// All device kinds, in Table 2 order.
    pub const ALL: [DeviceKind; 4] =
        [DeviceKind::SdCard, DeviceKind::UsbFlash, DeviceKind::SataHdd, DeviceKind::UsbHdd];

    /// Stable lowercase config name (what scenario files write).
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::SdCard => "sd-card",
            DeviceKind::UsbFlash => "usb-flash",
            DeviceKind::SataHdd => "sata-hdd",
            DeviceKind::UsbHdd => "usb-hdd",
        }
    }

    /// Parse a config name produced by [`DeviceKind::name`].
    pub fn parse(name: &str) -> Option<DeviceKind> {
        DeviceKind::ALL.into_iter().find(|d| d.name() == name)
    }

    /// Spec-sheet maximum sequential write speed (MBps).
    pub fn max_write_mbps(self) -> f64 {
        match self {
            DeviceKind::SdCard => 15.0,
            DeviceKind::UsbFlash => 10.0,
            DeviceKind::SataHdd => 30.0,
            DeviceKind::UsbHdd => 10.0,
        }
    }

    /// Spec-sheet maximum sequential read speed (MBps).
    pub fn max_read_mbps(self) -> f64 {
        match self {
            DeviceKind::SdCard => 30.0,
            DeviceKind::UsbFlash => 20.0,
            DeviceKind::SataHdd => 70.0,
            DeviceKind::UsbHdd => 25.0,
        }
    }

    /// Effective *sequential* service rate under the FUSE write path (MBps):
    /// ntfs-3g batches small writes into larger sequential ones, so the
    /// device sees an easier pattern than the kernel small-write path.
    /// Calibrated to Table 2's NTFS iowait rows (15.1 % flash, 9.8 % USB HDD).
    pub fn fuse_seq_service_mbps(self) -> f64 {
        match self {
            DeviceKind::SdCard => 6.5,
            DeviceKind::UsbFlash => 6.0,
            DeviceKind::SataHdd => 20.0,
            DeviceKind::UsbHdd => 11.5,
        }
    }

    /// Whether flash-translation-layer erase/GC stalls apply (flash media
    /// handle frequent small writes poorly — the root of Newifi's Table 2
    /// numbers).
    pub fn is_flash(self) -> bool {
        matches!(self, DeviceKind::SdCard | DeviceKind::UsbFlash)
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::SdCard => "SD card",
            DeviceKind::UsbFlash => "USB flash drive",
            DeviceKind::SataHdd => "SATA hard disk drive",
            DeviceKind::UsbHdd => "USB hard disk drive",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_sheet_matches_section_5_1() {
        assert_eq!(DeviceKind::SdCard.max_write_mbps(), 15.0);
        assert_eq!(DeviceKind::SdCard.max_read_mbps(), 30.0);
        assert_eq!(DeviceKind::UsbFlash.max_write_mbps(), 10.0);
        assert_eq!(DeviceKind::SataHdd.max_write_mbps(), 30.0);
        assert_eq!(DeviceKind::UsbHdd.max_read_mbps(), 25.0);
    }

    #[test]
    fn flash_classification() {
        assert!(DeviceKind::SdCard.is_flash());
        assert!(DeviceKind::UsbFlash.is_flash());
        assert!(!DeviceKind::SataHdd.is_flash());
        assert!(!DeviceKind::UsbHdd.is_flash());
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceKind::UsbFlash.to_string(), "USB flash drive");
    }
}
