//! Filesystem write-path models.

use serde::Serialize;
use std::fmt;

/// The filesystems in the Table 2 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FsKind {
    /// FAT/FAT32 — the only format HiWiFi accepts for its SD card.
    Fat,
    /// NTFS — served on OpenWrt by the user-space ntfs-3g (FUSE) driver;
    /// CPU-bound, the paper's "incompatibility between NTFS and OpenWrt".
    Ntfs,
    /// EXT4 — OpenWrt's native filesystem; MiWiFi's disk ships as EXT4 and
    /// cannot be reformatted.
    Ext4,
}

impl FsKind {
    /// All filesystems, in Table 2 column order.
    pub const ALL: [FsKind; 3] = [FsKind::Fat, FsKind::Ntfs, FsKind::Ext4];

    /// Stable lowercase config name (what scenario files write).
    pub fn name(self) -> &'static str {
        match self {
            FsKind::Fat => "fat",
            FsKind::Ntfs => "ntfs",
            FsKind::Ext4 => "ext4",
        }
    }

    /// Parse a config name produced by [`FsKind::name`].
    pub fn parse(name: &str) -> Option<FsKind> {
        FsKind::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Whether the OpenWrt write path goes through a user-space (FUSE)
    /// driver rather than a kernel driver.
    pub fn is_user_space(self) -> bool {
        matches!(self, FsKind::Ntfs)
    }
}

impl fmt::Display for FsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FsKind::Fat => "FAT",
            FsKind::Ntfs => "NTFS",
            FsKind::Ext4 => "EXT4",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_ntfs_is_user_space() {
        assert!(FsKind::Ntfs.is_user_space());
        assert!(!FsKind::Fat.is_user_space());
        assert!(!FsKind::Ext4.is_user_space());
    }

    #[test]
    fn display_names() {
        assert_eq!(FsKind::Fat.to_string(), "FAT");
        assert_eq!(FsKind::Ntfs.to_string(), "NTFS");
        assert_eq!(FsKind::Ext4.to_string(), "EXT4");
    }
}
