//! TCP receive-window coupling between storage and network.
//!
//! §5.2: during storage-limited pre-downloads "the receiver-side TCP sliding
//! window (the typical size is 14608 bytes) is almost full in most of the
//! time" — the slow write path back-pressures the sender through the
//! advertised window. This module quantifies that: how often the window is
//! full, and what the sender-visible throughput becomes.

use crate::write_model::TCP_WINDOW_BYTES;

/// Steady-state throughput (KBps) when the network offers `offered_kbps` but
/// storage drains at `drain_kbps`: the slower side wins.
pub fn coupled_rate_kbps(offered_kbps: f64, drain_kbps: f64) -> f64 {
    offered_kbps.min(drain_kbps).max(0.0)
}

/// Fraction of time the receive window sits full: zero while storage keeps
/// up, approaching one as the drain rate falls below the offer.
pub fn window_full_fraction(offered_kbps: f64, drain_kbps: f64) -> f64 {
    if offered_kbps <= 0.0 {
        return 0.0;
    }
    (1.0 - drain_kbps / offered_kbps).clamp(0.0, 1.0)
}

/// Time (seconds) for the sender to fill the advertised window when the
/// receiver stops draining — the stall granularity of the transfer.
pub fn window_fill_secs(offered_kbps: f64) -> f64 {
    if offered_kbps <= 0.0 {
        f64::INFINITY
    } else {
        TCP_WINDOW_BYTES / 1000.0 / offered_kbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_storage_never_stalls() {
        assert_eq!(coupled_rate_kbps(2370.0, 4500.0), 2370.0);
        assert_eq!(window_full_fraction(2370.0, 4500.0), 0.0);
    }

    #[test]
    fn slow_storage_caps_rate_and_fills_window() {
        // Newifi + USB flash + NTFS: 2.37 MBps offered, 0.93 MBps drained.
        let rate = coupled_rate_kbps(2370.0, 930.0);
        assert_eq!(rate, 930.0);
        let full = window_full_fraction(2370.0, 930.0);
        assert!(full > 0.6, "window mostly full: {full}");
    }

    #[test]
    fn window_fill_time_is_milliseconds_at_adsl_rates() {
        let secs = window_fill_secs(2370.0);
        assert!((secs - 14.608 / 2370.0).abs() < 1e-9);
        assert!(secs < 0.01, "fills in ~6 ms at full ADSL rate");
        assert!(window_fill_secs(0.0).is_infinite());
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(coupled_rate_kbps(-5.0, 10.0), 0.0);
        assert_eq!(window_full_fraction(0.0, 10.0), 0.0);
    }
}
