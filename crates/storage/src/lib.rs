#![warn(missing_docs)]

//! # odx-storage — smart-AP storage substrate
//!
//! The paper's fourth bottleneck: *a smart AP's pre-downloading speed can be
//! restricted by its hardware and/or filesystem*, because some storage
//! devices and filesystems "do not fit the pattern of frequent, small data
//! writes during the pre-downloading process" (§5.2, Table 2).
//!
//! The mechanism has two regimes, and this crate models both:
//!
//! * **Kernel filesystems (FAT, EXT4)** — the write path is I/O-bound. Each
//!   (device, filesystem) pair has a *burst service rate* (how fast the
//!   device absorbs the small-write pattern instant by instant) and a
//!   *sustained rate* (long-run, after allocator/journal/flash-GC stalls).
//!   The observed iowait ratio is `achieved_rate / burst_service`.
//! * **NTFS on OpenWrt** — served by the user-space ntfs-3g (FUSE) driver,
//!   so the path is *CPU-bound*: low iowait but a hard throughput ceiling of
//!   `1 / (cpu_cost + device_cost)`. This is why Table 2 shows NTFS with the
//!   *lowest* iowait yet the *worst* throughput.
//!
//! When the storage path is slower than the network offers, the receiver's
//! TCP window (typically 14 608 bytes, §5.2) fills and the sender throttles —
//! [`tcp`] quantifies that coupling.
//!
//! Constants are calibrated to Table 2; `write_model::tests` pins every cell.

mod device;
mod filesystem;
pub mod tcp;
mod write_model;

pub use device::DeviceKind;
pub use filesystem::FsKind;
pub use write_model::{effective_rate_kbps, write_profile, WriteProfile};
