//! Property-based tests for the storage write models.

use odx_storage::{effective_rate_kbps, write_profile, DeviceKind, FsKind};
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = DeviceKind> {
    (0usize..4).prop_map(|i| DeviceKind::ALL[i])
}

fn arb_fs() -> impl Strategy<Value = FsKind> {
    (0usize..3).prop_map(|i| FsKind::ALL[i])
}

proptest! {
    /// The effective rate never exceeds the offer, is non-negative, and is
    /// monotone non-decreasing in the offered rate.
    #[test]
    fn effective_rate_is_sane(
        device in arb_device(),
        fs in arb_fs(),
        cpu in 300.0f64..2000.0,
        offered_lo in 1.0f64..5000.0,
        bump in 0.0f64..5000.0,
    ) {
        let lo = effective_rate_kbps(device, fs, cpu, offered_lo);
        let hi = effective_rate_kbps(device, fs, cpu, offered_lo + bump);
        prop_assert!(lo >= 0.0 && lo <= offered_lo + 1e-9, "{lo} vs {offered_lo}");
        prop_assert!(hi + 1e-9 >= lo, "monotonicity: {lo} → {hi}");
    }

    /// iowait is a ratio in [0, 1] and monotone in the achieved rate.
    #[test]
    fn iowait_is_a_monotone_ratio(
        device in arb_device(),
        fs in arb_fs(),
        cpu in 300.0f64..2000.0,
        r1 in 0.0f64..5.0,
        dr in 0.0f64..5.0,
    ) {
        let p = write_profile(device, fs, cpu);
        let a = p.iowait_at(r1);
        let b = p.iowait_at(r1 + dr);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(b + 1e-12 >= a);
    }

    /// NTFS (the FUSE path) never out-runs the kernel filesystems on the
    /// same device — Table 2's defining pattern.
    #[test]
    fn ntfs_never_beats_kernel_paths(device in arb_device(), cpu in 300.0f64..2000.0) {
        let offered = 10_000.0;
        let ntfs = effective_rate_kbps(device, FsKind::Ntfs, cpu, offered);
        for fs in [FsKind::Fat, FsKind::Ext4] {
            let kernel = effective_rate_kbps(device, fs, cpu, offered);
            prop_assert!(ntfs <= kernel + 1e-9, "{device}: ntfs {ntfs} vs {fs} {kernel}");
        }
    }

    /// A faster CPU never hurts, and only matters for the FUSE path.
    #[test]
    fn cpu_scaling(device in arb_device(), fs in arb_fs(), cpu in 300.0f64..1500.0) {
        let offered = 10_000.0;
        let slow = effective_rate_kbps(device, fs, cpu, offered);
        let fast = effective_rate_kbps(device, fs, cpu * 2.0, offered);
        prop_assert!(fast + 1e-9 >= slow);
        if !fs.is_user_space() {
            prop_assert!((fast - slow).abs() < 1e-9, "kernel paths ignore the CPU");
        } else {
            prop_assert!(fast > slow, "FUSE scales with the CPU");
        }
    }

    /// Below every sustained limit, the network rate passes through
    /// unchanged (storage is invisible for slow sources — why Bottleneck 4
    /// only bites on fast downloads).
    #[test]
    fn slow_offers_pass_through(
        device in arb_device(),
        fs in arb_fs(),
        offered in 1.0f64..500.0,
    ) {
        let rate = effective_rate_kbps(device, fs, 580.0, offered);
        prop_assert!((rate - offered).abs() < 1e-9, "{rate} vs {offered}");
    }
}
