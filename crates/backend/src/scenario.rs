//! Named experiment scenarios: specs resolved into one runnable value that
//! configures backends, workload tweaks, and the AP fleet.
//!
//! Since the scenarios-as-data refactor every scenario — built-in preset or
//! user file — starts life as an `odx_config::ScenarioSpec` (pure strings
//! and numbers) and becomes a [`Scenario`] only through
//! [`Scenario::from_spec`], which validates numeric bounds (in
//! `odx-config`) and resolves enum names (here, where the vocabularies
//! live). `repro --scenario NAME` resolves in the [`ScenarioRegistry`];
//! `repro --scenario-file f.json` loads user specs into the same registry
//! via [`ScenarioRegistry::load_json`].

use odx_cache::{CacheConfig, PolicyKind};
use odx_config::{ConfigError, Json, ScenarioSpec};
use odx_faults::{FaultsConfig, RetryConfig, RetryKind};
use odx_net::IspMix;
use odx_sim::SchedulerKind;
use odx_smartap::ApModel;
use odx_storage::{DeviceKind, FsKind};

use crate::{ApContext, BackendConfig};

/// One named experiment configuration.
///
/// A scenario bundles everything that distinguishes an experiment from the
/// paper's baseline: backend tuning ([`BackendConfig`]), cloud-side feature
/// flags (cache, privileged paths), workload scaling (user-base sweeps),
/// ISP-mix overrides, and the smart-AP fleet under test. The evaluators
/// take a scenario instead of a loose bag of flags, so every run is
/// reproducible from its name — and since the spec refactor, from its
/// canonical JSON dump.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Registry key (what `repro --scenario` takes).
    pub name: String,
    /// One-line description shown by `repro list`.
    pub summary: String,
    /// Backend tuning knobs.
    pub backend: BackendConfig,
    /// Whether the cloud's collaborative cache is enabled (the §4.3
    /// ablation turns it off).
    pub cache_enabled: bool,
    /// The pool's replacement policy and shard count (`repro cache-compare`
    /// sweeps the policy axis; every preset defaults to single-shard LRU).
    pub cache: CacheConfig,
    /// Multiplier on the pool's byte budget. `1.0` is the paper's 2 PB at
    /// scale 1.0; the `cache-pressure` preset shrinks it so replacement
    /// policies actually differ (at full capacity nothing ever evicts).
    pub cache_capacity_factor: f64,
    /// Whether the cloud's privileged intra-ISP paths are enabled (the
    /// §4.2 ablation turns them off).
    pub privileged_paths: bool,
    /// User-base multiplier: the cloud's per-user upload capacity shrinks
    /// by this factor (the §4 what-if sweep).
    pub demand_factor: f64,
    /// Override for CERNET's share of the user population; the other ISPs'
    /// shares are rescaled proportionally. `None` keeps the default mix.
    pub cernet_share: Option<f64>,
    /// Fault-injection knobs (`faults.*`; zero intensity — no injection —
    /// in every preset, keeping default replays byte-identical).
    pub faults: FaultsConfig,
    /// Retry/backoff knobs (`retry.*`; policy `none` in every preset,
    /// matching the paper's observed no-retry behaviour).
    pub retry: RetryConfig,
    /// The three-AP fleet used by the AP benchmark and ODR's round-robin
    /// AP assignment.
    pub ap_fleet: [ApContext; 3],
    /// Which future-event list the DES runs on (`--set
    /// sim.scheduler=wheel`). Purely a wall-clock knob: both schedulers
    /// produce byte-identical exports, pinned under test.
    pub scheduler: SchedulerKind,
    /// Virtual seconds between metric-series samples (`--set
    /// telemetry.series_interval_s=60`). Only consulted by runs that
    /// record a series; it never perturbs the simulated system.
    pub series_interval_s: f64,
}

impl Scenario {
    /// Resolve a validated spec into a runnable scenario: numeric bounds
    /// via [`ScenarioSpec::validate`], then every enum name (cache policy,
    /// AP model, device, filesystem) against its vocabulary — unknown names
    /// fail with the field path and the nearest valid alternative.
    pub fn from_spec(spec: &ScenarioSpec) -> Result<Scenario, ConfigError> {
        spec.validate()?;
        let policy = PolicyKind::parse(&spec.cache.policy).ok_or_else(|| {
            ConfigError::unknown(
                "cache.policy",
                "cache policy",
                &spec.cache.policy,
                PolicyKind::ALL.map(PolicyKind::name),
            )
        })?;
        let scheduler = SchedulerKind::parse(&spec.sim.scheduler).ok_or_else(|| {
            ConfigError::unknown(
                "sim.scheduler",
                "scheduler",
                &spec.sim.scheduler,
                SchedulerKind::ALL.map(SchedulerKind::name),
            )
        })?;
        let retry_kind = RetryKind::parse(&spec.retry.policy).ok_or_else(|| {
            ConfigError::unknown(
                "retry.policy",
                "retry policy",
                &spec.retry.policy,
                RetryKind::ALL.map(RetryKind::name),
            )
        })?;
        let mut fleet = Vec::with_capacity(3);
        for (i, ap) in spec.ap_fleet.iter().enumerate() {
            let model = ApModel::parse(&ap.model).ok_or_else(|| {
                ConfigError::unknown(
                    format!("ap_fleet.{i}.model"),
                    "AP model",
                    &ap.model,
                    ApModel::ALL.map(ApModel::name),
                )
            })?;
            let device = DeviceKind::parse(&ap.device).ok_or_else(|| {
                ConfigError::unknown(
                    format!("ap_fleet.{i}.device"),
                    "storage device",
                    &ap.device,
                    DeviceKind::ALL.map(DeviceKind::name),
                )
            })?;
            let fs = FsKind::parse(&ap.fs).ok_or_else(|| {
                ConfigError::unknown(
                    format!("ap_fleet.{i}.fs"),
                    "filesystem",
                    &ap.fs,
                    FsKind::ALL.map(FsKind::name),
                )
            })?;
            fleet.push(ApContext { model, device, fs });
        }
        Ok(Scenario {
            name: spec.name.clone(),
            summary: spec.summary.clone(),
            backend: BackendConfig {
                dynamics_probability: spec.backend.dynamics_probability,
                warm_cache_pivot: spec.backend.warm_cache_pivot,
                retry_decay: spec.backend.retry_decay,
                cloud_retry_factor: spec.backend.cloud_retry_factor,
                line_payload_kbps: spec.backend.line_payload_kbps,
            },
            cache_enabled: spec.cache_enabled,
            cache: CacheConfig { policy, shards: spec.cache.shards },
            cache_capacity_factor: spec.cache_capacity_factor,
            privileged_paths: spec.privileged_paths,
            demand_factor: spec.demand_factor,
            cernet_share: spec.cernet_share,
            faults: FaultsConfig {
                intensity: spec.faults.intensity,
                window_s: spec.faults.window_s,
                net_slowdown: spec.faults.net_slowdown,
                cloud_slowdown: spec.faults.cloud_slowdown,
                ap_slowdown: spec.faults.ap_slowdown,
            },
            retry: RetryConfig {
                kind: retry_kind,
                base_delay_s: spec.retry.base_delay_s,
                max_attempts: spec.retry.max_attempts,
                jitter: spec.retry.jitter,
            },
            ap_fleet: [fleet[0], fleet[1], fleet[2]],
            scheduler,
            series_interval_s: spec.telemetry.series_interval_s,
        })
    }

    /// The spec this scenario resolves from (axes are a registry-level
    /// concern, so the emitted spec has none). `to_spec` → `from_spec` is
    /// the identity.
    pub fn to_spec(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::baseline(&self.name, &self.summary);
        spec.backend.dynamics_probability = self.backend.dynamics_probability;
        spec.backend.warm_cache_pivot = self.backend.warm_cache_pivot;
        spec.backend.retry_decay = self.backend.retry_decay;
        spec.backend.cloud_retry_factor = self.backend.cloud_retry_factor;
        spec.backend.line_payload_kbps = self.backend.line_payload_kbps;
        spec.cache_enabled = self.cache_enabled;
        spec.cache.policy = self.cache.policy.name().to_owned();
        spec.cache.shards = self.cache.shards;
        spec.cache_capacity_factor = self.cache_capacity_factor;
        spec.privileged_paths = self.privileged_paths;
        spec.demand_factor = self.demand_factor;
        spec.cernet_share = self.cernet_share;
        spec.faults.intensity = self.faults.intensity;
        spec.faults.window_s = self.faults.window_s;
        spec.faults.net_slowdown = self.faults.net_slowdown;
        spec.faults.cloud_slowdown = self.faults.cloud_slowdown;
        spec.faults.ap_slowdown = self.faults.ap_slowdown;
        spec.retry.policy = self.retry.kind.name().to_owned();
        spec.retry.base_delay_s = self.retry.base_delay_s;
        spec.retry.max_attempts = self.retry.max_attempts;
        spec.retry.jitter = self.retry.jitter;
        for (slot, ctx) in spec.ap_fleet.iter_mut().zip(self.ap_fleet) {
            slot.model = ctx.model.name().to_owned();
            slot.device = ctx.device.name().to_owned();
            slot.fs = ctx.fs.name().to_owned();
        }
        spec.sim.scheduler = self.scheduler.name().to_owned();
        spec.telemetry.series_interval_s = self.series_interval_s;
        spec
    }

    /// The series sampling cadence in engine milliseconds (rounded,
    /// clamped to at least 1 ms so a sub-millisecond spec value cannot
    /// produce a zero-interval recorder).
    pub fn series_interval_ms(&self) -> u64 {
        (self.series_interval_s * 1000.0).round().max(1.0) as u64
    }

    /// The population's ISP mix under this scenario: the default 2015 mix,
    /// or — when [`Scenario::cernet_share`] is set — CERNET pinned to that
    /// share with every other ISP rescaled proportionally (so the mix still
    /// sums to 1). The share is guaranteed in `[0, 1)` by spec validation.
    pub fn isp_mix(&self) -> IspMix {
        match self.cernet_share {
            Some(cernet) => IspMix::with_cernet_share(cernet),
            None => IspMix::default(),
        }
    }
}

/// Reasons a scenario name is rejected at registration: names key the
/// sweep's `(scenario, seed)` merge and its CSV rows, so the characters
/// the axis expander and the CSV writer reserve are banned.
fn check_name(name: &str) -> Result<(), ConfigError> {
    if name.is_empty() {
        return Err(ConfigError::at("name", "scenario name must not be empty"));
    }
    if name == "all" {
        return Err(ConfigError::at("name", "`all` is the reserved sweep selector"));
    }
    if let Some(bad) = name.chars().find(|c| *c == '/' || *c == ',' || c.is_whitespace()) {
        return Err(ConfigError::at(
            "name",
            format!("scenario name must not contain `{bad}` (reserved for axis expansion and CSV)"),
        ));
    }
    Ok(())
}

/// The scenario registry: built-in presets plus any user specs loaded from
/// scenario files. Every entry is stored as its spec *and* its resolved
/// base scenario (axes stripped), both validated at registration — lookups
/// after that are infallible.
#[derive(Debug, Clone)]
pub struct ScenarioRegistry {
    specs: Vec<ScenarioSpec>,
    scenarios: Vec<Scenario>,
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        ScenarioRegistry::builtin()
    }
}

impl ScenarioRegistry {
    /// The built-in presets: the paper baseline, the ablations the repro
    /// harness always ran, the what-ifs, and the cache-pressure stress.
    /// Every preset is authored as a delta over [`ScenarioSpec::baseline`]
    /// and resolved through the same pipeline as user scenario files.
    pub fn builtin() -> ScenarioRegistry {
        let mut cernet_heavy = ScenarioSpec::baseline(
            "cernet-heavy",
            "what-if: CERNET serves 30 % of users (campus-dominated population)",
        );
        cernet_heavy.cernet_share = Some(0.30);

        let mut usb3_aps = ScenarioSpec::baseline(
            "usb3-aps",
            "what-if: every benchmark AP upgraded to a USB hard disk formatted EXT4",
        );
        for slot in &mut usb3_aps.ap_fleet {
            slot.device = DeviceKind::UsbHdd.name().to_owned();
            slot.fs = FsKind::Ext4.name().to_owned();
        }

        let mut ablate_cache = ScenarioSpec::baseline(
            "ablate-cache",
            "ablation: cloud collaborative cache disabled (every request re-fetches)",
        );
        ablate_cache.cache_enabled = false;

        let mut ablate_privileged = ScenarioSpec::baseline(
            "ablate-privileged",
            "ablation: privileged intra-ISP upload paths disabled (all fetches cross the barrier)",
        );
        ablate_privileged.privileged_paths = false;

        let mut sweep_userbase = ScenarioSpec::baseline(
            "sweep-userbase",
            "stress: user base grown 1.5x with the same cloud upload capacity",
        );
        sweep_userbase.demand_factor = 1.5;

        let mut cache_pressure = ScenarioSpec::baseline(
            "cache-pressure",
            "stress: pool shrunk to 2 % of the paper's budget (replacement policies diverge)",
        );
        cache_pressure.cache_capacity_factor = 0.02;

        let mut reg = ScenarioRegistry { specs: Vec::new(), scenarios: Vec::new() };
        for spec in [
            ScenarioSpec::baseline(
                "paper-default",
                "the paper's measured configuration (all headline numbers)",
            ),
            ablate_cache,
            ablate_privileged,
            sweep_userbase,
            cernet_heavy,
            usb3_aps,
            cache_pressure,
        ] {
            reg.register(spec).expect("built-in presets always validate");
        }
        reg
    }

    /// Register one spec: the name is checked against the reserved
    /// characters, duplicates are rejected, and the whole axis grid is
    /// trial-resolved so *every* cell a later sweep will run is validated
    /// now — after `register` succeeds, `resolve` cannot fail.
    pub fn register(&mut self, spec: ScenarioSpec) -> Result<(), ConfigError> {
        if self.get(&spec.name).is_some() {
            return Err(ConfigError::at(
                "name",
                format!("scenario `{}` is already defined", spec.name),
            ));
        }
        self.insert(spec)
    }

    /// Validate a spec (name charset plus the whole axis grid) and insert
    /// it, replacing any same-name entry in place.
    fn insert(&mut self, spec: ScenarioSpec) -> Result<(), ConfigError> {
        check_name(&spec.name)?;
        for cell in spec.expand_axes()? {
            Scenario::from_spec(&cell)?;
        }
        let base = Scenario::from_spec(&spec.without_axes())?;
        match self.specs.iter().position(|s| s.name == spec.name) {
            Some(i) => {
                self.specs[i] = spec;
                self.scenarios[i] = base;
            }
            None => {
                self.specs.push(spec);
                self.scenarios.push(base);
            }
        }
        Ok(())
    }

    /// Load a scenario file into the registry: either one scenario object
    /// or an array of them. Each object is a delta over
    /// [`ScenarioSpec::baseline`], or — when it carries a `"base": NAME`
    /// key — over that registered scenario's spec (axes included, so a
    /// file can re-sweep a preset). Later definitions win: a file entry
    /// whose name matches a registered scenario (a built-in preset, or an
    /// earlier file's entry) replaces it in place. Returns how many
    /// scenarios the file defined.
    pub fn load_json(&mut self, text: &str) -> Result<usize, ConfigError> {
        let doc = Json::parse(text)
            .map_err(|e| ConfigError::doc(format!("scenario file is not valid JSON: {e}")))?;
        let entries: Vec<&Json> = match &doc {
            Json::Arr(items) => items.iter().collect(),
            other => vec![other],
        };
        if entries.is_empty() {
            return Err(ConfigError::doc("scenario file declares no scenarios"));
        }
        let mut defined = 0;
        for entry in entries {
            let mut spec = match entry.get("base") {
                Some(Json::Str(base)) => self
                    .spec(base)
                    .cloned()
                    .ok_or_else(|| ConfigError::unknown("base", "scenario", base, self.names()))?,
                Some(other) => {
                    return Err(ConfigError::at(
                        "base",
                        format!("expected a scenario name string (got {other})"),
                    ))
                }
                None => ScenarioSpec::baseline("", ""),
            };
            spec.apply_delta(entry)?;
            self.insert(spec)?;
            defined += 1;
        }
        Ok(defined)
    }

    /// Look up a scenario's resolved base configuration by name (axes
    /// stripped — sweeps expand them via [`ScenarioRegistry::resolve`]).
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Look up a scenario's spec by name (axes included).
    pub fn spec(&self, name: &str) -> Option<&ScenarioSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// All resolved base scenarios, in listing order (paper-default first).
    pub fn all(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// All specs, in listing order (what `scenario dump --all` emits).
    pub fn all_specs(&self) -> &[ScenarioSpec] {
        &self.specs
    }

    /// All scenario names, in listing order.
    pub fn names(&self) -> Vec<String> {
        self.scenarios.iter().map(|s| s.name.clone()).collect()
    }

    /// Expand a sweep selector into concrete scenarios: a scenario name
    /// gives that scenario's axis grid (a single cell when it declares no
    /// axes), the reserved selector `all` gives every registered
    /// scenario's grid in listing order, and an unknown name gives `None`.
    /// This is the grid axis `repro sweep --scenario` is expanded with.
    pub fn resolve(&self, selector: &str) -> Option<Vec<Scenario>> {
        let selected: Vec<&ScenarioSpec> = if selector == "all" {
            self.specs.iter().collect()
        } else {
            vec![self.spec(selector)?]
        };
        let mut out = Vec::new();
        for spec in selected {
            for cell in spec.expand_axes().expect("validated at register") {
                out.push(Scenario::from_spec(&cell).expect("validated at register"));
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use odx_cache::PolicyKind;
    use odx_net::Isp;

    use super::*;

    #[test]
    fn registry_resolves_every_documented_preset() {
        let reg = ScenarioRegistry::builtin();
        for name in [
            "paper-default",
            "ablate-cache",
            "ablate-privileged",
            "sweep-userbase",
            "cernet-heavy",
            "usb3-aps",
            "cache-pressure",
        ] {
            assert!(reg.get(name).is_some(), "missing scenario {name}");
            assert!(reg.spec(name).is_some(), "missing spec {name}");
        }
        assert!(reg.get("no-such-scenario").is_none());
        assert_eq!(reg.names()[0], "paper-default");
    }

    #[test]
    fn resolve_expands_all_and_rejects_unknowns() {
        let reg = ScenarioRegistry::builtin();
        let all = reg.resolve("all").unwrap();
        assert_eq!(all.len(), reg.all().len());
        assert_eq!(all[0].name, "paper-default");
        let one = reg.resolve("ablate-cache").unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name, "ablate-cache");
        assert!(reg.resolve("no-such-scenario").is_none());
    }

    #[test]
    fn paper_default_is_the_baseline() {
        let reg = ScenarioRegistry::builtin();
        let s = reg.get("paper-default").unwrap();
        assert!(s.cache_enabled && s.privileged_paths);
        assert_eq!(s.demand_factor, 1.0);
        assert_eq!(s.backend, BackendConfig::default());
        assert_eq!(s.ap_fleet, ApContext::bench_fleet());
        let mix = s.isp_mix();
        let total: f64 = mix.shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    /// The spec baseline in `odx-config` duplicates the engine defaults by
    /// value (it cannot depend on the engine crates); this pin keeps the
    /// two from drifting apart.
    #[test]
    fn spec_baseline_resolves_to_the_engine_defaults() {
        let s = Scenario::from_spec(&ScenarioSpec::baseline("b", "s")).unwrap();
        assert_eq!(s.backend, BackendConfig::default());
        assert_eq!(s.cache, CacheConfig::default());
        assert_eq!(s.ap_fleet, ApContext::bench_fleet());
        assert!(s.cache_enabled && s.privileged_paths);
        assert_eq!((s.cache_capacity_factor, s.demand_factor), (1.0, 1.0));
        assert_eq!(s.cernet_share, None);
    }

    #[test]
    fn spec_round_trips_through_scenario() {
        let reg = ScenarioRegistry::builtin();
        for spec in reg.all_specs() {
            let scenario = Scenario::from_spec(spec).unwrap();
            assert_eq!(&scenario.to_spec(), spec, "{} drifts", spec.name);
            assert_eq!(Scenario::from_spec(&scenario.to_spec()).unwrap(), scenario);
        }
    }

    #[test]
    fn from_spec_rejects_unknown_enum_names_with_suggestions() {
        let mut spec = ScenarioSpec::baseline("x", "");
        spec.cache.policy = "lrru".into();
        let err = Scenario::from_spec(&spec).unwrap_err();
        assert_eq!(err.path, "cache.policy");
        assert!(err.message.contains("did you mean `lru`?"), "{err}");

        let mut spec = ScenarioSpec::baseline("x", "");
        spec.ap_fleet[1].device = "sata-hd".into();
        let err = Scenario::from_spec(&spec).unwrap_err();
        assert_eq!(err.path, "ap_fleet.1.device");
        assert!(err.message.contains("did you mean `sata-hdd`?"), "{err}");

        let mut spec = ScenarioSpec::baseline("x", "");
        spec.ap_fleet[2].fs = "ex4".into();
        let err = Scenario::from_spec(&spec).unwrap_err();
        assert_eq!(err.path, "ap_fleet.2.fs");
        assert!(err.message.contains("did you mean `ext4`?"), "{err}");

        let mut spec = ScenarioSpec::baseline("x", "");
        spec.ap_fleet[0].model = "hiwify".into();
        let err = Scenario::from_spec(&spec).unwrap_err();
        assert_eq!(err.path, "ap_fleet.0.model");
        assert!(err.message.contains("did you mean `hiwifi`?"), "{err}");

        let mut spec = ScenarioSpec::baseline("x", "");
        spec.sim.scheduler = "whel".into();
        let err = Scenario::from_spec(&spec).unwrap_err();
        assert_eq!(err.path, "sim.scheduler");
        assert!(err.message.contains("did you mean `wheel`?"), "{err}");

        let mut spec = ScenarioSpec::baseline("x", "");
        spec.retry.policy = "exp".into();
        let err = Scenario::from_spec(&spec).unwrap_err();
        assert_eq!(err.path, "retry.policy");
        assert!(err.message.contains("did you mean `expo`?"), "{err}");
    }

    #[test]
    fn every_preset_injects_no_faults_and_never_retries() {
        let reg = ScenarioRegistry::builtin();
        for s in reg.all() {
            assert!(!s.faults.is_active(), "{} injects faults", s.name);
            assert_eq!(s.retry.kind, RetryKind::None, "{} retries", s.name);
        }
        let mut spec = ScenarioSpec::baseline("x", "");
        spec.faults.intensity = 0.2;
        spec.retry.policy = "expo".into();
        let s = Scenario::from_spec(&spec).unwrap();
        assert!(s.faults.is_active());
        assert_eq!(s.retry.kind, RetryKind::Expo);
    }

    #[test]
    fn every_preset_defaults_to_the_heap_scheduler() {
        let reg = ScenarioRegistry::builtin();
        for s in reg.all() {
            assert_eq!(s.scheduler, SchedulerKind::Heap, "{} scheduler", s.name);
        }
        let mut spec = ScenarioSpec::baseline("x", "");
        spec.sim.scheduler = "wheel".into();
        assert_eq!(Scenario::from_spec(&spec).unwrap().scheduler, SchedulerKind::Wheel);
    }

    #[test]
    fn register_rejects_reserved_and_duplicate_names() {
        let mut reg = ScenarioRegistry::builtin();
        for bad in ["", "all", "a/b", "a,b", "a b"] {
            let err = reg.register(ScenarioSpec::baseline(bad, "")).unwrap_err();
            assert_eq!(err.path, "name", "{bad:?} must fail on the name");
        }
        let err = reg.register(ScenarioSpec::baseline("paper-default", "")).unwrap_err();
        assert!(err.message.contains("already defined"), "{err}");
    }

    #[test]
    fn register_validates_the_whole_axis_grid_up_front() {
        let mut reg = ScenarioRegistry::builtin();
        let mut spec = ScenarioSpec::baseline("bad-grid", "");
        spec.axes
            .insert("cache.policy".into(), vec![Json::Str("lru".into()), Json::Str("lrru".into())]);
        let err = reg.register(spec).unwrap_err();
        assert!(err.message.contains("lrru"), "{err}");
        assert!(reg.get("bad-grid").is_none(), "failed registration must not leak");
    }

    #[test]
    fn load_json_layers_deltas_over_base_scenarios() {
        let mut reg = ScenarioRegistry::builtin();
        let before = reg.all().len();
        reg.load_json(
            r#"[
                {"name": "campus", "base": "cache-pressure", "cernet_share": 0.3},
                {"name": "grid", "demand_factor": 2,
                 "axes": {"cache.policy": ["lru", "gdsf"]}}
            ]"#,
        )
        .unwrap();
        assert_eq!(reg.all().len(), before + 2);
        let campus = reg.get("campus").unwrap();
        assert_eq!(campus.cache_capacity_factor, 0.02, "inherits cache-pressure");
        assert_eq!(campus.cernet_share, Some(0.3));
        let grid = reg.resolve("grid").unwrap();
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].name, "grid/cache.policy=lru");
        assert_eq!(grid[1].cache.policy, PolicyKind::Gdsf);
        assert_eq!(grid[1].demand_factor, 2.0);
        // `all` now includes the user grid's cells.
        assert_eq!(reg.resolve("all").unwrap().len(), before + 1 + 2);
    }

    #[test]
    fn load_json_replaces_same_name_scenarios_in_place() {
        let mut reg = ScenarioRegistry::builtin();
        let names_before = reg.names();
        let defined = reg.load_json(r#"{"name": "paper-default", "demand_factor": 3}"#).unwrap();
        assert_eq!(defined, 1);
        assert_eq!(reg.names(), names_before, "override keeps listing order");
        assert_eq!(reg.get("paper-default").unwrap().demand_factor, 3.0);
        // Re-feeding a full dump back in (what `scenario check` does) is
        // fine: every entry just replaces itself.
        let dump: Vec<String> = reg.all_specs().iter().map(|s| s.to_canonical_json()).collect();
        let doc = format!("[{}]", dump.join(","));
        let mut fresh = ScenarioRegistry::builtin();
        assert_eq!(fresh.load_json(&doc).unwrap(), names_before.len());
        assert_eq!(fresh.get("paper-default").unwrap().demand_factor, 3.0);
    }

    #[test]
    fn load_json_rejects_bad_documents_with_field_paths() {
        let mut reg = ScenarioRegistry::builtin();
        let err = reg.load_json("{not json").unwrap_err();
        assert!(err.message.contains("not valid JSON"), "{err}");
        let err = reg.load_json(r#"{"name": "x", "base": "cache-presure"}"#).unwrap_err();
        assert_eq!(err.path, "base");
        assert!(err.message.contains("did you mean `cache-pressure`?"), "{err}");
        let err = reg.load_json(r#"{"name": "x", "demand_fator": 2}"#).unwrap_err();
        assert!(err.message.contains("did you mean `demand_factor`?"), "{err}");
        let err = reg.load_json(r#"{"demand_factor": 2}"#).unwrap_err();
        assert_eq!(err.path, "name", "missing name must fail on the name");
    }

    #[test]
    fn cernet_heavy_rescales_the_rest_of_the_mix() {
        let reg = ScenarioRegistry::builtin();
        let mix = reg.get("cernet-heavy").unwrap().isp_mix();
        let cernet: f64 =
            mix.shares.iter().filter(|(isp, _)| *isp == Isp::Cernet).map(|(_, s)| s).sum();
        assert!((cernet - 0.30).abs() < 1e-12);
        let total: f64 = mix.shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Relative proportions among the other ISPs are preserved.
        let telecom = mix.shares.iter().find(|(i, _)| *i == Isp::Telecom).unwrap().1;
        let unicom = mix.shares.iter().find(|(i, _)| *i == Isp::Unicom).unwrap().1;
        assert!((telecom / unicom - 0.42 / 0.28).abs() < 1e-12);
    }

    /// Regression: `cernet_share` outside `[0, 1)` used to silently produce
    /// negative ISP shares; now it never reaches `isp_mix`.
    #[test]
    fn out_of_range_cernet_share_cannot_reach_the_mix() {
        let mut spec = ScenarioSpec::baseline("x", "");
        spec.cernet_share = Some(1.5);
        let err = Scenario::from_spec(&spec).unwrap_err();
        assert_eq!(err.path, "cernet_share");
        spec.cernet_share = Some(0.999);
        let mix = Scenario::from_spec(&spec).unwrap().isp_mix();
        assert!(mix.shares.iter().all(|(_, s)| *s >= 0.0), "no negative shares");
    }

    #[test]
    fn usb3_fleet_keeps_models_but_swaps_storage() {
        let reg = ScenarioRegistry::builtin();
        let fleet = reg.get("usb3-aps").unwrap().ap_fleet;
        for (ctx, stock) in fleet.iter().zip(ApContext::bench_fleet()) {
            assert_eq!(ctx.model, stock.model);
            assert_eq!(ctx.device, DeviceKind::UsbHdd);
            assert_eq!(ctx.fs, FsKind::Ext4);
        }
    }

    #[test]
    fn ablations_flip_exactly_one_flag() {
        let reg = ScenarioRegistry::builtin();
        assert!(!reg.get("ablate-cache").unwrap().cache_enabled);
        assert!(reg.get("ablate-cache").unwrap().privileged_paths);
        assert!(!reg.get("ablate-privileged").unwrap().privileged_paths);
        assert!(reg.get("ablate-privileged").unwrap().cache_enabled);
        assert_eq!(reg.get("sweep-userbase").unwrap().demand_factor, 1.5);
    }

    #[test]
    fn series_interval_defaults_to_one_sim_hour_and_converts_to_ms() {
        let reg = ScenarioRegistry::builtin();
        for s in reg.all() {
            assert_eq!(s.series_interval_s, 3600.0, "{} interval", s.name);
            assert_eq!(s.series_interval_ms(), 3_600_000);
        }
        let mut spec = ScenarioSpec::baseline("x", "");
        spec.telemetry.series_interval_s = 60.0;
        let s = Scenario::from_spec(&spec).unwrap();
        assert_eq!(s.series_interval_ms(), 60_000);
        // Sub-millisecond cadences clamp instead of panicking downstream.
        spec.telemetry.series_interval_s = 0.0001;
        assert_eq!(Scenario::from_spec(&spec).unwrap().series_interval_ms(), 1);
    }

    #[test]
    fn every_preset_defaults_to_single_shard_lru() {
        let reg = ScenarioRegistry::builtin();
        for s in reg.all() {
            assert_eq!(s.cache.policy, PolicyKind::Lru, "{} policy", s.name);
            assert_eq!(s.cache.shards, 1, "{} shards", s.name);
        }
    }

    #[test]
    fn cache_pressure_shrinks_only_the_pool() {
        let reg = ScenarioRegistry::builtin();
        let s = reg.get("cache-pressure").unwrap();
        assert_eq!(s.cache_capacity_factor, 0.02);
        assert!(s.cache_enabled && s.privileged_paths);
        assert_eq!(s.demand_factor, 1.0);
        assert_eq!(reg.get("paper-default").unwrap().cache_capacity_factor, 1.0);
    }
}
