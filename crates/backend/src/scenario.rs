//! Named experiment presets: one value that configures backends, workload
//! tweaks, and the AP fleet. `repro --scenario NAME` resolves here.

use odx_cache::CacheConfig;
use odx_net::{Isp, IspMix};
use odx_storage::{DeviceKind, FsKind};

use crate::{ApContext, BackendConfig};

/// One named experiment configuration.
///
/// A scenario bundles everything that distinguishes an experiment from the
/// paper's baseline: backend tuning ([`BackendConfig`]), cloud-side feature
/// flags (cache, privileged paths), workload scaling (user-base sweeps),
/// ISP-mix overrides, and the smart-AP fleet under test. The evaluators
/// take a scenario instead of a loose bag of flags, so every run is
/// reproducible from its name.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Registry key (what `repro --scenario` takes).
    pub name: &'static str,
    /// One-line description shown by `repro list`.
    pub summary: &'static str,
    /// Backend tuning knobs.
    pub backend: BackendConfig,
    /// Whether the cloud's collaborative cache is enabled (the §4.3
    /// ablation turns it off).
    pub cache_enabled: bool,
    /// The pool's replacement policy and shard count (`repro cache-compare`
    /// sweeps the policy axis; every preset defaults to single-shard LRU).
    pub cache: CacheConfig,
    /// Multiplier on the pool's byte budget. `1.0` is the paper's 2 PB at
    /// scale 1.0; the `cache-pressure` preset shrinks it so replacement
    /// policies actually differ (at full capacity nothing ever evicts).
    pub cache_capacity_factor: f64,
    /// Whether the cloud's privileged intra-ISP paths are enabled (the
    /// §4.2 ablation turns them off).
    pub privileged_paths: bool,
    /// User-base multiplier: the cloud's per-user upload capacity shrinks
    /// by this factor (the §4 what-if sweep).
    pub demand_factor: f64,
    /// Override for CERNET's share of the user population; the other ISPs'
    /// shares are rescaled proportionally. `None` keeps the default mix.
    pub cernet_share: Option<f64>,
    /// The three-AP fleet used by the AP benchmark and ODR's round-robin
    /// AP assignment.
    pub ap_fleet: [ApContext; 3],
}

impl Scenario {
    /// The paper's baseline configuration under `name`.
    fn baseline(name: &'static str, summary: &'static str) -> Scenario {
        Scenario {
            name,
            summary,
            backend: BackendConfig::default(),
            cache_enabled: true,
            cache: CacheConfig::default(),
            cache_capacity_factor: 1.0,
            privileged_paths: true,
            demand_factor: 1.0,
            cernet_share: None,
            ap_fleet: ApContext::bench_fleet(),
        }
    }

    /// The population's ISP mix under this scenario: the default 2015 mix,
    /// or — when [`Scenario::cernet_share`] is set — CERNET pinned to that
    /// share with every other ISP rescaled proportionally (so the mix still
    /// sums to 1).
    pub fn isp_mix(&self) -> IspMix {
        let mut mix = IspMix::default();
        let Some(cernet) = self.cernet_share else { return mix };
        let old_cernet: f64 =
            mix.shares.iter().filter(|(isp, _)| *isp == Isp::Cernet).map(|(_, s)| s).sum();
        let rescale = (1.0 - cernet) / (1.0 - old_cernet);
        for (isp, share) in &mut mix.shares {
            *share = if *isp == Isp::Cernet { cernet } else { *share * rescale };
        }
        mix
    }
}

/// The built-in scenario presets.
#[derive(Debug, Clone)]
pub struct ScenarioRegistry {
    scenarios: Vec<Scenario>,
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        ScenarioRegistry::builtin()
    }
}

impl ScenarioRegistry {
    /// The built-in presets: the paper baseline, the ablations the repro
    /// harness always ran, the what-ifs, and the cache-pressure stress.
    pub fn builtin() -> ScenarioRegistry {
        let mut cernet_heavy = Scenario::baseline(
            "cernet-heavy",
            "what-if: CERNET serves 30 % of users (campus-dominated population)",
        );
        cernet_heavy.cernet_share = Some(0.30);

        let mut usb3_aps = Scenario::baseline(
            "usb3-aps",
            "what-if: every benchmark AP upgraded to a USB hard disk formatted EXT4",
        );
        usb3_aps.ap_fleet = ApContext::bench_fleet().map(|c| ApContext {
            device: DeviceKind::UsbHdd,
            fs: FsKind::Ext4,
            ..c
        });

        let mut ablate_cache = Scenario::baseline(
            "ablate-cache",
            "ablation: cloud collaborative cache disabled (every request re-fetches)",
        );
        ablate_cache.cache_enabled = false;

        let mut ablate_privileged = Scenario::baseline(
            "ablate-privileged",
            "ablation: privileged intra-ISP upload paths disabled (all fetches cross the barrier)",
        );
        ablate_privileged.privileged_paths = false;

        let mut sweep_userbase = Scenario::baseline(
            "sweep-userbase",
            "stress: user base grown 1.5x with the same cloud upload capacity",
        );
        sweep_userbase.demand_factor = 1.5;

        let mut cache_pressure = Scenario::baseline(
            "cache-pressure",
            "stress: pool shrunk to 2 % of the paper's budget (replacement policies diverge)",
        );
        cache_pressure.cache_capacity_factor = 0.02;

        ScenarioRegistry {
            scenarios: vec![
                Scenario::baseline(
                    "paper-default",
                    "the paper's measured configuration (all headline numbers)",
                ),
                ablate_cache,
                ablate_privileged,
                sweep_userbase,
                cernet_heavy,
                usb3_aps,
                cache_pressure,
            ],
        }
    }

    /// Look up a scenario by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// All scenarios, in listing order (paper-default first).
    pub fn all(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// All scenario names, in listing order.
    pub fn names(&self) -> Vec<&'static str> {
        self.scenarios.iter().map(|s| s.name).collect()
    }

    /// Expand a sweep selector into concrete scenarios: a preset name gives
    /// that single preset, the reserved selector `all` gives every preset
    /// in listing order, and an unknown name gives `None`. This is the grid
    /// axis `repro sweep --scenario` is expanded with.
    pub fn resolve(&self, selector: &str) -> Option<Vec<Scenario>> {
        if selector == "all" {
            return Some(self.scenarios.clone());
        }
        self.get(selector).map(|s| vec![*s])
    }
}

#[cfg(test)]
mod tests {
    use odx_cache::PolicyKind;

    use super::*;

    #[test]
    fn registry_resolves_every_documented_preset() {
        let reg = ScenarioRegistry::builtin();
        for name in [
            "paper-default",
            "ablate-cache",
            "ablate-privileged",
            "sweep-userbase",
            "cernet-heavy",
            "usb3-aps",
            "cache-pressure",
        ] {
            assert!(reg.get(name).is_some(), "missing scenario {name}");
        }
        assert!(reg.get("no-such-scenario").is_none());
        assert_eq!(reg.names()[0], "paper-default");
    }

    #[test]
    fn resolve_expands_all_and_rejects_unknowns() {
        let reg = ScenarioRegistry::builtin();
        let all = reg.resolve("all").unwrap();
        assert_eq!(all.len(), reg.all().len());
        assert_eq!(all[0].name, "paper-default");
        let one = reg.resolve("ablate-cache").unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name, "ablate-cache");
        assert!(reg.resolve("no-such-scenario").is_none());
    }

    #[test]
    fn paper_default_is_the_baseline() {
        let reg = ScenarioRegistry::builtin();
        let s = reg.get("paper-default").unwrap();
        assert!(s.cache_enabled && s.privileged_paths);
        assert_eq!(s.demand_factor, 1.0);
        assert_eq!(s.backend, BackendConfig::default());
        assert_eq!(s.ap_fleet, ApContext::bench_fleet());
        let mix = s.isp_mix();
        let total: f64 = mix.shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cernet_heavy_rescales_the_rest_of_the_mix() {
        let reg = ScenarioRegistry::builtin();
        let mix = reg.get("cernet-heavy").unwrap().isp_mix();
        let cernet: f64 =
            mix.shares.iter().filter(|(isp, _)| *isp == Isp::Cernet).map(|(_, s)| s).sum();
        assert!((cernet - 0.30).abs() < 1e-12);
        let total: f64 = mix.shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Relative proportions among the other ISPs are preserved.
        let telecom = mix.shares.iter().find(|(i, _)| *i == Isp::Telecom).unwrap().1;
        let unicom = mix.shares.iter().find(|(i, _)| *i == Isp::Unicom).unwrap().1;
        assert!((telecom / unicom - 0.42 / 0.28).abs() < 1e-12);
    }

    #[test]
    fn usb3_fleet_keeps_models_but_swaps_storage() {
        let reg = ScenarioRegistry::builtin();
        let fleet = reg.get("usb3-aps").unwrap().ap_fleet;
        for (ctx, stock) in fleet.iter().zip(ApContext::bench_fleet()) {
            assert_eq!(ctx.model, stock.model);
            assert_eq!(ctx.device, DeviceKind::UsbHdd);
            assert_eq!(ctx.fs, FsKind::Ext4);
        }
    }

    #[test]
    fn ablations_flip_exactly_one_flag() {
        let reg = ScenarioRegistry::builtin();
        assert!(!reg.get("ablate-cache").unwrap().cache_enabled);
        assert!(reg.get("ablate-cache").unwrap().privileged_paths);
        assert!(!reg.get("ablate-privileged").unwrap().privileged_paths);
        assert!(reg.get("ablate-privileged").unwrap().cache_enabled);
        assert_eq!(reg.get("sweep-userbase").unwrap().demand_factor, 1.5);
    }

    #[test]
    fn every_preset_defaults_to_single_shard_lru() {
        let reg = ScenarioRegistry::builtin();
        for s in reg.all() {
            assert_eq!(s.cache.policy, PolicyKind::Lru, "{} policy", s.name);
            assert_eq!(s.cache.shards, 1, "{} shards", s.name);
        }
    }

    #[test]
    fn cache_pressure_shrinks_only_the_pool() {
        let reg = ScenarioRegistry::builtin();
        let s = reg.get("cache-pressure").unwrap();
        assert_eq!(s.cache_capacity_factor, 0.02);
        assert!(s.cache_enabled && s.privileged_paths);
        assert_eq!(s.demand_factor, 1.0);
        assert_eq!(reg.get("paper-default").unwrap().cache_capacity_factor, 1.0);
    }
}
