#![warn(missing_docs)]

//! # odx-backend — the proxy execution layer
//!
//! §6 of the paper treats one offline-downloading request as servable by
//! four interchangeable proxies: the cloud, the user's smart AP, the user's
//! own device, or a cloud→AP relay. This crate is the single execution
//! layer behind all of them:
//!
//! * [`ProxyRequest`] — everything a proxy needs to know about one request:
//!   the file (size/type/protocol/popularity), the user (ISP + access
//!   bandwidth) and the user's AP, if any.
//! * [`Outcome`] — the one result struct shared by every evaluator: speed,
//!   delay, bytes moved per leg (source→proxy, cloud→user, LAN), and the
//!   §4.1/§5.2 failure taxonomy.
//! * [`ProxyBackend`] — the trait: `execute(&mut self, req, ctx) -> Outcome`.
//!   [`CloudBackend`], [`SmartApBackend`], [`UserDeviceBackend`] and
//!   [`CloudAssistedApBackend`] implement it with the mechanism models from
//!   `odx-p2p`, `odx-net`, `odx-storage` and `odx-smartap`.
//! * [`ExecCtx`] — mutable per-replay state shared across backends: the
//!   task RNG and the cloud's content state (cache + retry history), so the
//!   collaborative cache behaves identically whichever proxy touches it.
//! * [`SmartApBenchmark`] — the §5.1 sequential three-AP replay harness
//!   (moved here from `odx-smartap` so it drives the trait).
//! * [`Scenario`] / [`ScenarioRegistry`] — named experiment presets
//!   (paper-default, the ablations, and new what-if scenarios) that build a
//!   backend set + workload tweaks from one value; `repro --scenario NAME`
//!   is the user-facing entry point.
//!
//! Every backend records uniform telemetry
//! (`backend.<proxy>.{requests,success,failure,bytes}` plus a speed
//! histogram) through [`BackendMetrics`]; all draws come from the caller's
//! [`ExecCtx`] streams, so same-seed replays are byte-identical.

mod apbench;
mod backends;
mod config;
mod metrics;
mod outcome;
mod request;
mod scenario;

pub use apbench::{ApBenchReport, ApTaskRecord, SmartApBenchmark};
pub use backends::{CloudAssistedApBackend, CloudBackend, SmartApBackend, UserDeviceBackend};
pub use config::{apply_dynamics, BackendConfig};
pub use metrics::BackendMetrics;
pub use odx_cache::{CacheConfig, PolicyKind};
pub use outcome::Outcome;
pub use request::{ApContext, CloudContentState, ExecCtx, ProxyRequest};
pub use scenario::{Scenario, ScenarioRegistry};

/// A proxy that can serve one offline-downloading request.
///
/// Implementations are *mechanisms*, not policies: the caller (ODR's
/// replay, the §5.1 benchmark, the week replay) decides which backend a
/// request goes to; `execute` only simulates what that proxy would do.
///
/// Contract:
/// * all randomness is drawn from `ctx` (backends hold distributions, not
///   RNG state), so a replay's draw order is fully determined by its
///   request sequence;
/// * cloud-side shared state (cache contents, retry history) lives in
///   [`ExecCtx::cloud`] and is visible to every backend in the replay;
/// * `Outcome::rate_kbps` is zero whenever `Outcome::success` is false.
pub trait ProxyBackend {
    /// Stable proxy name, used for telemetry (`backend.<name>.…`) and
    /// display. Matches the `Decision` display strings of `odx-odr`.
    fn name(&self) -> &'static str;

    /// Serve `req`, mutating the shared replay state in `ctx`.
    fn execute(&mut self, req: &ProxyRequest, ctx: &mut ExecCtx) -> Outcome;
}
