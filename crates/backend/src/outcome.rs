//! The one outcome struct every evaluator shares.

use odx_p2p::FailureCause;
use odx_sim::SimDuration;
use serde::Serialize;

/// What happened when a proxy served (or failed to serve) one request.
///
/// One struct for every backend: the week replay, the §5.1 AP benchmark and
/// the §6.2 ODR evaluation all read their figures out of these fields, so
/// cross-proxy differences are attributable purely to routing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Outcome {
    /// Whether the download ultimately succeeded.
    pub success: bool,
    /// Failure cause when it did not (rejected fetches carry `None`).
    pub cause: Option<FailureCause>,
    /// User-perceived download speed (KBps); zero on failure.
    pub rate_kbps: f64,
    /// Wall-clock duration of the serving attempt (transfer time for
    /// successes, time-to-give-up for failures; zero where the evaluator
    /// does not model waiting).
    pub duration: SimDuration,
    /// Bytes the cloud uploaded to serve this request (MB) — the
    /// cloud→user leg, §6.2's upload-burden metric.
    pub cloud_upload_mb: f64,
    /// WAN traffic on the source→proxy leg (MB), protocol overhead
    /// included (§4.1's 196 %).
    pub source_traffic_mb: f64,
    /// Bytes delivered over the home LAN (MB) — the AP→user leg.
    pub lan_mb: f64,
    /// Storage iowait ratio during the transfer (AP paths only).
    pub iowait: f64,
    /// Whether the proxy's storage path, rather than the network, was the
    /// binding constraint (Bottleneck 4 in action).
    pub storage_limited: bool,
}

impl Outcome {
    /// A failed attempt: zero rate, zero payload movement.
    pub fn failure(cause: Option<FailureCause>) -> Outcome {
        Outcome {
            success: false,
            cause,
            rate_kbps: 0.0,
            duration: SimDuration::ZERO,
            cloud_upload_mb: 0.0,
            source_traffic_mb: 0.0,
            lan_mb: 0.0,
            iowait: 0.0,
            storage_limited: false,
        }
    }

    /// A successful transfer at `rate_kbps`; per-leg bytes default to zero
    /// and are filled in by the backend.
    pub fn success(rate_kbps: f64, size_mb: f64) -> Outcome {
        Outcome {
            success: true,
            cause: None,
            rate_kbps,
            duration: SimDuration::from_secs_f64(odx_net::transfer_secs(size_mb, rate_kbps)),
            cloud_upload_mb: 0.0,
            source_traffic_mb: 0.0,
            lan_mb: 0.0,
            iowait: 0.0,
            storage_limited: false,
        }
    }

    /// Total bytes this outcome moved across all legs (MB).
    pub fn total_mb(&self) -> f64 {
        self.cloud_upload_mb + self.source_traffic_mb + self.lan_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_moves_nothing() {
        let out = Outcome::failure(Some(FailureCause::InsufficientSeeds));
        assert!(!out.success);
        assert_eq!(out.rate_kbps, 0.0);
        assert_eq!(out.total_mb(), 0.0);
    }

    #[test]
    fn success_duration_is_size_over_rate() {
        let out = Outcome::success(500.0, 100.0);
        assert!((out.duration.as_secs_f64() - 200.0).abs() < 1e-6);
    }
}
