//! Request context shared by every proxy backend.

use std::collections::HashMap;

use odx_net::{Isp, HD_THRESHOLD_KBPS};
use odx_smartap::ApModel;
use odx_stats::dist::u01;
use odx_storage::{DeviceKind, FsKind};
use odx_trace::{FileId, FileMeta, FileType, PopularityClass, Protocol, SampledRequest};
use rand::Rng;
use serde::Serialize;

/// The user's smart AP, as reported through ODR's web form (§6.1 asks for
/// "smart AP type, storage device and filesystem type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct ApContext {
    /// AP product.
    pub model: ApModel,
    /// Attached storage device.
    pub device: DeviceKind,
    /// Filesystem on that device.
    pub fs: FsKind,
}

impl ApContext {
    /// The benchmark configuration of a given AP model.
    pub fn bench(model: ApModel) -> Self {
        let s = model.bench_storage();
        ApContext { model, device: s.device, fs: s.fs }
    }

    /// The §5.1 benchmark fleet: the three boxes with their shipped storage.
    pub fn bench_fleet() -> [ApContext; 3] {
        [
            ApContext::bench(ApModel::HiWiFi),
            ApContext::bench(ApModel::MiWiFi),
            ApContext::bench(ApModel::Newifi),
        ]
    }

    /// The highest pre-download rate this AP sustains when the network
    /// offers `offered_kbps`.
    pub fn storage_capped_kbps(&self, offered_kbps: f64) -> f64 {
        odx_storage::effective_rate_kbps(self.device, self.fs, self.model.cpu_mhz(), offered_kbps)
    }
}

/// Everything a proxy backend needs to know about one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ProxyRequest {
    /// The user's home ISP.
    pub isp: Isp,
    /// The user's access bandwidth (KBps).
    pub access_kbps: f64,
    /// File type.
    pub file_type: FileType,
    /// File size (MB).
    pub size_mb: f64,
    /// File-transfer protocol of the original source.
    pub protocol: Protocol,
    /// Ground-truth popularity (requests/week).
    pub weekly_requests: u32,
    /// Catalog index of the file (keys the cloud's content state).
    pub file_index: u32,
    /// Whether the cloud already holds the file (content-DB lookup at
    /// decision time).
    pub cached_in_cloud: bool,
    /// The user's smart AP, if they own one.
    pub ap: Option<ApContext>,
}

impl ProxyRequest {
    /// Build from a sampled workload request.
    pub fn from_sampled(r: &SampledRequest, cached_in_cloud: bool, ap: Option<ApContext>) -> Self {
        ProxyRequest {
            isp: r.isp,
            access_kbps: r.access_kbps,
            file_type: r.file_type,
            size_mb: r.size_mb,
            protocol: r.protocol,
            weekly_requests: r.weekly_requests,
            file_index: r.file_index,
            cached_in_cloud,
            ap,
        }
    }

    /// Popularity class of the requested file.
    pub fn class(&self) -> PopularityClass {
        PopularityClass::of(self.weekly_requests)
    }

    /// Weekly request count as a float (the models' popularity argument).
    pub fn weekly(&self) -> f64 {
        f64::from(self.weekly_requests)
    }

    /// File metadata for the source/download models.
    pub fn file_meta(&self) -> FileMeta {
        FileMeta {
            id: FileId(u128::from(self.file_index)),
            size_mb: self.size_mb,
            ftype: self.file_type,
            protocol: self.protocol,
            weekly_requests: self.weekly_requests,
        }
    }

    /// B1 risk (§6.1 Case 1): a direct cloud fetch would be impeded because
    /// the access link is below the HD threshold or the user sits outside
    /// the four major ISPs.
    pub fn b1_at_risk(&self) -> bool {
        self.access_kbps < HD_THRESHOLD_KBPS || !self.isp.is_major()
    }
}

/// The cloud's per-file content state shared across one replay: which files
/// are in the collaborative cache and how often each pre-download has
/// already failed (the retry-decay history). Both the decision layer (cache
/// lookups) and the cloud backends (predownload attempts) read and write
/// it, so it lives in the shared [`ExecCtx`], not in any one backend.
#[derive(Debug, Clone, Default)]
pub struct CloudContentState {
    cached: HashMap<u32, bool>,
    failed_attempts: HashMap<u32, u32>,
}

impl CloudContentState {
    /// Empty state (cold cache, no history).
    pub fn new() -> Self {
        CloudContentState::default()
    }

    /// Whether `file_index` is currently cached, initialising unseen files
    /// with the warm-cache draw: a file with `w` weekly requests starts out
    /// cached with probability `w / (w + pivot)`.
    pub fn warm_cached(
        &mut self,
        file_index: u32,
        weekly_requests: u32,
        pivot: f64,
        rng: &mut dyn Rng,
    ) -> bool {
        let w = f64::from(weekly_requests);
        *self.cached.entry(file_index).or_insert_with(|| u01(rng) < w / (w + pivot))
    }

    /// Record a completed pre-download: the file is now cached.
    pub fn mark_cached(&mut self, file_index: u32) {
        self.cached.insert(file_index, true);
    }

    /// Prior failed pre-download attempts for `file_index`.
    pub fn failed_attempts(&self, file_index: u32) -> u32 {
        self.failed_attempts.get(&file_index).copied().unwrap_or(0)
    }

    /// Record one more failed pre-download attempt.
    pub fn note_failure(&mut self, file_index: u32) {
        *self.failed_attempts.entry(file_index).or_insert(0) += 1;
    }
}

/// Mutable per-task execution context handed to [`crate::ProxyBackend`]:
/// the task's RNG stream and the replay-wide cloud content state.
pub struct ExecCtx<'a> {
    /// The task's deterministic RNG stream. Backends draw *only* from this.
    pub rng: &'a mut dyn Rng,
    /// Cloud cache + retry history shared across the whole replay.
    pub cloud: &'a mut CloudContentState,
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_sim::RngFactory;

    #[test]
    fn bench_context_matches_ap_storage() {
        let ctx = ApContext::bench(ApModel::Newifi);
        assert_eq!(ctx.device, DeviceKind::UsbFlash);
        assert_eq!(ctx.fs, FsKind::Ntfs);
        assert!((ctx.storage_capped_kbps(2370.0) - 959.0).abs() < 10.0);
    }

    #[test]
    fn bench_fleet_is_table1_order() {
        let fleet = ApContext::bench_fleet();
        assert_eq!(fleet.map(|c| c.model), ApModel::ALL);
    }

    #[test]
    fn b1_triggers_on_low_access_or_foreign_isp() {
        let sampled = SampledRequest {
            isp: Isp::Telecom,
            access_kbps: 400.0,
            file_type: FileType::Video,
            size_mb: 100.0,
            protocol: Protocol::BitTorrent,
            weekly_requests: 20,
            file_index: 0,
        };
        let mut req = ProxyRequest::from_sampled(&sampled, false, None);
        assert!(!req.b1_at_risk());
        req.access_kbps = 100.0;
        assert!(req.b1_at_risk());
        req.access_kbps = 400.0;
        req.isp = Isp::Other;
        assert!(req.b1_at_risk());
    }

    #[test]
    fn warm_cache_draw_happens_once_per_file() {
        let rngs = RngFactory::new(7);
        let mut rng = rngs.stream("warm");
        let mut state = CloudContentState::new();
        // A hugely popular file is (almost surely) warm-cached; the second
        // lookup must return the memoised value without drawing again.
        let first = state.warm_cached(3, 100_000, 2.5, &mut rng);
        let second = state.warm_cached(3, 100_000, 2.5, &mut rng);
        assert_eq!(first, second);
        assert!(first, "w=100000 should warm-cache with pivot 2.5");
    }

    #[test]
    fn failure_history_accumulates() {
        let mut state = CloudContentState::new();
        assert_eq!(state.failed_attempts(9), 0);
        state.note_failure(9);
        state.note_failure(9);
        assert_eq!(state.failed_attempts(9), 2);
        state.mark_cached(9);
        let mut rng = RngFactory::new(1).stream("warm");
        assert!(state.warm_cached(9, 0, 2.5, &mut rng));
    }
}
