//! Uniform per-backend telemetry.

use odx_telemetry::{Counter, HistogramHandle, Registry};

use crate::Outcome;

/// The `backend.<proxy>.*` metric bundle every [`crate::ProxyBackend`]
/// records into: request/success/failure counters, a cumulative bytes
/// counter (all legs, in whole bytes so the snapshot stays integral and
/// byte-identical across same-seed runs), and a success-speed histogram.
#[derive(Debug, Clone)]
pub struct BackendMetrics {
    requests: Counter,
    success: Counter,
    failure: Counter,
    bytes: Counter,
    speed: HistogramHandle,
}

impl BackendMetrics {
    /// Metric handles for proxy `name` in `registry`.
    pub fn new(registry: &Registry, name: &str) -> Self {
        BackendMetrics {
            requests: registry.counter(&format!("backend.{name}.requests")),
            success: registry.counter(&format!("backend.{name}.success")),
            failure: registry.counter(&format!("backend.{name}.failure")),
            bytes: registry.counter(&format!("backend.{name}.bytes")),
            speed: registry.histogram(&format!("backend.{name}.speed_kbps")),
        }
    }

    /// Metric handles for proxy `name` in the process-wide registry.
    pub fn global(name: &str) -> Self {
        BackendMetrics::new(odx_telemetry::global(), name)
    }

    /// Record one executed request.
    pub fn record(&self, outcome: &Outcome) {
        self.requests.inc();
        if outcome.success {
            self.success.inc();
            self.speed.record_f64(outcome.rate_kbps);
        } else {
            self.failure.inc();
        }
        let bytes = outcome.total_mb() * 1e6;
        if bytes > 0.0 {
            self.bytes.add(bytes.round() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_p2p::FailureCause;

    #[test]
    fn counters_split_by_outcome() {
        let registry = Registry::new();
        let metrics = BackendMetrics::new(&registry, "cloud");
        let mut ok = Outcome::success(800.0, 10.0);
        ok.cloud_upload_mb = 10.0;
        metrics.record(&ok);
        metrics.record(&Outcome::failure(Some(FailureCause::InsufficientSeeds)));
        let snap = registry.snapshot();
        assert_eq!(snap.counters["backend.cloud.requests"], 2);
        assert_eq!(snap.counters["backend.cloud.success"], 1);
        assert_eq!(snap.counters["backend.cloud.failure"], 1);
        assert_eq!(snap.counters["backend.cloud.bytes"], 10_000_000);
        assert_eq!(snap.histograms["backend.cloud.speed_kbps"].count, 1);
    }
}
