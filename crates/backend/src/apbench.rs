//! The §5.1 benchmark harness: sequential replay of the sampled workload.
//!
//! Three independent 20 Mbps ADSL lines, one per AP; the 1000 sampled Unicom
//! requests are split across the APs (~333 each) and replayed sequentially
//! (request *i+1* starts when request *i* completes or fails), with each
//! AP's pre-download speed restricted to the sampled user's recorded access
//! bandwidth. Every attempt runs through [`crate::SmartApBackend`] in its
//! benchmark mode, so the harness exercises the same [`crate::ProxyBackend`]
//! layer as the other evaluators.

use odx_faults::{FaultDomain, FaultKind, FaultPlan, FaultsConfig};
use odx_p2p::FailureCause;
use odx_sim::{RngFactory, SimDuration};
use odx_smartap::ApModel;
use odx_stats::Ecdf;
use odx_telemetry::{
    Counter, Lifecycle, LifecycleReport, Registry, SeriesRecorder, SeriesSnapshot, Stage, TaskEnd,
    TraceConfig,
};
use odx_trace::{PopularityClass, SampledRequest};
use serde::Serialize;

use crate::{ApContext, CloudContentState, ExecCtx, ProxyBackend, ProxyRequest, SmartApBackend};

/// One replayed task.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ApTaskRecord {
    /// Which AP replayed it.
    pub ap: ApModel,
    /// The request replayed.
    pub request: SampledRequest,
    /// Whether the pre-download succeeded.
    pub success: bool,
    /// Failure cause when it did not.
    pub cause: Option<FailureCause>,
    /// Average pre-download speed (KBps); zero on failure.
    pub rate_kbps: f64,
    /// Pre-downloading delay.
    pub duration: SimDuration,
    /// WAN traffic consumed (MB).
    pub traffic_mb: f64,
    /// Storage iowait during the transfer.
    pub iowait: f64,
    /// Whether the storage path was the binding constraint (Bottleneck 4).
    pub storage_limited: bool,
}

/// Results of the three-AP replay.
#[derive(Debug, Clone)]
pub struct ApBenchReport {
    records: Vec<ApTaskRecord>,
}

impl ApBenchReport {
    /// All task records.
    pub fn records(&self) -> &[ApTaskRecord] {
        &self.records
    }

    /// Records replayed by one AP.
    pub fn records_for(&self, ap: ApModel) -> impl Iterator<Item = &ApTaskRecord> {
        self.records.iter().filter(move |r| r.ap == ap)
    }

    /// Pre-download speed ECDF across all APs (failures at ~0 KBps) —
    /// Fig 13.
    pub fn speed_ecdf(&self) -> Ecdf {
        Ecdf::new(self.records.iter().map(|r| r.rate_kbps).collect())
    }

    /// Pre-download delay ECDF in minutes — Fig 14.
    pub fn delay_ecdf(&self) -> Ecdf {
        Ecdf::new(self.records.iter().map(|r| r.duration.as_mins_f64()).collect())
    }

    /// Overall failure ratio (§5.2: 16.8 %).
    pub fn failure_ratio(&self) -> f64 {
        self.records.iter().filter(|r| !r.success).count() as f64 / self.records.len().max(1) as f64
    }

    /// Failure ratio over requests for unpopular files (§5.2: 42 %).
    pub fn unpopular_failure_ratio(&self) -> f64 {
        let unpopular: Vec<_> = self
            .records
            .iter()
            .filter(|r| r.request.class() == PopularityClass::Unpopular)
            .collect();
        if unpopular.is_empty() {
            return 0.0;
        }
        unpopular.iter().filter(|r| !r.success).count() as f64 / unpopular.len() as f64
    }

    /// Failure-cause shares `[insufficient seeds, poor connection, bug]`
    /// (§5.2: 86 % / 10 % / 4 %).
    pub fn cause_shares(&self) -> [f64; 3] {
        let mut counts = [0usize; 3];
        for r in self.records.iter().filter(|r| !r.success) {
            match r.cause {
                Some(FailureCause::InsufficientSeeds) => counts[0] += 1,
                Some(FailureCause::PoorConnection) => counts[1] += 1,
                Some(FailureCause::SystemBug) => counts[2] += 1,
                None => {}
            }
        }
        let total: usize = counts.iter().sum();
        if total == 0 {
            return [0.0; 3];
        }
        [
            counts[0] as f64 / total as f64,
            counts[1] as f64 / total as f64,
            counts[2] as f64 / total as f64,
        ]
    }

    /// Maximum observed speed per AP (Fig 13's per-model maxima).
    pub fn max_speed_kbps(&self, ap: ApModel) -> f64 {
        self.records_for(ap).map(|r| r.rate_kbps).fold(0.0, f64::max)
    }

    /// Fraction of successful transfers that were storage-limited.
    pub fn storage_limited_fraction(&self) -> f64 {
        let ok: Vec<_> = self.records.iter().filter(|r| r.success).collect();
        if ok.is_empty() {
            return 0.0;
        }
        ok.iter().filter(|r| r.storage_limited).count() as f64 / ok.len() as f64
    }
}

/// Counter handles plus the recorder for a series-observed benchmark
/// replay. The harness is sequential, so counters are plain handles and
/// sampling happens inline: due grid points are taken strictly before
/// each task's completion advances the fleet clock past them.
struct BenchSeries {
    tasks: Counter,
    failures: Counter,
    storage_limited: Counter,
    recorder: SeriesRecorder,
}

impl BenchSeries {
    /// Charge one finished task: sample every grid point the fleet clock
    /// has now passed, then count the task.
    fn charge(&self, success: bool, storage_limited: bool, now_ms: u64) {
        while self.recorder.next_due_ms() < now_ms {
            self.recorder.sample_due();
        }
        self.tasks.inc();
        if !success {
            self.failures.inc();
        }
        if storage_limited {
            self.storage_limited.inc();
        }
    }
}

/// The benchmark harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmartApBenchmark;

impl SmartApBenchmark {
    /// Replay `sample` across the three §5.1 benchmark APs (request `i`
    /// goes to AP `i mod 3`, preserving the ~333-per-AP split), restricted
    /// to each request's recorded access bandwidth.
    pub fn replay(sample: &[SampledRequest], rngs: &RngFactory) -> ApBenchReport {
        SmartApBenchmark::replay_fleet(sample, &ApContext::bench_fleet(), rngs)
    }

    /// Replay `sample` across an explicit AP fleet (the scenario layer's
    /// entry point — e.g. the `usb3-aps` what-if swaps every box's storage).
    pub fn replay_fleet(
        sample: &[SampledRequest],
        fleet: &[ApContext; 3],
        rngs: &RngFactory,
    ) -> ApBenchReport {
        Self::replay_fleet_inner(sample, fleet, rngs, None, None, &FaultPlan::empty()).0
    }

    /// Replay a fleet under a fault-injection config: smart-AP windows are
    /// keyed on each AP line's own virtual clock, so a disk-stall window
    /// slows (and a power-cycle window kills) whatever task the line is
    /// running when the window is open. The plan compiles from a dedicated
    /// `"smartap-faults"` stream and injection itself draws nothing, so a
    /// zero-intensity config replays byte-identically to
    /// [`SmartApBenchmark::replay_fleet`].
    pub fn replay_fleet_faulted(
        sample: &[SampledRequest],
        fleet: &[ApContext; 3],
        rngs: &RngFactory,
        faults: &FaultsConfig,
    ) -> ApBenchReport {
        let plan = FaultPlan::compile(faults, &mut rngs.stream("smartap-faults"));
        Self::replay_fleet_inner(sample, fleet, rngs, None, None, &plan).0
    }

    /// Replay a fleet with per-task lifecycle tracing. The harness is
    /// sequential per AP, so each AP carries its own virtual clock: task
    /// *i+1* on an AP starts when task *i* on that AP finished, and each
    /// task's trace is an arrival instant plus a pre-download span whose
    /// length is the measured transfer duration. Failed tasks dump the
    /// flight recorder with the §5.2 cause taxonomy.
    pub fn replay_fleet_traced(
        sample: &[SampledRequest],
        fleet: &[ApContext; 3],
        rngs: &RngFactory,
        trace: &TraceConfig,
    ) -> (ApBenchReport, LifecycleReport) {
        let (report, lifecycle) = Self::replay_fleet_inner(
            sample,
            fleet,
            rngs,
            Some(Lifecycle::new(trace)),
            None,
            &FaultPlan::empty(),
        );
        (report, lifecycle.expect("tracing was requested"))
    }

    /// Replay a fleet while recording a virtual-time metric series
    /// (`ap.tasks`, `ap.failures`, `ap.storage_limited`) at `interval_ms`
    /// on the benchmark's own clock — the busiest AP line's elapsed
    /// virtual time, which is what the harness reports as total delay.
    /// Tasks are charged in replay order. Counters land in `registry` and
    /// the finished snapshot's last sample equals their final values.
    pub fn replay_fleet_series(
        sample: &[SampledRequest],
        fleet: &[ApContext; 3],
        rngs: &RngFactory,
        registry: &Registry,
        interval_ms: u64,
    ) -> (ApBenchReport, SeriesSnapshot) {
        let recorder = SeriesRecorder::new(interval_ms);
        for name in ["ap.tasks", "ap.failures", "ap.storage_limited"] {
            recorder.track_counter(name, registry.counter(name));
        }
        let ctx = BenchSeries {
            tasks: registry.counter("ap.tasks"),
            failures: registry.counter("ap.failures"),
            storage_limited: registry.counter("ap.storage_limited"),
            recorder: recorder.clone(),
        };
        let (report, _) =
            Self::replay_fleet_inner(sample, fleet, rngs, None, Some(&ctx), &FaultPlan::empty());
        (report, recorder.snapshot())
    }

    fn replay_fleet_inner(
        sample: &[SampledRequest],
        fleet: &[ApContext; 3],
        rngs: &RngFactory,
        lifecycle: Option<Lifecycle>,
        series: Option<&BenchSeries>,
        plan: &FaultPlan,
    ) -> (ApBenchReport, Option<LifecycleReport>) {
        let mut backends: Vec<SmartApBackend> =
            fleet.iter().map(|&ap| SmartApBackend::bench(ap)).collect();
        let mut cloud = CloudContentState::new();
        let mut records = Vec::with_capacity(sample.len());
        // One virtual clock per AP line: the benchmark replays each AP's
        // share sequentially, so a task starts where the previous one on
        // the same AP ended.
        let mut ap_clock = [SimDuration::ZERO; 3];
        for (i, req) in sample.iter().enumerate() {
            let slot = i % fleet.len();
            let mut rng = rngs.stream_indexed("smartap-bench", i as u64);
            let preq = ProxyRequest::from_sampled(req, false, Some(fleet[slot]));
            let mut ctx = ExecCtx { rng: &mut rng, cloud: &mut cloud };
            let mut out = backends[slot].execute(&preq, &mut ctx);
            // Fault windows are keyed on the line's clock at task start.
            // Injection draws nothing: an empty plan leaves `out` — and
            // therefore the whole replay — untouched.
            if let Some(window) = plan.active(FaultDomain::SmartAp, ap_clock[slot].as_millis()) {
                match window.kind {
                    FaultKind::ApPowerCycle => {
                        // The box reboots mid-transfer: the task is lost
                        // but its time and WAN traffic were still spent.
                        out.success = false;
                        out.cause = Some(FailureCause::SystemBug);
                        out.rate_kbps = 0.0;
                        out.storage_limited = false;
                    }
                    FaultKind::ApDiskStall if out.success => {
                        out.rate_kbps *= window.severity;
                        out.duration = SimDuration::from_secs_f64(
                            out.duration.as_secs_f64() / window.severity,
                        );
                        out.iowait = 1.0 - (1.0 - out.iowait) * window.severity;
                        out.storage_limited = true;
                    }
                    _ => {}
                }
            }
            if let Some(lifecycle) = &lifecycle {
                let task = i as u64;
                let start = ap_clock[slot].as_millis();
                let end = (ap_clock[slot] + out.duration).as_millis();
                lifecycle.tasks.instant(task, Stage::Arrival, start, None);
                let detail = if out.storage_limited { Some("storage_limited") } else { None };
                lifecycle.tasks.span(task, Stage::Predownload, start, end, detail);
                lifecycle.flight.record(start, "ap_task");
                if out.success {
                    lifecycle.tasks.finish(task, TaskEnd::Completed, end);
                } else {
                    lifecycle.tasks.finish(task, TaskEnd::Failed, end);
                    if lifecycle.tasks.sampled(task) {
                        lifecycle.flight.dump(
                            task,
                            match out.cause {
                                Some(FailureCause::InsufficientSeeds) => "failure:seeds",
                                Some(FailureCause::PoorConnection) => "failure:connection",
                                _ => "failure:bug",
                            },
                            end,
                        );
                    }
                }
            }
            ap_clock[slot] = ap_clock[slot] + out.duration;
            if let Some(series) = series {
                let now_ms = ap_clock.iter().map(|c| c.as_millis()).max().unwrap_or(0);
                series.charge(out.success, out.storage_limited, now_ms);
            }
            records.push(ApTaskRecord {
                ap: fleet[slot].model,
                request: *req,
                success: out.success,
                cause: out.cause,
                rate_kbps: out.rate_kbps,
                duration: out.duration,
                traffic_mb: out.source_traffic_mb,
                iowait: out.iowait,
                storage_limited: out.storage_limited,
            });
        }
        if let Some(series) = series {
            let end_ms = ap_clock.iter().map(|c| c.as_millis()).max().unwrap_or(0);
            series.recorder.finish(end_ms);
        }
        (ApBenchReport { records }, lifecycle.map(|lifecycle| lifecycle.report()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_trace::{
        sample_benchmark_workload, Catalog, CatalogConfig, Population, PopulationConfig, Workload,
        WorkloadConfig,
    };
    use rand::SeedableRng;

    fn report(n: usize, seed: u64) -> ApBenchReport {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        let sample = sample_benchmark_workload(&workload, &catalog, &population, n, &mut rng);
        SmartApBenchmark::replay(&sample, &RngFactory::new(seed))
    }

    #[test]
    fn thousand_request_replay_matches_fig13_14() {
        // Use a larger sample than the paper's 1000 to tame sampling noise;
        // the repro harness runs the paper-exact 1000.
        let r = report(6000, 140);
        let speed = r.speed_ecdf().summary().unwrap();
        // Fig 13: median 27 KBps, average 64 KBps.
        assert!((10.0..45.0).contains(&speed.median), "median {}", speed.median);
        assert!((45.0..95.0).contains(&speed.mean), "mean {}", speed.mean);
        // Fig 14: median 77 min, average 402 min.
        let delay = r.delay_ecdf().summary().unwrap();
        assert!((40.0..130.0).contains(&delay.median), "median {}", delay.median);
        assert!(delay.mean > 2.5 * delay.median, "mean {} median {}", delay.mean, delay.median);
    }

    #[test]
    fn overall_failure_ratio_matches() {
        let r = report(6000, 141);
        let f = r.failure_ratio();
        assert!((f - 0.168).abs() < 0.04, "failure {f}");
    }

    #[test]
    fn unpopular_failure_ratio_matches() {
        let r = report(6000, 142);
        let f = r.unpopular_failure_ratio();
        assert!((f - 0.42).abs() < 0.06, "unpopular failure {f}");
    }

    #[test]
    fn failure_causes_split_86_10_4() {
        let r = report(8000, 143);
        let [seeds, conn, bug] = r.cause_shares();
        assert!((seeds - 0.86).abs() < 0.06, "seeds {seeds}");
        assert!((conn - 0.10).abs() < 0.05, "connection {conn}");
        assert!((bug - 0.04).abs() < 0.03, "bug {bug}");
    }

    #[test]
    fn newifi_max_speed_is_ntfs_capped() {
        let r = report(8000, 144);
        let newifi = r.max_speed_kbps(ApModel::Newifi);
        let hiwifi = r.max_speed_kbps(ApModel::HiWiFi);
        assert!(newifi <= 965.0, "Newifi max {newifi}"); // model puts the NTFS cap at 0.96 MBps (paper: 0.93)
        assert!(hiwifi > newifi, "HiWiFi max {hiwifi} should beat Newifi {newifi}");
    }

    #[test]
    fn replay_splits_requests_across_aps() {
        let r = report(999, 145);
        for ap in ApModel::ALL {
            assert_eq!(r.records_for(ap).count(), 333);
        }
    }

    #[test]
    fn series_replay_ends_at_the_final_counter_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(147);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        let sample = sample_benchmark_workload(&workload, &catalog, &population, 300, &mut rng);
        let run = |interval_ms| {
            let registry = Registry::new();
            let (report, series) = SmartApBenchmark::replay_fleet_series(
                &sample,
                &ApContext::bench_fleet(),
                &RngFactory::new(147),
                &registry,
                interval_ms,
            );
            (report, series, registry.snapshot())
        };
        let (report, series, snapshot) = run(3_600_000);
        assert!(series.times.len() > 1, "a 300-task replay spans multiple sim-hours");
        // The final sample equals the end-of-run counters, which equal
        // the report's own tallies.
        let last = |name: &str| series.series[name].final_value().unwrap();
        assert_eq!(last("ap.tasks") as u64, 300);
        assert_eq!(snapshot.counters["ap.tasks"], 300);
        assert_eq!(
            last("ap.failures") as u64,
            report.records().iter().filter(|r| !r.success).count() as u64
        );
        // Same seed, same cadence → byte-identical series.
        assert_eq!(series.to_json(), run(3_600_000).1.to_json());
        // The observed replay's records match the unobserved harness.
        let plain = SmartApBenchmark::replay(&sample, &RngFactory::new(147));
        assert_eq!(plain.failure_ratio(), report.failure_ratio());
    }

    #[test]
    fn replay_is_deterministic() {
        let a = report(300, 146);
        let b = report(300, 146);
        assert_eq!(a.failure_ratio(), b.failure_ratio());
        assert_eq!(
            a.records()[..50].iter().map(|r| r.rate_kbps).collect::<Vec<_>>(),
            b.records()[..50].iter().map(|r| r.rate_kbps).collect::<Vec<_>>()
        );
    }

    #[test]
    fn traced_replay_matches_untraced_and_tiles_durations() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(148);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        let sample = sample_benchmark_workload(&workload, &catalog, &population, 300, &mut rng);
        let plain = SmartApBenchmark::replay(&sample, &RngFactory::new(148));
        let (traced, lifecycle) = SmartApBenchmark::replay_fleet_traced(
            &sample,
            &ApContext::bench_fleet(),
            &RngFactory::new(148),
            &TraceConfig::full(),
        );
        // Tracing must not perturb the replay itself.
        assert_eq!(plain.failure_ratio(), traced.failure_ratio());
        assert_eq!(lifecycle.traces.traces.len(), sample.len());
        for (trace, record) in lifecycle.traces.traces.iter().zip(traced.records()) {
            assert_eq!(trace.completion_ms(), Some(record.duration.as_millis()));
            assert_eq!(trace.stage_ms(Stage::Predownload), record.duration.as_millis());
            let expected = if record.success { TaskEnd::Completed } else { TaskEnd::Failed };
            assert_eq!(trace.end.map(|(end, _)| end), Some(expected));
        }
        let failures = traced.records().iter().filter(|r| !r.success).count() as u64;
        assert_eq!(lifecycle.flight.dumps.len() as u64 + lifecycle.flight.dropped_dumps, failures);
    }

    #[test]
    fn ap_fault_windows_slow_and_kill_tasks_but_zero_intensity_is_free() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(149);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        let sample = sample_benchmark_workload(&workload, &catalog, &population, 3000, &mut rng);
        let fleet = ApContext::bench_fleet();
        let plain = SmartApBenchmark::replay_fleet(&sample, &fleet, &RngFactory::new(149));
        // Zero intensity must not perturb a single record.
        let quiet = SmartApBenchmark::replay_fleet_faulted(
            &sample,
            &fleet,
            &RngFactory::new(149),
            &FaultsConfig::default(),
        );
        assert_eq!(format!("{:?}", plain.records()), format!("{:?}", quiet.records()));
        // An aggressive plan kills some tasks and stalls others.
        let faults = FaultsConfig { intensity: 0.2, ..FaultsConfig::default() };
        let faulted =
            SmartApBenchmark::replay_fleet_faulted(&sample, &fleet, &RngFactory::new(149), &faults);
        assert!(
            faulted.failure_ratio() > plain.failure_ratio(),
            "power cycles should raise failures: {} vs {}",
            faulted.failure_ratio(),
            plain.failure_ratio()
        );
        assert!(
            faulted.storage_limited_fraction() > plain.storage_limited_fraction(),
            "disk stalls should hit the storage wall more often"
        );
    }

    #[test]
    fn usb3_fleet_lifts_the_newifi_storage_cap() {
        use odx_storage::{DeviceKind, FsKind};
        let mut rng = rand::rngs::StdRng::seed_from_u64(147);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        let sample = sample_benchmark_workload(&workload, &catalog, &population, 6000, &mut rng);
        let fleet = ApContext::bench_fleet().map(|c| ApContext {
            device: DeviceKind::UsbHdd,
            fs: FsKind::Ext4,
            ..c
        });
        let stock = SmartApBenchmark::replay(&sample, &RngFactory::new(147));
        let upgraded = SmartApBenchmark::replay_fleet(&sample, &fleet, &RngFactory::new(147));
        assert!(
            upgraded.max_speed_kbps(ApModel::Newifi) > stock.max_speed_kbps(ApModel::Newifi),
            "USB-HDD/EXT4 should beat the stock NTFS flash drive"
        );
        assert!(
            upgraded.storage_limited_fraction() <= stock.storage_limited_fraction(),
            "upgraded fleet should hit the storage wall no more often"
        );
    }
}
