//! The four proxy implementations of [`crate::ProxyBackend`].

mod cloud;
mod cloudap;
mod smartap;
mod userdevice;

pub use cloud::CloudBackend;
pub use cloudap::CloudAssistedApBackend;
pub use smartap::SmartApBackend;
pub use userdevice::UserDeviceBackend;

use odx_stats::dist::LogNormal;

/// The fetching-efficiency distribution every evaluation backend shares:
/// real transfers achieve a log-normal fraction of the nominal path rate
/// (median 95 %, clamped to 30–100 %).
pub(crate) fn efficiency_dist() -> LogNormal {
    LogNormal::from_median(0.95, 0.10)
}
