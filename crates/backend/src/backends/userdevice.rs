//! Direct download on the user's own device.

use odx_p2p::{SourceOutcome, SwarmModel};
use odx_stats::dist::{Dist, LogNormal};

use crate::config::{apply_dynamics, BackendConfig};
use crate::{BackendMetrics, ExecCtx, Outcome, ProxyBackend, ProxyRequest};

/// The null proxy: the user's device joins the swarm itself (ODR routes
/// highly popular P2P files here to relieve the cloud — Bottleneck 2).
pub struct UserDeviceBackend {
    cfg: BackendConfig,
    swarm: SwarmModel,
    efficiency: LogNormal,
    metrics: BackendMetrics,
}

impl UserDeviceBackend {
    /// A user-device backend with the given evaluation config.
    pub fn new(cfg: BackendConfig) -> Self {
        UserDeviceBackend {
            cfg,
            swarm: SwarmModel::default(),
            efficiency: super::efficiency_dist(),
            metrics: BackendMetrics::global("user-device"),
        }
    }

    /// Re-point this backend's metrics at `registry` (tests isolate
    /// snapshots this way).
    pub fn rebind_metrics(&mut self, registry: &odx_telemetry::Registry) {
        self.metrics = BackendMetrics::new(registry, "user-device");
    }
}

impl ProxyBackend for UserDeviceBackend {
    fn name(&self) -> &'static str {
        "user-device"
    }

    fn execute(&mut self, req: &ProxyRequest, ctx: &mut ExecCtx) -> Outcome {
        let eff = self.efficiency.sample(ctx.rng).clamp(0.3, 1.0);
        let out = match self.swarm.direct_attempt(req.weekly(), ctx.rng) {
            SourceOutcome::Serving { rate_kbps } => {
                let mut rate = rate_kbps.min(req.access_kbps * eff).min(self.cfg.line_payload_kbps);
                apply_dynamics(&mut rate, self.cfg.dynamics_probability, ctx.rng);
                let mut out = Outcome::success(rate, req.size_mb);
                out.source_traffic_mb = req.size_mb;
                out
            }
            SourceOutcome::Failed { cause } => Outcome::failure(Some(cause)),
        };
        self.metrics.record(&out);
        out
    }
}
