//! The cloud→AP relay proxy (the Bottleneck 1 escape hatch).

use odx_stats::dist::{Dist, LogNormal};

use crate::config::{apply_dynamics, BackendConfig};
use crate::{BackendMetrics, ExecCtx, Outcome, ProxyBackend, ProxyRequest};

/// The AP fetches the cached file from the cloud over the full ADSL line
/// via a privileged path (the AP's line, not the user's constrained one),
/// then serves the user over the LAN. Never crosses the ISP barrier — that
/// is the point of the relay.
pub struct CloudAssistedApBackend {
    cfg: BackendConfig,
    efficiency: LogNormal,
    metrics: BackendMetrics,
}

impl CloudAssistedApBackend {
    /// A relay backend with the given evaluation config.
    pub fn new(cfg: BackendConfig) -> Self {
        CloudAssistedApBackend {
            cfg,
            efficiency: super::efficiency_dist(),
            metrics: BackendMetrics::global("cloud+smart-ap"),
        }
    }

    /// Re-point this backend's metrics at `registry`.
    pub fn rebind_metrics(&mut self, registry: &odx_telemetry::Registry) {
        self.metrics = BackendMetrics::new(registry, "cloud+smart-ap");
    }
}

impl ProxyBackend for CloudAssistedApBackend {
    fn name(&self) -> &'static str {
        "cloud+smart-ap"
    }

    fn execute(&mut self, req: &ProxyRequest, ctx: &mut ExecCtx) -> Outcome {
        let eff = self.efficiency.sample(ctx.rng).clamp(0.3, 1.0);
        let ap = req.ap.expect("relay backend requires an AP");
        let offered = self.cfg.line_payload_kbps * eff;
        let achieved = ap.storage_capped_kbps(offered);
        // Storage "harm" only if the AP delivers less than the user's own
        // impeded path would have — for these users the relay is a strict
        // improvement even through a slow disk.
        let own_path = req.access_kbps * eff;
        let storage_limited = achieved < own_path.min(offered) - 1e-9;
        let mut rate = achieved;
        apply_dynamics(&mut rate, self.cfg.dynamics_probability, ctx.rng);
        let mut out = Outcome::success(rate, req.size_mb);
        out.cloud_upload_mb = req.size_mb;
        out.lan_mb = req.size_mb;
        out.storage_limited = storage_limited;
        self.metrics.record(&out);
        out
    }
}
