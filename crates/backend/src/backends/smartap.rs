//! The smart-AP proxy: the user's AP pre-downloads from the source.

use odx_p2p::{SourceOutcome, SwarmModel};
use odx_smartap::ApEngine;
use odx_stats::dist::{Dist, LogNormal};

use crate::config::{apply_dynamics, BackendConfig};
use crate::{ApContext, BackendMetrics, ExecCtx, Outcome, ProxyBackend, ProxyRequest};

/// How the AP's attempt is simulated.
enum Mode {
    /// §6.2's evaluation model: the swarm is asked directly, the offered
    /// rate is capped by access × efficiency and the line, and the AP's
    /// storage path caps the result. Residual dynamics apply afterwards.
    HotRelay { swarm: SwarmModel, efficiency: LogNormal },
    /// §5.1's benchmark model: the full [`ApEngine`] pipeline (bug draw,
    /// source attempt, stagnation pruning, protocol overhead, iowait). The
    /// request's own [`ProxyRequest::ap`] is ignored — the engine carries
    /// the AP under test.
    Bench { engine: ApEngine },
}

/// The user's smart AP as one proxy.
pub struct SmartApBackend {
    cfg: BackendConfig,
    mode: Mode,
    metrics: BackendMetrics,
}

impl SmartApBackend {
    /// The §6.2 evaluation backend (used by ODR's replay).
    pub fn hot_relay(cfg: BackendConfig) -> Self {
        SmartApBackend {
            cfg,
            mode: Mode::HotRelay {
                swarm: SwarmModel::default(),
                efficiency: super::efficiency_dist(),
            },
            metrics: BackendMetrics::global("smart-ap"),
        }
    }

    /// The §5.1 benchmark backend for one AP with its actual storage setup
    /// (used by [`crate::SmartApBenchmark`] and the AP-fleet scenarios).
    pub fn bench(ap: ApContext) -> Self {
        let storage = odx_smartap::StorageSetup { device: ap.device, fs: ap.fs };
        SmartApBackend {
            cfg: BackendConfig::default(),
            mode: Mode::Bench {
                engine: ApEngine::new(ap.model, storage, odx_smartap::ApEngineConfig::default()),
            },
            metrics: BackendMetrics::global("smart-ap"),
        }
    }

    /// Re-point this backend's metrics at `registry`.
    pub fn rebind_metrics(&mut self, registry: &odx_telemetry::Registry) {
        self.metrics = BackendMetrics::new(registry, "smart-ap");
    }

    /// The AP model under test, for benchmark-mode backends.
    pub fn bench_model(&self) -> Option<odx_smartap::ApModel> {
        match &self.mode {
            Mode::Bench { engine } => Some(engine.model()),
            Mode::HotRelay { .. } => None,
        }
    }
}

impl ProxyBackend for SmartApBackend {
    fn name(&self) -> &'static str {
        "smart-ap"
    }

    fn execute(&mut self, req: &ProxyRequest, ctx: &mut ExecCtx) -> Outcome {
        let out = match &self.mode {
            Mode::HotRelay { swarm, efficiency } => {
                let eff = efficiency.sample(ctx.rng).clamp(0.3, 1.0);
                match swarm.direct_attempt(req.weekly(), ctx.rng) {
                    SourceOutcome::Serving { rate_kbps } => {
                        let offered =
                            rate_kbps.min(req.access_kbps * eff).min(self.cfg.line_payload_kbps);
                        let ap = req.ap.expect("smart-ap backend requires an AP");
                        let achieved = ap.storage_capped_kbps(offered);
                        let storage_limited = achieved < offered - 1e-9;
                        let mut rate = achieved;
                        apply_dynamics(&mut rate, self.cfg.dynamics_probability, ctx.rng);
                        let mut out = Outcome::success(rate, req.size_mb);
                        out.source_traffic_mb = req.size_mb;
                        out.lan_mb = req.size_mb;
                        out.storage_limited = storage_limited;
                        out
                    }
                    SourceOutcome::Failed { cause } => Outcome::failure(Some(cause)),
                }
            }
            Mode::Bench { engine } => {
                let ap_out = engine.pre_download(&req.file_meta(), req.access_kbps, ctx.rng);
                Outcome {
                    success: ap_out.success,
                    cause: ap_out.cause,
                    rate_kbps: ap_out.rate_kbps,
                    duration: ap_out.duration,
                    cloud_upload_mb: 0.0,
                    source_traffic_mb: ap_out.traffic_mb,
                    lan_mb: 0.0,
                    iowait: ap_out.iowait,
                    storage_limited: ap_out.storage_limited,
                }
            }
        };
        self.metrics.record(&out);
        out
    }
}
