//! The cloud proxy: cached fetch or pre-download-then-fetch.

use odx_net::BarrierModel;
use odx_p2p::{HttpFtpModel, SwarmModel};
use odx_stats::dist::{u01, Dist, LogNormal};

use crate::config::{apply_dynamics, BackendConfig};
use crate::{BackendMetrics, ExecCtx, Outcome, ProxyBackend, ProxyRequest};

/// The production cloud as one proxy.
///
/// Branches on [`ProxyRequest::cached_in_cloud`]:
///
/// * **cached** — the user fetches straight away over their access link
///   (capped by the ADSL payload rate), crossing the ISP barrier if they
///   sit outside the four major ISPs;
/// * **not cached** — the cloud pre-downloads first with its fleet-level
///   retry history (failure probability decays per prior attempt, times the
///   [`BackendConfig::cloud_retry_factor`]). On success the file enters the
///   collaborative cache in [`ExecCtx::cloud`] and the user fetches —
///   B1-at-risk users with an AP via the cloud→AP relay (§6.1 Case 2),
///   which dodges the barrier; everyone else directly.
pub struct CloudBackend {
    cfg: BackendConfig,
    swarm: SwarmModel,
    http: HttpFtpModel,
    barrier: BarrierModel,
    efficiency: LogNormal,
    metrics: BackendMetrics,
}

impl CloudBackend {
    /// A cloud backend with the given evaluation config.
    pub fn new(cfg: BackendConfig) -> Self {
        CloudBackend {
            cfg,
            swarm: SwarmModel::default(),
            http: HttpFtpModel::default(),
            barrier: BarrierModel::default(),
            efficiency: super::efficiency_dist(),
            metrics: BackendMetrics::global("cloud"),
        }
    }

    /// Re-point this backend's metrics at `registry`.
    pub fn rebind_metrics(&mut self, registry: &odx_telemetry::Registry) {
        self.metrics = BackendMetrics::new(registry, "cloud");
    }

    /// Finish a successful user fetch: residual dynamics, then the ISP
    /// barrier for direct (non-relayed) fetches from outside the majors.
    fn finish_fetch(
        &self,
        req: &ProxyRequest,
        mut rate: f64,
        relayed: bool,
        ctx: &mut ExecCtx,
    ) -> Outcome {
        apply_dynamics(&mut rate, self.cfg.dynamics_probability, ctx.rng);
        if !req.isp.is_major() && !relayed {
            rate = rate.min(self.barrier.sample(ctx.rng));
        }
        let mut out = Outcome::success(rate, req.size_mb);
        out.cloud_upload_mb = req.size_mb;
        if relayed {
            out.lan_mb = req.size_mb;
        }
        out
    }
}

impl ProxyBackend for CloudBackend {
    fn name(&self) -> &'static str {
        "cloud"
    }

    fn execute(&mut self, req: &ProxyRequest, ctx: &mut ExecCtx) -> Outcome {
        let eff = self.efficiency.sample(ctx.rng).clamp(0.3, 1.0);
        let line = self.cfg.line_payload_kbps;
        let out = if req.cached_in_cloud {
            let rate = req.access_kbps.mul_add(eff, 0.0).min(line);
            self.finish_fetch(req, rate, false, ctx)
        } else {
            // The cloud pre-downloads with its retry history, then the user
            // fetches as in the cached case.
            let prior = ctx.cloud.failed_attempts(req.file_index);
            let base_p = if req.protocol.is_p2p() {
                self.swarm.failure_probability(req.weekly())
            } else {
                self.http.failure_probability(req.weekly())
            };
            let p = base_p
                * self.cfg.retry_decay.powi(prior.min(30) as i32)
                * self.cfg.cloud_retry_factor;
            if u01(ctx.rng) < p {
                ctx.cloud.note_failure(req.file_index);
                Outcome::failure(None)
            } else {
                ctx.cloud.mark_cached(req.file_index);
                // §6.1 Case 2: once notified, the user asks ODR again —
                // B1-at-risk users then fetch through the cloud→AP relay,
                // everyone else straight from the cloud.
                match (req.b1_at_risk(), req.ap) {
                    (true, Some(ap)) => {
                        let rate = ap.storage_capped_kbps(line * eff);
                        self.finish_fetch(req, rate, true, ctx)
                    }
                    _ => {
                        let rate = (req.access_kbps * eff).min(line);
                        self.finish_fetch(req, rate, false, ctx)
                    }
                }
            }
        };
        self.metrics.record(&out);
        out
    }
}
