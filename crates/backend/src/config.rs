//! Shared backend tuning knobs — the single home of the evaluation-layer
//! magic numbers that previously lived inline in `odx-odr`'s replay.

use odx_stats::dist::u01;
use rand::Rng;
use serde::Serialize;

/// Tuning knobs shared by every proxy backend.
///
/// These are the §6.2 evaluation-environment constants; `odx-odr` re-exports
/// this struct as `ReplayConfig` for compatibility. Scenario presets override
/// individual fields (see [`crate::ScenarioRegistry`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BackendConfig {
    /// Probability that residual network dynamics degrade a fetch — what is
    /// left of Bottleneck 1 after redirection (§6.2: "the remainder (9 %)
    /// is mostly due to the intrinsic dynamics of the Internet").
    pub dynamics_probability: f64,
    /// Warm-cache pivot: a file with `w` weekly requests is already cached
    /// with probability `w/(w+pivot)`. Lower than the week replay's pivot:
    /// the production pool has accumulated content for years, not one week.
    pub warm_cache_pivot: f64,
    /// Failure-probability decay per failed attempt (same as the cloud).
    pub retry_decay: f64,
    /// Fleet-level retry factor: the production cloud schedules a request
    /// across many pre-downloader VMs (and keeps trying until the 1-hour
    /// stagnation rule) before reporting a user-visible failure, so its
    /// per-request failure probability sits below a single attempt's.
    pub cloud_retry_factor: f64,
    /// Payload cap of the evaluation environment's ADSL lines (KBps):
    /// Fig 17's 2.37 MBps maximum.
    pub line_payload_kbps: f64,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            dynamics_probability: 0.09,
            warm_cache_pivot: 2.5,
            retry_decay: 0.97,
            cloud_retry_factor: 0.75,
            line_payload_kbps: odx_net::ADSL_PAYLOAD_KBPS,
        }
    }
}

/// Apply the residual-Internet-dynamics draw to a fetch rate.
///
/// With probability `p`, the transfer is degraded to a uniform 5–50 % of
/// its rate (two `u01` draws: the trigger, then the severity — callers rely
/// on this exact draw order for replay determinism). Returns whether the
/// degradation fired.
pub fn apply_dynamics(rate: &mut f64, p: f64, rng: &mut dyn Rng) -> bool {
    if u01(rng) < p {
        *rate *= 0.05 + 0.45 * u01(rng);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_sim::RngFactory;

    #[test]
    fn defaults_match_the_section_6_2_environment() {
        let cfg = BackendConfig::default();
        assert_eq!(cfg.dynamics_probability, 0.09);
        assert_eq!(cfg.warm_cache_pivot, 2.5);
        assert_eq!(cfg.retry_decay, 0.97);
        assert_eq!(cfg.cloud_retry_factor, 0.75);
        assert_eq!(cfg.line_payload_kbps, 2370.0);
    }

    #[test]
    fn dynamics_degrade_into_the_5_to_50_percent_band() {
        let rngs = RngFactory::new(11);
        let mut rng = rngs.stream("dyn");
        let mut fired = 0usize;
        for _ in 0..4000 {
            let mut rate = 1000.0;
            if apply_dynamics(&mut rate, 0.09, &mut rng) {
                fired += 1;
                assert!(rate >= 50.0 - 1e-9 && rate <= 500.0 + 1e-9, "degraded to {rate}");
            } else {
                assert_eq!(rate, 1000.0);
            }
        }
        let share = fired as f64 / 4000.0;
        assert!((share - 0.09).abs() < 0.02, "dynamics fired on {share}");
    }
}
