//! Golden per-record outcomes of the §5.1 smart-AP benchmark (seed 4243,
//! scale 0.02, 60 sampled tasks), captured before the benchmark was moved
//! onto the shared `ProxyBackend` layer. A diff here means the refactor
//! changed the replayed outcomes, not just the code structure.

use odx_backend::SmartApBenchmark;
use odx_sim::RngFactory;
use odx_trace::{
    sample_benchmark_workload, Catalog, CatalogConfig, Population, PopulationConfig, Workload,
    WorkloadConfig,
};
use rand::SeedableRng;

/// Token-wise comparison: float fields (`key=1.23e4`) within 1e-8 relative,
/// everything else exact.
fn assert_line_matches(actual: &str, golden: &str) {
    let (a, g): (Vec<&str>, Vec<&str>) =
        (actual.split_whitespace().collect(), golden.split_whitespace().collect());
    assert_eq!(a.len(), g.len(), "token count: `{actual}` vs `{golden}`");
    for (at, gt) in a.iter().zip(&g) {
        if at == gt {
            continue;
        }
        let parse = |t: &str| t.split_once('=').and_then(|(_, v)| v.parse::<f64>().ok());
        match (parse(at), parse(gt)) {
            (Some(av), Some(gv)) if (av - gv).abs() <= 1e-8 * gv.abs().max(1.0) => {}
            _ => panic!("golden mismatch: `{actual}` vs `{golden}`"),
        }
    }
}

const GOLDEN_RECORDS: &str = "\
brec 0: ap=HiWiFi success=true cause=None rate=1.7330987055e1 dur_ms=461543 traffic=1.5892771862e1 iowait=3.0783280736e-3 stor=false\n\
brec 1: ap=MiWiFi success=true cause=None rate=2.0247361935e1 dur_ms=43856700 traffic=1.7851673348e3 iowait=2.5372634003e-3 stor=false\n\
brec 2: ap=Newifi success=true cause=None rate=2.8120953026e1 dur_ms=26309 traffic=1.5614357202e0 iowait=4.6868255044e-3 stor=false\n\
brec 3: ap=HiWiFi success=true cause=None rate=4.1518112516e1 dur_ms=2445228 traffic=1.9251699536e2 iowait=7.3744427204e-3 stor=false\n\
brec 4: ap=MiWiFi success=true cause=None rate=6.1395360081e1 dur_ms=2210795 traffic=2.7693375809e2 iowait=7.6936541455e-3 stor=false\n\
brec 5: ap=Newifi success=true cause=None rate=6.5705565920e1 dur_ms=1012048 traffic=7.1225682732e1 iowait=1.0950927653e-2 stor=false\n\
brec 6: ap=HiWiFi success=true cause=None rate=2.5856838549e1 dur_ms=12334841 traffic=6.6604104221e2 iowait=4.5926889074e-3 stor=false\n\
brec 7: ap=MiWiFi success=true cause=None rate=3.8108134943e1 dur_ms=888718 traffic=7.0982249400e1 iowait=4.7754555066e-3 stor=false\n\
brec 8: ap=Newifi success=true cause=None rate=2.5748606959e1 dur_ms=9534549 traffic=4.4120986116e2 iowait=4.2914344932e-3 stor=false\n\
brec 9: ap=HiWiFi success=true cause=None rate=8.2892824066e2 dur_ms=1810 traffic=1.6297319702e0 iowait=1.4723414577e-1 stor=false\n\
brec 10: ap=MiWiFi success=true cause=None rate=2.4822621600e1 dur_ms=40234137 traffic=1.9858055860e3 iowait=3.1106042105e-3 stor=false\n\
brec 11: ap=Newifi success=false cause=Some(InsufficientSeeds) rate=0.0000000000e0 dur_ms=5666101 traffic=2.9392441750e1 iowait=0.0000000000e0 stor=false\n\
brec 12: ap=HiWiFi success=true cause=None rate=1.2891207013e1 dur_ms=6331992 traffic=1.5866989681e2 iowait=2.2897348158e-3 stor=false\n\
brec 13: ap=MiWiFi success=true cause=None rate=4.1424028404e1 dur_ms=1630196 traffic=1.6303827922e2 iowait=5.1909810031e-3 stor=false\n\
brec 14: ap=Newifi success=true cause=None rate=1.6349734230e1 dur_ms=19854256 traffic=5.2551270899e2 iowait=2.7249557050e-3 stor=false\n\
brec 15: ap=HiWiFi success=true cause=None rate=4.0845349015e1 dur_ms=1724209 traffic=1.2351383828e2 iowait=7.2549465390e-3 stor=false\n\
brec 16: ap=MiWiFi success=false cause=Some(InsufficientSeeds) rate=0.0000000000e0 dur_ms=3701360 traffic=6.3606755168e1 iowait=0.0000000000e0 stor=false\n\
brec 17: ap=Newifi success=true cause=None rate=6.9807567201e1 dur_ms=39421 traffic=2.9886802124e0 iowait=1.1634594533e-2 stor=false\n\
brec 18: ap=HiWiFi success=true cause=None rate=2.3975058598e2 dur_ms=11469 traffic=5.0056248492e0 iowait=4.2584473531e-2 stor=false\n\
brec 19: ap=MiWiFi success=true cause=None rate=2.6846706962e1 dur_ms=8256 traffic=3.7110962306e-1 iowait=3.3642489927e-3 stor=false\n\
brec 20: ap=Newifi success=true cause=None rate=5.0550139597e1 dur_ms=24004 traffic=1.9291014461e0 iowait=8.4250232662e-3 stor=false\n\
brec 21: ap=HiWiFi success=true cause=None rate=1.7750722331e1 dur_ms=6007630 traffic=2.2397008300e2 iowait=3.1528814088e-3 stor=false\n\
brec 22: ap=MiWiFi success=true cause=None rate=6.3841320551e1 dur_ms=1535600 traffic=1.4778041567e2 iowait=8.0001654826e-3 stor=false\n\
brec 23: ap=Newifi success=true cause=None rate=1.1009432608e2 dur_ms=5533 traffic=6.5585125427e-1 iowait=1.8349054347e-2 stor=false\n\
brec 24: ap=HiWiFi success=true cause=None rate=6.9654719317e0 dur_ms=1148379 traffic=1.2490770795e1 iowait=1.2372063822e-3 stor=false\n\
brec 25: ap=MiWiFi success=true cause=None rate=6.7163206158e2 dur_ms=109039 traffic=7.9533076119e1 iowait=8.4164418744e-2 stor=false\n\
brec 26: ap=Newifi success=true cause=None rate=2.5563925622e1 dur_ms=1275850 traffic=6.1680450311e1 iowait=4.2606542703e-3 stor=false\n\
brec 27: ap=HiWiFi success=true cause=None rate=2.6355442932e2 dur_ms=1250016 traffic=3.5950695020e2 iowait=4.6812509649e-2 stor=false\n\
brec 28: ap=MiWiFi success=true cause=None rate=8.8223454035e1 dur_ms=339363 traffic=3.2883427441e1 iowait=1.1055570681e-2 stor=false\n\
brec 29: ap=Newifi success=true cause=None rate=1.0450318908e1 dur_ms=118387 traffic=2.9673562840e0 iowait=1.7417198179e-3 stor=false\n\
brec 30: ap=HiWiFi success=true cause=None rate=1.6072902575e1 dur_ms=8968377 traffic=2.8588794777e2 iowait=2.8548672425e-3 stor=false\n\
brec 31: ap=MiWiFi success=true cause=None rate=6.4595847843e1 dur_ms=1029434 traffic=7.1664700643e1 iowait=8.0947177749e-3 stor=false\n\
brec 32: ap=Newifi success=false cause=Some(InsufficientSeeds) rate=0.0000000000e0 dur_ms=5735781 traffic=8.0669840189e0 iowait=0.0000000000e0 stor=false\n\
brec 33: ap=HiWiFi success=true cause=None rate=5.4001506402e0 dur_ms=319489 traffic=3.9372379435e0 iowait=9.5917418120e-4 stor=false\n\
brec 34: ap=MiWiFi success=true cause=None rate=4.1247056948e1 dur_ms=1707417 traffic=1.2562065365e2 iowait=5.1688041289e-3 stor=false\n\
brec 35: ap=Newifi success=true cause=None rate=4.6885804892e1 dur_ms=20289631 traffic=1.5873008970e3 iowait=7.8143008153e-3 stor=false\n\
brec 36: ap=HiWiFi success=true cause=None rate=4.4145869564e1 dur_ms=45089399 traffic=4.6108082612e3 iowait=7.8411846473e-3 stor=false\n\
brec 37: ap=MiWiFi success=true cause=None rate=3.1315959371e1 dur_ms=95335959 traffic=6.9348702789e3 iowait=3.9243056856e-3 stor=false\n\
brec 38: ap=Newifi success=true cause=None rate=1.0559118018e2 dur_ms=3749016 traffic=7.7278336014e2 iowait=1.7598530030e-2 stor=false\n\
brec 39: ap=HiWiFi success=true cause=None rate=5.1734279919e2 dur_ms=15462 traffic=8.7529730228e0 iowait=9.1890372857e-2 stor=false\n\
brec 40: ap=MiWiFi success=true cause=None rate=1.0150301611e1 dur_ms=18970 traffic=3.8821197522e-1 iowait=1.2719676204e-3 stor=false\n\
brec 41: ap=Newifi success=true cause=None rate=1.6011090389e2 dur_ms=49959 traffic=1.6251822514e1 iowait=2.6685150649e-2 stor=false\n\
brec 42: ap=HiWiFi success=false cause=Some(InsufficientSeeds) rate=0.0000000000e0 dur_ms=6706050 traffic=7.1855604299e1 iowait=0.0000000000e0 stor=false\n\
brec 43: ap=MiWiFi success=true cause=None rate=5.1374285788e1 dur_ms=932472 traffic=9.5257121261e1 iowait=6.4378804245e-3 stor=false\n\
brec 44: ap=Newifi success=true cause=None rate=4.5685915965e2 dur_ms=8965564 traffic=4.3854679322e3 iowait=7.6143193276e-2 stor=false\n\
brec 45: ap=HiWiFi success=false cause=Some(SystemBug) rate=0.0000000000e0 dur_ms=3032124 traffic=2.5408936899e-1 iowait=0.0000000000e0 stor=false\n\
brec 46: ap=MiWiFi success=true cause=None rate=3.3654914838e1 dur_ms=11220 traffic=6.4207483497e-1 iowait=4.2174078744e-3 stor=false\n\
brec 47: ap=Newifi success=true cause=None rate=1.1653820309e1 dur_ms=148092 traffic=1.8837896651e0 iowait=1.9423033848e-3 stor=false\n\
brec 48: ap=HiWiFi success=true cause=None rate=1.8371179377e1 dur_ms=4524919 traffic=1.9619639457e2 iowait=3.2630869231e-3 stor=false\n\
brec 49: ap=MiWiFi success=true cause=None rate=2.9149617645e2 dur_ms=164342 traffic=9.0539415703e1 iowait=3.6528342913e-2 stor=false\n\
brec 50: ap=Newifi success=true cause=None rate=8.3857760926e1 dur_ms=3274 traffic=5.4764606300e-1 iowait=1.3976293488e-2 stor=false\n\
brec 51: ap=HiWiFi success=true cause=None rate=3.6473752024e1 dur_ms=3994533 traffic=1.5592379952e2 iowait=6.4784639475e-3 stor=false\n\
brec 52: ap=MiWiFi success=true cause=None rate=1.3908029716e2 dur_ms=655898 traffic=1.5792583840e2 iowait=1.7428608667e-2 stor=false\n\
brec 53: ap=Newifi success=true cause=None rate=2.0265782326e2 dur_ms=470856 traffic=1.7650575504e2 iowait=3.3776303877e-2 stor=false\n\
brec 54: ap=HiWiFi success=true cause=None rate=1.4220194722e0 dur_ms=198433250 traffic=4.7035850958e2 iowait=2.5257894710e-4 stor=false\n\
brec 55: ap=MiWiFi success=true cause=None rate=6.7278583022e0 dur_ms=8134379 traffic=1.2315822712e2 iowait=8.4309001281e-4 stor=false\n\
brec 56: ap=Newifi success=true cause=None rate=3.3030069371e1 dur_ms=976287 traffic=4.8984586913e1 iowait=5.5050115619e-3 stor=false\n\
brec 57: ap=HiWiFi success=false cause=Some(InsufficientSeeds) rate=0.0000000000e0 dur_ms=4237981 traffic=2.5693755024e0 iowait=0.0000000000e0 stor=false\n\
brec 58: ap=MiWiFi success=true cause=None rate=2.1694843873e1 dur_ms=2402287 traffic=1.1449717894e2 iowait=2.7186521144e-3 stor=false\n\
brec 59: ap=Newifi success=false cause=Some(InsufficientSeeds) rate=0.0000000000e0 dur_ms=5309772 traffic=7.5052897731e1 iowait=0.0000000000e0 stor=false\n\
";

#[test]
fn ap_benchmark_matches_pre_refactor_goldens() {
    let seed = 4243u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
    let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
    let workload = Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
    let sample = sample_benchmark_workload(&workload, &catalog, &population, 60, &mut rng);
    let report = SmartApBenchmark::replay(&sample, &RngFactory::new(seed));

    let golden: Vec<&str> = GOLDEN_RECORDS.lines().collect();
    assert_eq!(report.records().len(), golden.len());
    for (i, (r, line)) in report.records().iter().zip(&golden).enumerate() {
        let actual = format!(
            "brec {i}: ap={:?} success={} cause={:?} rate={:.10e} dur_ms={} traffic={:.10e} iowait={:.10e} stor={}",
            r.ap,
            r.success,
            r.cause,
            r.rate_kbps,
            r.duration.as_millis(),
            r.traffic_mb,
            r.iowait,
            r.storage_limited
        );
        assert_line_matches(&actual, line);
    }
}
