#![warn(missing_docs)]

//! # odx-faults — deterministic fault injection and recovery policies
//!
//! The paper's headline numbers are *failure* numbers — ~8.7 % of cloud
//! pre-downloads stagnate (§4.1), and the smart-AP story is largely disk
//! stalls and flaky links (§5) — yet a plain replay only ever reproduces
//! those rates as fixed probabilities. This crate makes the conditions
//! behind them first-class and injectable:
//!
//! * [`FaultPlan`] — a seeded, pre-compiled schedule of timed
//!   [`FaultWindow`]s over the measurement week. Compilation is pure:
//!   the same [`FaultsConfig`] and RNG stream always produce the same
//!   windows, so heap and wheel schedulers (and any `--jobs` value) see
//!   the identical `(time, seq)` event order. A zero-intensity config
//!   compiles to an empty plan **without consuming a single RNG draw**,
//!   which is what keeps default runs byte-identical to the pre-fault
//!   golden exports.
//! * [`RetryPolicy`] — the recovery side: none / fixed / exponential
//!   backoff with deterministic seeded jitter and a per-task attempt
//!   cap, used by the cloud pre-downloader to re-dispatch stagnated
//!   tasks instead of abandoning their waiters.
//!
//! Fault windows come in three domains ([`FaultDomain`]): ISP uplink
//! trouble (`Net`), fetch-server trouble (`Cloud`), and device trouble
//! (`SmartAp`). Each domain's windows are stratified over the week —
//! one window placed uniformly inside each equal-width stratum — so
//! they are non-overlapping and sorted by construction, and
//! [`FaultPlan::active`] is a binary search.

use odx_sim::{SimDuration, SimRng};
use odx_stats::dist::u01;

/// One simulated measurement week, in milliseconds.
pub const WEEK_MS: u64 = 7 * 86_400 * 1000;

/// Which layer of the system a fault window hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDomain {
    /// ISP uplink between the cloud and subscribers (fetch rates).
    Net,
    /// The cloud fetch/pre-download servers.
    Cloud,
    /// Smart-AP hardware (disk, power).
    SmartAp,
}

impl FaultDomain {
    /// Every domain, in the order plans compile them.
    pub const ALL: [FaultDomain; 3] = [FaultDomain::Net, FaultDomain::Cloud, FaultDomain::SmartAp];

    /// Stable lower-case name (telemetry prefixes, logs).
    pub fn name(self) -> &'static str {
        match self {
            FaultDomain::Net => "net",
            FaultDomain::Cloud => "cloud",
            FaultDomain::SmartAp => "smartap",
        }
    }
}

/// The concrete failure mode a window injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Uplink degradation: fetch rates multiply by the window severity.
    NetDegradation,
    /// Near-total partition: fetch rates multiply by a tiny floor (never
    /// zero — transfers crawl rather than wedge, keeping pool accounting
    /// intact).
    NetPartition,
    /// Fetch-server outage: every pre-download started in the window is
    /// forced to stagnate.
    CloudOutage,
    /// Brownout: pre-downloads still succeed but at severity × rate.
    CloudBrownout,
    /// Smart-AP disk stall: task rates multiply by the window severity
    /// and iowait climbs.
    ApDiskStall,
    /// Smart-AP power cycle: tasks active in the window are lost.
    ApPowerCycle,
}

impl FaultKind {
    /// The domain this kind belongs to.
    pub fn domain(self) -> FaultDomain {
        match self {
            FaultKind::NetDegradation | FaultKind::NetPartition => FaultDomain::Net,
            FaultKind::CloudOutage | FaultKind::CloudBrownout => FaultDomain::Cloud,
            FaultKind::ApDiskStall | FaultKind::ApPowerCycle => FaultDomain::SmartAp,
        }
    }

    /// Stable `'static` label (flight-recorder rings require static strs).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::NetDegradation => "fault:net-degradation",
            FaultKind::NetPartition => "fault:net-partition",
            FaultKind::CloudOutage => "fault:cloud-outage",
            FaultKind::CloudBrownout => "fault:cloud-brownout",
            FaultKind::ApDiskStall => "fault:ap-disk-stall",
            FaultKind::ApPowerCycle => "fault:ap-power-cycle",
        }
    }

    /// Whether this is the domain's severe variant (partition / outage /
    /// power cycle) as opposed to its degraded-service variant.
    pub fn is_severe(self) -> bool {
        matches!(self, FaultKind::NetPartition | FaultKind::CloudOutage | FaultKind::ApPowerCycle)
    }
}

/// One timed fault window: `[start_ms, end_ms)` on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Window start (virtual ms, inclusive).
    pub start_ms: u64,
    /// Window end (virtual ms, exclusive).
    pub end_ms: u64,
    /// What the window injects.
    pub kind: FaultKind,
    /// Kind-specific severity: a rate multiplier in (0, 1] for the
    /// degraded-service kinds; unused (0.0) for forced-failure kinds.
    pub severity: f64,
}

impl FaultWindow {
    /// Whether `at_ms` falls inside the window.
    pub fn contains(&self, at_ms: u64) -> bool {
        self.start_ms <= at_ms && at_ms < self.end_ms
    }
}

/// Rate multiplier applied during a [`FaultKind::NetPartition`] window:
/// small enough to wreck every fetch it touches, never zero so transfers
/// still complete and release their pool reservations.
pub const PARTITION_RATE_FACTOR: f64 = 0.03;

/// Scenario-carried fault-injection knobs (`faults.*` dotted paths).
///
/// `Copy` so it can ride inside `CloudConfig` unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultsConfig {
    /// Master dial in `[0, 1]`: the fraction of the week each domain
    /// spends under an active fault window. `0.0` disables injection
    /// entirely (no windows, no RNG draws).
    pub intensity: f64,
    /// Mean fault-window length in seconds (> 0).
    pub window_s: f64,
    /// Fetch-rate multiplier during net degradation windows, in (0, 1].
    pub net_slowdown: f64,
    /// Pre-download rate multiplier during cloud brownouts, in (0, 1].
    pub cloud_slowdown: f64,
    /// Smart-AP rate multiplier during disk-stall windows, in (0, 1].
    pub ap_slowdown: f64,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig {
            intensity: 0.0,
            window_s: 1800.0,
            net_slowdown: 0.35,
            cloud_slowdown: 0.4,
            ap_slowdown: 0.3,
        }
    }
}

impl FaultsConfig {
    /// Whether the config injects anything at all.
    pub fn is_active(&self) -> bool {
        self.intensity > 0.0
    }
}

/// A compiled, immutable schedule of fault windows for one replay.
///
/// Windows are stored per domain, sorted and non-overlapping by
/// construction (stratified placement), so [`FaultPlan::active`] is a
/// binary search over starts.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    net: Vec<FaultWindow>,
    cloud: Vec<FaultWindow>,
    smartap: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (what zero intensity compiles to).
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Compile `cfg` into a schedule using `rng` (callers pass a dedicated
    /// `"faults"` stream so compilation never perturbs other draws).
    ///
    /// Each domain gets `n = round(intensity · week / window)` windows.
    /// The week is divided into `n` equal strata and one window is placed
    /// uniformly inside each, clamped to its stratum — non-overlapping and
    /// sorted without any post-processing. Per window, one draw places the
    /// start and one picks the severe-vs-degraded kind; zero intensity
    /// therefore consumes **zero** draws.
    pub fn compile(cfg: &FaultsConfig, rng: &mut SimRng) -> FaultPlan {
        if !cfg.is_active() {
            return FaultPlan::empty();
        }
        let window_ms = (cfg.window_s.max(1.0) * 1000.0).round() as u64;
        let mut plan = FaultPlan::empty();
        for domain in FaultDomain::ALL {
            let n = (cfg.intensity * WEEK_MS as f64 / window_ms as f64).round() as u64;
            let windows = match domain {
                FaultDomain::Net => &mut plan.net,
                FaultDomain::Cloud => &mut plan.cloud,
                FaultDomain::SmartAp => &mut plan.smartap,
            };
            for i in 0..n {
                let stratum_start = i * WEEK_MS / n;
                let stratum_end = (i + 1) * WEEK_MS / n;
                let span = stratum_end - stratum_start;
                let len = window_ms.min(span);
                let slack = span - len;
                let start = stratum_start + (u01(rng) * slack as f64) as u64;
                let severe = u01(rng) < 0.3;
                let kind = match (domain, severe) {
                    (FaultDomain::Net, false) => FaultKind::NetDegradation,
                    (FaultDomain::Net, true) => FaultKind::NetPartition,
                    (FaultDomain::Cloud, false) => FaultKind::CloudBrownout,
                    (FaultDomain::Cloud, true) => FaultKind::CloudOutage,
                    (FaultDomain::SmartAp, false) => FaultKind::ApDiskStall,
                    (FaultDomain::SmartAp, true) => FaultKind::ApPowerCycle,
                };
                let severity = match kind {
                    FaultKind::NetDegradation => cfg.net_slowdown,
                    FaultKind::NetPartition => PARTITION_RATE_FACTOR,
                    FaultKind::CloudBrownout => cfg.cloud_slowdown,
                    FaultKind::ApDiskStall => cfg.ap_slowdown,
                    FaultKind::CloudOutage | FaultKind::ApPowerCycle => 0.0,
                };
                windows.push(FaultWindow { start_ms: start, end_ms: start + len, kind, severity });
            }
        }
        plan
    }

    /// The compiled windows for `domain`, sorted by start.
    pub fn windows(&self, domain: FaultDomain) -> &[FaultWindow] {
        match domain {
            FaultDomain::Net => &self.net,
            FaultDomain::Cloud => &self.cloud,
            FaultDomain::SmartAp => &self.smartap,
        }
    }

    /// Total number of windows across all domains.
    pub fn len(&self) -> usize {
        self.net.len() + self.cloud.len() + self.smartap.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The window covering `at_ms` in `domain`, if any (binary search).
    pub fn active(&self, domain: FaultDomain, at_ms: u64) -> Option<&FaultWindow> {
        let windows = self.windows(domain);
        let idx = windows.partition_point(|w| w.start_ms <= at_ms);
        let candidate = windows.get(idx.checked_sub(1)?)?;
        candidate.contains(at_ms).then_some(candidate)
    }
}

/// The built-in retry policies, in listing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetryKind {
    /// Never retry: a stagnated pre-download fails its waiters (the
    /// paper's observed behaviour — the baseline).
    None,
    /// Fixed backoff: re-dispatch after `base_delay_s` (± jitter).
    Fixed,
    /// Exponential backoff: `base_delay_s · 2^attempt` (± jitter).
    Expo,
}

impl RetryKind {
    /// Every built-in retry policy, in the order sweeps list them.
    pub const ALL: [RetryKind; 3] = [RetryKind::None, RetryKind::Fixed, RetryKind::Expo];

    /// Stable lower-case name (`retry.policy` values, telemetry).
    pub fn name(self) -> &'static str {
        match self {
            RetryKind::None => "none",
            RetryKind::Fixed => "fixed",
            RetryKind::Expo => "expo",
        }
    }

    /// Parse a `retry.policy` name. `None` for unknown names (the caller
    /// turns this into an exit-2 suggestion error).
    pub fn parse(name: &str) -> Option<RetryKind> {
        RetryKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for RetryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scenario-carried retry knobs (`retry.*` dotted paths). `Copy` so it
/// can ride inside `CloudConfig` unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Which backoff schedule to run.
    pub kind: RetryKind,
    /// Base re-dispatch delay in seconds (> 0).
    pub base_delay_s: f64,
    /// Per-task attempt cap (retries after the first dispatch).
    pub max_attempts: u32,
    /// Jitter fraction in `[0, 1]`: each delay multiplies by
    /// `1 + jitter · u`, `u` drawn from the dedicated retry stream.
    pub jitter: f64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig { kind: RetryKind::None, base_delay_s: 300.0, max_attempts: 3, jitter: 0.5 }
    }
}

/// A retry policy evaluator over a [`RetryConfig`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    cfg: RetryConfig,
}

impl RetryPolicy {
    /// A policy running `cfg`.
    pub fn new(cfg: RetryConfig) -> RetryPolicy {
        RetryPolicy { cfg }
    }

    /// The config in force.
    pub fn config(&self) -> &RetryConfig {
        &self.cfg
    }

    /// Whether this policy ever retries.
    pub fn is_active(&self) -> bool {
        self.cfg.kind != RetryKind::None && self.cfg.max_attempts > 0
    }

    /// The backoff before retry number `attempt` (0-based: the first
    /// retry after the initial dispatch passes `attempt = 0`). `None`
    /// when the policy is `none` or the attempt cap is reached; in both
    /// cases **no RNG draw is consumed**, which keeps `retry.policy=none`
    /// replays byte-identical to pre-retry builds.
    pub fn backoff_delay(&self, attempt: u32, rng: &mut SimRng) -> Option<SimDuration> {
        if self.cfg.kind == RetryKind::None || attempt >= self.cfg.max_attempts {
            return None;
        }
        let multiplier = match self.cfg.kind {
            RetryKind::None => unreachable!("handled above"),
            RetryKind::Fixed => 1.0,
            RetryKind::Expo => (2.0_f64).powi(attempt.min(16) as i32),
        };
        let jittered = self.cfg.base_delay_s * multiplier * (1.0 + self.cfg.jitter * u01(rng));
        Some(SimDuration::from_secs_f64(jittered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_sim::RngFactory;

    fn active_cfg(intensity: f64) -> FaultsConfig {
        FaultsConfig { intensity, ..FaultsConfig::default() }
    }

    #[test]
    fn zero_intensity_compiles_to_an_empty_plan_without_draws() {
        let rngs = RngFactory::new(2015);
        let mut rng = rngs.stream("faults");
        let plan = FaultPlan::compile(&FaultsConfig::default(), &mut rng);
        assert!(plan.is_empty());
        // No draws consumed: the stream is still byte-identical to fresh.
        use rand::RngExt;
        let next: u64 = rng.random();
        let fresh: u64 = rngs.stream("faults").random();
        assert_eq!(next, fresh);
    }

    #[test]
    fn compilation_is_deterministic() {
        let cfg = active_cfg(0.2);
        let a = FaultPlan::compile(&cfg, &mut RngFactory::new(7).stream("faults"));
        let b = FaultPlan::compile(&cfg, &mut RngFactory::new(7).stream("faults"));
        for domain in FaultDomain::ALL {
            assert_eq!(a.windows(domain), b.windows(domain));
        }
    }

    #[test]
    fn windows_are_sorted_non_overlapping_and_inside_the_week() {
        let cfg = active_cfg(0.5);
        let plan = FaultPlan::compile(&cfg, &mut RngFactory::new(11).stream("faults"));
        assert!(!plan.is_empty());
        for domain in FaultDomain::ALL {
            let windows = plan.windows(domain);
            for pair in windows.windows(2) {
                assert!(pair[0].end_ms <= pair[1].start_ms, "{pair:?}");
            }
            for w in windows {
                assert!(w.start_ms < w.end_ms);
                assert!(w.end_ms <= WEEK_MS);
                assert_eq!(w.kind.domain(), domain);
            }
        }
    }

    #[test]
    fn window_count_tracks_intensity() {
        let mut rng = RngFactory::new(3).stream("faults");
        let low = FaultPlan::compile(&active_cfg(0.05), &mut rng.clone());
        let high = FaultPlan::compile(&active_cfg(0.5), &mut rng);
        assert!(high.len() > low.len(), "{} vs {}", high.len(), low.len());
        // ~intensity × week / window windows per domain.
        let expect = (0.5 * WEEK_MS as f64 / 1_800_000.0).round() as usize;
        assert_eq!(high.windows(FaultDomain::Net).len(), expect);
    }

    #[test]
    fn active_lookup_matches_linear_scan() {
        let plan = FaultPlan::compile(&active_cfg(0.3), &mut RngFactory::new(5).stream("faults"));
        for at in (0..WEEK_MS).step_by(3_600_000) {
            for domain in FaultDomain::ALL {
                let scan = plan.windows(domain).iter().find(|w| w.contains(at));
                assert_eq!(plan.active(domain, at), scan);
            }
        }
    }

    #[test]
    fn severity_is_a_positive_multiplier_for_degraded_kinds() {
        let plan = FaultPlan::compile(&active_cfg(0.4), &mut RngFactory::new(9).stream("faults"));
        for domain in FaultDomain::ALL {
            for w in plan.windows(domain) {
                if w.kind.is_severe() {
                    assert!(w.kind == FaultKind::NetPartition || w.severity == 0.0);
                } else {
                    assert!(w.severity > 0.0 && w.severity <= 1.0, "{w:?}");
                }
            }
        }
    }

    #[test]
    fn none_policy_never_retries_and_never_draws() {
        let rngs = RngFactory::new(1);
        let mut rng = rngs.stream("retry");
        let policy = RetryPolicy::new(RetryConfig::default());
        assert!(!policy.is_active());
        assert_eq!(policy.backoff_delay(0, &mut rng), None);
        use rand::RngExt;
        let next: u64 = rng.random();
        let fresh: u64 = rngs.stream("retry").random();
        assert_eq!(next, fresh);
    }

    #[test]
    fn fixed_backoff_is_flat_and_expo_doubles() {
        let mut rng = RngFactory::new(2).stream("retry");
        let base =
            RetryConfig { base_delay_s: 100.0, max_attempts: 4, jitter: 0.0, ..Default::default() };
        let fixed = RetryPolicy::new(RetryConfig { kind: RetryKind::Fixed, ..base });
        let expo = RetryPolicy::new(RetryConfig { kind: RetryKind::Expo, ..base });
        assert_eq!(fixed.backoff_delay(0, &mut rng), Some(SimDuration::from_secs(100)));
        assert_eq!(fixed.backoff_delay(3, &mut rng), Some(SimDuration::from_secs(100)));
        assert_eq!(expo.backoff_delay(0, &mut rng), Some(SimDuration::from_secs(100)));
        assert_eq!(expo.backoff_delay(2, &mut rng), Some(SimDuration::from_secs(400)));
        assert_eq!(fixed.backoff_delay(4, &mut rng), None, "attempt cap");
    }

    #[test]
    fn jitter_stretches_delays_by_at_most_the_fraction() {
        let mut rng = RngFactory::new(4).stream("retry");
        let cfg = RetryConfig {
            kind: RetryKind::Fixed,
            base_delay_s: 100.0,
            max_attempts: 8,
            jitter: 0.5,
        };
        let policy = RetryPolicy::new(cfg);
        for attempt in 0..8 {
            let d = policy.backoff_delay(attempt, &mut rng).unwrap().as_secs_f64();
            assert!((100.0..=150.0).contains(&d), "{d}");
        }
    }
}
