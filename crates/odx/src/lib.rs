#![warn(missing_docs)]

//! # odx — offline downloading in China, reproduced
//!
//! Facade crate for the workspace reproducing *"Offline Downloading in
//! China: A Comparative Study"* (IMC 2015): re-exports every subsystem and
//! provides [`Study`], the one-call bundle that generates a calibrated
//! synthetic measurement week.
//!
//! ```
//! use odx::Study;
//!
//! // A 0.5 %-scale study (≈ 20k tasks) — deterministic in the seed.
//! let study = Study::generate(0.005, 42);
//! assert!(study.workload.len() > 10_000);
//!
//! // Replay the week on the cloud model and look at Fig 8's fetch curve.
//! let report = study.replay_cloud();
//! let median = report.fetch_speed_ecdf().median().unwrap();
//! assert!(median > 100.0 && median < 600.0);
//! ```
//!
//! The crate-level view of the system lives in `DESIGN.md`; the
//! paper-vs-measured ledger in `EXPERIMENTS.md`.

pub mod sweep;

pub use odx_backend as backend;
pub use odx_cache as cache;
pub use odx_cloud as cloud;
pub use odx_config as config;
pub use odx_faults as faults;
pub use odx_net as net;
pub use odx_odr as odr;
pub use odx_p2p as p2p;
pub use odx_proto as proto;
pub use odx_sim as sim;
pub use odx_smartap as smartap;
pub use odx_stats as stats;
pub use odx_storage as storage;
pub use odx_telemetry as telemetry;
pub use odx_trace as trace;

use odx_backend::{ApBenchReport, Scenario, ScenarioRegistry, SmartApBenchmark};
use odx_cloud::{CloudConfig, Observers, WeekReport, XuanfengCloud};
use odx_odr::replay::{OdrEvalReport, OdrReplay};
use odx_sim::RngFactory;
use odx_telemetry::{LifecycleReport, Registry, SeriesRecorder, SeriesSnapshot, TraceConfig};
use odx_trace::{
    sample_benchmark_workload, sample_eval_workload, Catalog, CatalogConfig, Population,
    PopulationConfig, SampledRequest, Workload, WorkloadConfig,
};
use rand::SeedableRng;

/// A generated measurement week: file catalog, user population, and the
/// request stream — everything the paper's dataset contained, scaled.
pub struct Study {
    /// Workload scale relative to the paper (1.0 = 4.08 M tasks).
    pub scale: f64,
    /// The named RNG-stream factory all replays draw from.
    pub rngs: RngFactory,
    /// Unique files with sizes, types, protocols and weekly popularity.
    pub catalog: Catalog,
    /// Users with ISPs and access bandwidth.
    pub population: Population,
    /// The timestamped request stream across the week.
    pub workload: Workload,
}

impl Study {
    /// Generate a study at `scale` of the paper's size, deterministic in
    /// `seed`.
    pub fn generate(scale: f64, seed: u64) -> Study {
        let registry = ScenarioRegistry::builtin();
        let baseline = registry.get("paper-default").expect("builtin baseline");
        Study::generate_scenario(scale, seed, baseline)
    }

    /// Generate a study under a named scenario: same generators, but the
    /// population's ISP mix follows the scenario (e.g. `cernet-heavy`).
    pub fn generate_scenario(scale: f64, seed: u64, scenario: &Scenario) -> Study {
        let rngs = RngFactory::new(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(rngs.child("study").master());
        let catalog = Catalog::generate(&CatalogConfig::scaled(scale), &mut rng);
        let mut pop_cfg = PopulationConfig::scaled(scale);
        pop_cfg.isp_mix = scenario.isp_mix();
        let population = Population::generate(&pop_cfg, &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        Study { scale, rngs, catalog, population, workload }
    }

    /// The built-in scenario presets (`repro --scenario` resolves here).
    pub fn scenarios() -> ScenarioRegistry {
        ScenarioRegistry::builtin()
    }

    /// The cloud config a scenario describes at this study's scale — see
    /// [`CloudConfig::for_scenario`].
    pub fn scenario_cloud_config(&self, scenario: &Scenario) -> CloudConfig {
        CloudConfig::for_scenario(self.scale, scenario)
    }

    /// Replay the week on the cloud system (§4, Figs 8–11).
    pub fn replay_cloud(&self) -> WeekReport {
        self.replay_cloud_with(CloudConfig::at_scale(self.scale))
    }

    /// Replay the week under a scenario's cloud configuration.
    pub fn replay_cloud_scenario(&self, scenario: &Scenario) -> WeekReport {
        self.replay_cloud_with(self.scenario_cloud_config(scenario))
    }

    /// Replay the week with an explicit cloud config (ablations).
    pub fn replay_cloud_with(&self, cfg: CloudConfig) -> WeekReport {
        XuanfengCloud::replay(&self.catalog, &self.population, &self.workload, cfg, &self.rngs)
    }

    /// Replay the week under a scenario with per-task lifecycle tracing:
    /// returns the week report plus a deterministic [`LifecycleReport`]
    /// (sampled task traces, latency attribution, flight-recorder dumps).
    pub fn replay_cloud_traced(
        &self,
        scenario: &Scenario,
        registry: &Registry,
        trace: &TraceConfig,
    ) -> (WeekReport, LifecycleReport) {
        let (report, mut lifecycle) = XuanfengCloud::replay_traced(
            &self.catalog,
            &self.population,
            &self.workload,
            self.scenario_cloud_config(scenario),
            &self.rngs,
            registry,
            trace,
        );
        lifecycle.set_context(scenario.scheduler.name(), &scenario.name);
        (report, lifecycle)
    }

    /// Replay the week under a scenario with an explicit observer bundle
    /// (lifecycle tracing, series recording, wall profiling — see
    /// [`Observers`]). Lifecycle reports come back stamped with the
    /// scenario's scheduler and name.
    pub fn replay_cloud_observed(
        &self,
        scenario: &Scenario,
        registry: &Registry,
        observers: Observers<'_>,
    ) -> (WeekReport, Option<LifecycleReport>) {
        let (report, mut lifecycle) = XuanfengCloud::replay_observed(
            &self.catalog,
            &self.population,
            &self.workload,
            self.scenario_cloud_config(scenario),
            &self.rngs,
            registry,
            observers,
        );
        if let Some(lifecycle) = &mut lifecycle {
            lifecycle.set_context(scenario.scheduler.name(), &scenario.name);
        }
        (report, lifecycle)
    }

    /// Replay the week under a scenario while recording the virtual-time
    /// metric series at the scenario's cadence
    /// (`telemetry.series_interval_s`, default one sim-hour). The
    /// returned snapshot's last sample equals the end-of-run metric
    /// state, and its bytes are independent of scheduler and job count.
    pub fn replay_cloud_series(
        &self,
        scenario: &Scenario,
        registry: &Registry,
    ) -> (WeekReport, SeriesSnapshot) {
        let series = SeriesRecorder::new(scenario.series_interval_ms());
        let observers = Observers { series: Some(series.clone()), ..Observers::default() };
        let (report, _) = self.replay_cloud_observed(scenario, registry, observers);
        (report, series.snapshot())
    }

    /// Replay the week under a scenario with the per-handler wall
    /// profiler attached; the measured breakdown lands in `registry`'s
    /// wall section (`prof.*`) for [`odx_telemetry::rows_from_walls`].
    pub fn replay_cloud_profiled(&self, scenario: &Scenario, registry: &Registry) -> WeekReport {
        let observers = Observers { profile: true, ..Observers::default() };
        self.replay_cloud_observed(scenario, registry, observers).0
    }

    /// Run the §5.1 benchmark under a scenario with lifecycle tracing.
    pub fn replay_smart_aps_traced(
        &self,
        n: usize,
        scenario: &Scenario,
        trace: &TraceConfig,
    ) -> (ApBenchReport, LifecycleReport) {
        SmartApBenchmark::replay_fleet_traced(
            &self.benchmark_sample(n),
            &scenario.ap_fleet,
            &self.rngs.child("smartap"),
            trace,
        )
    }

    /// Run the §6.2 evaluation under a scenario with lifecycle tracing.
    pub fn replay_odr_traced(
        &self,
        n: usize,
        scenario: &Scenario,
        trace: &TraceConfig,
    ) -> (OdrEvalReport, LifecycleReport) {
        OdrReplay::for_scenario(scenario).run_traced(
            &self.eval_sample(n),
            &self.rngs.child("odr"),
            trace,
        )
    }

    /// Draw the §5.1 sampled workload (`n` Unicom requests with recorded
    /// access bandwidth).
    pub fn benchmark_sample(&self, n: usize) -> Vec<SampledRequest> {
        let mut rng = self.rngs.stream("benchmark-sample");
        sample_benchmark_workload(&self.workload, &self.catalog, &self.population, n, &mut rng)
    }

    /// Draw the §6.2 unbiased evaluation sample.
    pub fn eval_sample(&self, n: usize) -> Vec<SampledRequest> {
        let mut rng = self.rngs.stream("eval-sample");
        sample_eval_workload(&self.workload, &self.catalog, &self.population, n, &mut rng)
    }

    /// Run the §5.1 smart-AP benchmark over `n` sampled requests
    /// (Figs 13–14, §5.2 failure taxonomy).
    pub fn replay_smart_aps(&self, n: usize) -> ApBenchReport {
        SmartApBenchmark::replay(&self.benchmark_sample(n), &self.rngs.child("smartap"))
    }

    /// Run the §5.1 benchmark over a scenario's AP fleet (e.g. `usb3-aps`),
    /// under the scenario's fault plan. Zero fault intensity — every
    /// preset's default — replays byte-identically to the plain fleet.
    pub fn replay_smart_aps_scenario(&self, n: usize, scenario: &Scenario) -> ApBenchReport {
        SmartApBenchmark::replay_fleet_faulted(
            &self.benchmark_sample(n),
            &scenario.ap_fleet,
            &self.rngs.child("smartap"),
            &scenario.faults,
        )
    }

    /// Run the §5.1 benchmark under a scenario while recording the
    /// `ap.*` virtual-time series at the scenario's cadence.
    pub fn replay_smart_aps_series(
        &self,
        n: usize,
        scenario: &Scenario,
        registry: &Registry,
    ) -> (ApBenchReport, SeriesSnapshot) {
        SmartApBenchmark::replay_fleet_series(
            &self.benchmark_sample(n),
            &scenario.ap_fleet,
            &self.rngs.child("smartap"),
            registry,
            scenario.series_interval_ms(),
        )
    }

    /// Run the §6.2 evaluation under a scenario while recording the
    /// `odr.*` virtual-time series at the scenario's cadence.
    pub fn replay_odr_series(
        &self,
        n: usize,
        scenario: &Scenario,
        registry: &Registry,
    ) -> (OdrEvalReport, SeriesSnapshot) {
        OdrReplay::for_scenario(scenario).run_series(
            &self.eval_sample(n),
            &self.rngs.child("odr"),
            registry,
            scenario.series_interval_ms(),
        )
    }

    /// Run the §6.2 ODR evaluation over `n` sampled requests
    /// (Figs 16–17).
    pub fn replay_odr(&self, n: usize) -> OdrEvalReport {
        OdrReplay::default().run(&self.eval_sample(n), &self.rngs.child("odr"))
    }

    /// Run the §6.2 evaluation under a scenario (backend config + AP fleet).
    pub fn replay_odr_scenario(&self, n: usize, scenario: &Scenario) -> OdrEvalReport {
        OdrReplay::for_scenario(scenario).run(&self.eval_sample(n), &self.rngs.child("odr"))
    }
}
