//! Parallel scenario × seed sweeps over the cloud week replay.
//!
//! The paper's headline claims are per-scenario aggregates (cache
//! ablations, user-base sweeps, ISP mixes); evaluating them means running
//! the same deterministic week replay over a grid of `(scenario, seed)`
//! cells. This module expands such a grid and executes its shards on a
//! scoped worker pool ([`std::thread::scope`], `--jobs` on the CLI), each
//! shard owning an independent [`Study`], engine, and telemetry
//! [`Registry`] so shards share no mutable state at all.
//!
//! **Determinism under parallelism:** each cell's result depends only on
//! its `(scenario, seed, scale)` inputs — never on which worker ran it or
//! in what order — and the merged report sorts cells by `(scenario name,
//! seed)`. The deterministic exports ([`SweepReport::to_json`] /
//! [`SweepReport::to_csv`]) are therefore **byte-identical for any worker
//! count, including 1**. Wall-clock perf numbers (per-shard seconds,
//! events/sec) are collected alongside but deliberately kept out of those
//! exports; they surface on stdout and through
//! [`odx_telemetry::Snapshot::to_json_full`]-style perf reporting instead.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use odx_backend::Scenario;
use odx_cache::PolicyKind;
use odx_cloud::{Observers, XuanfengCloud};
use odx_faults::RetryKind;
use odx_telemetry::{
    Attribution, Registry, SeriesRecorder, SeriesSet, SeriesSnapshot, TraceConfig,
};

use crate::Study;

/// A scenario × seed grid to evaluate.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The scenario axis (e.g. every builtin preset for `--scenario all`).
    pub scenarios: Vec<Scenario>,
    /// The seed axis (e.g. `--seed S --seeds N` gives `S..S+N`).
    pub seeds: Vec<u64>,
    /// Workload scale for every cell (1.0 = the paper's 4.08 M-task week).
    pub scale: f64,
    /// Worker threads to execute shards on (clamped to ≥ 1; the merged
    /// deterministic output does not depend on this).
    pub jobs: usize,
    /// Per-task lifecycle tracing for every cell (`None` = off, the
    /// default for sweeps). When set, each cell computes a latency
    /// [`Attribution`] that merges across shards.
    pub trace: Option<TraceConfig>,
    /// Virtual-time series recording for every cell (`None` = off): the
    /// sampling interval in engine milliseconds. When set, each cell
    /// records a [`SeriesSnapshot`] and the merged [`SweepReport::series`]
    /// is byte-identical for any worker count.
    pub series_interval_ms: Option<u64>,
    /// Live shard progress on **stderr** (shards done, cumulative
    /// events/sec, ETA). Stdout and every deterministic export are
    /// unaffected, so `repro sweep --progress ... > out.json` stays
    /// byte-identical to a silent run.
    pub progress: bool,
}

impl SweepSpec {
    /// The grid in scenario-major order (the execution work-list; the
    /// merged report re-sorts by key, so this order is not load-bearing).
    pub fn cells(&self) -> Vec<(Scenario, u64)> {
        let mut cells = Vec::with_capacity(self.scenarios.len() * self.seeds.len());
        for scenario in &self.scenarios {
            for &seed in &self.seeds {
                cells.push((scenario.clone(), seed));
            }
        }
        cells
    }
}

/// Deterministic per-cell aggregates of one `(scenario, seed)` shard.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Scenario name (a registry preset, a user scenario, or an
    /// axis-expanded variant like `grid/cache.policy=lru`).
    pub scenario: String,
    /// Master seed of the shard's study.
    pub seed: u64,
    /// Requests replayed.
    pub requests: u64,
    /// Requests served from the pool (or a joined in-flight pre-download).
    pub cache_hits: u64,
    /// Requests whose pre-download failed.
    pub predownload_failures: u64,
    /// Fetch attempts rejected by the upload pool.
    pub rejected_fetches: u64,
    /// Fetches below the 125 KBps HD threshold (including rejected).
    pub impeded_fetches: u64,
    /// Fetches completed.
    pub completed_fetches: u64,
    /// Cache-hit ratio (§2.1 headline).
    pub hit_ratio: f64,
    /// Pre-download failure ratio (§4.1 headline).
    pub failure_ratio: f64,
    /// Fetch rejection ratio (§4.2 headline).
    pub rejection_ratio: f64,
    /// Impeded-fetch ratio (§4.2 headline).
    pub impeded_ratio: f64,
    /// Simulation events processed by the shard's engine.
    pub sim_events: u64,
    /// Shard wall-clock seconds — perf only, excluded from the
    /// deterministic exports.
    pub wall_secs: f64,
    /// The shard's latency attribution when the sweep traced lifecycles.
    pub attribution: Option<Attribution>,
    /// The shard's virtual-time metric series when the sweep recorded
    /// one. Deterministic, but kept out of the golden-pinned
    /// [`SweepReport::to_json`] / [`SweepReport::to_csv`] formats — it
    /// exports through [`SweepReport::series`] instead.
    pub series: Option<SeriesSnapshot>,
}

impl SweepCell {
    /// Run one shard: generate the study and replay the cloud week with a
    /// private registry, entirely independent of every other shard.
    fn run(scenario: &Scenario, seed: u64, spec: &SweepSpec) -> SweepCell {
        let start = Instant::now();
        let registry = Registry::new();
        let study = Study::generate_scenario(spec.scale, seed, scenario);
        let cfg = study.scenario_cloud_config(scenario);
        let series = spec.series_interval_ms.map(SeriesRecorder::new);
        let observers =
            Observers { trace: spec.trace.as_ref(), series: series.clone(), profile: false };
        let (report, lifecycle) = XuanfengCloud::replay_observed(
            &study.catalog,
            &study.population,
            &study.workload,
            cfg,
            &study.rngs,
            &registry,
            observers,
        );
        let attribution = lifecycle.map(|lifecycle| lifecycle.attribution());
        let sim_events = registry.snapshot().counters.get("sim.events").copied().unwrap_or(0);
        SweepCell {
            scenario: scenario.name.clone(),
            seed,
            requests: report.counters.requests,
            cache_hits: report.counters.cache_hits,
            predownload_failures: report.counters.predownload_failures,
            rejected_fetches: report.counters.rejected_fetches,
            impeded_fetches: report.counters.impeded_fetches,
            completed_fetches: report.counters.completed_fetches,
            hit_ratio: report.hit_ratio(),
            failure_ratio: report.failure_ratio(),
            rejection_ratio: report.rejection_ratio(),
            impeded_ratio: report.impeded_ratio(),
            sim_events,
            wall_secs: start.elapsed().as_secs_f64(),
            attribution,
            series: series.map(|s| s.snapshot()),
        }
    }
}

/// Live sweep progress, shared by the workers: shards done, cumulative
/// engine events, and a linear ETA. Reports on **stderr only** so piped
/// stdout exports stay byte-identical whether or not it is enabled.
struct Progress {
    enabled: bool,
    total: usize,
    done: AtomicUsize,
    events: AtomicU64,
    start: Instant,
}

impl Progress {
    fn new(enabled: bool, total: usize) -> Progress {
        Progress {
            enabled,
            total,
            done: AtomicUsize::new(0),
            events: AtomicU64::new(0),
            start: Instant::now(),
        }
    }

    /// Report one finished shard (thread-safe, lock-free).
    fn note(&self, cell: &SweepCell) {
        if !self.enabled {
            return;
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let events = self.events.fetch_add(cell.sim_events, Ordering::Relaxed) + cell.sim_events;
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = events as f64 / elapsed.max(1e-9);
        let eta = elapsed / done as f64 * (self.total - done) as f64;
        eprintln!(
            "sweep: {done}/{} shards | {}/{} | {events} events | {:.0} ev/s | eta {eta:.1}s",
            self.total, cell.scenario, cell.seed, rate,
        );
    }
}

/// The merged result of a sweep: cells sorted by `(scenario, seed)`.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-cell aggregates, `(scenario name, seed)`-sorted.
    pub cells: Vec<SweepCell>,
    /// Worker threads the sweep ran on (perf context only).
    pub jobs: usize,
    /// Total wall-clock seconds — perf only.
    pub wall_secs: f64,
}

impl SweepReport {
    /// Simulation events processed across all shards.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.sim_events).sum()
    }

    /// Aggregate engine throughput (events/sec of summed shard work over
    /// total wall time). Nondeterministic; for perf reporting only.
    pub fn events_per_sec(&self) -> f64 {
        self.total_events() as f64 / self.wall_secs.max(1e-9)
    }

    /// The sweep-wide latency attribution: per-shard attributions merged
    /// in `(scenario, seed)` order. `None` when the sweep ran untraced.
    /// Merging is exact, so this equals a single-shard attribution over
    /// the union of the cells' tasks regardless of worker count.
    pub fn attribution(&self) -> Option<Attribution> {
        let mut merged: Option<Attribution> = None;
        for cell in &self.cells {
            let Some(attribution) = &cell.attribution else { continue };
            merged.get_or_insert_with(Attribution::default).merge(attribution);
        }
        merged
    }

    /// The merged virtual-time series across cells, exact-keyed by
    /// `(scenario, seed)` — byte-identical for any worker count because
    /// each cell's series depends only on its own inputs. `None` when the
    /// sweep recorded no series. Exported as separate documents
    /// ([`SeriesSet::to_json`] / [`SeriesSet::to_csv`]) so the
    /// golden-pinned sweep formats stay untouched.
    pub fn series(&self) -> Option<SeriesSet> {
        let mut set = SeriesSet::new();
        let mut any = false;
        for cell in &self.cells {
            if let Some(snapshot) = &cell.series {
                set.insert(&cell.scenario, cell.seed, snapshot.clone());
                any = true;
            }
        }
        any.then_some(set)
    }

    /// Propagate per-shard perf into `registry`'s wall section (satellite
    /// of the PR-3 sweep work: per-shard events/sec used to be lost when
    /// only the merged footer was printed). Wall entries are
    /// nondeterministic by design and stay out of the deterministic
    /// exports.
    pub fn record_wall(&self, registry: &Registry) {
        for cell in &self.cells {
            let prefix = format!("sweep.{}.{}", cell.scenario, cell.seed);
            registry.set_wall(&format!("{prefix}.wall_secs"), cell.wall_secs);
            registry.set_wall(
                &format!("{prefix}.events_per_sec"),
                cell.sim_events as f64 / cell.wall_secs.max(1e-9),
            );
        }
        registry.set_wall("sweep.wall_secs", self.wall_secs);
        registry.set_wall("sweep.events_per_sec", self.events_per_sec());
    }

    /// The deterministic merged report as a compact JSON document:
    /// byte-identical for any worker count (wall-clock fields omitted).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 * self.cells.len() + 64);
        out.push_str("{\"cells\":[");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"scenario\":\"{}\",\"seed\":{},\"requests\":{},\"cache_hits\":{},\
                 \"predownload_failures\":{},\"rejected_fetches\":{},\"impeded_fetches\":{},\
                 \"completed_fetches\":{},\"sim_events\":{},\"hit_ratio\":{},\
                 \"failure_ratio\":{},\"rejection_ratio\":{},\"impeded_ratio\":{}}}",
                c.scenario,
                c.seed,
                c.requests,
                c.cache_hits,
                c.predownload_failures,
                c.rejected_fetches,
                c.impeded_fetches,
                c.completed_fetches,
                c.sim_events,
                c.hit_ratio,
                c.failure_ratio,
                c.rejection_ratio,
                c.impeded_ratio,
            );
        }
        out.push_str("]}");
        out
    }

    /// The deterministic merged report as CSV (same byte-identical
    /// guarantee as [`SweepReport::to_json`]).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,seed,requests,cache_hits,predownload_failures,rejected_fetches,\
             impeded_fetches,completed_fetches,sim_events,hit_ratio,failure_ratio,\
             rejection_ratio,impeded_ratio\n",
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                c.scenario,
                c.seed,
                c.requests,
                c.cache_hits,
                c.predownload_failures,
                c.rejected_fetches,
                c.impeded_fetches,
                c.completed_fetches,
                c.sim_events,
                c.hit_ratio,
                c.failure_ratio,
                c.rejection_ratio,
                c.impeded_ratio,
            );
        }
        out
    }
}

/// Execute a sweep: expand the grid, run shards on `spec.jobs` scoped
/// workers (work-stealing by an atomic cursor), and merge the results by
/// `(scenario, seed)` key.
pub fn run_sweep(spec: &SweepSpec) -> SweepReport {
    let start = Instant::now();
    let cells = spec.cells();
    let jobs = spec.jobs.clamp(1, cells.len().max(1));
    let progress = Progress::new(spec.progress, cells.len());
    let mut results: Vec<Option<SweepCell>> = Vec::with_capacity(cells.len());
    if jobs == 1 {
        // Inline path: same per-cell code, no threads to reason about.
        results.extend(cells.iter().map(|(s, seed)| {
            let cell = SweepCell::run(s, *seed, spec);
            progress.note(&cell);
            Some(cell)
        }));
    } else {
        let slots: Vec<Mutex<Option<SweepCell>>> = cells.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some((scenario, seed)) = cells.get(i) else { break };
                    let cell = SweepCell::run(scenario, *seed, spec);
                    progress.note(&cell);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(cell);
                });
            }
        });
        results
            .extend(slots.into_iter().map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner())));
    }
    // Deterministic merge: whatever order the workers finished in, the
    // report is keyed and sorted by (scenario, seed).
    let mut merged: BTreeMap<(String, u64), SweepCell> = BTreeMap::new();
    for cell in results.into_iter().flatten() {
        merged.insert((cell.scenario.clone(), cell.seed), cell);
    }
    SweepReport {
        cells: merged.into_values().collect(),
        jobs,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// Expand scenarios × cache policies into named sweep variants: each
/// variant is the scenario with `cache.policy` swapped and the name
/// `"<scenario>/<policy>"`, so the `(scenario, seed)` merge key — and
/// therefore the deterministic exports — distinguish policies without any
/// format change.
pub fn policy_variants(scenarios: &[Scenario], policies: &[PolicyKind]) -> Vec<Scenario> {
    let mut variants = Vec::with_capacity(scenarios.len() * policies.len());
    for scenario in scenarios {
        for &policy in policies {
            let mut variant = scenario.clone();
            variant.cache.policy = policy;
            variant.name = format!("{}/{}", scenario.name, policy.name());
            variants.push(variant);
        }
    }
    variants
}

/// Expand scenarios × fault intensities × retry policies into named sweep
/// variants for `repro resilience`: each variant is the scenario with
/// `faults.intensity` and `retry.policy` swapped and the name
/// `"<scenario>/fault=<intensity>/retry=<policy>"`, so the `(scenario,
/// seed)` merge key — and the deterministic exports — distinguish grid
/// cells without any format change. The zero-intensity × `none` cell is
/// the uninjected baseline the CLI diffs the rest of the grid against.
pub fn resilience_variants(
    scenarios: &[Scenario],
    intensities: &[f64],
    policies: &[RetryKind],
) -> Vec<Scenario> {
    let mut variants = Vec::with_capacity(scenarios.len() * intensities.len() * policies.len());
    for scenario in scenarios {
        for &intensity in intensities {
            for &policy in policies {
                let mut variant = scenario.clone();
                variant.faults.intensity = intensity;
                variant.retry.kind = policy;
                variant.name =
                    format!("{}/fault={intensity}/retry={}", scenario.name, policy.name());
                variants.push(variant);
            }
        }
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_backend::ScenarioRegistry;

    fn tiny_spec(jobs: usize) -> SweepSpec {
        let registry = ScenarioRegistry::builtin();
        SweepSpec {
            scenarios: vec![
                registry.get("paper-default").unwrap().clone(),
                registry.get("ablate-cache").unwrap().clone(),
            ],
            seeds: vec![2015, 2016],
            scale: 0.0005,
            jobs,
            trace: None,
            series_interval_ms: None,
            progress: false,
        }
    }

    #[test]
    fn grid_expansion_is_the_cross_product() {
        let spec = tiny_spec(1);
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].0.name, "paper-default");
        assert_eq!(cells[0].1, 2015);
        assert_eq!(cells[3].0.name, "ablate-cache");
        assert_eq!(cells[3].1, 2016);
    }

    #[test]
    fn sweep_output_is_byte_identical_across_worker_counts() {
        let sequential = run_sweep(&tiny_spec(1));
        let parallel = run_sweep(&tiny_spec(3));
        assert_eq!(sequential.to_json(), parallel.to_json());
        assert_eq!(sequential.to_csv(), parallel.to_csv());
        assert_eq!(sequential.cells, {
            let mut cells = parallel.cells.clone();
            for c in &mut cells {
                // wall_secs is the one legitimately nondeterministic field.
                c.wall_secs = sequential
                    .cells
                    .iter()
                    .find(|s| s.scenario == c.scenario && s.seed == c.seed)
                    .unwrap()
                    .wall_secs;
            }
            cells
        });
    }

    #[test]
    fn traced_sweep_merges_attribution_identically_across_worker_counts() {
        use odx_telemetry::TraceConfig;
        let mut spec = tiny_spec(1);
        spec.trace = Some(TraceConfig::full());
        let sequential = run_sweep(&spec);
        spec.jobs = 3;
        let parallel = run_sweep(&spec);
        let seq_attr = sequential.attribution().expect("traced sweep has attribution");
        let par_attr = parallel.attribution().expect("traced sweep has attribution");
        assert_eq!(seq_attr, par_attr);
        assert_eq!(seq_attr.waterfall(), par_attr.waterfall());
        // Every cell carries its own attribution, and the tiling invariant
        // survives the merge: timed stages still account for every task.
        assert!(sequential.cells.iter().all(|c| c.attribution.is_some()));
        assert!(seq_attr.total_stage_ms() > 0);
        // Untraced sweeps report no attribution at all.
        assert!(run_sweep(&tiny_spec(1)).attribution().is_none());
    }

    #[test]
    fn series_merge_is_byte_identical_across_worker_counts_and_schedulers() {
        use odx_sim::SchedulerKind;
        // Six-sim-hour cadence keeps the series small at this scale.
        let mut spec = tiny_spec(1);
        spec.series_interval_ms = Some(6 * 3_600_000);
        let sequential = run_sweep(&spec);
        spec.jobs = 3;
        let parallel = run_sweep(&spec);
        let seq = sequential.series().expect("series were recorded");
        let par = parallel.series().expect("series were recorded");
        assert_eq!(seq.to_json(), par.to_json(), "series JSON must be jobs-invariant");
        assert_eq!(seq.to_csv(), par.to_csv(), "series CSV must be jobs-invariant");
        // Swapping the future-event list never changes a single byte.
        for s in &mut spec.scenarios {
            s.scheduler = SchedulerKind::Wheel;
        }
        let wheel = run_sweep(&spec).series().expect("series were recorded");
        assert_eq!(seq.to_json(), wheel.to_json(), "scheduler must not leak into the series");
        // The golden-pinned sweep exports are untouched by recording.
        let silent = run_sweep(&tiny_spec(2));
        assert_eq!(sequential.to_json(), silent.to_json());
        assert_eq!(sequential.to_csv(), silent.to_csv());
        assert!(silent.series().is_none(), "no recording → no series document");
    }

    #[test]
    fn record_wall_propagates_per_shard_perf() {
        let report = run_sweep(&tiny_spec(2));
        let registry = Registry::new();
        report.record_wall(&registry);
        assert!(registry.wall("sweep.wall_secs").is_some());
        assert!(registry.wall("sweep.events_per_sec").unwrap() > 0.0);
        for cell in &report.cells {
            let prefix = format!("sweep.{}.{}", cell.scenario, cell.seed);
            assert!(registry.wall(&format!("{prefix}.wall_secs")).is_some());
            assert!(registry.wall(&format!("{prefix}.events_per_sec")).unwrap() > 0.0);
        }
        // Wall entries stay out of the deterministic export.
        assert!(!registry.snapshot().to_json().contains("sweep."));
    }

    #[test]
    fn cells_reflect_their_scenario() {
        let report = run_sweep(&tiny_spec(2));
        let baseline =
            report.cells.iter().find(|c| c.scenario == "paper-default" && c.seed == 2015).unwrap();
        let no_cache =
            report.cells.iter().find(|c| c.scenario == "ablate-cache" && c.seed == 2015).unwrap();
        assert!(baseline.requests > 0);
        assert!(
            no_cache.failure_ratio > baseline.failure_ratio,
            "disabling the pool must raise failures: {} vs {}",
            no_cache.failure_ratio,
            baseline.failure_ratio
        );
        assert!(report.total_events() > baseline.requests);
    }
}

#[cfg(test)]
mod policy_variant_tests {
    use super::*;
    use odx_backend::ScenarioRegistry;

    #[test]
    fn variants_cross_scenarios_with_policies() {
        let registry = ScenarioRegistry::builtin();
        let base = registry.resolve("paper-default").unwrap();
        let variants = policy_variants(&base, &PolicyKind::ALL);
        assert_eq!(variants.len(), PolicyKind::ALL.len());
        let names: Vec<_> = variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "paper-default/lru",
                "paper-default/lfu",
                "paper-default/gdsf",
                "paper-default/s3fifo"
            ]
        );
        for (variant, policy) in variants.iter().zip(PolicyKind::ALL) {
            assert_eq!(variant.cache.policy, policy);
            // Everything except the policy and name is the base scenario.
            assert_eq!(variant.cache_capacity_factor, base[0].cache_capacity_factor);
            assert_eq!(variant.demand_factor, base[0].demand_factor);
        }
    }

    #[test]
    fn resilience_variants_cross_intensities_with_policies() {
        let registry = ScenarioRegistry::builtin();
        let base = registry.resolve("paper-default").unwrap();
        let variants = resilience_variants(&base, &[0.0, 0.1], &[RetryKind::None, RetryKind::Expo]);
        assert_eq!(variants.len(), 4);
        let names: Vec<_> = variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "paper-default/fault=0/retry=none",
                "paper-default/fault=0/retry=expo",
                "paper-default/fault=0.1/retry=none",
                "paper-default/fault=0.1/retry=expo",
            ]
        );
        assert_eq!(variants[0].faults.intensity, 0.0);
        assert_eq!(variants[3].faults.intensity, 0.1);
        assert_eq!(variants[3].retry.kind, RetryKind::Expo);
        // Everything else is the base scenario.
        assert_eq!(variants[3].cache.policy, base[0].cache.policy);
        assert_eq!(variants[3].demand_factor, base[0].demand_factor);
    }
}
