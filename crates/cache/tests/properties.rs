//! Property tests shared by every cache policy.
//!
//! One operation-sequence generator drives all four policies (and the
//! sharded wrapper) through the same shadow model, checking the
//! [`CachePolicy`] contract: the byte budget always holds, residency
//! bookkeeping matches a naive model, eviction lists are exactly the keys
//! that stopped being resident, and identical call sequences produce
//! identical eviction sequences.

use odx_cache::{CacheConfig, CachePolicy, PolicyKind, ShardedCache};
use proptest::prelude::*;
use proptest::TestCaseError;

/// One step of a cache workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    Lookup(u64),
    Insert(u64, f64),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..60).prop_map(Op::Lookup),
        (0u64..60, 0.5f64..40.0).prop_map(|(k, s)| Op::Insert(k, s)),
        (0u64..60).prop_map(Op::Remove),
    ]
}

/// Drive `cache` through `ops` on a monotone virtual clock, checking the
/// contract at every step against a naive residency model. Returns the
/// flattened eviction sequence (for determinism comparisons).
fn check_contract(cache: &mut dyn CachePolicy, ops: &[Op]) -> Result<Vec<u64>, TestCaseError> {
    let mut model = std::collections::BTreeMap::new();
    let mut evictions = Vec::new();
    for (step, &op) in ops.iter().enumerate() {
        // ~17 minutes of virtual time per step: long traces cross several
        // LFU aging epochs.
        let now_ms = step as u64 * 1_000_000;
        match op {
            Op::Lookup(key) => {
                let hit = cache.lookup(key, now_ms);
                prop_assert_eq!(
                    hit.is_some(),
                    model.contains_key(&key),
                    "lookup must agree with residency"
                );
            }
            Op::Insert(key, size) => {
                model.insert(key, size);
                for evicted in cache.insert(key, size, now_ms) {
                    let known = model.remove(&evicted).is_some();
                    prop_assert!(known, "evicted key {} was not resident", evicted);
                    evictions.push(evicted);
                }
            }
            Op::Remove(key) => {
                let removed = cache.remove(key);
                prop_assert_eq!(removed.is_some(), model.remove(&key).is_some());
            }
        }
        prop_assert!(
            cache.used_mb() <= cache.capacity_mb() + 1e-9,
            "budget exceeded: {} > {}",
            cache.used_mb(),
            cache.capacity_mb()
        );
        prop_assert_eq!(cache.len(), model.len(), "residency count drifted");
        for (&key, &size) in &model {
            prop_assert!(cache.contains(key), "model key {} missing", key);
            let resident = cache.lookup(key, now_ms);
            prop_assert!(
                resident.is_some_and(|s| (s - size).abs() < 1e-9),
                "size drifted for key {}",
                key
            );
        }
        let model_total: f64 = model.values().sum();
        prop_assert!(
            (cache.used_mb() - model_total).abs() < 1e-6,
            "used {} vs model {}",
            cache.used_mb(),
            model_total
        );
    }
    Ok(evictions)
}

proptest! {
    /// The full contract holds for every policy on arbitrary workloads.
    #[test]
    fn every_policy_honours_the_contract(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        for policy in PolicyKind::ALL {
            let mut cache = policy.build(100.0, 16);
            check_contract(cache.as_mut(), &ops)?;
        }
    }

    /// Replaying the same operation sequence yields the same evictions, in
    /// the same order — per policy, across two fresh instances.
    #[test]
    fn same_sequence_same_evictions(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        for policy in PolicyKind::ALL {
            let a = check_contract(policy.build(100.0, 16).as_mut(), &ops)?;
            let b = check_contract(policy.build(100.0, 16).as_mut(), &ops)?;
            prop_assert_eq!(&a, &b, "policy {} diverged between runs", policy.name());
        }
    }

    /// Tight budgets force evict-on-insert cascades, and the cascade always
    /// restores the budget within the insert call.
    #[test]
    fn cascades_restore_the_budget(
        ops in prop::collection::vec((0u64..40, 5.0f64..25.0), 10..80),
    ) {
        for policy in PolicyKind::ALL {
            let mut cache = policy.build(50.0, 8);
            let mut total_evicted = 0usize;
            for (step, &(key, size)) in ops.iter().enumerate() {
                total_evicted += cache.insert(key, size, step as u64 * 1_000).len();
                prop_assert!(cache.used_mb() <= cache.capacity_mb() + 1e-9);
            }
            prop_assert!(
                total_evicted > 0,
                "a 50 MB budget under this load must evict ({})",
                policy.name()
            );
        }
    }

    /// The sharded wrapper upholds the same contract for every policy.
    #[test]
    fn sharded_wrapper_honours_the_contract(
        ops in prop::collection::vec(op_strategy(), 1..100),
        shards in 2usize..5,
    ) {
        for policy in PolicyKind::ALL {
            // Generous per-shard budget: admission refusals stay the inner
            // policy's business, residency bookkeeping stays comparable.
            let mut cache = ShardedCache::new(policy, 400.0, shards, 16);
            check_contract(&mut cache, &ops)?;
        }
    }

    /// A single-shard `ShardedCache` is observationally identical to the
    /// bare policy: same evictions, same occupancy.
    #[test]
    fn one_shard_equals_unsharded(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        for policy in PolicyKind::ALL {
            let mut bare = policy.build(100.0, 16);
            let mut sharded = ShardedCache::new(policy, 100.0, 1, 16);
            let a = check_contract(bare.as_mut(), &ops)?;
            let b = check_contract(&mut sharded, &ops)?;
            prop_assert_eq!(&a, &b, "policy {} diverged under 1 shard", policy.name());
            prop_assert!((bare.used_mb() - sharded.used_mb()).abs() < 1e-9);
            prop_assert_eq!(bare.len(), sharded.len());
        }
    }

    /// `CacheConfig::build` round-trips policy and budget for any shard
    /// count.
    #[test]
    fn config_build_preserves_kind_and_budget(shards in 1u32..6) {
        for policy in PolicyKind::ALL {
            let cache = CacheConfig { policy, shards }.build(120.0, 8);
            prop_assert_eq!(cache.kind(), policy);
            prop_assert!((cache.capacity_mb() - 120.0).abs() < 1e-9);
            prop_assert!(cache.is_empty());
        }
    }
}
