//! S3-FIFO-style admission (small FIFO + main FIFO + ghost list).
//!
//! The workload motivation: offline-downloading request streams are heavy
//! on one-hit wonders (a user fetches one obscure torrent nobody else ever
//! asks for). Under LRU each of those walks the whole way through the
//! cache, displacing proven content. S3-FIFO quarantines first-timers in a
//! small probationary FIFO (~10 % of the byte budget): entries that take a
//! hit there get promoted to the main FIFO, the rest fall out cheaply. A
//! ghost list of recently evicted keys (metadata only, no bytes) routes
//! quick re-requests straight into main — TinyLFU-style admission without
//! the sketch.
//!
//! Everything is FIFO-ordered and counter-based, so determinism is free.

use std::collections::VecDeque;

use odx_sim::{FxHashMap, FxHashSet};

use crate::{CachePolicy, PolicyKind};

/// Fraction of the byte budget given to the probationary FIFO.
const SMALL_FRACTION: f64 = 0.1;

/// Hit counters saturate here (2 bits in the paper; 3 distinguishes enough).
const FREQ_CAP: u8 = 3;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Queue {
    Small,
    Main,
}

struct Entry {
    size_mb: f64,
    freq: u8,
    queue: Queue,
}

/// Byte-budget S3-FIFO cache with ghost-list admission.
pub struct S3FifoCache {
    capacity_mb: f64,
    small_capacity_mb: f64,
    used_mb: f64,
    small_used_mb: f64,
    map: FxHashMap<u64, Entry>,
    // FIFOs hold keys; entries demoted/promoted elsewhere are deleted
    // lazily (a popped key whose map entry moved queues is stale — skip).
    small: VecDeque<u64>,
    main: VecDeque<u64>,
    ghost: VecDeque<u64>,
    ghost_set: FxHashSet<u64>,
}

impl S3FifoCache {
    /// A cache holding at most `capacity_mb` megabytes.
    pub fn new(capacity_mb: f64) -> Self {
        S3FifoCache::with_capacity(capacity_mb, 0)
    }

    /// A cache holding at most `capacity_mb` megabytes, preallocated for
    /// roughly `entries` resident files.
    pub fn with_capacity(capacity_mb: f64, entries: usize) -> Self {
        assert!(capacity_mb > 0.0, "capacity must be positive");
        let mut map = FxHashMap::default();
        map.reserve(entries);
        S3FifoCache {
            capacity_mb,
            small_capacity_mb: capacity_mb * SMALL_FRACTION,
            used_mb: 0.0,
            small_used_mb: 0.0,
            map,
            small: VecDeque::new(),
            main: VecDeque::new(),
            ghost: VecDeque::new(),
            ghost_set: FxHashSet::default(),
        }
    }

    fn ghost_push(&mut self, key: u64) {
        if self.ghost_set.insert(key) {
            self.ghost.push_back(key);
        }
        // Bound ghost metadata to roughly the resident population.
        let cap = self.map.len().max(16);
        while self.ghost_set.len() > cap {
            match self.ghost.pop_front() {
                Some(k) => {
                    self.ghost_set.remove(&k);
                }
                None => break,
            }
        }
    }

    /// Pop the next *live* small-queue key, skipping stale entries.
    fn pop_small(&mut self) -> Option<u64> {
        while let Some(key) = self.small.pop_front() {
            if self.map.get(&key).is_some_and(|e| e.queue == Queue::Small) {
                return Some(key);
            }
        }
        None
    }

    fn pop_main(&mut self) -> Option<u64> {
        while let Some(key) = self.main.pop_front() {
            if self.map.get(&key).is_some_and(|e| e.queue == Queue::Main) {
                return Some(key);
            }
        }
        None
    }

    /// Evict one victim from the small FIFO: hit entries promote to main,
    /// the rest go to the ghost list. Returns the evicted key, if any entry
    /// was actually evicted (promotions keep scanning).
    fn evict_from_small(&mut self) -> Option<u64> {
        while let Some(key) = self.pop_small() {
            let entry = self.map.get_mut(&key).expect("pop_small returned a live key");
            if entry.freq > 0 {
                // Earned a hit during probation — promote.
                entry.queue = Queue::Main;
                entry.freq = 0;
                self.small_used_mb -= entry.size_mb;
                self.main.push_back(key);
            } else {
                let size = entry.size_mb;
                self.map.remove(&key);
                self.small_used_mb -= size;
                self.used_mb -= size;
                self.ghost_push(key);
                return Some(key);
            }
        }
        None
    }

    /// Evict one victim from the main FIFO (second-chance on freq).
    fn evict_from_main(&mut self) -> Option<u64> {
        while let Some(key) = self.pop_main() {
            let entry = self.map.get_mut(&key).expect("pop_main returned a live key");
            if entry.freq > 0 {
                entry.freq -= 1;
                self.main.push_back(key);
            } else {
                let size = entry.size_mb;
                self.map.remove(&key);
                self.used_mb -= size;
                return Some(key);
            }
        }
        None
    }

    /// Evict one entry, preferring the probationary FIFO while it is over
    /// its share (the classic S3-FIFO balance rule).
    fn evict_one(&mut self) -> Option<u64> {
        if self.small_used_mb > self.small_capacity_mb || self.main.is_empty() {
            if let Some(k) = self.evict_from_small() {
                return Some(k);
            }
        }
        self.evict_from_main().or_else(|| self.evict_from_small())
    }
}

impl CachePolicy for S3FifoCache {
    fn kind(&self) -> PolicyKind {
        PolicyKind::S3Fifo
    }

    fn lookup(&mut self, key: u64, _now_ms: u64) -> Option<f64> {
        let entry = self.map.get_mut(&key)?;
        entry.freq = (entry.freq + 1).min(FREQ_CAP);
        Some(entry.size_mb)
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn insert(&mut self, key: u64, size_mb: f64, _now_ms: u64) -> Vec<u64> {
        assert!(size_mb >= 0.0 && size_mb.is_finite(), "bad size");
        if let Some(entry) = self.map.get_mut(&key) {
            // Dedup refresh: frequency credit plus in-place size update.
            let delta = size_mb - entry.size_mb;
            entry.freq = (entry.freq + 1).min(FREQ_CAP);
            entry.size_mb = size_mb;
            self.used_mb += delta;
            if entry.queue == Queue::Small {
                self.small_used_mb += delta;
            }
        } else {
            // Ghost hit: the key was evicted recently, so skip probation.
            let queue = if self.ghost_set.remove(&key) { Queue::Main } else { Queue::Small };
            match queue {
                Queue::Small => {
                    self.small.push_back(key);
                    self.small_used_mb += size_mb;
                }
                Queue::Main => self.main.push_back(key),
            }
            self.map.insert(key, Entry { size_mb, freq: 0, queue });
            self.used_mb += size_mb;
        }
        let mut evicted = Vec::new();
        while self.used_mb > self.capacity_mb {
            match self.evict_one() {
                // `insert` may evict the just-inserted key itself (an
                // oversized probationary file with no hits) — the admission
                // contract wants exactly that reported.
                Some(k) => evicted.push(k),
                None => break,
            }
        }
        evicted
    }

    fn remove(&mut self, key: u64) -> Option<f64> {
        let entry = self.map.remove(&key)?;
        self.used_mb -= entry.size_mb;
        if entry.queue == Queue::Small {
            self.small_used_mb -= entry.size_mb;
        }
        // The queue positions are cleaned up lazily by pop_small/pop_main.
        Some(entry.size_mb)
    }

    fn used_mb(&self) -> f64 {
        self.used_mb
    }

    fn capacity_mb(&self) -> f64 {
        self.capacity_mb
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hit_wonders_never_reach_main() {
        let mut c = S3FifoCache::new(100.0);
        // Fill main with proven content: insert, hit, then churn probation.
        c.insert(1, 30.0, 0);
        c.lookup(1, 0);
        // Probation churn promotes key 1 and flushes the wonders.
        for k in 100..120 {
            c.insert(k, 9.0, 0);
        }
        assert!(c.contains(1), "hit content survives probation churn");
        let wonders = (100..120).filter(|&k| c.contains(k)).count();
        assert!(wonders < 20, "cold inserts must churn out of probation");
        assert!(c.used_mb() <= c.capacity_mb());
    }

    #[test]
    fn ghost_hit_skips_probation() {
        let mut c = S3FifoCache::new(100.0);
        c.insert(7, 9.0, 0);
        // Churn key 7 out of the small FIFO (no hits → ghosted).
        for k in 100..120 {
            c.insert(k, 9.0, 0);
        }
        assert!(!c.contains(7));
        c.insert(7, 9.0, 0);
        assert_eq!(c.map.get(&7).map(|e| e.queue == Queue::Main), Some(true));
    }

    #[test]
    fn main_gives_second_chances() {
        let mut c = S3FifoCache::new(100.0);
        c.insert(1, 30.0, 0);
        c.lookup(1, 0);
        c.insert(2, 30.0, 0);
        c.lookup(2, 0);
        // Promote both into main by churning probation.
        for k in 100..110 {
            c.insert(k, 9.0, 0);
        }
        assert!(c.contains(1) && c.contains(2));
        // Keep hitting key 2; key 1 runs out of chances first.
        for _ in 0..4 {
            c.lookup(2, 0);
        }
        // Re-insert ghosted keys: they bypass probation and squeeze main.
        let mut evicted_first = None;
        'churn: for k in 100..110 {
            if c.contains(k) {
                continue;
            }
            for e in c.insert(k, 9.0, 0) {
                if e == 1 || e == 2 {
                    evicted_first = Some(e);
                    break 'churn;
                }
            }
        }
        assert_eq!(evicted_first, Some(1), "the colder main entry goes first");
    }

    #[test]
    fn cascade_keeps_budget() {
        let mut c = S3FifoCache::new(100.0);
        for k in 0..30 {
            c.insert(k, 10.0, 0);
        }
        assert!(c.used_mb() <= c.capacity_mb() + 1e-9);
        assert!(c.len() <= 10);
    }

    #[test]
    fn dedup_refreshes_and_resizes() {
        let mut c = S3FifoCache::new(100.0);
        c.insert(1, 40.0, 0);
        c.insert(1, 70.0, 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_mb(), 70.0);
    }

    #[test]
    fn remove_frees_space() {
        let mut c = S3FifoCache::new(100.0);
        c.insert(1, 40.0, 0);
        assert_eq!(c.remove(1), Some(40.0));
        assert_eq!(c.remove(1), None);
        assert!(c.is_empty());
        assert_eq!(c.used_mb(), 0.0);
    }

    #[test]
    fn ghost_metadata_stays_bounded() {
        let mut c = S3FifoCache::new(50.0);
        for k in 0..10_000u64 {
            c.insert(k, 5.0, 0);
        }
        assert!(c.ghost_set.len() <= c.map.len().max(16) + 1);
        assert!(c.ghost.len() <= 32, "stale deque entries must be drained");
    }
}
