#![warn(missing_docs)]

//! # odx-cache — the pluggable cache-policy subsystem
//!
//! The paper's headline cloud result — ~80 % of requests served "instantly"
//! (§2.1's 89 % pool hit ratio) — is driven almost entirely by the
//! collaborative storage pool's replacement behaviour. This crate pulls
//! that behaviour out of `odx-cloud` into a standalone, comparable layer:
//!
//! * [`CachePolicy`] — the trait every replacement policy implements:
//!   byte-budgeted `lookup` / `insert` / `remove` on the **virtual clock**
//!   (`now_ms` is simulation time, never wall time), fully deterministic in
//!   its call sequence.
//! * [`LruCache`] — the byte-budget LRU migrated verbatim from
//!   `odx-cloud::cache` (intrusive list over a slab, O(1) everything);
//!   `odx-cloud` keeps a deprecated re-export for compatibility.
//! * [`LfuCache`] — LFU with periodic aging: frequencies halve every
//!   virtual day so last week's hits cannot pin stale content forever.
//! * [`GdsfCache`] — Greedy-Dual-Size-Frequency: size-aware priorities
//!   (`L + freq / size`) that prefer keeping many small hot files over one
//!   huge lukewarm one.
//! * [`S3FifoCache`] — S3-FIFO-style admission: a small probationary FIFO,
//!   a main FIFO, and a ghost list; one-hit wonders are evicted before they
//!   ever displace proven content (TinyLFU-style admission control).
//! * [`ShardedCache`] — a deterministic FxHash-sharded wrapper over any
//!   policy, so the content cache can scale across sweep workers; for a
//!   fixed shard count the shard assignment (and therefore every eviction)
//!   is identical on every run and platform.
//! * [`InstrumentedCache`] — a telemetry wrapper recording
//!   `cache.<policy>.{hit,miss,eviction}` counters plus byte-occupancy and
//!   hit-ratio gauges into an [`odx_telemetry::Registry`].
//! * [`CacheConfig`] / [`PolicyKind`] — the one value a scenario carries to
//!   name its policy (`repro cache-compare` sweeps [`PolicyKind::ALL`]).
//!
//! ## Determinism contract
//!
//! Every policy is a pure function of its call sequence: no wall clocks, no
//! ambient randomness, no address-dependent iteration (the only hash maps
//! are [`odx_sim::FxHashMap`]s and are never iterated). Ties are broken by
//! insertion sequence numbers. Two same-sequence runs return identical
//! eviction lists in identical order — the property `odx`'s byte-identical
//! sweep exports are built on.

mod gdsf;
mod lfu;
mod lru;
mod metrics;
mod policy;
mod s3fifo;
mod sharded;

pub use gdsf::GdsfCache;
pub use lfu::LfuCache;
pub use lru::LruCache;
pub use metrics::InstrumentedCache;
pub use policy::{CacheConfig, CachePolicy, PolicyKind};
pub use s3fifo::S3FifoCache;
pub use sharded::ShardedCache;
