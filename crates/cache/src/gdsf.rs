//! Greedy-Dual-Size-Frequency (GDSF).
//!
//! Priority is `L + freq / size`: small, frequently-hit files get high
//! priority, huge lukewarm ones get evicted first. `L` is the classic
//! inflation term — it is bumped to the priority of whatever was last
//! evicted, so long-resident entries must keep earning hits to stay above
//! the rising waterline. With ~GB downloads sharing a pool with ~MB
//! archives, size-awareness is exactly the axis the paper's workload
//! stresses.

use std::collections::BTreeSet;

use odx_sim::FxHashMap;

use crate::{CachePolicy, PolicyKind};

/// `f64` with a total order (IEEE-754 `total_cmp`) so priorities can live in
/// a `BTreeSet`. Priorities are always finite here (sizes are clamped away
/// from zero), so the exotic corners of `total_cmp` never matter.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Entry {
    size_mb: f64,
    freq: u64,
    seq: u64,
    pri: f64,
}

/// Byte-budget GDSF cache (size-aware priorities with inflation).
pub struct GdsfCache {
    capacity_mb: f64,
    used_mb: f64,
    map: FxHashMap<u64, Entry>,
    // Eviction order: (priority, seq, key), lowest priority first; ties
    // resolve FIFO by insertion sequence.
    order: BTreeSet<(OrdF64, u64, u64)>,
    next_seq: u64,
    /// The inflation waterline: priority of the last eviction.
    inflation: f64,
}

impl GdsfCache {
    /// A cache holding at most `capacity_mb` megabytes.
    pub fn new(capacity_mb: f64) -> Self {
        GdsfCache::with_capacity(capacity_mb, 0)
    }

    /// A cache holding at most `capacity_mb` megabytes, preallocated for
    /// roughly `entries` resident files.
    pub fn with_capacity(capacity_mb: f64, entries: usize) -> Self {
        assert!(capacity_mb > 0.0, "capacity must be positive");
        let mut map = FxHashMap::default();
        map.reserve(entries);
        GdsfCache {
            capacity_mb,
            used_mb: 0.0,
            map,
            order: BTreeSet::new(),
            next_seq: 0,
            inflation: 0.0,
        }
    }

    fn priority(&self, freq: u64, size_mb: f64) -> f64 {
        self.inflation + freq as f64 / size_mb.max(1e-6)
    }

    fn evict_min(&mut self) -> Option<u64> {
        let &(pri, seq, key) = self.order.iter().next()?;
        self.order.remove(&(pri, seq, key));
        let entry = self.map.remove(&key).expect("order entry without map entry");
        self.used_mb -= entry.size_mb;
        self.inflation = pri.0;
        Some(key)
    }
}

impl CachePolicy for GdsfCache {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Gdsf
    }

    fn lookup(&mut self, key: u64, _now_ms: u64) -> Option<f64> {
        let inflation = self.inflation;
        let entry = self.map.get_mut(&key)?;
        self.order.remove(&(OrdF64(entry.pri), entry.seq, key));
        entry.freq += 1;
        entry.pri = inflation + entry.freq as f64 / entry.size_mb.max(1e-6);
        self.order.insert((OrdF64(entry.pri), entry.seq, key));
        Some(entry.size_mb)
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn insert(&mut self, key: u64, size_mb: f64, _now_ms: u64) -> Vec<u64> {
        assert!(size_mb >= 0.0 && size_mb.is_finite(), "bad size");
        if let Some(entry) = self.map.get(&key) {
            let (freq, seq) = (entry.freq, entry.seq);
            self.order.remove(&(OrdF64(entry.pri), seq, key));
            let pri = self.priority(freq + 1, size_mb);
            let entry = self.map.get_mut(&key).expect("checked above");
            self.used_mb += size_mb - entry.size_mb;
            entry.size_mb = size_mb;
            entry.freq = freq + 1;
            entry.pri = pri;
            self.order.insert((OrdF64(pri), seq, key));
        } else {
            let pri = self.priority(1, size_mb);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.map.insert(key, Entry { size_mb, freq: 1, seq, pri });
            self.order.insert((OrdF64(pri), seq, key));
            self.used_mb += size_mb;
        }
        let mut evicted = Vec::new();
        while self.used_mb > self.capacity_mb {
            match self.evict_min() {
                Some(k) => evicted.push(k),
                None => break,
            }
        }
        evicted
    }

    fn remove(&mut self, key: u64) -> Option<f64> {
        let entry = self.map.remove(&key)?;
        self.order.remove(&(OrdF64(entry.pri), entry.seq, key));
        self.used_mb -= entry.size_mb;
        Some(entry.size_mb)
    }

    fn used_mb(&self) -> f64 {
        self.used_mb
    }

    fn capacity_mb(&self) -> f64 {
        self.capacity_mb
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_cold_files_go_first() {
        let mut c = GdsfCache::new(100.0);
        c.insert(1, 80.0, 0); // pri 1/80
        c.insert(2, 1.0, 0); // pri 1/1
        let evicted = c.insert(3, 40.0, 0);
        assert_eq!(evicted, vec![1], "the big file has the lowest pri");
        assert!(c.contains(2) && c.contains(3));
    }

    #[test]
    fn frequency_rescues_a_big_file() {
        let mut c = GdsfCache::new(100.0);
        c.insert(1, 60.0, 0);
        for _ in 0..100 {
            c.lookup(1, 0); // freq 101: pri ~1.68
        }
        c.insert(2, 35.0, 0); // pri 1/35
        let evicted = c.insert(3, 30.0, 0); // pri 1/30
                                            // Key 2 (lowest pri) goes, not the hot big file.
        assert_eq!(evicted, vec![2]);
        assert!(c.contains(1));
    }

    #[test]
    fn inflation_lets_new_content_displace_old() {
        let mut c = GdsfCache::new(10.0);
        c.insert(1, 5.0, 0);
        c.lookup(1, 0);
        c.lookup(1, 0); // freq 3, pri 0.6
                        // Churn through distinct keys: each eviction raises the waterline,
                        // so eventually fresh freq-1 inserts out-prioritise the stale hot
                        // entry even though its absolute freq is higher.
        let mut old_evicted = false;
        for k in 10..200 {
            if c.insert(k, 5.0, 0).contains(&1) {
                old_evicted = true;
                break;
            }
        }
        assert!(old_evicted, "inflation must age out stale content");
    }

    #[test]
    fn cascade_keeps_budget() {
        let mut c = GdsfCache::new(100.0);
        for k in 0..10 {
            c.insert(k, 10.0, 0);
        }
        c.insert(99, 95.0, 0);
        assert!(c.used_mb() <= c.capacity_mb());
    }

    #[test]
    fn dedup_refreshes_and_resizes() {
        let mut c = GdsfCache::new(100.0);
        c.insert(1, 40.0, 0);
        c.insert(1, 70.0, 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_mb(), 70.0);
    }

    #[test]
    fn remove_frees_space() {
        let mut c = GdsfCache::new(100.0);
        c.insert(1, 40.0, 0);
        assert_eq!(c.remove(1), Some(40.0));
        assert_eq!(c.remove(1), None);
        assert!(c.is_empty());
    }
}
