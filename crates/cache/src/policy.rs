//! The policy trait, the policy registry, and the scenario-facing config.

use serde::Serialize;

use crate::{GdsfCache, LfuCache, LruCache, S3FifoCache, ShardedCache};

/// A byte-budgeted cache replacement policy over `u64` keys.
///
/// Contract (what the cloud replay and the comparison harness rely on):
///
/// * **Byte budget.** After any call returns, `used_mb() <=
///   capacity_mb()`. Evictions cascade inside `insert` until the budget
///   holds.
/// * **Virtual clock.** `now_ms` is simulation time in milliseconds. It is
///   non-decreasing across calls; policies may use it for aging but never
///   read wall clocks.
/// * **Determinism.** The same call sequence produces the same return
///   values — including the *order* of evicted keys — on every run and
///   platform. Ties are broken by insertion sequence, never by map
///   iteration order.
/// * **Admission.** `insert` returns every key that stopped being resident
///   as a consequence of the call. A policy that refuses to admit the new
///   key itself (size-aware or probationary admission) returns that key in
///   the list, so callers can keep an external "is cached" index in sync
///   with one loop. (Exception: [`LruCache`]'s inherent `insert` keeps its
///   legacy behaviour of silently refusing oversized files; its
///   [`CachePolicy`] impl papers over this by reporting the refused key.)
/// * Re-inserting a resident key refreshes it (recency/frequency credit)
///   and updates its size in place — file-level dedup, exactly like the
///   cloud pool.
pub trait CachePolicy: Send {
    /// Which policy this is (stable name for telemetry and tables).
    fn kind(&self) -> PolicyKind;

    /// Look up `key` at virtual time `now_ms`, crediting the entry
    /// (recency/frequency) on a hit. Returns the resident size in MB.
    fn lookup(&mut self, key: u64, now_ms: u64) -> Option<f64>;

    /// Whether `key` is resident, *without* crediting it.
    fn contains(&self, key: u64) -> bool;

    /// Insert `key` with `size_mb` at virtual time `now_ms`. Returns the
    /// keys no longer resident after the call (see the admission contract).
    fn insert(&mut self, key: u64, size_mb: f64, now_ms: u64) -> Vec<u64>;

    /// Remove `key` outright. Returns its size if it was resident.
    fn remove(&mut self, key: u64) -> Option<f64>;

    /// Bytes currently resident (MB).
    fn used_mb(&self) -> f64;

    /// The byte budget (MB).
    fn capacity_mb(&self) -> f64;

    /// Number of resident entries.
    fn len(&self) -> usize;

    /// Whether nothing is resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The built-in replacement policies, in listing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PolicyKind {
    /// Byte-budget LRU — the paper's pool model (the baseline).
    Lru,
    /// LFU with periodic aging (frequencies halve every virtual day).
    Lfu,
    /// Greedy-Dual-Size-Frequency (size-aware priorities).
    Gdsf,
    /// S3-FIFO: probationary small FIFO + main FIFO + ghost admission.
    S3Fifo,
}

impl PolicyKind {
    /// Every built-in policy, in the order tables and sweeps list them.
    pub const ALL: [PolicyKind; 4] =
        [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::Gdsf, PolicyKind::S3Fifo];

    /// Stable lower-case name (CLI `--policy` values, telemetry prefixes).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Gdsf => "gdsf",
            PolicyKind::S3Fifo => "s3fifo",
        }
    }

    /// One-line description shown by `repro list`.
    pub fn summary(self) -> &'static str {
        match self {
            PolicyKind::Lru => "byte-budget LRU (the paper's pool; the baseline policy)",
            PolicyKind::Lfu => "LFU with aging: frequencies halve every virtual day",
            PolicyKind::Gdsf => "Greedy-Dual-Size-Frequency: keep many small hot files",
            PolicyKind::S3Fifo => {
                "S3-FIFO admission: one-hit wonders never displace proven content"
            }
        }
    }

    /// Parse a CLI policy name. `None` for unknown names (the caller turns
    /// this into a `repro list`-style exit-2 usage error).
    pub fn parse(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Build this policy with a byte budget, preallocated for roughly
    /// `entries` resident files (mirrors `EventQueue::with_capacity`).
    pub fn build(self, capacity_mb: f64, entries: usize) -> Box<dyn CachePolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruCache::<u64>::with_capacity(capacity_mb, entries)),
            PolicyKind::Lfu => Box::new(LfuCache::with_capacity(capacity_mb, entries)),
            PolicyKind::Gdsf => Box::new(GdsfCache::with_capacity(capacity_mb, entries)),
            PolicyKind::S3Fifo => Box::new(S3FifoCache::with_capacity(capacity_mb, entries)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a scenario says about its content cache: which policy runs the
/// pool, and across how many deterministic FxHash shards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CacheConfig {
    /// The replacement policy.
    pub policy: PolicyKind,
    /// Shard count (1 = unsharded). Results are deterministic for a fixed
    /// shard count; changing it changes eviction domains (and results).
    pub shards: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { policy: PolicyKind::Lru, shards: 1 }
    }
}

impl CacheConfig {
    /// A single-shard config for `policy`.
    pub fn for_policy(policy: PolicyKind) -> CacheConfig {
        CacheConfig { policy, shards: 1 }
    }

    /// Build the configured cache: the bare policy for `shards <= 1`, or a
    /// [`ShardedCache`] splitting the budget across shards.
    pub fn build(&self, capacity_mb: f64, entries: usize) -> Box<dyn CachePolicy> {
        if self.shards <= 1 {
            self.policy.build(capacity_mb, entries)
        } else {
            Box::new(ShardedCache::new(self.policy, capacity_mb, self.shards as usize, entries))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.name()), Some(p));
        }
        assert_eq!(PolicyKind::parse("arc"), None);
        assert_eq!(PolicyKind::parse("LRU"), None, "names are case-sensitive");
    }

    #[test]
    fn build_constructs_every_policy() {
        for p in PolicyKind::ALL {
            let c = p.build(100.0, 16);
            assert_eq!(c.kind(), p);
            assert_eq!(c.capacity_mb(), 100.0);
            assert!(c.is_empty());
        }
    }

    #[test]
    fn default_config_is_the_paper_baseline() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.policy, PolicyKind::Lru);
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.build(50.0, 4).kind(), PolicyKind::Lru);
    }

    #[test]
    fn sharded_config_splits_the_budget() {
        let cfg = CacheConfig { policy: PolicyKind::Lru, shards: 4 };
        let c = cfg.build(100.0, 16);
        assert_eq!(c.capacity_mb(), 100.0);
        assert_eq!(c.kind(), PolicyKind::Lru);
    }
}
