//! LFU with periodic aging.
//!
//! Plain LFU has a well-known pathology on weekly traces: content that was
//! hot on Monday accumulates enough frequency to pin itself in the cache
//! for the rest of the week. We age the whole cache on the virtual clock —
//! every virtual day, every frequency halves — so "recently popular" beats
//! "formerly popular" with about a one-day half-life.

use std::collections::BTreeSet;

use odx_sim::FxHashMap;

use crate::{CachePolicy, PolicyKind};

/// Frequencies halve once per virtual day.
const AGE_EPOCH_MS: u64 = 86_400_000;

struct Entry {
    size_mb: f64,
    freq: u64,
    seq: u64,
}

/// Byte-budget LFU with day-granularity aging.
pub struct LfuCache {
    capacity_mb: f64,
    used_mb: f64,
    map: FxHashMap<u64, Entry>,
    // Eviction order: (freq, seq, key) — least-frequent first, FIFO within a
    // frequency class. A BTreeSet keeps iteration deterministic (no hash
    // order leaks into eviction decisions).
    order: BTreeSet<(u64, u64, u64)>,
    next_seq: u64,
    next_age_ms: u64,
}

impl LfuCache {
    /// A cache holding at most `capacity_mb` megabytes.
    pub fn new(capacity_mb: f64) -> Self {
        LfuCache::with_capacity(capacity_mb, 0)
    }

    /// A cache holding at most `capacity_mb` megabytes, preallocated for
    /// roughly `entries` resident files.
    pub fn with_capacity(capacity_mb: f64, entries: usize) -> Self {
        assert!(capacity_mb > 0.0, "capacity must be positive");
        let mut map = FxHashMap::default();
        map.reserve(entries);
        LfuCache {
            capacity_mb,
            used_mb: 0.0,
            map,
            order: BTreeSet::new(),
            next_seq: 0,
            next_age_ms: AGE_EPOCH_MS,
        }
    }

    fn bump_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Halve every frequency once per elapsed epoch (one rebuild no matter
    /// how many epochs passed — halving is a right-shift).
    fn maybe_age(&mut self, now_ms: u64) {
        if now_ms < self.next_age_ms {
            return;
        }
        let epochs = 1 + (now_ms - self.next_age_ms) / AGE_EPOCH_MS;
        self.next_age_ms += epochs * AGE_EPOCH_MS;
        let shift = epochs.min(63) as u32;
        self.order.clear();
        // Map iteration order doesn't leak: each entry is updated
        // independently and the rebuilt BTreeSet is order-insensitive.
        for (&key, entry) in &mut self.map {
            entry.freq = (entry.freq >> shift).max(1);
            self.order.insert((entry.freq, entry.seq, key));
        }
    }

    fn evict_min(&mut self) -> Option<u64> {
        let &(freq, seq, key) = self.order.iter().next()?;
        self.order.remove(&(freq, seq, key));
        let entry = self.map.remove(&key).expect("order entry without map entry");
        self.used_mb -= entry.size_mb;
        Some(key)
    }
}

impl CachePolicy for LfuCache {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lfu
    }

    fn lookup(&mut self, key: u64, now_ms: u64) -> Option<f64> {
        self.maybe_age(now_ms);
        let entry = self.map.get_mut(&key)?;
        self.order.remove(&(entry.freq, entry.seq, key));
        entry.freq += 1;
        self.order.insert((entry.freq, entry.seq, key));
        Some(entry.size_mb)
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    fn insert(&mut self, key: u64, size_mb: f64, now_ms: u64) -> Vec<u64> {
        assert!(size_mb >= 0.0 && size_mb.is_finite(), "bad size");
        self.maybe_age(now_ms);
        if let Some(entry) = self.map.get_mut(&key) {
            // Dedup refresh: frequency credit plus in-place size update.
            self.used_mb += size_mb - entry.size_mb;
            self.order.remove(&(entry.freq, entry.seq, key));
            entry.size_mb = size_mb;
            entry.freq += 1;
            self.order.insert((entry.freq, entry.seq, key));
        } else {
            let seq = self.bump_seq();
            self.map.insert(key, Entry { size_mb, freq: 1, seq });
            self.order.insert((1, seq, key));
            self.used_mb += size_mb;
        }
        let mut evicted = Vec::new();
        while self.used_mb > self.capacity_mb {
            match self.evict_min() {
                // The newly inserted key has the highest seq in its
                // frequency class, so it goes last — but it *can* go (an
                // oversized or colder-than-everything file is refused, and
                // the returned list says so).
                Some(k) => evicted.push(k),
                None => break,
            }
        }
        evicted
    }

    fn remove(&mut self, key: u64) -> Option<f64> {
        let entry = self.map.remove(&key)?;
        self.order.remove(&(entry.freq, entry.seq, key));
        self.used_mb -= entry.size_mb;
        Some(entry.size_mb)
    }

    fn used_mb(&self) -> f64 {
        self.used_mb
    }

    fn capacity_mb(&self) -> f64 {
        self.capacity_mb
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_frequently_used() {
        let mut c = LfuCache::new(100.0);
        c.insert(1, 40.0, 0);
        c.insert(2, 40.0, 0);
        c.lookup(1, 0); // key 1: freq 2, key 2: freq 1
        let evicted = c.insert(3, 40.0, 0);
        assert_eq!(evicted, vec![2]);
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn fifo_within_a_frequency_class() {
        let mut c = LfuCache::new(100.0);
        c.insert(1, 40.0, 0);
        c.insert(2, 40.0, 0);
        // Both freq 1 — the older insertion (key 1) goes first.
        let evicted = c.insert(3, 40.0, 0);
        assert_eq!(evicted, vec![1]);
    }

    #[test]
    fn aging_halves_frequencies() {
        let mut c = LfuCache::new(100.0);
        c.insert(1, 40.0, 0);
        for _ in 0..6 {
            c.lookup(1, 0); // freq 7
        }
        c.insert(2, 40.0, 0); // freq 1
                              // Three quiet days halve the favourite 7 → 3 → 1 → 1: it is back in
                              // the freq-1 class, where its older seq makes it the first victim.
        let later = 3 * AGE_EPOCH_MS;
        for _ in 0..4 {
            c.lookup(2, later);
        }
        let evicted = c.insert(3, 40.0, later);
        assert_eq!(evicted, vec![1], "aged-out content loses to recent hits");
    }

    #[test]
    fn colder_than_everything_is_refused() {
        let mut c = LfuCache::new(100.0);
        c.insert(1, 50.0, 0);
        c.insert(2, 50.0, 0);
        c.lookup(1, 0);
        c.lookup(2, 0); // both freq 2
        let evicted = c.insert(3, 60.0, 0);
        // Key 3 (freq 1) is the eviction minimum itself.
        assert_eq!(evicted, vec![3]);
        assert!(!c.contains(3));
        assert!(c.used_mb() <= c.capacity_mb());
    }

    #[test]
    fn cascade_keeps_budget() {
        let mut c = LfuCache::new(100.0);
        for k in 0..10 {
            c.insert(k, 10.0, 0);
        }
        let evicted = c.insert(99, 95.0, 0);
        assert!(c.used_mb() <= c.capacity_mb());
        assert!(evicted.len() >= 9);
    }

    #[test]
    fn dedup_refreshes_and_resizes() {
        let mut c = LfuCache::new(100.0);
        c.insert(1, 40.0, 0);
        c.insert(1, 70.0, 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_mb(), 70.0);
    }

    #[test]
    fn remove_frees_space() {
        let mut c = LfuCache::new(100.0);
        c.insert(1, 40.0, 0);
        assert_eq!(c.remove(1), Some(40.0));
        assert_eq!(c.remove(1), None);
        assert!(c.is_empty());
        assert_eq!(c.used_mb(), 0.0);
    }
}
