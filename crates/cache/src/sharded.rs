//! Deterministic FxHash sharding over any policy.
//!
//! Each shard is an independent policy instance with an even split of the
//! byte budget; a key's shard is `FxHash(key) % shards`, which depends only
//! on the key's bits — never on addresses, wall clocks, or platform — so a
//! fixed shard count yields identical placement (and identical evictions)
//! on every run. Changing the shard count changes eviction domains and is
//! allowed to change results; that is a modelling knob, not nondeterminism.

use std::hash::Hasher;

use odx_sim::FxHasher;

use crate::{CachePolicy, PolicyKind};

/// A cache split into `n` deterministic FxHash shards of one policy.
pub struct ShardedCache {
    kind: PolicyKind,
    shards: Vec<Box<dyn CachePolicy>>,
}

impl ShardedCache {
    /// Split `capacity_mb` evenly across `shards` instances of `policy`,
    /// each preallocated for its share of `entries`.
    pub fn new(policy: PolicyKind, capacity_mb: f64, shards: usize, entries: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let per_shard_mb = capacity_mb / shards as f64;
        let per_shard_entries = entries.div_ceil(shards);
        ShardedCache {
            kind: policy,
            shards: (0..shards).map(|_| policy.build(per_shard_mb, per_shard_entries)).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: u64) -> usize {
        let mut hasher = FxHasher::default();
        hasher.write_u64(key);
        (hasher.finish() % self.shards.len() as u64) as usize
    }
}

impl CachePolicy for ShardedCache {
    fn kind(&self) -> PolicyKind {
        self.kind
    }

    fn lookup(&mut self, key: u64, now_ms: u64) -> Option<f64> {
        let shard = self.shard_of(key);
        self.shards[shard].lookup(key, now_ms)
    }

    fn contains(&self, key: u64) -> bool {
        self.shards[self.shard_of(key)].contains(key)
    }

    fn insert(&mut self, key: u64, size_mb: f64, now_ms: u64) -> Vec<u64> {
        let shard = self.shard_of(key);
        self.shards[shard].insert(key, size_mb, now_ms)
    }

    fn remove(&mut self, key: u64) -> Option<f64> {
        let shard = self.shard_of(key);
        self.shards[shard].remove(key)
    }

    fn used_mb(&self) -> f64 {
        self.shards.iter().map(|s| s.used_mb()).sum()
    }

    fn capacity_mb(&self) -> f64 {
        self.shards.iter().map(|s| s.capacity_mb()).sum()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable() {
        let c = ShardedCache::new(PolicyKind::Lru, 100.0, 4, 0);
        for key in 0..1000u64 {
            assert_eq!(c.shard_of(key), c.shard_of(key));
        }
    }

    #[test]
    fn budget_splits_evenly_and_sums_back() {
        let c = ShardedCache::new(PolicyKind::Lru, 100.0, 4, 16);
        assert_eq!(c.shard_count(), 4);
        assert!((c.capacity_mb() - 100.0).abs() < 1e-9);
        assert!(c.is_empty());
    }

    #[test]
    fn operations_route_to_one_shard() {
        let mut c = ShardedCache::new(PolicyKind::Lru, 100.0, 4, 0);
        assert!(c.insert(42, 10.0, 0).is_empty());
        assert!(c.contains(42));
        assert_eq!(c.lookup(42, 0), Some(10.0));
        assert_eq!(c.len(), 1);
        assert!((c.used_mb() - 10.0).abs() < 1e-9);
        assert_eq!(c.remove(42), Some(10.0));
        assert!(c.is_empty());
    }

    #[test]
    fn per_shard_budget_is_enforced() {
        let mut c = ShardedCache::new(PolicyKind::Lru, 100.0, 4, 0);
        // Hammer one key range; no shard may exceed its 25 MB slice, so the
        // aggregate stays far below the nominal total.
        for key in 0..100u64 {
            c.insert(key, 5.0, 0);
        }
        assert!(c.used_mb() <= 100.0 + 1e-9);
        for shard in &c.shards {
            assert!(shard.used_mb() <= shard.capacity_mb() + 1e-9);
        }
    }

    #[test]
    fn works_for_every_policy() {
        for p in PolicyKind::ALL {
            let mut c = ShardedCache::new(p, 80.0, 2, 8);
            assert_eq!(c.kind(), p);
            for key in 0..50u64 {
                c.insert(key, 3.0, key);
            }
            assert!(c.used_mb() <= c.capacity_mb() + 1e-9);
            assert!(c.len() > 0);
        }
    }
}
