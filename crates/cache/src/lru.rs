//! Byte-budget LRU with file-level deduplication — the paper's §2.1 pool
//! model, migrated verbatim from `odx-cloud::cache` (which keeps a
//! deprecated re-export).
//!
//! Implemented from scratch as a hash map into an intrusive doubly-linked
//! list over a slab, giving O(1) touch / insert / evict.

use std::hash::Hash;

use odx_sim::FxHashMap;

use crate::{CachePolicy, PolicyKind};

const NIL: usize = usize::MAX;

struct Node<K> {
    key: K,
    size_mb: f64,
    prev: usize,
    next: usize,
}

/// Byte-budget LRU cache over file keys.
pub struct LruCache<K> {
    capacity_mb: f64,
    used_mb: f64,
    // FxHash: touched on every request of the week replay (hit path), with
    // simulation-internal keys that need no HashDoS keying.
    map: FxHashMap<K, usize>,
    slab: Vec<Node<K>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl<K: Eq + Hash + Clone> LruCache<K> {
    /// A cache holding at most `capacity_mb` megabytes.
    pub fn new(capacity_mb: f64) -> Self {
        LruCache::with_capacity(capacity_mb, 0)
    }

    /// A cache holding at most `capacity_mb` megabytes, preallocated for
    /// roughly `entries` resident files (no rehash/regrow while warming).
    pub fn with_capacity(capacity_mb: f64, entries: usize) -> Self {
        assert!(capacity_mb > 0.0, "capacity must be positive");
        let mut map = FxHashMap::default();
        map.reserve(entries);
        LruCache {
            capacity_mb,
            used_mb: 0.0,
            map,
            slab: Vec::with_capacity(entries),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Bytes currently stored (MB).
    pub fn used_mb(&self) -> f64 {
        self.used_mb
    }

    /// Capacity (MB).
    pub fn capacity_mb(&self) -> f64 {
        self.capacity_mb
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is cached, *without* touching recency.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Look up `key`, marking it most-recently-used. Returns its size.
    pub fn touch(&mut self, key: &K) -> Option<f64> {
        let &idx = self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slab[idx].size_mb)
    }

    /// Insert a file (deduplicating on key: re-inserting refreshes recency
    /// and updates the size). Files larger than the whole cache are refused.
    /// Returns the keys evicted to make room.
    pub fn insert(&mut self, key: K, size_mb: f64) -> Vec<K> {
        assert!(size_mb >= 0.0 && size_mb.is_finite(), "bad size");
        if size_mb > self.capacity_mb {
            return Vec::new();
        }
        if let Some(&idx) = self.map.get(&key) {
            self.used_mb += size_mb - self.slab[idx].size_mb;
            self.slab[idx].size_mb = size_mb;
            self.unlink(idx);
            self.push_front(idx);
        } else {
            let idx = self.alloc(key.clone(), size_mb);
            self.map.insert(key, idx);
            self.push_front(idx);
            self.used_mb += size_mb;
        }
        let mut evicted = Vec::new();
        while self.used_mb > self.capacity_mb {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "over budget implies non-empty");
            // Never evict the entry we just inserted.
            if lru == self.head {
                break;
            }
            evicted.push(self.remove_index(lru));
        }
        evicted
    }

    /// Remove `key` outright. Returns its size if it was present.
    pub fn remove(&mut self, key: &K) -> Option<f64> {
        let idx = *self.map.get(key)?;
        let size = self.slab[idx].size_mb;
        self.remove_index(idx);
        Some(size)
    }

    /// Keys from most- to least-recently-used (diagnostics and tests).
    pub fn keys_mru(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slab[cur].key.clone());
            cur = self.slab[cur].next;
        }
        out
    }

    fn alloc(&mut self, key: K, size_mb: f64) -> usize {
        let node = Node { key, size_mb, prev: NIL, next: NIL };
        if let Some(idx) = self.free.pop() {
            self.slab[idx] = node;
            idx
        } else {
            self.slab.push(node);
            self.slab.len() - 1
        }
    }

    fn remove_index(&mut self, idx: usize) -> K {
        self.unlink(idx);
        let key = self.slab[idx].key.clone();
        self.used_mb -= self.slab[idx].size_mb;
        self.map.remove(&key);
        self.free.push(idx);
        key
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

impl CachePolicy for LruCache<u64> {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }

    fn lookup(&mut self, key: u64, _now_ms: u64) -> Option<f64> {
        self.touch(&key)
    }

    fn contains(&self, key: u64) -> bool {
        LruCache::contains(self, &key)
    }

    fn insert(&mut self, key: u64, size_mb: f64, _now_ms: u64) -> Vec<u64> {
        // The inherent method refuses oversized files silently (legacy
        // behaviour, preserved for existing callers); the trait contract
        // wants the refused key reported so external indices stay in sync.
        if size_mb > self.capacity_mb {
            return vec![key];
        }
        LruCache::insert(self, key, size_mb)
    }

    fn remove(&mut self, key: u64) -> Option<f64> {
        LruCache::remove(self, &key)
    }

    fn used_mb(&self) -> f64 {
        LruCache::used_mb(self)
    }

    fn capacity_mb(&self) -> f64 {
        LruCache::capacity_mb(self)
    }

    fn len(&self) -> usize {
        LruCache::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut c = LruCache::new(100.0);
        assert!(c.insert("a", 40.0).is_empty());
        assert!(c.contains(&"a"));
        assert!(!c.contains(&"b"));
        assert_eq!(c.used_mb(), 40.0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(100.0);
        c.insert("a", 40.0);
        c.insert("b", 40.0);
        c.touch(&"a"); // b is now LRU
        let evicted = c.insert("c", 40.0);
        assert_eq!(evicted, vec!["b"]);
        assert!(c.contains(&"a") && c.contains(&"c"));
        assert!((c.used_mb() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn eviction_can_cascade() {
        let mut c = LruCache::new(100.0);
        c.insert("a", 30.0);
        c.insert("b", 30.0);
        c.insert("c", 30.0);
        let evicted = c.insert("big", 90.0);
        assert_eq!(evicted.len(), 3);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn dedup_refreshes_instead_of_duplicating() {
        let mut c = LruCache::new(100.0);
        c.insert("a", 40.0);
        c.insert("b", 40.0);
        c.insert("a", 40.0); // refresh: b becomes LRU
        assert_eq!(c.len(), 2);
        assert_eq!(c.used_mb(), 80.0);
        assert_eq!(c.keys_mru(), vec!["a", "b"]);
    }

    #[test]
    fn resize_on_reinsert() {
        let mut c = LruCache::new(100.0);
        c.insert("a", 40.0);
        c.insert("a", 70.0);
        assert_eq!(c.used_mb(), 70.0);
    }

    #[test]
    fn oversized_file_is_refused() {
        let mut c = LruCache::new(50.0);
        c.insert("a", 10.0);
        let evicted = c.insert("huge", 60.0);
        assert!(evicted.is_empty());
        assert!(!c.contains(&"huge"));
        assert!(c.contains(&"a"));
    }

    #[test]
    fn policy_impl_reports_the_refused_key() {
        let mut c = LruCache::<u64>::new(50.0);
        CachePolicy::insert(&mut c, 1, 10.0, 0);
        assert_eq!(CachePolicy::insert(&mut c, 2, 60.0, 0), vec![2]);
        assert!(!CachePolicy::contains(&c, 2));
        assert!(CachePolicy::contains(&c, 1));
    }

    #[test]
    fn remove_frees_space() {
        let mut c = LruCache::new(100.0);
        c.insert("a", 40.0);
        assert_eq!(c.remove(&"a"), Some(40.0));
        assert_eq!(c.remove(&"a"), None);
        assert_eq!(c.used_mb(), 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn slab_reuse_after_removals() {
        let mut c = LruCache::new(10.0);
        for round in 0..5 {
            for i in 0..10 {
                c.insert(round * 10 + i, 1.0);
            }
        }
        assert_eq!(c.len(), 10);
        assert!(c.slab.len() <= 20, "slab should be reused, len {}", c.slab.len());
    }

    #[test]
    fn mru_order_is_maintained() {
        let mut c = LruCache::new(100.0);
        for k in ["a", "b", "c"] {
            c.insert(k, 10.0);
        }
        c.touch(&"b");
        assert_eq!(c.keys_mru(), vec!["b", "c", "a"]);
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut c = LruCache::with_capacity(100.0, 64);
        assert!(c.slab.capacity() >= 64);
        for i in 0..10u64 {
            c.insert(i, 1.0);
        }
        assert_eq!(c.len(), 10);
    }
}
