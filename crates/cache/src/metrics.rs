//! Telemetry wrapper: per-policy `cache.<policy>.*` metrics.
//!
//! Counters (`hit`, `miss`, `eviction`) tick as the replay runs; the
//! occupancy and hit-ratio gauges are written once by [`finish`] so the
//! snapshot reflects end-of-run state. Counter handles are plain `Arc`s
//! into a [`Registry`], so the same pattern as the cloud's `CloudMetrics`
//! applies: bind to the global registry on construction, [`rebind`] to a
//! private one per replay.
//!
//! [`finish`]: InstrumentedCache::finish
//! [`rebind`]: InstrumentedCache::rebind

use odx_telemetry::{Counter, Registry};

use crate::{CachePolicy, PolicyKind};

/// A [`CachePolicy`] wrapper that records `cache.<policy>.*` telemetry.
pub struct InstrumentedCache {
    inner: Box<dyn CachePolicy>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl InstrumentedCache {
    /// Wrap `inner`, binding `cache.<policy>.{hit,miss,eviction}` counters
    /// in `registry`.
    pub fn new(inner: Box<dyn CachePolicy>, registry: &Registry) -> Self {
        let name = inner.kind().name();
        InstrumentedCache {
            hits: registry.counter(&format!("cache.{name}.hit")),
            misses: registry.counter(&format!("cache.{name}.miss")),
            evictions: registry.counter(&format!("cache.{name}.eviction")),
            inner,
        }
    }

    /// Which policy runs underneath.
    pub fn kind(&self) -> PolicyKind {
        self.inner.kind()
    }

    /// Re-bind the counters into `registry` (used when a replay swaps the
    /// global registry for a private per-run one; counts restart from the
    /// registry's current values).
    pub fn rebind(&mut self, registry: &Registry) {
        let name = self.inner.kind().name();
        self.hits = registry.counter(&format!("cache.{name}.hit"));
        self.misses = registry.counter(&format!("cache.{name}.miss"));
        self.evictions = registry.counter(&format!("cache.{name}.eviction"));
    }

    /// Write the end-of-run gauges: `cache.<policy>.bytes_mb` (occupancy)
    /// and `cache.<policy>.hit_ratio`.
    pub fn finish(&self, registry: &Registry) {
        let name = self.inner.kind().name();
        registry.gauge(&format!("cache.{name}.bytes_mb")).set(self.inner.used_mb());
        let (h, m) = (self.hits.get() as f64, self.misses.get() as f64);
        let ratio = if h + m > 0.0 { h / (h + m) } else { 0.0 };
        registry.gauge(&format!("cache.{name}.hit_ratio")).set(ratio);
    }

    /// Counted [`CachePolicy::lookup`].
    pub fn lookup(&mut self, key: u64, now_ms: u64) -> Option<f64> {
        let hit = self.inner.lookup(key, now_ms);
        match hit {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        }
        hit
    }

    /// Uncounted residency probe (see [`CachePolicy::contains`]).
    pub fn contains(&self, key: u64) -> bool {
        self.inner.contains(key)
    }

    /// Counted [`CachePolicy::insert`]: every key in the returned eviction
    /// list (including an admission-refused insertee) ticks `eviction`.
    pub fn insert(&mut self, key: u64, size_mb: f64, now_ms: u64) -> Vec<u64> {
        let evicted = self.inner.insert(key, size_mb, now_ms);
        self.evictions.add(evicted.len() as u64);
        evicted
    }

    /// Forwarded [`CachePolicy::remove`] (not an eviction — no tick).
    pub fn remove(&mut self, key: u64) -> Option<f64> {
        self.inner.remove(key)
    }

    /// Bytes currently resident (MB).
    pub fn used_mb(&self) -> f64 {
        self.inner.used_mb()
    }

    /// The byte budget (MB).
    pub fn capacity_mb(&self) -> f64 {
        self.inner.capacity_mb()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;

    #[test]
    fn counters_and_gauges_record_the_run() {
        let registry = Registry::new();
        let mut c = InstrumentedCache::new(CacheConfig::default().build(20.0, 4), &registry);
        assert_eq!(c.kind(), PolicyKind::Lru);

        assert!(c.lookup(1, 0).is_none()); // miss
        c.insert(1, 10.0, 0);
        c.insert(2, 10.0, 0);
        assert!(c.lookup(1, 0).is_some()); // hit
        let evicted = c.insert(3, 10.0, 0); // evicts key 2
        assert_eq!(evicted, vec![2]);

        c.finish(&registry);
        assert_eq!(registry.counter("cache.lru.hit").get(), 1);
        assert_eq!(registry.counter("cache.lru.miss").get(), 1);
        assert_eq!(registry.counter("cache.lru.eviction").get(), 1);
        assert_eq!(registry.gauge("cache.lru.bytes_mb").get(), 20.0);
        assert_eq!(registry.gauge("cache.lru.hit_ratio").get(), 0.5);
    }

    #[test]
    fn rebind_switches_registries() {
        let a = Registry::new();
        let b = Registry::new();
        let mut c = InstrumentedCache::new(CacheConfig::default().build(20.0, 4), &a);
        c.lookup(1, 0);
        c.rebind(&b);
        c.lookup(1, 0);
        assert_eq!(a.counter("cache.lru.miss").get(), 1);
        assert_eq!(b.counter("cache.lru.miss").get(), 1);
    }

    #[test]
    fn empty_run_has_zero_hit_ratio() {
        let registry = Registry::new();
        let c = InstrumentedCache::new(CacheConfig::default().build(20.0, 0), &registry);
        c.finish(&registry);
        assert_eq!(registry.gauge("cache.lru.hit_ratio").get(), 0.0);
    }
}
