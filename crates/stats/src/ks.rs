//! Two-sample Kolmogorov–Smirnov distance.
//!
//! Used to *quantify* the paper's visual claims of CDF similarity — e.g.
//! "the pre-downloading speeds of smart APs are just a bit lower than those
//! of Xuanfeng's pre-downloaders" (Fig 13 overlays both curves).

use crate::Ecdf;

/// The two-sample KS statistic: `sup_x |F_a(x) − F_b(x)|`, in `[0, 1]`.
/// Returns 0 for two empty samples and 1 when exactly one side is empty.
pub fn ks_distance(a: &Ecdf, b: &Ecdf) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let mut max_gap = 0.0f64;
    for &x in a.samples().iter().chain(b.samples()) {
        let gap = (a.fraction_at_most(x) - b.fraction_at_most(x)).abs();
        max_gap = max_gap.max(gap);
    }
    max_gap
}

/// The asymptotic two-sample KS critical value at significance `alpha`
/// (e.g. 0.05): `c(alpha) * sqrt((n+m)/(n*m))`.
pub fn ks_critical(n: usize, m: usize, alpha: f64) -> f64 {
    assert!(n > 0 && m > 0, "need samples on both sides");
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c * (((n + m) as f64) / (n as f64 * m as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Dist, LogNormal, Uniform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let b = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(ks_distance(&a, &b), 0.0);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![10.0, 20.0]);
        assert_eq!(ks_distance(&a, &b), 1.0);
    }

    #[test]
    fn same_distribution_passes_the_test() {
        let d = LogNormal::from_median(100.0, 1.0);
        let mut rng = StdRng::seed_from_u64(210);
        let a = Ecdf::new(d.sample_n(&mut rng, 4000));
        let b = Ecdf::new(d.sample_n(&mut rng, 4000));
        let dist = ks_distance(&a, &b);
        assert!(dist < ks_critical(4000, 4000, 0.01), "{dist}");
    }

    #[test]
    fn different_distributions_fail_the_test() {
        let mut rng = StdRng::seed_from_u64(211);
        let a = Ecdf::new(LogNormal::from_median(100.0, 1.0).sample_n(&mut rng, 2000));
        let b = Ecdf::new(Uniform::new(0.0, 500.0).sample_n(&mut rng, 2000));
        let dist = ks_distance(&a, &b);
        assert!(dist > ks_critical(2000, 2000, 0.05), "{dist}");
    }

    #[test]
    fn empty_edge_cases() {
        let empty = Ecdf::new(vec![]);
        let full = Ecdf::new(vec![1.0]);
        assert_eq!(ks_distance(&empty, &empty), 0.0);
        assert_eq!(ks_distance(&empty, &full), 1.0);
    }

    #[test]
    fn critical_value_shrinks_with_sample_size() {
        assert!(ks_critical(100, 100, 0.05) > ks_critical(10_000, 10_000, 0.05));
    }
}
