#![warn(missing_docs)]

//! # odx-stats — statistics toolkit for the offline-downloading study
//!
//! Everything the measurement analysis needs, implemented from scratch on top
//! of `rand`'s uniform primitives:
//!
//! * [`dist`] — samplers: normal / log-normal (Marsaglia polar), bounded
//!   Pareto, exponential, log-uniform, discrete power laws, Zipf over ranks,
//!   arbitrary mixtures, and empirical distributions.
//! * [`Ecdf`] — empirical CDFs with quantiles and compact summaries; these
//!   back every CDF figure in the paper (Figs 5, 8, 9, 13, 14, 17).
//! * [`Histogram`] — fixed-width and logarithmic binning.
//! * [`fit`] — least-squares fitting of the Zipf and stretched-exponential
//!   (SE) rank-frequency models used in Figs 6–7, including the paper's
//!   "average relative error of fitness" metric.
//! * [`BinnedSeries`] — time-binned accumulation of rates (the 5-minute
//!   bandwidth-burden series of Fig 11).
//! * [`ks`] — two-sample Kolmogorov–Smirnov distance, quantifying the
//!   paper's visual CDF-similarity claims.

pub mod dist;
mod ecdf;
pub mod fit;
mod hist;
pub mod ks;
mod timeseries;

pub use ecdf::{Ecdf, Summary};
pub use hist::Histogram;
pub use timeseries::BinnedSeries;
