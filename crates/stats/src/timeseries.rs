//! Time-binned accumulation of rates.
//!
//! Figure 11 of the paper plots the cloud's upload bandwidth burden in
//! 5-minute bins across the measurement week. [`BinnedSeries`] accumulates
//! the contribution of each flow — a constant rate over `[start, end)` — into
//! such bins, splitting partial overlaps proportionally.

/// A series of equal-width time bins accumulating time-averaged rates.
///
/// Times are f64 seconds (unit-agnostic; callers pick the convention).
/// The value stored per bin is the *average rate during the bin*, i.e. total
/// transferred amount in the bin divided by the bin width.
#[derive(Debug, Clone)]
pub struct BinnedSeries {
    bin_width: f64,
    bins: Vec<f64>,
}

impl BinnedSeries {
    /// A series covering `[0, horizon)` with bins of `bin_width` seconds.
    pub fn new(horizon: f64, bin_width: f64) -> Self {
        assert!(horizon > 0.0 && bin_width > 0.0, "invalid series bounds");
        let n = (horizon / bin_width).ceil() as usize;
        BinnedSeries { bin_width, bins: vec![0.0; n] }
    }

    /// Bin width in seconds.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when the series has no bins (never the case post-construction).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Add a flow transferring at a constant `rate` over `[start, end)`.
    /// Portions outside the series horizon are dropped.
    pub fn add_rate_interval(&mut self, start: f64, end: f64, rate: f64) {
        // `!(end > start)` deliberately rejects NaN endpoints too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(end > start) || rate <= 0.0 || !rate.is_finite() {
            return;
        }
        let horizon = self.bins.len() as f64 * self.bin_width;
        let start = start.max(0.0);
        let end = end.min(horizon);
        if start >= end {
            return;
        }
        let first = (start / self.bin_width) as usize;
        let last = ((end / self.bin_width).ceil() as usize).min(self.bins.len());
        for (b, bin) in self.bins.iter_mut().enumerate().take(last).skip(first) {
            let bin_start = b as f64 * self.bin_width;
            let bin_end = bin_start + self.bin_width;
            let overlap = (end.min(bin_end) - start.max(bin_start)).max(0.0);
            *bin += rate * overlap / self.bin_width;
        }
    }

    /// Add a point amount at time `t` (averaged over its bin).
    pub fn add_amount_at(&mut self, t: f64, amount: f64) {
        if t < 0.0 || amount <= 0.0 {
            return;
        }
        let idx = (t / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += amount / self.bin_width;
        }
    }

    /// Per-bin average rates.
    pub fn values(&self) -> &[f64] {
        &self.bins
    }

    /// `(bin_start_time, rate)` pairs.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.bins.iter().enumerate().map(|(i, &v)| (i as f64 * self.bin_width, v)).collect()
    }

    /// Peak bin value.
    pub fn peak(&self) -> f64 {
        self.bins.iter().copied().fold(0.0, f64::max)
    }

    /// Index and value of the peak bin.
    pub fn peak_bin(&self) -> (usize, f64) {
        self.bins
            .iter()
            .enumerate()
            .fold((0, 0.0), |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc })
    }

    /// Mean bin value.
    pub fn mean(&self) -> f64 {
        if self.bins.is_empty() {
            0.0
        } else {
            self.bins.iter().sum::<f64>() / self.bins.len() as f64
        }
    }

    /// Sum of `rate × bin_width` over all bins, i.e. the total amount
    /// transferred.
    pub fn total_amount(&self) -> f64 {
        self.bins.iter().sum::<f64>() * self.bin_width
    }

    /// Element-wise ratio of another series to this one (other / self), with
    /// 0/0 = 0. Panics if lengths differ. Used for "fraction of burden due to
    /// highly popular files" (Fig 11's lower curve over the upper one).
    pub fn ratio_of(&self, other: &BinnedSeries) -> Vec<f64> {
        assert_eq!(self.bins.len(), other.bins.len(), "series length mismatch");
        self.bins
            .iter()
            .zip(&other.bins)
            .map(|(&a, &b)| if a > 0.0 { b / a } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_bin_interval() {
        let mut s = BinnedSeries::new(100.0, 10.0);
        s.add_rate_interval(10.0, 20.0, 5.0);
        assert_eq!(s.values()[1], 5.0);
        assert_eq!(s.values()[0], 0.0);
        assert_eq!(s.values()[2], 0.0);
    }

    #[test]
    fn partial_overlap_prorated() {
        let mut s = BinnedSeries::new(30.0, 10.0);
        // 5s..25s at rate 2: bin0 gets 2*(5/10)=1, bin1 gets 2, bin2 gets 1.
        s.add_rate_interval(5.0, 25.0, 2.0);
        assert!((s.values()[0] - 1.0).abs() < 1e-12);
        assert!((s.values()[1] - 2.0).abs() < 1e-12);
        assert!((s.values()[2] - 1.0).abs() < 1e-12);
        assert!((s.total_amount() - 40.0).abs() < 1e-9, "2 units/s × 20 s");
    }

    #[test]
    fn clips_to_horizon() {
        let mut s = BinnedSeries::new(20.0, 10.0);
        s.add_rate_interval(-5.0, 100.0, 1.0);
        assert!((s.total_amount() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn peak_and_mean() {
        let mut s = BinnedSeries::new(30.0, 10.0);
        s.add_rate_interval(0.0, 10.0, 1.0);
        s.add_rate_interval(10.0, 20.0, 3.0);
        assert_eq!(s.peak(), 3.0);
        assert_eq!(s.peak_bin(), (1, 3.0));
        assert!((s.mean() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_ignored() {
        let mut s = BinnedSeries::new(10.0, 1.0);
        s.add_rate_interval(5.0, 5.0, 1.0);
        s.add_rate_interval(6.0, 5.0, 1.0);
        s.add_rate_interval(0.0, 1.0, -2.0);
        s.add_rate_interval(0.0, 1.0, f64::NAN);
        assert_eq!(s.total_amount(), 0.0);
    }

    #[test]
    fn ratio() {
        let mut a = BinnedSeries::new(20.0, 10.0);
        let mut b = BinnedSeries::new(20.0, 10.0);
        a.add_rate_interval(0.0, 20.0, 4.0);
        b.add_rate_interval(0.0, 10.0, 1.0);
        assert_eq!(a.ratio_of(&b), vec![0.25, 0.0]);
    }
}
