//! Rank-frequency model fitting (Figures 6 and 7 of the paper).
//!
//! The paper fits two models to the file-popularity rank-frequency data:
//!
//! * **Zipf**: `log(y) = -a₁·log(x) + b₁`   — a straight line in log-log.
//! * **Stretched exponential (SE)**: `yᶜ = -a₂·log(x) + b₂` — a straight
//!   line when the y axis is raised to a small power `c` (the paper uses
//!   `c = 0.01`).
//!
//! Both are fitted by ordinary least squares in the transformed space, and
//! compared with the paper's metric: the *average relative error of fitness*
//! in linear space, `mean(|ŷ − y| / y)`. The paper reports 15.3 % for Zipf
//! and 13.7 % for SE, the gap being attributed to the fetch-at-most-once
//! behaviour of P2P video files flattening the head of the curve.
//!
//! Logarithms are base-10 throughout (matching the figures' axes).

use serde::Serialize;

/// Result of an ordinary-least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in the fitted space.
    pub r2: f64,
}

/// Ordinary least squares over `(x, y)` pairs. Panics on fewer than two
/// points or zero x-variance.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LineFit {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    assert!(sxx > 0.0, "x has no variance");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = xs.iter().zip(ys).map(|(x, y)| (y - (slope * x + intercept)).powi(2)).sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    LineFit { slope, intercept, r2 }
}

/// A fitted rank-frequency model with the paper's goodness metric.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RankFit {
    /// Model coefficient `a` (the paper's a₁ / a₂; slope is `-a`).
    pub a: f64,
    /// Model intercept `b` (the paper's b₁ / b₂).
    pub b: f64,
    /// Stretch exponent `c` (1.0 means plain Zipf; the SE fit reports the
    /// `c` actually used).
    pub c: f64,
    /// Average relative error of fitness in linear space.
    pub avg_rel_error: f64,
    /// R² in the transformed (fitted) space.
    pub r2: f64,
}

impl RankFit {
    /// The model's predicted popularity at rank `x` (1-based).
    pub fn predict(&self, x: f64) -> f64 {
        let lx = x.log10();
        if (self.c - 1.0).abs() < 1e-12 {
            10f64.powf(-self.a * lx + self.b)
        } else {
            let transformed = (-self.a * lx + self.b).max(0.0);
            transformed.powf(1.0 / self.c)
        }
    }
}

/// Sorted-descending rank-frequency counts from raw per-item counts.
/// Zero counts are dropped (rank-frequency plots only contain observed items).
pub fn rank_frequency(counts: &[u64]) -> Vec<f64> {
    let mut ys: Vec<f64> = counts.iter().filter(|&&c| c > 0).map(|&c| c as f64).collect();
    ys.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    ys
}

fn avg_rel_error(ranked: &[f64], fit: &RankFit) -> f64 {
    let total: f64 = ranked
        .iter()
        .enumerate()
        .map(|(i, &y)| ((fit.predict((i + 1) as f64) - y) / y).abs())
        .sum();
    total / ranked.len() as f64
}

/// Fit the Zipf model to descending rank-frequency data
/// (`ranked[i]` is the count of the rank-`i+1` item).
pub fn fit_zipf(ranked: &[f64]) -> RankFit {
    assert!(ranked.len() >= 2, "need at least two ranks");
    let xs: Vec<f64> = (1..=ranked.len()).map(|i| (i as f64).log10()).collect();
    let ys: Vec<f64> = ranked.iter().map(|y| y.log10()).collect();
    let line = linear_fit(&xs, &ys);
    let mut fit =
        RankFit { a: -line.slope, b: line.intercept, c: 1.0, avg_rel_error: 0.0, r2: line.r2 };
    fit.avg_rel_error = avg_rel_error(ranked, &fit);
    fit
}

/// Fit the stretched-exponential model with a fixed stretch exponent `c`.
pub fn fit_se(ranked: &[f64], c: f64) -> RankFit {
    assert!(ranked.len() >= 2, "need at least two ranks");
    assert!(c > 0.0 && c <= 1.0, "stretch exponent must be in (0, 1]");
    let xs: Vec<f64> = (1..=ranked.len()).map(|i| (i as f64).log10()).collect();
    let ys: Vec<f64> = ranked.iter().map(|y| y.powf(c)).collect();
    let line = linear_fit(&xs, &ys);
    let mut fit = RankFit { a: -line.slope, b: line.intercept, c, avg_rel_error: 0.0, r2: line.r2 };
    fit.avg_rel_error = avg_rel_error(ranked, &fit);
    fit
}

/// Fit SE scanning a grid of stretch exponents, keeping the best (smallest
/// average relative error). The paper fixes `c = 0.01`; the grid view shows
/// that choice is near-optimal for this workload shape.
pub fn fit_se_best_c(ranked: &[f64], grid: &[f64]) -> RankFit {
    assert!(!grid.is_empty(), "empty grid");
    grid.iter()
        .map(|&c| fit_se(ranked, c))
        .min_by(|a, b| a.avg_rel_error.partial_cmp(&b.avg_rel_error).expect("finite errors"))
        .expect("non-empty grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Zipf;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_fit_recovers_exponent_on_ideal_data() {
        // Ideal Zipf(s = 1.034) counts — the paper's fitted exponent.
        let z = Zipf::new(10_000, 1.034);
        let ranked = z.expected_counts(4_000_000.0);
        let fit = fit_zipf(&ranked);
        assert!((fit.a - 1.034).abs() < 0.02, "a = {}", fit.a);
        assert!(fit.avg_rel_error < 0.05, "err = {}", fit.avg_rel_error);
        assert!(fit.r2 > 0.999);
    }

    #[test]
    fn predict_inverts_zipf_transform() {
        let fit = RankFit { a: 1.0, b: 3.0, c: 1.0, avg_rel_error: 0.0, r2: 1.0 };
        assert!((fit.predict(1.0) - 1000.0).abs() < 1e-9);
        assert!((fit.predict(10.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn predict_inverts_se_transform() {
        // y^0.01 = -0.01·log10(x) + 1.134  (the paper's fitted SE params)
        let fit = RankFit { a: 0.01, b: 1.134, c: 0.01, avg_rel_error: 0.0, r2: 1.0 };
        let y1 = fit.predict(1.0);
        assert!((y1 - 1.134f64.powf(100.0)).abs() / y1 < 1e-9);
        // Monotone decreasing in rank.
        assert!(fit.predict(10.0) < fit.predict(1.0));
    }

    #[test]
    fn se_fits_flattened_head_better_than_zipf() {
        // Construct a Zipf body with a flattened head — the paper's
        // fetch-at-most-once effect — and check SE wins on relative error.
        let z = Zipf::new(50_000, 1.0);
        let mut ranked = z.expected_counts(4_000_000.0);
        for (i, y) in ranked.iter_mut().take(200).enumerate() {
            // Compress the head towards the rank-200 value.
            let damp = 0.35 + 0.65 * (i as f64 / 200.0);
            *y = y.powf(damp) * ranked_head_anchor(damp);
        }
        ranked.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let zipf = fit_zipf(&ranked);
        let se = fit_se_best_c(&ranked, &[0.005, 0.01, 0.02, 0.05, 0.1]);
        assert!(
            se.avg_rel_error < zipf.avg_rel_error,
            "SE {} should beat Zipf {}",
            se.avg_rel_error,
            zipf.avg_rel_error
        );
    }

    fn ranked_head_anchor(damp: f64) -> f64 {
        // Keep damped head values in a plausible numeric range.
        10f64.powf(2.0 * (1.0 - damp))
    }

    #[test]
    fn rank_frequency_sorts_and_drops_zeros() {
        let rf = rank_frequency(&[3, 0, 7, 1, 0]);
        assert_eq!(rf, vec![7.0, 3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn fit_requires_two_points() {
        fit_zipf(&[5.0]);
    }
}
