//! Fixed-width and logarithmic histograms.

/// A histogram over `[lo, hi)` with equal-width (or log-width) bins, plus
/// underflow/overflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    log: bool,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Equal-width bins over `[lo, hi)`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram bounds");
        Histogram { lo, hi, log: false, counts: vec![0; bins], underflow: 0, overflow: 0, total: 0 }
    }

    /// Log-width bins over `[lo, hi)` (both strictly positive).
    pub fn logarithmic(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && lo > 0.0 && bins > 0, "invalid log histogram bounds");
        Histogram { lo, hi, log: true, counts: vec![0; bins], underflow: 0, overflow: 0, total: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let frac = if self.log {
            (x.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln())
        } else {
            (x - self.lo) / (self.hi - self.lo)
        };
        let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Bin counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let n = self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let frac = (i as f64 + 0.5) / n;
                let center = if self.log {
                    (self.lo.ln() + frac * (self.hi.ln() - self.lo.ln())).exp()
                } else {
                    self.lo + frac * (self.hi - self.lo)
                };
                (center, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn log_binning() {
        let mut h = Histogram::logarithmic(1.0, 1000.0, 3);
        for x in [1.0, 5.0, 50.0, 500.0, 999.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 2]);
    }

    #[test]
    fn centers_are_inside_bins() {
        let h = Histogram::logarithmic(1.0, 100.0, 2);
        let c = h.centers();
        assert!((c[0].0 - 10f64.powf(0.5)).abs() < 1e-9);
        assert!((c[1].0 - 10f64.powf(1.5)).abs() < 1e-9);
    }

    #[test]
    fn ignores_nan() {
        let mut h = Histogram::linear(0.0, 1.0, 1);
        h.record(f64::NAN);
        assert_eq!(h.total(), 0);
    }
}
