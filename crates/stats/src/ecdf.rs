//! Empirical cumulative distribution functions.

use serde::Serialize;
use std::fmt;

/// An empirical CDF over a finite sample. Construction sorts once; queries
/// are O(log n).
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

/// Compact distribution summary, mirroring the statistics the paper quotes
/// under each CDF figure (min / median / average / max, plus quartiles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// First quartile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Third quartile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Largest sample.
    pub max: f64,
}

impl Ecdf {
    /// Build from samples. Non-finite values are dropped.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ecdf { sorted: samples }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// F(x): fraction of samples ≤ `x`. Zero for an empty sample.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly below `x` (used for "below the 125 KBps
    /// HD threshold" style statistics).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) with linear interpolation between order
    /// statistics. `None` on an empty sample.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// The median (`None` on empty samples).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean (`None` on empty samples).
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Full summary; `None` on an empty sample.
    pub fn summary(&self) -> Option<Summary> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(Summary {
            count: self.len(),
            min: self.min().unwrap(),
            p25: self.quantile(0.25).unwrap(),
            median: self.median().unwrap(),
            mean: self.mean().unwrap(),
            p75: self.quantile(0.75).unwrap(),
            p90: self.quantile(0.9).unwrap(),
            max: self.max().unwrap(),
        })
    }

    /// `n` evenly spaced `(x, F(x))` points for plotting/export.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1).max(1) as f64;
                (self.quantile(q).unwrap(), q)
            })
            .collect()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.3} p25={:.3} median={:.3} mean={:.3} p75={:.3} p90={:.3} max={:.3}",
            self.count, self.min, self.p25, self.median, self.mean, self.p75, self.p90, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(4.0));
        assert_eq!(e.median(), Some(2.5));
        assert_eq!(e.quantile(1.0 / 3.0), Some(2.0));
    }

    #[test]
    fn fractions() {
        let e = Ecdf::new(vec![10.0, 20.0, 20.0, 30.0]);
        assert_eq!(e.fraction_at_most(20.0), 0.75);
        assert_eq!(e.fraction_below(20.0), 0.25);
        assert_eq!(e.fraction_at_most(5.0), 0.0);
        assert_eq!(e.fraction_at_most(100.0), 1.0);
    }

    #[test]
    fn drops_non_finite() {
        let e = Ecdf::new(vec![1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.max(), Some(2.0));
    }

    #[test]
    fn empty_sample() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.median(), None);
        assert_eq!(e.summary(), None);
        assert_eq!(e.fraction_at_most(1.0), 0.0);
        assert!(e.curve(5).is_empty());
    }

    #[test]
    fn summary_fields() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        let s = e.summary().unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p90 - 90.1).abs() < 1e-9);
    }

    #[test]
    fn curve_is_monotone() {
        let e = Ecdf::new(vec![5.0, 1.0, 9.0, 3.0, 3.0]);
        let pts = e.curve(20);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }
}
