//! Zipf distribution over ranks `1..=n`.

use super::{u01, Dist};
use rand::Rng;

/// Zipf over `{1, …, n}` with exponent `s`: P(rank = k) ∝ k^-s.
///
/// Sampling precomputes the normalized cumulative mass (O(n) memory, O(log n)
/// per draw) — acceptable for the catalog sizes in this study (≤ 10⁶ files)
/// and exact, unlike rejection methods.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Zipf(n, s); requires `n >= 1`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "support must be non-empty");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative, s }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// The exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cumulative.len(), "rank out of support");
        let prev = if k == 1 { 0.0 } else { self.cumulative[k - 2] };
        self.cumulative[k - 1] - prev
    }

    /// Draw a rank in `1..=n`.
    pub fn sample_rank(&self, rng: &mut dyn Rng) -> usize {
        let u = u01(rng);
        let idx = self.cumulative.partition_point(|&c| c < u);
        idx.min(self.cumulative.len() - 1) + 1
    }

    /// The ideal (noise-free) rank-frequency counts for `total` draws:
    /// `count(k) = total × pmf(k)`. Useful as ground truth in fitting tests.
    pub fn expected_counts(&self, total: f64) -> Vec<f64> {
        (1..=self.n()).map(|k| total * self.pmf(k)).collect()
    }
}

impl Dist for Zipf {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 1.034);
        let sum: f64 = (1..=1000).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_power_law() {
        let z = Zipf::new(100, 2.0);
        assert!((z.pmf(1) / z.pmf(2) - 4.0).abs() < 1e-9);
        assert!((z.pmf(1) / z.pmf(10) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_tracks_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(10);
        let mut counts = vec![0u64; 51];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        for k in [1usize, 2, 5, 10, 50] {
            let emp = counts[k] as f64 / n as f64;
            assert!((emp - z.pmf(k)).abs() < 0.01, "rank {k}: emp {emp} vs pmf {}", z.pmf(k));
        }
    }

    #[test]
    fn singleton_support() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(z.sample_rank(&mut rng), 1);
        assert!((z.pmf(1) - 1.0).abs() < 1e-12);
    }
}
