//! Bounded (truncated) Pareto distribution.

use super::{u01, Dist};
use rand::Rng;

/// Pareto truncated to `[lo, hi]`, sampled by inverse CDF.
///
/// Used for the weekly request counts of highly popular files: a heavy tail
/// over `[84, max]` whose exponent sets the class mean.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Bounded Pareto with shape `alpha > 0` on `[lo, hi]`, `0 < lo < hi`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(lo > 0.0 && lo < hi, "requires 0 < lo < hi");
        BoundedPareto { alpha, lo, hi }
    }

    /// Analytic mean (for `alpha != 1`; the `alpha == 1` case uses the
    /// logarithmic form).
    pub fn mean(&self) -> f64 {
        let (a, l, h) = (self.alpha, self.lo, self.hi);
        let ratio = l / h;
        if (a - 1.0).abs() < 1e-12 {
            l * (h / l).ln() / (1.0 - ratio)
        } else {
            (a * l / (a - 1.0)) * (1.0 - ratio.powf(a - 1.0)) / (1.0 - ratio.powf(a))
        }
    }
}

impl BoundedPareto {
    /// Solve for the shape `alpha` giving a target mean on `[lo, hi]` by
    /// bisection (the truncated mean is strictly decreasing in `alpha`).
    /// Returns the achievable-range-clamped shape.
    pub fn solve_alpha(lo: f64, hi: f64, target_mean: f64) -> f64 {
        let (mut a_lo, mut a_hi) = (0.05_f64, 6.0_f64);
        let mean_at = |a: f64| BoundedPareto::new(a, lo, hi).mean();
        if target_mean >= mean_at(a_lo) {
            return a_lo;
        }
        if target_mean <= mean_at(a_hi) {
            return a_hi;
        }
        for _ in 0..80 {
            let mid = 0.5 * (a_lo + a_hi);
            if mean_at(mid) > target_mean {
                a_lo = mid;
            } else {
                a_hi = mid;
            }
        }
        0.5 * (a_lo + a_hi)
    }
}

impl Dist for BoundedPareto {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let u = u01(rng);
        let (a, l, h) = (self.alpha, self.lo, self.hi);
        let la = l.powf(-a);
        let ha = h.powf(-a);
        (la - u * (la - ha)).powf(-1.0 / a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_bounds() {
        let d = BoundedPareto::new(1.3, 84.0, 300_000.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((84.0..=300_000.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn empirical_mean_matches_analytic() {
        let d = BoundedPareto::new(1.3, 84.0, 300_000.0);
        let mut rng = StdRng::seed_from_u64(7);
        let xs = d.sample_n(&mut rng, 400_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            (mean - d.mean()).abs() / d.mean() < 0.05,
            "empirical {mean} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn heavy_tail_exists() {
        let d = BoundedPareto::new(1.3, 84.0, 300_000.0);
        let mut rng = StdRng::seed_from_u64(8);
        let xs = d.sample_n(&mut rng, 100_000);
        let big = xs.iter().filter(|&&x| x > 10_000.0).count();
        assert!(big > 10, "tail should produce some very popular files: {big}");
        // ... but most mass is near the lower bound.
        let small = xs.iter().filter(|&&x| x < 300.0).count();
        assert!(small > 60_000, "{small}");
    }

    #[test]
    fn solve_alpha_recovers_shape() {
        // Round-trip: the solved alpha reproduces the requested mean.
        for (lo, hi, target) in [(85.0, 60_000.0, 336.0), (85.0, 3_000.0, 336.0), (7.0, 84.0, 30.0)]
        {
            let alpha = BoundedPareto::solve_alpha(lo, hi, target);
            let mean = BoundedPareto::new(alpha, lo, hi).mean();
            assert!(
                (mean - target).abs() / target < 0.01 || alpha <= 0.051 || alpha >= 5.99,
                "lo {lo} hi {hi} target {target}: alpha {alpha} mean {mean}"
            );
        }
        // The paper-scale case is solvable and lands near 1.3.
        let a = BoundedPareto::solve_alpha(85.0, 60_000.0, 336.0);
        assert!((1.1..1.5).contains(&a), "{a}");
    }

    #[test]
    fn alpha_one_mean() {
        let d = BoundedPareto::new(1.0, 10.0, 1000.0);
        let mut rng = StdRng::seed_from_u64(9);
        let xs = d.sample_n(&mut rng, 400_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.05);
    }
}
