//! Normal and log-normal distributions via the Marsaglia polar method.

use super::{u01, Dist};
use rand::Rng;

/// Gaussian with mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Normal(mu, sigma); `sigma` must be non-negative.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be finite and >= 0");
        Normal { mu, sigma }
    }

    /// One standard-normal draw (Marsaglia polar, single value per call; the
    /// spare is discarded to keep the sampler stateless and `Copy`).
    pub fn standard_draw(rng: &mut dyn Rng) -> f64 {
        loop {
            let u = 2.0 * u01(rng) - 1.0;
            let v = 2.0 * u01(rng) - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Dist for Normal {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.mu + self.sigma * Normal::standard_draw(rng)
    }
}

/// Log-normal: `exp(Normal(mu, sigma))`.
///
/// Parameterized by its *median* (`exp(mu)`) because the paper reports
/// medians; `mean = median × exp(sigma²/2)`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From the underlying normal parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be finite and >= 0");
        LogNormal { mu, sigma }
    }

    /// From the distribution's median and log-space sigma.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// The median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The mean, `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// P(X < x) via the error-function approximation below.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma.max(1e-300);
        standard_normal_cdf(z)
    }
}

impl Dist for LogNormal {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        (self.mu + self.sigma * Normal::standard_draw(rng)).exp()
    }
}

/// Φ(z) via Abramowitz–Stegun 7.1.26 (|error| < 1.5e-7), enough for the
/// calibration assertions in this workspace.
pub fn standard_normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let erf = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    let erf = if x < 0.0 { -erf } else { erf };
    0.5 * (1.0 + erf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 3.0);
        let mut rng = StdRng::seed_from_u64(2);
        let xs = d.sample_n(&mut rng, 100_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::from_median(115.0, 1.35);
        assert!((d.median() - 115.0).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs = d.sample_n(&mut rng, 200_000);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 115.0).abs() / 115.0 < 0.03, "median {med}");
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.05, "mean {mean} vs {}", d.mean());
    }

    #[test]
    fn cdf_matches_samples() {
        let d = LogNormal::from_median(100.0, 0.9);
        let mut rng = StdRng::seed_from_u64(4);
        let xs = d.sample_n(&mut rng, 100_000);
        for threshold in [30.0, 100.0, 300.0] {
            let emp = xs.iter().filter(|&&x| x < threshold).count() as f64 / xs.len() as f64;
            assert!((emp - d.cdf(threshold)).abs() < 0.01, "at {threshold}: {emp}");
        }
    }

    #[test]
    fn phi_reference_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.0) - 0.8413447).abs() < 1e-5);
        assert!((standard_normal_cdf(-1.96) - 0.0249979).abs() < 1e-5);
    }

    #[test]
    fn zero_sigma_is_constant() {
        let d = LogNormal::from_median(42.0, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert!((d.sample(&mut rng) - 42.0).abs() < 1e-12);
    }
}
