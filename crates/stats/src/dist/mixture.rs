//! Mixture and empirical distributions.

use super::{u01, Dist};
use rand::Rng;

/// A finite mixture of boxed component distributions with arbitrary weights.
///
/// The workload's file-size model is a mixture: a small-file component
/// (demo videos, pictures, documents) and a large-video body (§3 / Fig 5).
pub struct Mixture {
    components: Vec<(f64, Box<dyn Dist + Send + Sync>)>,
}

impl Mixture {
    /// Build from `(weight, component)` pairs; weights are normalized and
    /// must be non-negative with a positive sum.
    pub fn new(components: Vec<(f64, Box<dyn Dist + Send + Sync>)>) -> Self {
        assert!(!components.is_empty(), "mixture needs at least one component");
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0 && components.iter().all(|(w, _)| *w >= 0.0), "bad weights");
        let components = components.into_iter().map(|(w, d)| (w / total, d)).collect();
        Mixture { components }
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.components.len()
    }
}

impl Dist for Mixture {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let mut u = u01(rng);
        for (w, d) in &self.components {
            if u < *w {
                return d.sample(rng);
            }
            u -= w;
        }
        // Floating point slop: fall through to the last component.
        self.components.last().expect("non-empty").1.sample(rng)
    }
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mixture({} components)", self.components.len())
    }
}

/// Resample-with-interpolation from an observed sample (smoothed bootstrap
/// without noise): draw a uniform quantile and linearly interpolate between
/// order statistics.
#[derive(Debug, Clone)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Build from raw observations (non-finite values dropped; must leave at
    /// least one).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Empirical { sorted: samples }
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }
}

impl Dist for Empirical {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = u01(rng) * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[lo + 1] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::super::Uniform;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mixture_weights_respected() {
        let m = Mixture::new(vec![
            (0.25, Box::new(Uniform::new(0.0, 1.0))),
            (0.75, Box::new(Uniform::new(10.0, 11.0))),
        ]);
        let mut rng = StdRng::seed_from_u64(12);
        let xs = m.sample_n(&mut rng, 40_000);
        let small = xs.iter().filter(|&&x| x < 5.0).count() as f64 / xs.len() as f64;
        assert!((small - 0.25).abs() < 0.01, "small fraction {small}");
    }

    #[test]
    fn mixture_normalizes_weights() {
        let m = Mixture::new(vec![
            (2.0, Box::new(Uniform::new(0.0, 1.0))),
            (6.0, Box::new(Uniform::new(10.0, 11.0))),
        ]);
        let mut rng = StdRng::seed_from_u64(13);
        let xs = m.sample_n(&mut rng, 40_000);
        let small = xs.iter().filter(|&&x| x < 5.0).count() as f64 / xs.len() as f64;
        assert!((small - 0.25).abs() < 0.01);
    }

    #[test]
    fn empirical_stays_in_range() {
        let e = Empirical::new(vec![3.0, 1.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..1000 {
            let x = e.sample(&mut rng);
            assert!((1.0..=3.0).contains(&x));
        }
    }

    #[test]
    fn empirical_single_point() {
        let e = Empirical::new(vec![7.0]);
        let mut rng = StdRng::seed_from_u64(15);
        assert_eq!(e.sample(&mut rng), 7.0);
    }

    #[test]
    fn empirical_reproduces_quantiles() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).powf(1.3)).collect();
        let e = Empirical::new(data.clone());
        let mut rng = StdRng::seed_from_u64(16);
        let mut xs = e.sample_n(&mut rng, 100_000);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        let data_med = data[500];
        assert!((med - data_med).abs() / data_med < 0.05, "{med} vs {data_med}");
    }
}
