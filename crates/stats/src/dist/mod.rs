//! Probability distributions, implemented from scratch.
//!
//! Only `rand`'s uniform primitives are consumed; every shaped distribution
//! (normal, log-normal, Pareto, Zipf, …) is derived here via standard
//! transforms so the workload models have no opaque dependencies.

mod mixture;
mod normal;
mod pareto;
mod zipf;

pub use mixture::{Empirical, Mixture};
pub use normal::{LogNormal, Normal};
pub use pareto::BoundedPareto;
pub use zipf::Zipf;

use rand::Rng;

/// Uniform draw in `[0, 1)` built from 53 random bits — the single primitive
/// every shaped distribution in this module is derived from.
#[inline]
pub fn u01(rng: &mut dyn Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A real-valued distribution that can be sampled.
pub trait Dist {
    /// Draw one sample.
    fn sample(&self, rng: &mut dyn Rng) -> f64;

    /// Draw `n` samples into a vector.
    fn sample_n(&self, rng: &mut dyn Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform over `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Uniform over `[lo, hi)`; requires `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "uniform requires lo < hi");
        Uniform { lo, hi }
    }
}

impl Dist for Uniform {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.lo + (self.hi - self.lo) * u01(rng)
    }
}

/// Log-uniform over `[lo, hi)` (both positive): the logarithm is uniform.
/// Its mean is `(hi - lo) / ln(hi / lo)`.
#[derive(Debug, Clone, Copy)]
pub struct LogUniform {
    ln_lo: f64,
    ln_hi: f64,
}

impl LogUniform {
    /// Log-uniform over `[lo, hi)`; requires `0 < lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && lo < hi, "log-uniform requires 0 < lo < hi");
        LogUniform { ln_lo: lo.ln(), ln_hi: hi.ln() }
    }

    /// Analytic mean.
    pub fn mean(&self) -> f64 {
        (self.ln_hi.exp() - self.ln_lo.exp()) / (self.ln_hi - self.ln_lo)
    }
}

impl Dist for LogUniform {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        (self.ln_lo + (self.ln_hi - self.ln_lo) * u01(rng)).exp()
    }
}

/// Exponential with the given rate (mean `1/rate`), via inverse CDF.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Exponential with rate `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Exponential { rate }
    }

    /// Exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Exponential::new(1.0 / mean)
    }
}

impl Dist for Exponential {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // 1 - U avoids ln(0).
        -(1.0 - u01(rng)).ln() / self.rate
    }
}

/// Discrete power law on integers `{lo, …, hi}` with weight `k^-exponent`.
/// Used for per-file weekly request counts of unpopular files.
#[derive(Debug, Clone)]
pub struct DiscretePowerLaw {
    lo: u64,
    cumulative: Vec<f64>,
}

impl DiscretePowerLaw {
    /// Support `{lo, …, hi}` inclusive with P(k) ∝ k^-exponent.
    pub fn new(lo: u64, hi: u64, exponent: f64) -> Self {
        assert!(lo >= 1 && hi >= lo, "support must be 1 <= lo <= hi");
        let mut cumulative = Vec::with_capacity((hi - lo + 1) as usize);
        let mut acc = 0.0;
        for k in lo..=hi {
            acc += (k as f64).powf(-exponent);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        DiscretePowerLaw { lo, cumulative }
    }

    /// Draw an integer from the support.
    pub fn sample_int(&self, rng: &mut dyn Rng) -> u64 {
        let u = u01(rng);
        let idx = self.cumulative.partition_point(|&c| c < u);
        self.lo + idx.min(self.cumulative.len() - 1) as u64
    }

    /// Analytic mean of the distribution.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (i, &c) in self.cumulative.iter().enumerate() {
            mean += (self.lo + i as u64) as f64 * (c - prev);
            prev = c;
        }
        mean
    }
}

impl Dist for DiscretePowerLaw {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.sample_int(rng) as f64
    }
}

/// A distribution clamped to `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct Clamped<D> {
    inner: D,
    lo: f64,
    hi: f64,
}

impl<D: Dist> Clamped<D> {
    /// Clamp `inner`'s samples into `[lo, hi]`.
    pub fn new(inner: D, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "clamp bounds inverted");
        Clamped { inner, lo, hi }
    }
}

impl<D: Dist> Dist for Clamped<D> {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 4.0);
        let xs = d.sample_n(&mut rng(), 20_000);
        assert!(xs.iter().all(|&x| (2.0..4.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.02);
    }

    #[test]
    fn log_uniform_mean_matches_analytic() {
        let d = LogUniform::new(7.0, 84.0);
        let xs = d.sample_n(&mut rng(), 100_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.02, "{mean} vs {}", d.mean());
        // The paper's "popular" class: counts in [7, 84), mean ≈ 31.
        assert!((d.mean() - 31.0).abs() < 1.0);
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::with_mean(5.0);
        let xs = d.sample_n(&mut rng(), 50_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.15);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn discrete_power_law_support_and_mean() {
        let d = DiscretePowerLaw::new(1, 6, 0.8);
        let mut rng = rng();
        let mut counts = [0u64; 7];
        for _ in 0..50_000 {
            let k = d.sample_int(&mut rng);
            assert!((1..=6).contains(&k));
            counts[k as usize] += 1;
        }
        // Monotone decreasing frequency.
        for k in 1..6 {
            assert!(counts[k] > counts[k + 1], "{counts:?}");
        }
        let emp_mean =
            counts.iter().enumerate().map(|(k, &c)| k as f64 * c as f64).sum::<f64>() / 50_000.0;
        assert!((emp_mean - d.mean()).abs() < 0.05);
    }

    #[test]
    fn clamped_respects_bounds() {
        let d = Clamped::new(Exponential::with_mean(100.0), 1.0, 10.0);
        let xs = d.sample_n(&mut rng(), 1000);
        assert!(xs.iter().all(|&x| (1.0..=10.0).contains(&x)));
        assert!(xs.contains(&10.0), "mass should pile at the clamp");
    }
}
