//! Property-based tests for the statistics toolkit.

use odx_stats::dist::{BoundedPareto, Dist, LogNormal, LogUniform, Zipf};
use odx_stats::fit::{fit_se, fit_zipf, linear_fit, rank_frequency};
use odx_stats::ks::{ks_critical, ks_distance};
use odx_stats::{BinnedSeries, Ecdf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// ECDF invariants: F is monotone, F(min)=1/n at the smallest sample,
    /// F(max)=1, quantiles invert fractions.
    #[test]
    fn ecdf_invariants(xs in prop::collection::vec(-1e9f64..1e9, 1..300)) {
        let ecdf = Ecdf::new(xs.clone());
        let min = ecdf.min().unwrap();
        let max = ecdf.max().unwrap();
        prop_assert!(ecdf.fraction_at_most(max) == 1.0);
        prop_assert!(ecdf.fraction_below(min) == 0.0);
        // Monotonicity over a probe grid.
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = min + (max - min) * i as f64 / 20.0;
            let f = ecdf.fraction_at_most(x);
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
        // Quantiles stay inside the sample range and are monotone in q.
        let mut prev_q = min;
        for i in 0..=10 {
            let q = ecdf.quantile(i as f64 / 10.0).unwrap();
            prop_assert!(q >= prev_q - 1e-9);
            prop_assert!((min..=max).contains(&q));
            prev_q = q;
        }
    }

    /// Summary statistics are internally consistent.
    #[test]
    fn summary_consistency(xs in prop::collection::vec(0.0f64..1e6, 2..200)) {
        let s = Ecdf::new(xs).summary().unwrap();
        prop_assert!(s.min <= s.p25 && s.p25 <= s.median);
        prop_assert!(s.median <= s.p75 && s.p75 <= s.p90 && s.p90 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    /// Linear fit residual orthogonality: slope of residuals is ~0.
    #[test]
    fn linear_fit_is_least_squares(
        slope in -100.0f64..100.0,
        intercept in -1e4f64..1e4,
        noise in prop::collection::vec(-1.0f64..1.0, 10..60),
    ) {
        let xs: Vec<f64> = (0..noise.len()).map(|i| i as f64).collect();
        let ys: Vec<f64> =
            xs.iter().zip(&noise).map(|(x, n)| slope * x + intercept + n).collect();
        let fit = linear_fit(&xs, &ys);
        prop_assert!((fit.slope - slope).abs() < 1.0, "slope {} vs {}", fit.slope, slope);
        // Residuals vs x have ~zero slope (normal equations).
        let res: Vec<f64> =
            xs.iter().zip(&ys).map(|(x, y)| y - (fit.slope * x + fit.intercept)).collect();
        let res_fit = linear_fit(&xs, &res);
        prop_assert!(res_fit.slope.abs() < 1e-6, "{}", res_fit.slope);
    }

    /// Fitting recovers a pure Zipf exponent from ideal counts.
    #[test]
    fn zipf_fit_recovers_exponent(s in 0.5f64..1.6, n in 200usize..2000) {
        let z = Zipf::new(n, s);
        let ranked = z.expected_counts(1e7);
        let fit = fit_zipf(&ranked);
        prop_assert!((fit.a - s).abs() < 0.05, "fit {} vs true {}", fit.a, s);
        prop_assert!(fit.avg_rel_error < 0.10, "{}", fit.avg_rel_error);
    }

    /// SE fit never blows up, and predictions are positive and finite.
    #[test]
    fn se_fit_is_stable(counts in prop::collection::vec(1u64..100_000, 10..500)) {
        let ranked = rank_frequency(&counts);
        prop_assume!(ranked.len() >= 2);
        let fit = fit_se(&ranked, 0.01);
        prop_assert!(fit.avg_rel_error.is_finite());
        for x in [1.0, 2.0, ranked.len() as f64] {
            let y = fit.predict(x);
            prop_assert!(y.is_finite() && y >= 0.0, "predict({x}) = {y}");
        }
    }

    /// Bounded distributions stay in bounds for arbitrary parameters.
    #[test]
    fn bounded_samplers_respect_support(
        seed in any::<u64>(),
        lo in 1.0f64..100.0,
        span in 1.0f64..10_000.0,
        alpha in 0.1f64..4.0,
    ) {
        let hi = lo + span;
        let mut rng = StdRng::seed_from_u64(seed);
        let pareto = BoundedPareto::new(alpha, lo, hi);
        let loguni = LogUniform::new(lo, hi);
        for _ in 0..200 {
            let p = pareto.sample(&mut rng);
            prop_assert!((lo..=hi * (1.0 + 1e-12)).contains(&p), "{p}");
            let l = loguni.sample(&mut rng);
            prop_assert!((lo..hi * (1.0 + 1e-12)).contains(&l), "{l}");
        }
    }

    /// KS distance is a pseudometric: symmetric, zero on identity, ≤ 1.
    #[test]
    fn ks_pseudmetric(
        xs in prop::collection::vec(0.0f64..1e3, 1..100),
        ys in prop::collection::vec(0.0f64..1e3, 1..100),
    ) {
        let a = Ecdf::new(xs);
        let b = Ecdf::new(ys);
        let d_ab = ks_distance(&a, &b);
        let d_ba = ks_distance(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert_eq!(ks_distance(&a, &a), 0.0);
    }

    /// Binned series conserve mass: total amount in = total amount stored
    /// (for intervals inside the horizon).
    #[test]
    fn binned_series_conserves_mass(
        intervals in prop::collection::vec((0.0f64..900.0, 0.1f64..100.0, 0.1f64..50.0), 1..50),
    ) {
        let mut series = BinnedSeries::new(1000.0, 10.0);
        let mut expected = 0.0;
        for (start, len, rate) in intervals {
            let end = (start + len).min(1000.0);
            series.add_rate_interval(start, end, rate);
            expected += rate * (end - start);
        }
        prop_assert!((series.total_amount() - expected).abs() < 1e-6 * expected.max(1.0));
    }
}

#[test]
fn lognormal_ks_against_itself_is_small() {
    // Sanity anchor for the KS helper at a known scale.
    let d = LogNormal::from_median(287.0, 0.9);
    let mut rng = StdRng::seed_from_u64(42);
    let a = Ecdf::new(d.sample_n(&mut rng, 3000));
    let b = Ecdf::new(d.sample_n(&mut rng, 3000));
    assert!(ks_distance(&a, &b) < ks_critical(3000, 3000, 0.01));
}
