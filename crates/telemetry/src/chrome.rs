//! Chrome trace-event JSON export and validation.
//!
//! [`TaskTraceSet::to_chrome_json`] renders recorded task lifecycles in
//! the Chrome trace-event format (the JSON Array Format wrapped in a
//! `traceEvents` object), loadable in `chrome://tracing` and Perfetto.
//! Timed stages become complete events (`"ph":"X"`) and instant stages
//! become thread-scoped instants (`"ph":"i"`); each task maps to one
//! `tid`, so the viewer shows one lane per task with its pipeline stages
//! laid end to end. Timestamps are virtual microseconds, so same-seed
//! runs export byte-identical documents.
//!
//! [`validate_chrome_trace`] is the matching in-tree checker used by CI's
//! trace smoke: a minimal recursive-descent JSON parser (no external
//! crates, mirroring the workspace's zero-dependency telemetry rule) that
//! verifies the schema rather than trusting the exporter.

use std::fmt::Write as _;

use crate::task::TaskTraceSet;

impl TaskTraceSet {
    /// Render the trace set as deterministic Chrome trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + 128 * self.traces.len());
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for trace in &self.traces {
            for span in &trace.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                let detail = span.detail.unwrap_or("");
                if span.start_ms == span.end_ms {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\
                         \"tid\":{},\"args\":{{\"detail\":\"{}\"}}}}",
                        span.stage.label(),
                        span.start_ms * 1000,
                        trace.task,
                        detail
                    );
                } else {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\
                         \"tid\":{},\"args\":{{\"detail\":\"{}\"}}}}",
                        span.stage.label(),
                        span.start_ms * 1000,
                        (span.end_ms - span.start_ms) * 1000,
                        trace.task,
                        detail
                    );
                }
            }
            if let Some((end, at_ms)) = trace.end {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"name\":\"end:{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\
                     \"tid\":{},\"args\":{{\"detail\":\"\"}}}}",
                    end.label(),
                    at_ms * 1000,
                    trace.task
                );
            }
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"sample_every\":\"{}\",\
             \"scheduler\":\"{}\",\"scenario\":\"{}\"}}}}",
            self.sample_every, self.scheduler, self.scenario
        );
        out
    }
}

/// Summary statistics [`validate_chrome_trace`] returns on success.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Complete (`"ph":"X"`) events.
    pub complete: usize,
    /// Instant (`"ph":"i"`) events.
    pub instants: usize,
    /// Distinct `tid` lanes (tasks).
    pub lanes: usize,
}

/// Validate that `text` is a well-formed Chrome trace-event document:
/// a JSON object with a `traceEvents` array whose entries carry `name`,
/// `ph`, `ts`, `pid`, and `tid`, where `"X"` events also carry `dur`.
/// Returns summary stats or a description of the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let value = JsonParser::parse(text)?;
    let Json::Object(top) = &value else {
        return Err("top level is not a JSON object".to_owned());
    };
    let Some(Json::Array(events)) = lookup(top, "traceEvents") else {
        return Err("missing traceEvents array".to_owned());
    };
    let mut stats = ChromeTraceStats { events: events.len(), ..Default::default() };
    let mut lanes: Vec<i64> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let Json::Object(fields) = event else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        let ph = match lookup(fields, "ph") {
            Some(Json::String(ph)) => ph.as_str(),
            _ => return Err(format!("traceEvents[{i}] missing string ph")),
        };
        if !matches!(lookup(fields, "name"), Some(Json::String(_))) {
            return Err(format!("traceEvents[{i}] missing string name"));
        }
        for key in ["ts", "pid", "tid"] {
            if !matches!(lookup(fields, key), Some(Json::Number(_))) {
                return Err(format!("traceEvents[{i}] missing numeric {key}"));
            }
        }
        match ph {
            "X" => {
                if !matches!(lookup(fields, "dur"), Some(Json::Number(_))) {
                    return Err(format!("traceEvents[{i}] is ph=X without numeric dur"));
                }
                stats.complete += 1;
            }
            "i" => stats.instants += 1,
            other => return Err(format!("traceEvents[{i}] has unsupported ph {other:?}")),
        }
        if let Some(Json::Number(tid)) = lookup(fields, "tid") {
            let tid = *tid as i64;
            if !lanes.contains(&tid) {
                lanes.push(tid);
            }
        }
    }
    stats.lanes = lanes.len();
    Ok(stats)
}

fn lookup<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Minimal JSON value for the validator.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut parser = JsonParser { bytes: text.as_bytes(), pos: 0 };
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_owned())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? != byte {
            return Err(format!("expected {:?} at byte {}", byte as char, self.pos));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected byte {:?} at {}", other as char, self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(byte) => {
                    // Multi-byte UTF-8 passes through unmodified.
                    let len = match byte {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("invalid utf-8 at byte {}", self.pos))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected , or ] got {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                other => return Err(format!("expected , or }} got {:?}", other as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Stage, TaskEnd, TaskTracer};

    fn demo_set() -> TaskTraceSet {
        let tracer = TaskTracer::new(1);
        tracer.instant(0, Stage::Arrival, 100, None);
        tracer.instant(0, Stage::CacheLookup, 100, Some("hit"));
        tracer.span(0, Stage::Queue, 100, 400, None);
        tracer.instant(0, Stage::Admission, 400, Some("telecom"));
        tracer.span(0, Stage::Fetch, 400, 1300, None);
        tracer.finish(0, TaskEnd::Completed, 1300);
        tracer.snapshot()
    }

    #[test]
    fn exported_trace_validates() {
        let json = demo_set().to_chrome_json();
        let stats = validate_chrome_trace(&json).expect("valid chrome trace");
        assert_eq!(stats.complete, 2);
        assert_eq!(stats.instants, 4);
        assert_eq!(stats.events, 6);
        assert_eq!(stats.lanes, 1);
    }

    #[test]
    fn export_is_byte_identical_across_snapshots() {
        assert_eq!(demo_set().to_chrome_json(), demo_set().to_chrome_json());
    }

    #[test]
    fn context_is_stamped_in_other_data() {
        let mut set = demo_set();
        assert!(set.to_chrome_json().contains("\"scheduler\":\"\",\"scenario\":\"\""));
        set.set_context("heap", "cernet-heavy");
        let json = set.to_chrome_json();
        assert!(json.contains("\"scheduler\":\"heap\",\"scenario\":\"cernet-heavy\""));
        validate_chrome_trace(&json).expect("stamped trace still validates");
    }

    #[test]
    fn timestamps_are_microseconds() {
        let json = demo_set().to_chrome_json();
        // 400 ms fetch start → 400000 µs; 900 ms duration → 900000 µs.
        assert!(json.contains("\"ts\":400000,\"dur\":900000"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").unwrap_err().contains("traceEvents"));
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,\"pid\":1,\"tid\":1}]}"
        )
        .unwrap_err()
        .contains("dur"));
        assert!(validate_chrome_trace("{\"traceEvents\":[1]}").is_err());
    }

    #[test]
    fn validator_accepts_hand_written_documents() {
        let stats = validate_chrome_trace(
            "{\"traceEvents\":[\n  {\"name\":\"fetch\",\"ph\":\"X\",\"ts\":0,\"dur\":5,\
             \"pid\":1,\"tid\":2},\n  {\"name\":\"mark\",\"ph\":\"i\",\"s\":\"t\",\"ts\":3,\
             \"pid\":1,\"tid\":3}\n]}",
        )
        .expect("valid");
        assert_eq!(stats.events, 2);
        assert_eq!(stats.lanes, 2);
    }
}
