//! Deterministic JSON and CSV exporters.
//!
//! Hand-rolled so the byte stream depends only on recorded data:
//! metric maps serialize in name order, floats through Rust's
//! shortest-round-trip formatter, strings with minimal escaping.
//! Same-seed runs therefore export byte-identical documents.

use std::fmt::Write as _;

use crate::registry::Snapshot;

/// Minimal JSON string escaping.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deterministic float formatting; non-finite values become `null`.
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // `{}` omits a decimal point for integral floats; that is still
        // valid JSON, so leave it.
    } else {
        out.push_str("null");
    }
}

impl Snapshot {
    /// The deterministic sections of the snapshot as a compact JSON
    /// document. Wall-clock measurements ([`Snapshot::wall`]) are omitted
    /// so same-seed runs export byte-identical documents; use
    /// [`Snapshot::to_json_full`] when perf numbers should ride along.
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// The whole snapshot — including the nondeterministic `wall` section —
    /// as a compact JSON document. Not byte-stable across runs; meant for
    /// perf reports (`repro bench`), not for snapshot diffing.
    pub fn to_json_full(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, include_wall: bool) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            push_json_f64(&mut out, *value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
            );
            for (j, (lower, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lower},{count}]");
            }
            out.push_str("]}");
        }
        out.push('}');
        if include_wall {
            out.push_str(",\"wall\":{");
            for (i, (name, value)) in self.wall.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, name);
                out.push(':');
                push_json_f64(&mut out, *value);
            }
            out.push('}');
        }
        let _ = write!(out, ",\"trace\":{{\"dropped\":{},\"events\":[", self.trace.dropped);
        for (i, event) in self.trace.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"name\":", event.id);
            push_json_str(&mut out, &event.name);
            let _ = write!(out, ",\"kind\":\"{}\",\"at_ms\":{}}}", event.kind.label(), event.at_ms);
        }
        out.push_str("]}}");
        out
    }

    /// Counters, gauges, and histogram summaries as
    /// `kind,name,field,value` CSV rows (name-ordered).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter,{name},value,{value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},value,{value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "histogram,{name},count,{}", h.count);
            let _ = writeln!(out, "histogram,{name},sum,{}", h.sum);
            let _ = writeln!(out, "histogram,{name},min,{}", h.min);
            let _ = writeln!(out, "histogram,{name},max,{}", h.max);
            let _ = writeln!(out, "histogram,{name},p50,{}", h.p50);
            let _ = writeln!(out, "histogram,{name},p90,{}", h.p90);
            let _ = writeln!(out, "histogram,{name},p99,{}", h.p99);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn json_shape_and_determinism() {
        let build = || {
            let registry = Registry::new();
            registry.counter("cloud.cache.hit").add(89);
            registry.counter("cloud.cache.miss").add(11);
            registry.gauge("cloud.hit_ratio").set(0.89);
            registry.histogram("speed").record(740);
            let span = registry.tracer().open("replay", 0);
            registry.tracer().close("replay", span, 1000);
            registry.snapshot().to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same recording must export byte-identical JSON");
        assert!(a.starts_with("{\"counters\":{"));
        assert!(a.contains("\"cloud.cache.hit\":89"));
        assert!(a.contains("\"cloud.hit_ratio\":0.89"));
        assert!(a.contains("\"kind\":\"close\",\"at_ms\":1000"));
        assert!(a.ends_with("]}}"));
    }

    #[test]
    fn wall_section_only_in_full_export() {
        let registry = Registry::new();
        registry.counter("events").add(7);
        registry.set_wall("sim.events_per_sec", 123456.5);
        let snap = registry.snapshot();
        let stable = snap.to_json();
        assert!(!stable.contains("events_per_sec"), "wall metrics must not leak: {stable}");
        let full = snap.to_json_full();
        assert!(full.contains("\"wall\":{\"sim.events_per_sec\":123456.5}"), "{full}");
        assert!(full.contains("\"events\":7"));
        // CSV export likewise stays wall-free.
        assert!(!snap.to_csv().contains("events_per_sec"));
    }

    #[test]
    fn json_escapes_strings() {
        let registry = Registry::new();
        registry.tracer().instant("we\"ird\\name\n", 1);
        let json = registry.snapshot().to_json();
        assert!(json.contains("we\\\"ird\\\\name\\n"));
    }

    #[test]
    fn csv_lists_all_metric_kinds() {
        let registry = Registry::new();
        registry.counter("c").inc();
        registry.gauge("g").set(1.5);
        registry.histogram("h").record(3);
        let csv = registry.snapshot().to_csv();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,c,value,1\n"));
        assert!(csv.contains("gauge,g,value,1.5\n"));
        assert!(csv.contains("histogram,h,count,1\n"));
        assert!(csv.contains("histogram,h,p99,3\n"));
    }
}
