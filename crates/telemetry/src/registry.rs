//! The metrics registry: named counters, gauges, and histograms plus
//! the tracer, snapshot-able into a deterministic export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::trace::{TraceSnapshot, Tracer};

/// A monotonically increasing `u64` metric.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable `f64` metric (stored as IEEE-754 bits; last write wins).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (compare-and-swap loop).
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.0.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared handle to a registry histogram.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Record one `u64` sample.
    pub fn record(&self, v: u64) {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).record(v);
    }

    /// Record a float sample (rounded; negatives clamp to zero).
    pub fn record_f64(&self, v: f64) {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).record_f64(v);
    }

    /// Merge `other`'s samples into this histogram.
    pub fn merge(&self, other: &Histogram) {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).merge(other);
    }

    /// Copy of the current histogram state.
    pub fn histogram(&self) -> Histogram {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, HistogramHandle>>,
    // Wall-clock measurements (perf telemetry). Kept apart from the
    // deterministic metrics: they vary run to run, so the default exports
    // exclude them to preserve the byte-identical snapshot guarantee.
    walls: Mutex<BTreeMap<String, f64>>,
    tracer: Tracer,
}

/// A named-metric registry; cheap to clone (all clones share state).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(counter) = counters.get(name) {
            return counter.clone();
        }
        counters.entry(name.to_owned()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(gauge) = gauges.get(name) {
            return gauge.clone();
        }
        gauges.entry(name.to_owned()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut histograms = self.inner.histograms.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(histogram) = histograms.get(name) {
            return histogram.clone();
        }
        histograms
            .entry(name.to_owned())
            .or_insert_with(|| HistogramHandle(Arc::new(Mutex::new(Histogram::new()))))
            .clone()
    }

    /// Record a wall-clock measurement (seconds, rates, …) under `name`.
    ///
    /// Wall metrics live in the snapshot's separate [`Snapshot::wall`]
    /// section and are excluded from the deterministic
    /// [`Snapshot::to_json`] / [`Snapshot::to_csv`] exports — use
    /// [`Snapshot::to_json_full`] to export them too. This is how perf
    /// numbers (`sim.events_per_sec`, run wall time) ride along without
    /// breaking the byte-identical-across-same-seed-runs guarantee.
    pub fn set_wall(&self, name: &str, value: f64) {
        self.inner.walls.lock().unwrap_or_else(|e| e.into_inner()).insert(name.to_owned(), value);
    }

    /// The wall-clock measurement named `name`, if one was recorded.
    pub fn wall(&self, name: &str) -> Option<f64> {
        self.inner.walls.lock().unwrap_or_else(|e| e.into_inner()).get(name).copied()
    }

    /// The registry's span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// A deterministic point-in-time export: metric maps are ordered by
    /// name, trace events by recording order.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, h)| (name.clone(), h.histogram().snapshot()))
            .collect();
        let wall = self.inner.walls.lock().unwrap_or_else(|e| e.into_inner()).clone();
        Snapshot { counters, gauges, histograms, wall, trace: self.inner.tracer.snapshot() }
    }
}

/// Point-in-time export of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Wall-clock measurements by name — nondeterministic by nature, so
    /// excluded from [`Snapshot::to_json`] / [`Snapshot::to_csv`].
    pub wall: BTreeMap<String, f64>,
    /// The trace event stream.
    pub trace: TraceSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let registry = Registry::new();
        registry.counter("x").inc();
        registry.counter("x").add(2);
        assert_eq!(registry.counter("x").get(), 3);

        registry.gauge("ratio").set(0.5);
        registry.gauge("ratio").add(0.25);
        assert!((registry.gauge("ratio").get() - 0.75).abs() < 1e-12);

        registry.histogram("h").record(9);
        assert_eq!(registry.histogram("h").histogram().count(), 1);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let registry = Registry::new();
        registry.counter("zeta").inc();
        registry.counter("alpha").inc();
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }

    #[test]
    fn clones_share_everything() {
        let registry = Registry::new();
        let clone = registry.clone();
        clone.counter("n").inc();
        assert_eq!(registry.snapshot().counters["n"], 1);
    }
}
