//! Bounded flight recorder: the causal event history behind anomalies.
//!
//! A [`FlightRecorder`] keeps a fixed-size ring of the most recent sim
//! events a backend processed. When a task ends in stagnation, rejection,
//! or failure, the ring is dumped into a [`FlightDump`] — so every
//! anomaly in a report carries the event history that led up to it, at a
//! memory cost bounded by `capacity × max_dumps` regardless of workload
//! size. Timestamps are virtual milliseconds, so dumps are deterministic
//! for same-seed runs.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// One entry in the ring: a sim event the backend handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual time in milliseconds.
    pub at_ms: u64,
    /// Static event label (e.g. `fetch_begin`).
    pub label: &'static str,
}

/// A ring snapshot taken when a task ended anomalously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// The task whose terminal outcome triggered the dump.
    pub task: u64,
    /// Anomaly kind (`stagnation`, `rejection`, `failure`).
    pub kind: &'static str,
    /// Virtual time of the anomaly.
    pub at_ms: u64,
    /// The ring's contents, oldest first.
    pub recent: Vec<FlightEvent>,
}

#[derive(Debug)]
struct FlightInner {
    ring: VecDeque<FlightEvent>,
    capacity: usize,
    recorded: u64,
    dumps: Vec<FlightDump>,
    max_dumps: usize,
    dropped_dumps: u64,
}

/// A shared, bounded recorder of recent sim events.
///
/// Clones share the same ring (the handle is an `Arc`), so the DES
/// engine can record into the same recorder the backend dumps from.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
}

impl FlightRecorder {
    /// A recorder keeping `capacity` recent events and at most
    /// `max_dumps` anomaly dumps (both clamp to ≥ 1).
    pub fn new(capacity: usize, max_dumps: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightInner {
                ring: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                recorded: 0,
                dumps: Vec::new(),
                max_dumps: max_dumps.max(1),
                dropped_dumps: 0,
            })),
        }
    }

    /// Record one handled event, evicting the oldest past capacity.
    pub fn record(&self, at_ms: u64, label: &'static str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(FlightEvent { at_ms, label });
        inner.recorded += 1;
    }

    /// Dump the current ring for an anomalous terminal on `task`. Once
    /// `max_dumps` dumps are held, further dumps are counted as dropped
    /// instead of retained.
    pub fn dump(&self, task: u64, kind: &'static str, at_ms: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.dumps.len() >= inner.max_dumps {
            inner.dropped_dumps += 1;
            return;
        }
        let recent: Vec<FlightEvent> = inner.ring.iter().copied().collect();
        inner.dumps.push(FlightDump { task, kind, at_ms, recent });
    }

    /// Copy out the dumps and counters.
    pub fn snapshot(&self) -> FlightSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        FlightSnapshot {
            scheduler: String::new(),
            scenario: String::new(),
            dumps: inner.dumps.clone(),
            recorded: inner.recorded,
            dropped_dumps: inner.dropped_dumps,
        }
    }
}

/// Point-in-time export of a [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightSnapshot {
    /// The active scheduler kind's name (`heap` / `wheel`), stamped by
    /// the replay layer so cross-scheduler dump diffs are unambiguous.
    /// Empty until [`FlightSnapshot::set_context`] runs.
    pub scheduler: String,
    /// The scenario name the dumping run replayed, stamped alongside
    /// `scheduler`.
    pub scenario: String,
    /// Retained anomaly dumps, in dump order (dump order is virtual-time
    /// order, so this is deterministic).
    pub dumps: Vec<FlightDump>,
    /// Total events ever recorded into the ring.
    pub recorded: u64,
    /// Dumps discarded after `max_dumps` was reached.
    pub dropped_dumps: u64,
}

impl FlightSnapshot {
    /// Stamp the run context (active scheduler kind, scenario name) into
    /// the snapshot's metadata header.
    pub fn set_context(&mut self, scheduler: &str, scenario: &str) {
        self.scheduler = scheduler.to_string();
        self.scenario = scenario.to_string();
    }

    /// Deterministic compact-JSON export of the dumps. The header stamps
    /// the run context so dumps from different schedulers or scenarios
    /// are distinguishable at a glance.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + 64 * self.dumps.len());
        out.push_str("{\"scheduler\":");
        crate::export::push_json_str(&mut out, &self.scheduler);
        out.push_str(",\"scenario\":");
        crate::export::push_json_str(&mut out, &self.scenario);
        let _ = write!(
            out,
            ",\"recorded\":{},\"dropped_dumps\":{},\"dumps\":[",
            self.recorded, self.dropped_dumps
        );
        for (i, dump) in self.dumps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"task\":{},\"kind\":\"{}\",\"at_ms\":{},\"recent\":[",
                dump.task, dump.kind, dump.at_ms
            );
            for (j, event) in dump.recent.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"at_ms\":{},\"label\":\"{}\"}}", event.at_ms, event.label);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let flight = FlightRecorder::new(3, 8);
        for at in 0..10u64 {
            flight.record(at, "tick");
        }
        flight.dump(5, "failure", 10);
        let snap = flight.snapshot();
        assert_eq!(snap.recorded, 10);
        let times: Vec<u64> = snap.dumps[0].recent.iter().map(|e| e.at_ms).collect();
        assert_eq!(times, vec![7, 8, 9]);
    }

    #[test]
    fn dumps_are_bounded() {
        let flight = FlightRecorder::new(2, 2);
        flight.record(1, "a");
        for task in 0..5u64 {
            flight.dump(task, "rejection", task);
        }
        let snap = flight.snapshot();
        assert_eq!(snap.dumps.len(), 2);
        assert_eq!(snap.dropped_dumps, 3);
    }

    #[test]
    fn clones_share_the_ring() {
        let flight = FlightRecorder::new(4, 4);
        let engine_handle = flight.clone();
        engine_handle.record(1, "arrive");
        engine_handle.record(2, "fetch_begin");
        flight.dump(0, "stagnation", 3);
        let snap = flight.snapshot();
        assert_eq!(snap.dumps[0].recent.len(), 2);
        assert_eq!(snap.dumps[0].recent[1].label, "fetch_begin");
    }

    #[test]
    fn context_is_stamped_in_the_header() {
        let flight = FlightRecorder::new(2, 2);
        flight.record(1, "arrive");
        flight.dump(3, "stagnation", 4);
        let mut snap = flight.snapshot();
        assert!(snap.to_json().starts_with("{\"scheduler\":\"\",\"scenario\":\"\","));
        snap.set_context("wheel", "paper-default");
        assert!(snap
            .to_json()
            .starts_with("{\"scheduler\":\"wheel\",\"scenario\":\"paper-default\","));
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let flight = FlightRecorder::new(2, 2);
        flight.record(1, "arrive");
        flight.dump(3, "stagnation", 4);
        let a = flight.snapshot().to_json();
        let b = flight.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"kind\":\"stagnation\""));
        assert!(a.starts_with('{') && a.ends_with('}'));
    }
}
