//! Log-bucketed (HDR-style) histograms over `u64` values.
//!
//! Values below 64 land in exact unit buckets; above that, each
//! power-of-two octave splits into 32 sub-buckets, bounding relative
//! quantile error at 1/32 (≈ 3.1 %). All state is integral (`u64`
//! counts, `u128` sum), so [`Histogram::merge`] is exact and
//! associative — merging shard histograms in any grouping yields the
//! same result, which the property tests assert.

/// Sub-bucket precision: 2^5 = 32 sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Values below this threshold get exact unit buckets.
const EXACT_LIMIT: u64 = SUB_COUNT * 2;

/// A mergeable log-bucketed histogram of `u64` samples.
///
/// Bucket counts live in a flat dense array indexed by bucket number
/// (at most 1920 entries over the whole `u64` line, grown on demand),
/// so `record` is an array increment — no tree walk, no allocation
/// once the high-water bucket has been touched.
#[derive(Debug, Clone, Default, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Histogram) -> bool {
        // Trailing zero buckets are representation, not state: two
        // histograms with the same samples compare equal regardless of
        // their high-water marks.
        self.count == other.count
            && self.sum == other.sum
            && self.min() == other.min()
            && self.max() == other.max()
            && self.nonzero().eq(other.nonzero())
    }
}

/// Bucket index for `v`.
fn bucket_index(v: u64) -> u32 {
    if v < EXACT_LIMIT {
        v as u32
    } else {
        let exponent = 63 - v.leading_zeros();
        let sub = ((v >> (exponent - SUB_BITS)) & (SUB_COUNT - 1)) as u32;
        EXACT_LIMIT as u32 + (exponent - SUB_BITS - 1) * SUB_COUNT as u32 + sub
    }
}

/// Lowest value mapping to bucket `idx`.
fn bucket_lower(idx: u32) -> u64 {
    if u64::from(idx) < EXACT_LIMIT {
        u64::from(idx)
    } else {
        let rel = idx - EXACT_LIMIT as u32;
        let octave = rel / SUB_COUNT as u32;
        let sub = u64::from(rel % SUB_COUNT as u32);
        (SUB_COUNT + sub) << (octave + 1)
    }
}

/// Width of bucket `idx` (number of distinct values it covers).
fn bucket_width(idx: u32) -> u64 {
    if u64::from(idx) < EXACT_LIMIT {
        1
    } else {
        let octave = (idx - EXACT_LIMIT as u32) / SUB_COUNT as u32;
        2u64 << octave
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// `(bucket index, count)` pairs for occupied buckets, ascending.
    fn nonzero(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| (i as u32, n))
    }

    /// Bump bucket `idx`, growing the dense array to reach it.
    fn bump(&mut self, idx: u32, n: u64) {
        let idx = idx as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.bump(bucket_index(v), 1);
        self.count += 1;
        self.sum += u128::from(v);
        if self.count == 1 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Record a non-negative float sample, rounded to the nearest
    /// integer unit. Negative and non-finite values clamp to zero.
    pub fn record_f64(&mut self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v.round() as u64 } else { 0 };
        self.record(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound for the `q`-quantile (`0.0 ..= 1.0`): the highest
    /// value of the bucket holding the `ceil(q · count)`-th smallest
    /// sample. At least that many samples are ≤ the returned value,
    /// and it exceeds the true quantile by at most one bucket width
    /// (relative error ≤ 1/32 above the exact-bucket range).
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (idx, n) in self.nonzero() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_lower(idx) + bucket_width(idx) - 1;
            }
        }
        self.max
    }

    /// Exact merge: the result is identical to having recorded both
    /// sample streams into one histogram, and merging is associative
    /// and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (idx, n) in other.nonzero() {
            self.bump(idx, n);
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Immutable export of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
            buckets: self.nonzero().map(|(idx, n)| (bucket_lower(idx), n)).collect(),
        }
    }
}

/// Point-in-time export of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Exact sample sum.
    pub sum: u128,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
    /// `(bucket lower bound, sample count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_u64_line() {
        // Every bucket starts exactly where the previous one ends. The
        // final bucket (index 1919) ends at 2^64, which overflows u64,
        // so check up to the one before it.
        for idx in 0..1918u32 {
            assert_eq!(
                bucket_lower(idx) + bucket_width(idx),
                bucket_lower(idx + 1),
                "gap or overlap at bucket {idx}"
            );
        }
        // And indexing round-trips: v lands in a bucket covering v.
        for v in (0..10_000_000u64).step_by(9973) {
            let idx = bucket_index(v);
            assert!(bucket_lower(idx) <= v);
            assert!(v < bucket_lower(idx) + bucket_width(idx));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..EXACT_LIMIT {
            h.record(v);
        }
        for v in 0..EXACT_LIMIT {
            let q = (v + 1) as f64 / EXACT_LIMIT as f64;
            assert_eq!(h.value_at_quantile(q), v);
        }
    }

    #[test]
    fn mean_and_extremes() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in 0..5000u64 {
            let sample = v.wrapping_mul(2_654_435_761) % 1_000_000;
            if v % 2 == 0 {
                a.record(sample);
            } else {
                b.record(sample);
            }
            combined.record(sample);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }
}
