//! # odx-telemetry — deterministic metrics & virtual-time tracing
//!
//! The observability substrate for the odx stack: a [`Registry`] of
//! named [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s
//! with exact merge semantics, plus a [`Tracer`] recording span
//! open/close events stamped with **virtual time** (milliseconds from
//! `odx-sim`'s clock, never wall-clock). Because every recorded value
//! is either an integer or derived from the deterministic replay
//! itself, two runs with the same seed produce **byte-identical**
//! snapshot exports ([`Snapshot::to_json`] / [`Snapshot::to_csv`]).
//!
//! Zero external dependencies by design: every crate in the workspace
//! can instrument itself without widening its dependency graph.
//!
//! ## Usage
//!
//! Deep call-sites that cannot thread a registry through their
//! signatures record into [`global()`]; replay entry points accept an
//! explicit `&Registry` so tests can isolate and diff snapshots.
//!
//! ```
//! use odx_telemetry::Registry;
//!
//! let registry = Registry::new();
//! registry.counter("cloud.cache.hit").inc();
//! registry.histogram("cloud.fetch_speed_kbps").record(740);
//! let span = registry.tracer().open("cloud.replay", 0);
//! registry.tracer().close("cloud.replay", span, 604_800_000);
//! let json = registry.snapshot().to_json();
//! assert!(json.contains("cloud.cache.hit"));
//! ```

#![warn(missing_docs)]

mod chrome;
mod export;
mod flight;
mod hist;
mod prof;
mod registry;
mod series;
mod task;
mod trace;

pub use chrome::{validate_chrome_trace, ChromeTraceStats};
pub use flight::{FlightDump, FlightEvent, FlightRecorder, FlightSnapshot};
pub use hist::{Histogram, HistogramSnapshot};
pub use prof::{render_rows, rows_from_walls, HandlerProfiler, ProfRow};
pub use registry::{Counter, Gauge, HistogramHandle, Registry, Snapshot};
pub use series::{
    publish_series, published_series, MetricSeries, SeriesRecorder, SeriesSet, SeriesSnapshot,
};
pub use task::{
    Attribution, Lifecycle, LifecycleReport, Stage, StageAgg, TaskEnd, TaskSpan, TaskTrace,
    TaskTraceSet, TaskTracer, TraceConfig,
};
pub use trace::{SpanEvent, SpanKind, TraceSnapshot, Tracer};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
///
/// Library call-sites too deep to receive an explicit registry record
/// here. Single-process deterministic runs (the `repro` binary) dump
/// this registry; tests that need isolation should construct their own
/// [`Registry`] instead of asserting on the global one, since parallel
/// test threads share it.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}
