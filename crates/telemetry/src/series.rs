//! Virtual-time metric series.
//!
//! End-of-run snapshots answer *how much*; the paper's headline figures
//! answer *when* — diurnal request curves, per-ISP upload admissions over
//! the measured week, the cache hit ratio climbing as the pool warms. A
//! [`SeriesRecorder`] turns registered counters, gauges, and histogram
//! quantiles into curves by sampling them on a **virtual-clock** cadence
//! (default one sim-hour): the engine samples every due grid point
//! *before* dispatching the next event, so sample values depend only on
//! the deterministic event order, never on wall time, worker count, or
//! scheduler implementation.
//!
//! Storage is delta-encoded for counters (per-interval increments are the
//! curve shape the figures need; the running total is one prefix sum
//! away) and raw for gauges and quantiles. Exports are byte-stable:
//! same-seed runs, `--jobs 1` vs `--jobs 8` sweeps, and heap vs
//! timing-wheel schedulers all produce identical `series.json` /
//! `series.csv` bytes. Sweep shards each record privately and merge via
//! [`SeriesSet`], keyed `(scenario, seed)` — commutative and exact, the
//! same bar `Attribution` meets.
//!
//! The tiling-style invariant (property-tested in
//! `tests/series_determinism.rs`): [`SeriesRecorder::finish`] appends one
//! final sample at the end-of-run clock, so the last value of every
//! series equals the end-of-run snapshot value.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use crate::export::{push_json_f64, push_json_str};
use crate::registry::{Counter, Gauge, HistogramHandle};

/// One tracked metric: where the value comes from at sample time.
enum Source {
    /// A monotonic counter; stored as per-interval deltas.
    Counter(Counter, u64),
    /// A gauge; stored raw.
    Gauge(Gauge),
    /// A histogram quantile (e.g. p50 fetch rate); stored raw.
    Quantile(HistogramHandle, f64),
}

struct Track {
    name: String,
    source: Source,
}

struct Inner {
    interval_ms: u64,
    /// Next due grid point (multiples of `interval_ms`).
    next_due_ms: u64,
    /// Shared time axis; one entry per sample, strictly increasing.
    times: Vec<u64>,
    tracks: Vec<Track>,
    columns: Vec<MetricSeries>,
    finished: bool,
}

/// Samples registered metrics on a virtual-clock grid and stores the
/// resulting per-metric series. Cloneable handle (shared interior), so
/// the engine, the world, and the caller can all hold it.
#[derive(Clone)]
pub struct SeriesRecorder {
    inner: Arc<Mutex<Inner>>,
}

/// One metric's sampled values, aligned with the recorder's time axis.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSeries {
    /// Per-interval counter increments (delta-encoded).
    Counter(Vec<u64>),
    /// Raw gauge values.
    Gauge(Vec<f64>),
    /// Raw quantile values with the quantile they were read at.
    Quantile(f64, Vec<u64>),
}

impl MetricSeries {
    /// The value the series ends at, decoded: counters sum their deltas
    /// back to the running total, gauges and quantiles take the last
    /// sample. `None` for an empty series.
    pub fn final_value(&self) -> Option<f64> {
        match self {
            MetricSeries::Counter(deltas) => {
                (!deltas.is_empty()).then(|| deltas.iter().sum::<u64>() as f64)
            }
            MetricSeries::Gauge(values) => values.last().copied(),
            MetricSeries::Quantile(_, values) => values.last().map(|&v| v as f64),
        }
    }

    fn len(&self) -> usize {
        match self {
            MetricSeries::Counter(v) => v.len(),
            MetricSeries::Gauge(v) => v.len(),
            MetricSeries::Quantile(_, v) => v.len(),
        }
    }

    fn push_value_json(&self, out: &mut String, i: usize) {
        match self {
            MetricSeries::Counter(v) => {
                let _ = write!(out, "{}", v[i]);
            }
            MetricSeries::Gauge(v) => push_json_f64(out, v[i]),
            MetricSeries::Quantile(_, v) => {
                let _ = write!(out, "{}", v[i]);
            }
        }
    }
}

/// An immutable copy of everything a [`SeriesRecorder`] sampled: the
/// shared time axis plus one [`MetricSeries`] per tracked metric, sorted
/// by name.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// The sampling cadence in virtual milliseconds.
    pub interval_ms: u64,
    /// Sample times (virtual ms), strictly increasing; the last entry is
    /// the end-of-run clock appended by [`SeriesRecorder::finish`].
    pub times: Vec<u64>,
    /// Per-metric series, name-sorted; every series has `times.len()`
    /// samples.
    pub series: BTreeMap<String, MetricSeries>,
}

impl SeriesSnapshot {
    /// The series as a compact JSON document — byte-stable for a given
    /// deterministic run (no wall-clock content at all).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.times.len() * (1 + self.series.len()));
        let _ = write!(out, "{{\"interval_ms\":{},\"times\":[", self.interval_ms);
        for (i, t) in self.times.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{t}");
        }
        out.push_str("],\"series\":{");
        for (i, (name, series)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(":{\"kind\":");
            match series {
                MetricSeries::Counter(_) => out.push_str("\"counter_delta\""),
                MetricSeries::Gauge(_) => out.push_str("\"gauge\""),
                MetricSeries::Quantile(q, _) => {
                    let _ = write!(out, "\"quantile\",\"q\":{q}");
                }
            }
            out.push_str(",\"values\":[");
            for j in 0..series.len() {
                if j > 0 {
                    out.push(',');
                }
                series.push_value_json(&mut out, j);
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// The series as wide CSV: one `t_ms` column plus one column per
    /// metric (name-sorted), one row per sample. Counter columns hold the
    /// per-interval delta.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ms");
        for name in self.series.keys() {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for (i, t) in self.times.iter().enumerate() {
            let _ = write!(out, "{t}");
            for series in self.series.values() {
                out.push(',');
                match series {
                    MetricSeries::Counter(v) => {
                        let _ = write!(out, "{}", v[i]);
                    }
                    MetricSeries::Gauge(v) => {
                        let _ = write!(out, "{}", v[i]);
                    }
                    MetricSeries::Quantile(_, v) => {
                        let _ = write!(out, "{}", v[i]);
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

impl SeriesRecorder {
    /// A recorder sampling every `interval_ms` of virtual time. Panics on
    /// a zero interval (the grid would not advance).
    pub fn new(interval_ms: u64) -> SeriesRecorder {
        assert!(interval_ms > 0, "series interval must be positive");
        SeriesRecorder {
            inner: Arc::new(Mutex::new(Inner {
                interval_ms,
                next_due_ms: interval_ms,
                times: Vec::new(),
                tracks: Vec::new(),
                columns: Vec::new(),
                finished: false,
            })),
        }
    }

    /// The sampling cadence in virtual milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.lock().interval_ms
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn track(&self, name: &str, source: Source) {
        let mut inner = self.lock();
        assert!(
            inner.times.is_empty(),
            "register series metrics before sampling begins (metric {name:?})"
        );
        let column = match &source {
            Source::Counter(..) => MetricSeries::Counter(Vec::new()),
            Source::Gauge(_) => MetricSeries::Gauge(Vec::new()),
            Source::Quantile(_, q) => MetricSeries::Quantile(*q, Vec::new()),
        };
        inner.tracks.push(Track { name: name.to_string(), source });
        inner.columns.push(column);
    }

    /// Track a counter; its series stores per-interval increments.
    pub fn track_counter(&self, name: &str, counter: Counter) {
        self.track(name, Source::Counter(counter, 0));
    }

    /// Track a gauge; its series stores the raw value at each sample.
    pub fn track_gauge(&self, name: &str, gauge: Gauge) {
        self.track(name, Source::Gauge(gauge));
    }

    /// Track quantile `q` of a histogram (e.g. `0.5` for the median).
    pub fn track_quantile(&self, name: &str, histogram: HistogramHandle, q: f64) {
        self.track(name, Source::Quantile(histogram, q));
    }

    /// The next due grid point in virtual ms. The engine caches this and
    /// samples every due point strictly before dispatching an event at a
    /// later time.
    pub fn next_due_ms(&self) -> u64 {
        self.lock().next_due_ms
    }

    /// Take a grid sample at `self.next_due_ms()` and advance the grid.
    /// Returns the new next-due time so callers can refresh their cache.
    pub fn sample_due(&self) -> u64 {
        let mut inner = self.lock();
        let at = inner.next_due_ms;
        inner.next_due_ms = at + inner.interval_ms;
        let next = inner.next_due_ms;
        Self::record(&mut inner, at);
        next
    }

    /// Append the final sample at the end-of-run clock `at_ms` and seal
    /// the recorder; subsequent calls are no-ops. This sample makes the
    /// last value of every series equal the end-of-run snapshot value.
    pub fn finish(&self, at_ms: u64) {
        let mut inner = self.lock();
        let inner = &mut *inner;
        if inner.finished {
            return;
        }
        inner.finished = true;
        // The final clock can coincide with a grid point that already
        // sampled; re-sampling at the same timestamp would break the
        // strictly-increasing axis, so replace it instead.
        if inner.times.last() == Some(&at_ms) {
            inner.times.pop();
            for (column, track) in inner.columns.iter_mut().zip(inner.tracks.iter_mut()) {
                match (column, &mut track.source) {
                    (MetricSeries::Counter(v), Source::Counter(_, last)) => {
                        let dropped = v.pop().unwrap_or(0);
                        *last -= dropped;
                    }
                    (MetricSeries::Gauge(v), _) => {
                        v.pop();
                    }
                    (MetricSeries::Quantile(_, v), _) => {
                        v.pop();
                    }
                    _ => unreachable!("column kind always matches its source"),
                }
            }
        }
        Self::record(inner, at_ms);
    }

    fn record(inner: &mut Inner, at_ms: u64) {
        debug_assert!(inner.times.last().map_or(true, |&t| t < at_ms));
        inner.times.push(at_ms);
        for (track, column) in inner.tracks.iter_mut().zip(inner.columns.iter_mut()) {
            match (&mut track.source, column) {
                (Source::Counter(counter, last), MetricSeries::Counter(values)) => {
                    let now = counter.get();
                    values.push(now - *last);
                    *last = now;
                }
                (Source::Gauge(gauge), MetricSeries::Gauge(values)) => {
                    values.push(gauge.get());
                }
                (Source::Quantile(handle, q), MetricSeries::Quantile(_, values)) => {
                    values.push(handle.histogram().value_at_quantile(*q));
                }
                _ => unreachable!("column kind always matches its source"),
            }
        }
    }

    /// An immutable copy of everything sampled so far, name-sorted.
    pub fn snapshot(&self) -> SeriesSnapshot {
        let inner = self.lock();
        let mut series = BTreeMap::new();
        for (track, column) in inner.tracks.iter().zip(inner.columns.iter()) {
            series.insert(track.name.clone(), column.clone());
        }
        SeriesSnapshot { interval_ms: inner.interval_ms, times: inner.times.clone(), series }
    }
}

/// A sweep's worth of series: one [`SeriesSnapshot`] per `(scenario,
/// seed)` cell, kept in a [`BTreeMap`] so merging shards is exact and
/// worker-count-independent — insertion order never shows in the exports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesSet {
    /// Per-cell snapshots keyed `(scenario name, seed)`.
    pub cells: BTreeMap<(String, u64), SeriesSnapshot>,
}

impl SeriesSet {
    /// An empty set.
    pub fn new() -> SeriesSet {
        SeriesSet::default()
    }

    /// Add one cell's snapshot under its `(scenario, seed)` key.
    pub fn insert(&mut self, scenario: &str, seed: u64, snapshot: SeriesSnapshot) {
        self.cells.insert((scenario.to_string(), seed), snapshot);
    }

    /// Merge another set in (e.g. a shard batch). Exact: the result is
    /// the key-sorted union, independent of merge order.
    pub fn merge(&mut self, other: &SeriesSet) {
        for ((scenario, seed), snapshot) in &other.cells {
            self.cells.insert((scenario.clone(), *seed), snapshot.clone());
        }
    }

    /// The whole set as JSON: cells in key order, each embedding its
    /// [`SeriesSnapshot::to_json`] document. Byte-identical for any
    /// worker count.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"cells\":[");
        for (i, ((scenario, seed), snapshot)) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"scenario\":");
            push_json_str(&mut out, scenario);
            let _ = write!(out, ",\"seed\":{seed},\"series\":");
            out.push_str(&snapshot.to_json());
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The whole set as long-form CSV
    /// (`scenario,seed,t_ms,metric,value`), rows in `(scenario, seed,
    /// time, metric)` order. Byte-identical for any worker count.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("scenario,seed,t_ms,metric,value\n");
        for ((scenario, seed), snapshot) in &self.cells {
            for (i, t) in snapshot.times.iter().enumerate() {
                for (name, series) in &snapshot.series {
                    let _ = write!(out, "{scenario},{seed},{t},{name},");
                    series.push_value_json(&mut out, i);
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// The most recently published series JSON, if any — the document
/// `GET /metrics?series=1` serves. Process-wide like
/// [`crate::global`], but explicitly published rather than ambient:
/// a run opts its series in via [`publish_series`].
static PUBLISHED: OnceLock<Mutex<Option<String>>> = OnceLock::new();

fn published_slot() -> &'static Mutex<Option<String>> {
    PUBLISHED.get_or_init(|| Mutex::new(None))
}

/// Publish a series JSON document for `GET /metrics?series=1`.
pub fn publish_series(json: String) {
    *published_slot().lock().unwrap_or_else(|e| e.into_inner()) = Some(json);
}

/// The currently published series JSON, if a run has published one.
pub fn published_series() -> Option<String> {
    published_slot().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn counter_series_is_delta_encoded_and_sums_to_snapshot() {
        let registry = Registry::new();
        let counter = registry.counter("reqs");
        let series = SeriesRecorder::new(100);
        series.track_counter("reqs", counter.clone());

        counter.add(3);
        assert_eq!(series.next_due_ms(), 100);
        series.sample_due(); // t=100
        counter.add(5);
        series.sample_due(); // t=200
        counter.add(1);
        series.finish(250);

        let snap = series.snapshot();
        assert_eq!(snap.times, vec![100, 200, 250]);
        assert_eq!(snap.series["reqs"], MetricSeries::Counter(vec![3, 5, 1]));
        assert_eq!(snap.series["reqs"].final_value(), Some(counter.get() as f64));
    }

    #[test]
    fn gauge_and_quantile_series_store_raw_values() {
        let registry = Registry::new();
        let gauge = registry.gauge("ratio");
        let hist = registry.histogram("rate");
        let series = SeriesRecorder::new(10);
        series.track_gauge("ratio", gauge.clone());
        series.track_quantile("rate.p50", hist.clone(), 0.5);

        gauge.set(0.25);
        hist.record(100);
        series.sample_due();
        gauge.set(0.75);
        hist.record(300);
        hist.record(300);
        series.finish(15);

        let snap = series.snapshot();
        assert_eq!(snap.series["ratio"], MetricSeries::Gauge(vec![0.25, 0.75]));
        let MetricSeries::Quantile(q, values) = &snap.series["rate.p50"] else {
            panic!("quantile series expected");
        };
        assert_eq!(*q, 0.5);
        assert_eq!(values.len(), 2);
        assert!(values[0] >= 100 && values[0] < 300, "p50 of [100]: {}", values[0]);
        assert_eq!(values[1], hist.histogram().value_at_quantile(0.5));
    }

    #[test]
    fn finish_replaces_a_coinciding_grid_sample() {
        let registry = Registry::new();
        let counter = registry.counter("c");
        let series = SeriesRecorder::new(100);
        series.track_counter("c", counter.clone());
        counter.add(2);
        series.sample_due(); // t=100
        counter.add(4);
        // End-of-run clock lands exactly on the sampled grid point.
        series.finish(100);
        let snap = series.snapshot();
        assert_eq!(snap.times, vec![100]);
        assert_eq!(snap.series["c"], MetricSeries::Counter(vec![6]));
        // finish() is idempotent.
        series.finish(100);
        assert_eq!(series.snapshot(), snap);
    }

    #[test]
    fn exports_are_stable_and_parseable() {
        let registry = Registry::new();
        let series = SeriesRecorder::new(50);
        series.track_counter("a", registry.counter("a"));
        series.track_gauge("b", registry.gauge("b"));
        registry.counter("a").add(7);
        registry.gauge("b").set(1.5);
        series.sample_due();
        series.finish(60);

        let snap = series.snapshot();
        assert_eq!(
            snap.to_json(),
            "{\"interval_ms\":50,\"times\":[50,60],\"series\":{\
             \"a\":{\"kind\":\"counter_delta\",\"values\":[7,0]},\
             \"b\":{\"kind\":\"gauge\",\"values\":[1.5,1.5]}}}"
        );
        assert_eq!(snap.to_csv(), "t_ms,a,b\n50,7,1.5\n60,0,1.5\n");
    }

    #[test]
    fn series_set_merge_is_order_independent() {
        let make = |n: u64| {
            let registry = Registry::new();
            let series = SeriesRecorder::new(10);
            series.track_counter("c", registry.counter("c"));
            registry.counter("c").add(n);
            series.finish(5);
            series.snapshot()
        };
        let mut ab = SeriesSet::new();
        ab.insert("x", 1, make(1));
        ab.insert("x", 2, make(2));
        let mut ba = SeriesSet::new();
        ba.insert("x", 2, make(2));
        ba.insert("x", 1, make(1));
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.to_csv(), ba.to_csv());

        let mut merged = SeriesSet::new();
        merged.merge(&ba);
        merged.merge(&ab);
        assert_eq!(merged, ab);
        assert!(merged.to_csv().starts_with("scenario,seed,t_ms,metric,value\n"));
    }

    #[test]
    fn published_series_round_trips() {
        publish_series("{\"cells\":[]}".to_string());
        assert_eq!(published_series().as_deref(), Some("{\"cells\":[]}"));
    }
}
