//! Span tracing on virtual time.
//!
//! Spans are open/close event pairs stamped with milliseconds from the
//! simulation clock — never wall-clock — so traces from same-seed runs
//! are bit-identical. The event buffer is capped; overflow increments
//! a drop counter instead of growing without bound.

use std::sync::Mutex;

/// Default event-buffer capacity.
const DEFAULT_CAPACITY: usize = 65_536;

/// What a [`SpanEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A span began.
    Open,
    /// A span ended.
    Close,
    /// A point event with no duration.
    Instant,
}

impl SpanKind {
    /// Stable lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Open => "open",
            SpanKind::Close => "close",
            SpanKind::Instant => "instant",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span id; open/close pairs share it, instants get their own.
    pub id: u64,
    /// Span name (dotted, e.g. `cloud.replay`).
    pub name: String,
    /// Open, close, or instant.
    pub kind: SpanKind,
    /// Virtual time in milliseconds.
    pub at_ms: u64,
}

#[derive(Debug)]
struct TracerState {
    events: Vec<SpanEvent>,
    capacity: usize,
    dropped: u64,
    next_id: u64,
}

/// Records [`SpanEvent`]s in virtual time.
#[derive(Debug)]
pub struct Tracer {
    state: Mutex<TracerState>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// Tracer holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            state: Mutex::new(TracerState { events: Vec::new(), capacity, dropped: 0, next_id: 0 }),
        }
    }

    fn push(&self, event: SpanEvent) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.events.len() < state.capacity {
            state.events.push(event);
        } else {
            state.dropped += 1;
        }
    }

    /// Open a span named `name` at virtual time `at_ms`; returns the
    /// span id to pass to [`Tracer::close`].
    pub fn open(&self, name: &str, at_ms: u64) -> u64 {
        let id = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state.next_id += 1;
            state.next_id
        };
        self.push(SpanEvent { id, name: name.to_owned(), kind: SpanKind::Open, at_ms });
        id
    }

    /// Close span `id` at virtual time `at_ms`.
    pub fn close(&self, name: &str, id: u64, at_ms: u64) {
        self.push(SpanEvent { id, name: name.to_owned(), kind: SpanKind::Close, at_ms });
    }

    /// Record a point event.
    pub fn instant(&self, name: &str, at_ms: u64) {
        let id = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state.next_id += 1;
            state.next_id
        };
        self.push(SpanEvent { id, name: name.to_owned(), kind: SpanKind::Instant, at_ms });
    }

    /// Copy out the recorded events and drop count.
    ///
    /// Events are ordered by `(at_ms, id, kind)` — not insertion order —
    /// so exports are stable even when spans were recorded from sweep
    /// worker threads racing on the shared tracer.
    pub fn snapshot(&self) -> TraceSnapshot {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut events = state.events.clone();
        events.sort_by_key(|e| (e.at_ms, e.id, kind_order(e.kind)));
        TraceSnapshot { events, dropped: state.dropped }
    }
}

/// Sort rank breaking `(at_ms, id)` ties: a span opens before its
/// instants and closes last.
fn kind_order(kind: SpanKind) -> u8 {
    match kind {
        SpanKind::Open => 0,
        SpanKind::Instant => 1,
        SpanKind::Close => 2,
    }
}

/// Point-in-time export of a [`Tracer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Events in recording order.
    pub events: Vec<SpanEvent>,
    /// Events discarded after the buffer filled.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// CSV export: `id,name,kind,at_ms` per event.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("id,name,kind,at_ms\n");
        for event in &self.events {
            out.push_str(&format!(
                "{},{},{},{}\n",
                event.id,
                event.name,
                event.kind.label(),
                event.at_ms
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_share_an_id() {
        let tracer = Tracer::default();
        let id = tracer.open("replay", 0);
        tracer.close("replay", id, 42);
        let snap = tracer.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].id, snap.events[1].id);
        assert_eq!(snap.events[0].kind, SpanKind::Open);
        assert_eq!(snap.events[1].kind, SpanKind::Close);
        assert_eq!(snap.events[1].at_ms, 42);
    }

    #[test]
    fn overflow_counts_drops() {
        let tracer = Tracer::with_capacity(2);
        tracer.instant("a", 1);
        tracer.instant("b", 2);
        tracer.instant("c", 3);
        let snap = tracer.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped, 1);
    }

    #[test]
    fn snapshot_orders_by_time_then_id_not_insertion() {
        let tracer = Tracer::default();
        // Simulate out-of-order recording from racing worker threads.
        let late = tracer.open("late", 50);
        let early = tracer.open("early", 10);
        tracer.close("late", late, 90);
        tracer.close("early", early, 20);
        tracer.instant("mark", 50);
        let events = tracer.snapshot().events;
        let order: Vec<(u64, &str)> = events.iter().map(|e| (e.at_ms, e.name.as_str())).collect();
        assert_eq!(
            order,
            vec![(10, "early"), (20, "early"), (50, "late"), (50, "mark"), (90, "late")]
        );
    }

    #[test]
    fn csv_has_header_and_rows() {
        let tracer = Tracer::default();
        tracer.instant("tick", 7);
        let csv = tracer.snapshot().to_csv();
        assert!(csv.starts_with("id,name,kind,at_ms\n"));
        assert!(csv.contains("tick,instant,7"));
    }
}
