//! In-process wall profiler for the DES hot loop.
//!
//! BENCH_pr8 *claimed* a ~75 % handler / ~25 % scheduler split of replay
//! wall from end-to-end subtraction; this module measures it. A
//! [`HandlerProfiler`] buckets `Instant`-deltas per event kind (the
//! world's `event_label`) plus scheduler-pop cost, using the same cheap
//! batched-flush discipline as the cloud world's `HotMetrics`: the hot
//! loop only adds into plain local fields — no atomics, no locks, no
//! strings — and the totals flush into the registry's **wall** section
//! once per run.
//!
//! Everything here is wall-clock and therefore nondeterministic by
//! design; it lives next to `sim.wall_secs` in the wall section and
//! stays out of every deterministic export. The per-handler breakdown
//! ([`HandlerProfiler::report`]) charges residual run time (chunk
//! injection, loop overhead) to an `other` row so the printed shares sum
//! to exactly 100 % of replay wall.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::Registry;

/// Wall-time buckets for one engine's event loop: per-label handler
/// time, scheduler-pop time, and total run time. Owned by the engine;
/// updated with plain `f64`/`u64` adds on the hot path and flushed into
/// a [`Registry`]'s wall section after each run.
#[derive(Debug, Default)]
pub struct HandlerProfiler {
    /// Per-event-kind `(label, seconds, events)` buckets. Worlds expose a
    /// handful of labels, so a linear scan beats a hash map here.
    handlers: Vec<(&'static str, f64, u64)>,
    /// Seconds spent inside `Scheduler::pop` (including the final empty
    /// pop that ends a run).
    pop_secs: f64,
    /// Pop attempts timed.
    pops: u64,
    /// Total wall seconds of the run loops this profiler observed.
    run_secs: f64,
}

/// One row of the per-handler breakdown: label, seconds, events, and the
/// share of total run wall (0–1).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfRow {
    /// Bucket label: an event kind, `sched.pop`, or `other`.
    pub label: String,
    /// Wall seconds attributed to the bucket.
    pub secs: f64,
    /// Events (or pops) counted into the bucket; 0 for `other`.
    pub events: u64,
    /// `secs / total run secs`; all rows sum to 1.
    pub share: f64,
}

impl HandlerProfiler {
    /// An empty profiler.
    pub fn new() -> HandlerProfiler {
        HandlerProfiler::default()
    }

    /// Charge one scheduler pop.
    #[inline]
    pub fn note_pop(&mut self, secs: f64) {
        self.pop_secs += secs;
        self.pops += 1;
    }

    /// Charge one handled event to its kind's bucket.
    #[inline]
    pub fn note_handler(&mut self, label: &'static str, secs: f64) {
        for bucket in &mut self.handlers {
            if std::ptr::eq(bucket.0, label) || bucket.0 == label {
                bucket.1 += secs;
                bucket.2 += 1;
                return;
            }
        }
        self.handlers.push((label, secs, 1));
    }

    /// Charge a completed run loop's total wall time.
    pub fn note_run(&mut self, secs: f64) {
        self.run_secs += secs;
    }

    /// Total wall seconds across observed runs.
    pub fn run_secs(&self) -> f64 {
        self.run_secs
    }

    /// Events timed across all handler buckets.
    pub fn events(&self) -> u64 {
        self.handlers.iter().map(|h| h.2).sum()
    }

    /// Flush the buckets into `registry`'s wall section
    /// (`prof.handler.<label>.secs` / `.events`, `prof.sched.pop_secs` /
    /// `.pops`, `prof.other_secs`, `prof.run_secs`). Wall entries are
    /// nondeterministic and stay out of deterministic exports; calling
    /// again overwrites with the new cumulative totals.
    pub fn flush_walls(&self, registry: &Registry) {
        let mut accounted = self.pop_secs;
        for (label, secs, events) in &self.handlers {
            registry.set_wall(&format!("prof.handler.{label}.secs"), *secs);
            registry.set_wall(&format!("prof.handler.{label}.events"), *events as f64);
            accounted += secs;
        }
        registry.set_wall("prof.sched.pop_secs", self.pop_secs);
        registry.set_wall("prof.sched.pops", self.pops as f64);
        registry.set_wall("prof.other_secs", (self.run_secs - accounted).max(0.0));
        registry.set_wall("prof.run_secs", self.run_secs);
    }

    /// The breakdown as rows sorted by descending seconds: one row per
    /// event kind, one for `sched.pop`, and an `other` residual charging
    /// un-attributed loop time (chunk injection, series sampling, loop
    /// overhead) so shares sum to exactly 1.
    pub fn report(&self) -> Vec<ProfRow> {
        let total = self.run_secs.max(1e-12);
        let mut rows: Vec<ProfRow> = self
            .handlers
            .iter()
            .map(|(label, secs, events)| ProfRow {
                label: format!("handler.{label}"),
                secs: *secs,
                events: *events,
                share: secs / total,
            })
            .collect();
        rows.push(ProfRow {
            label: "sched.pop".to_string(),
            secs: self.pop_secs,
            events: self.pops,
            share: self.pop_secs / total,
        });
        let accounted: f64 = rows.iter().map(|r| r.secs).sum();
        let other = (self.run_secs - accounted).max(0.0);
        rows.push(ProfRow {
            label: "other".to_string(),
            secs: other,
            events: 0,
            share: other / total,
        });
        rows.sort_by(|a, b| b.secs.total_cmp(&a.secs).then_with(|| a.label.cmp(&b.label)));
        rows
    }

    /// The breakdown rendered as an aligned table (label, seconds,
    /// events, percent of run wall), ending with a 100 % total row.
    pub fn render(&self) -> String {
        render_rows(&self.report(), self.run_secs)
    }
}

/// Render breakdown rows as an aligned table (label, seconds, events,
/// percent of run wall), ending with a 100 % total row whose event count
/// covers the handler buckets only (pops and `other` are not events).
pub fn render_rows(rows: &[ProfRow], run_secs: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<24} {:>12} {:>12} {:>8}", "bucket", "secs", "events", "% wall");
    for row in rows {
        let _ = writeln!(
            out,
            "{:<24} {:>12.6} {:>12} {:>7.2}%",
            row.label,
            row.secs,
            row.events,
            row.share * 100.0
        );
    }
    let share_sum: f64 = rows.iter().map(|r| r.share).sum();
    let events: u64 =
        rows.iter().filter(|r| r.label.starts_with("handler.")).map(|r| r.events).sum();
    let _ = writeln!(
        out,
        "{:<24} {:>12.6} {:>12} {:>7.2}%",
        "total",
        run_secs,
        events,
        share_sum * 100.0
    );
    out
}

/// Rebuild the breakdown from a flushed wall section (the
/// `prof.*` entries [`HandlerProfiler::flush_walls`] wrote). Returns the
/// rows plus total run seconds, or `None` when no profile was flushed.
/// This is how callers print the table after the run that owned the
/// profiler has consumed its engine.
pub fn rows_from_walls(wall: &BTreeMap<String, f64>) -> Option<(Vec<ProfRow>, f64)> {
    let run_secs = *wall.get("prof.run_secs")?;
    let total = run_secs.max(1e-12);
    let mut rows = Vec::new();
    for (key, secs) in wall {
        let Some(rest) = key.strip_prefix("prof.handler.") else { continue };
        let Some(label) = rest.strip_suffix(".secs") else { continue };
        let events =
            wall.get(&format!("prof.handler.{label}.events")).copied().unwrap_or(0.0) as u64;
        rows.push(ProfRow {
            label: format!("handler.{label}"),
            secs: *secs,
            events,
            share: secs / total,
        });
    }
    let pop_secs = wall.get("prof.sched.pop_secs").copied().unwrap_or(0.0);
    rows.push(ProfRow {
        label: "sched.pop".to_string(),
        secs: pop_secs,
        events: wall.get("prof.sched.pops").copied().unwrap_or(0.0) as u64,
        share: pop_secs / total,
    });
    let other = wall.get("prof.other_secs").copied().unwrap_or(0.0);
    rows.push(ProfRow { label: "other".to_string(), secs: other, events: 0, share: other / total });
    rows.sort_by(|a, b| b.secs.total_cmp(&a.secs).then_with(|| a.label.cmp(&b.label)));
    Some((rows, run_secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_by_label() {
        let mut prof = HandlerProfiler::new();
        prof.note_handler("arrive", 0.25);
        prof.note_handler("fetch_end", 0.0625);
        prof.note_handler("arrive", 0.25);
        prof.note_pop(0.125);
        prof.note_run(1.0);
        assert_eq!(prof.events(), 3);
        assert_eq!(prof.run_secs(), 1.0);
        let rows = prof.report();
        let arrive = rows.iter().find(|r| r.label == "handler.arrive").unwrap();
        assert_eq!(arrive.secs, 0.5);
        assert_eq!(arrive.events, 2);
        assert_eq!(arrive.share, 0.5);
    }

    #[test]
    fn shares_sum_to_one_via_other_residual() {
        let mut prof = HandlerProfiler::new();
        prof.note_handler("arrive", 0.5);
        prof.note_pop(0.25);
        prof.note_run(1.0);
        let rows = prof.report();
        let other = rows.iter().find(|r| r.label == "other").unwrap();
        assert_eq!(other.secs, 0.25);
        let total: f64 = rows.iter().map(|r| r.share).sum();
        assert!((total - 1.0).abs() < 1e-12, "shares sum to {total}");
        assert!(prof.render().contains("100.00%"));
    }

    #[test]
    fn flush_walls_lands_in_the_wall_section_only() {
        let registry = Registry::new();
        let mut prof = HandlerProfiler::new();
        prof.note_handler("arrive", 0.5);
        prof.note_pop(0.25);
        prof.note_run(1.0);
        prof.flush_walls(&registry);
        assert_eq!(registry.wall("prof.handler.arrive.secs"), Some(0.5));
        assert_eq!(registry.wall("prof.handler.arrive.events"), Some(1.0));
        assert_eq!(registry.wall("prof.sched.pop_secs"), Some(0.25));
        assert_eq!(registry.wall("prof.other_secs"), Some(0.25));
        assert_eq!(registry.wall("prof.run_secs"), Some(1.0));
        // Deterministic export stays clean.
        assert!(!registry.snapshot().to_json().contains("prof."));
    }

    #[test]
    fn rows_round_trip_through_the_wall_section() {
        let registry = Registry::new();
        let mut prof = HandlerProfiler::new();
        prof.note_handler("arrive", 0.5);
        prof.note_handler("fetch_end", 0.125);
        prof.note_pop(0.25);
        prof.note_run(1.0);
        prof.flush_walls(&registry);
        let wall = registry.snapshot().wall;
        let (rows, run_secs) = rows_from_walls(&wall).expect("profile was flushed");
        assert_eq!(run_secs, 1.0);
        assert_eq!(rows, prof.report(), "wall round-trip must preserve the breakdown");
        assert_eq!(render_rows(&rows, run_secs), prof.render());
        // No profile flushed → no rows.
        assert!(rows_from_walls(&Registry::new().snapshot().wall).is_none());
    }
}
