//! Per-task causal lifecycle tracing.
//!
//! Every task flowing through a proxy backend can carry a [`TaskTrace`]:
//! an ordered set of virtual-time spans covering the pipeline stages of
//! the paper's Figure 1 (arrival → dedup lookup → cache hit/miss →
//! pre-download → queueing → upload admission → fetch → terminal
//! outcome). Traces are recorded by a [`TaskTracer`] owned by the replay,
//! stamped exclusively with simulation time, and therefore byte-identical
//! across same-seed runs.
//!
//! Tracing is sampling-controlled: a tracer built with `sample_every = N`
//! records every N-th task and drops the others *whole* — a task is
//! either fully traced or absent, never partially recorded. The check is
//! a modulo on an immutable field, so unsampled tasks never touch the
//! mutex.
//!
//! The [`Attribution`] consumer decomposes each task's completion time
//! into per-stage contributions; the invariant is that the timed stages
//! (pre-download, queueing, fetch) exactly tile the interval from arrival
//! to the terminal event, so stage sums equal summed completion times.
//! Attributions merge losslessly, which is what lets per-shard sweeps
//! compose into one waterfall.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::flight::{FlightRecorder, FlightSnapshot};

/// A pipeline stage of one offline-downloading task.
///
/// Stages are ordered as the pipeline executes them; `Decision` is ODR's
/// routing point (absent from the plain cloud pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// The request arrives (instant).
    Arrival,
    /// ODR routes the request to a proxy (instant).
    Decision,
    /// The storage pool is consulted (instant; detail `hit` / `miss`).
    CacheLookup,
    /// The in-flight pre-download table is consulted (instant; detail
    /// `joined` / `initiated`).
    DedupLookup,
    /// Pre-downloading from the original source, including stagnation and
    /// retry time (timed).
    Predownload,
    /// Queueing between content readiness and the fetch start — user
    /// think/notification time in the cloud model (timed).
    Queue,
    /// Per-ISP upload-pool admission (instant; detail names the serving
    /// ISP, or `reject`).
    Admission,
    /// The user-facing fetch transfer (timed).
    Fetch,
}

impl Stage {
    /// Every stage in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Arrival,
        Stage::Decision,
        Stage::CacheLookup,
        Stage::DedupLookup,
        Stage::Predownload,
        Stage::Queue,
        Stage::Admission,
        Stage::Fetch,
    ];

    /// Stable lower-case label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Arrival => "arrival",
            Stage::Decision => "decision",
            Stage::CacheLookup => "cache_lookup",
            Stage::DedupLookup => "dedup_lookup",
            Stage::Predownload => "predownload",
            Stage::Queue => "queue",
            Stage::Admission => "admission",
            Stage::Fetch => "fetch",
        }
    }

    /// Index into [`Stage::ALL`]-shaped arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// How a task's lifecycle ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskEnd {
    /// The fetch completed.
    Completed,
    /// The upload pool rejected the fetch.
    Rejected,
    /// The pre-download stagnated and was abandoned.
    Stagnated,
    /// The task failed for another reason (AP failure taxonomy, ODR
    /// misroute).
    Failed,
}

impl TaskEnd {
    /// Every terminal outcome.
    pub const ALL: [TaskEnd; 4] =
        [TaskEnd::Completed, TaskEnd::Rejected, TaskEnd::Stagnated, TaskEnd::Failed];

    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            TaskEnd::Completed => "completed",
            TaskEnd::Rejected => "rejected",
            TaskEnd::Stagnated => "stagnated",
            TaskEnd::Failed => "failed",
        }
    }

    /// Index into [`TaskEnd::ALL`]-shaped arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this terminal is an anomaly (everything but completion).
    pub fn is_anomaly(self) -> bool {
        self != TaskEnd::Completed
    }
}

/// One recorded span of a task's lifecycle. Instant stages have
/// `start_ms == end_ms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpan {
    /// The pipeline stage.
    pub stage: Stage,
    /// Span start (virtual milliseconds).
    pub start_ms: u64,
    /// Span end (virtual milliseconds; equals `start_ms` for instants).
    pub end_ms: u64,
    /// Optional static detail (`hit`, `joined`, an ISP name, …).
    pub detail: Option<&'static str>,
}

impl TaskSpan {
    /// The span's duration in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.end_ms.saturating_sub(self.start_ms)
    }
}

/// The full recorded lifecycle of one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskTrace {
    /// Task id (the replay's request index).
    pub task: u64,
    /// Recorded spans, sorted by `(start_ms, stage order)` at snapshot.
    pub spans: Vec<TaskSpan>,
    /// Terminal outcome and its virtual time, once the task ended.
    pub end: Option<(TaskEnd, u64)>,
}

impl TaskTrace {
    /// Virtual arrival time: the start of the first recorded span.
    pub fn arrival_ms(&self) -> Option<u64> {
        self.spans.first().map(|s| s.start_ms)
    }

    /// Completion time (arrival → terminal event), if the task ended.
    pub fn completion_ms(&self) -> Option<u64> {
        let (_, at) = self.end?;
        Some(at.saturating_sub(self.arrival_ms()?))
    }

    /// Total recorded milliseconds in `stage`.
    pub fn stage_ms(&self, stage: Stage) -> u64 {
        self.spans.iter().filter(|s| s.stage == stage).map(TaskSpan::duration_ms).sum()
    }
}

/// Sampling and bounds for lifecycle tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record every `sample_every`-th task (1 = every task). Clamped to
    /// ≥ 1 by the constructors.
    pub sample_every: u64,
    /// Flight-recorder ring size (recent sim events kept per backend).
    pub flight_capacity: usize,
    /// Maximum anomaly dumps retained before counting drops.
    pub max_dumps: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::full()
    }
}

impl TraceConfig {
    /// Trace every task.
    pub fn full() -> TraceConfig {
        TraceConfig::sampled(1)
    }

    /// Trace every `n`-th task (`--trace-sample 1/N`; `n` clamps to ≥ 1).
    pub fn sampled(n: u64) -> TraceConfig {
        TraceConfig { sample_every: n.max(1), flight_capacity: 64, max_dumps: 256 }
    }
}

struct TaskTracerState {
    traces: BTreeMap<u64, TaskTrace>,
}

/// Records [`TaskTrace`]s for the sampled subset of a replay's tasks.
pub struct TaskTracer {
    sample_every: u64,
    state: Mutex<TaskTracerState>,
}

impl TaskTracer {
    /// A tracer recording every `sample_every`-th task.
    pub fn new(sample_every: u64) -> TaskTracer {
        TaskTracer {
            sample_every: sample_every.max(1),
            state: Mutex::new(TaskTracerState { traces: BTreeMap::new() }),
        }
    }

    /// Whether `task` falls in the sample. Tasks outside the sample are
    /// dropped whole: every recording call no-ops for them.
    pub fn sampled(&self, task: u64) -> bool {
        task % self.sample_every == 0
    }

    fn with_trace(&self, task: u64, f: impl FnOnce(&mut TaskTrace)) {
        if !self.sampled(task) {
            return;
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f(state.traces.entry(task).or_insert_with(|| TaskTrace {
            task,
            spans: Vec::new(),
            end: None,
        }))
    }

    /// Record an instant stage at `at_ms`.
    pub fn instant(&self, task: u64, stage: Stage, at_ms: u64, detail: Option<&'static str>) {
        self.span(task, stage, at_ms, at_ms, detail);
    }

    /// Record a timed stage covering `start_ms..end_ms`.
    pub fn span(
        &self,
        task: u64,
        stage: Stage,
        start_ms: u64,
        end_ms: u64,
        detail: Option<&'static str>,
    ) {
        self.with_trace(task, |t| {
            t.spans.push(TaskSpan { stage, start_ms, end_ms, detail });
        });
    }

    /// Record the task's terminal outcome at `at_ms`.
    pub fn finish(&self, task: u64, end: TaskEnd, at_ms: u64) {
        self.with_trace(task, |t| t.end = Some((end, at_ms)));
    }

    /// Copy out every recorded trace, tasks ascending, spans ordered by
    /// `(start_ms, stage order)` — a deterministic export whatever the
    /// recording interleaving was.
    pub fn snapshot(&self) -> TaskTraceSet {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut traces: Vec<TaskTrace> = state.traces.values().cloned().collect();
        for trace in &mut traces {
            trace.spans.sort_by_key(|s| (s.start_ms, s.stage.index()));
        }
        TaskTraceSet {
            traces,
            sample_every: self.sample_every,
            scheduler: String::new(),
            scenario: String::new(),
        }
    }
}

/// A deterministic point-in-time export of a [`TaskTracer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskTraceSet {
    /// Recorded traces, sorted by task id.
    pub traces: Vec<TaskTrace>,
    /// The sampling rate they were recorded under.
    pub sample_every: u64,
    /// The active scheduler kind's name, stamped by the replay layer
    /// into the Chrome-trace metadata header (empty until stamped).
    pub scheduler: String,
    /// The scenario name the traced run replayed (empty until stamped).
    pub scenario: String,
}

impl TaskTraceSet {
    /// Stamp the run context (active scheduler kind, scenario name) for
    /// the Chrome-trace `otherData` header.
    pub fn set_context(&mut self, scheduler: &str, scenario: &str) {
        self.scheduler = scheduler.to_string();
        self.scenario = scenario.to_string();
    }

    /// Decompose the recorded completion times into per-stage totals.
    pub fn attribution(&self) -> Attribution {
        let mut attribution = Attribution::default();
        for trace in &self.traces {
            attribution.add_trace(trace);
        }
        attribution
    }

    /// The trace for `task`, if recorded.
    pub fn get(&self, task: u64) -> Option<&TaskTrace> {
        self.traces.iter().find(|t| t.task == task)
    }
}

/// Per-stage aggregate of an [`Attribution`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageAgg {
    /// Tasks that recorded this stage at least once.
    pub tasks: u64,
    /// Total milliseconds spent in the stage across all tasks.
    pub total_ms: u64,
    /// The largest single-task total for the stage.
    pub max_ms: u64,
}

/// Latency attribution: each task's completion time decomposed into
/// per-stage contributions, aggregated over a trace set.
///
/// Invariant (asserted by the test suite): the timed stages tile each
/// task's lifetime exactly, so [`Attribution::total_stage_ms`] equals
/// [`Attribution::total_completion_ms`]. Attributions merge losslessly
/// across sweep shards via [`Attribution::merge`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Tasks aggregated (ended tasks only).
    pub tasks: u64,
    /// Per-stage aggregates, indexed like [`Stage::ALL`].
    pub stages: [StageAgg; Stage::ALL.len()],
    /// Terminal-outcome counts, indexed like [`TaskEnd::ALL`].
    pub ends: [u64; TaskEnd::ALL.len()],
    /// Summed completion times (arrival → terminal) in milliseconds.
    pub total_completion_ms: u64,
}

impl Attribution {
    fn add_trace(&mut self, trace: &TaskTrace) {
        let Some((end, _)) = trace.end else { return };
        self.tasks += 1;
        self.ends[end.index()] += 1;
        self.total_completion_ms += trace.completion_ms().unwrap_or(0);
        for stage in Stage::ALL {
            let ms = trace.stage_ms(stage);
            let touched = trace.spans.iter().any(|s| s.stage == stage);
            if touched {
                let agg = &mut self.stages[stage.index()];
                agg.tasks += 1;
                agg.total_ms += ms;
                agg.max_ms = agg.max_ms.max(ms);
            }
        }
    }

    /// Fold `other` into `self` (exact: counts and totals add, maxima
    /// take the max). Commutative and associative, so shard merge order
    /// cannot change the result.
    pub fn merge(&mut self, other: &Attribution) {
        self.tasks += other.tasks;
        self.total_completion_ms += other.total_completion_ms;
        for (mine, theirs) in self.ends.iter_mut().zip(other.ends) {
            *mine += theirs;
        }
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            mine.tasks += theirs.tasks;
            mine.total_ms += theirs.total_ms;
            mine.max_ms = mine.max_ms.max(theirs.max_ms);
        }
    }

    /// Total milliseconds across every timed stage — equals
    /// [`Attribution::total_completion_ms`] when the instrumentation
    /// tiles task lifetimes correctly.
    pub fn total_stage_ms(&self) -> u64 {
        self.stages.iter().map(|s| s.total_ms).sum()
    }

    /// The per-scenario latency waterfall as a fixed-width text table:
    /// one row per pipeline stage (tasks touched, total stage seconds,
    /// mean milliseconds, share of completion time, bar), then the
    /// terminal-outcome taxonomy.
    pub fn waterfall(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<14} {:>9} {:>12} {:>11} {:>7}  waterfall",
            "stage", "tasks", "total (s)", "mean (ms)", "share"
        );
        let denom = self.total_completion_ms.max(1) as f64;
        for stage in Stage::ALL {
            let agg = self.stages[stage.index()];
            if agg.tasks == 0 {
                continue;
            }
            let share = agg.total_ms as f64 / denom;
            let bar = "#".repeat((share * 40.0).round() as usize);
            let _ = writeln!(
                out,
                "  {:<14} {:>9} {:>12.1} {:>11.1} {:>6.1}%  {}",
                stage.label(),
                agg.tasks,
                agg.total_ms as f64 / 1000.0,
                agg.total_ms as f64 / agg.tasks.max(1) as f64,
                100.0 * share,
                bar
            );
        }
        let _ = writeln!(
            out,
            "  {:<14} {:>9} {:>12.1} {:>11.1} {:>6.1}%",
            "= completion",
            self.tasks,
            self.total_completion_ms as f64 / 1000.0,
            self.total_completion_ms as f64 / self.tasks.max(1) as f64,
            100.0
        );
        let _ = write!(out, "  outcomes:");
        for end in TaskEnd::ALL {
            let _ = write!(out, " {} {}", end.label(), self.ends[end.index()]);
        }
        out.push('\n');
        out
    }

    /// Deterministic compact-JSON export (stage order fixed, integers
    /// only), mergeable offline by summing fields.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"tasks\":{},\"total_completion_ms\":{},\"stages\":{{",
            self.tasks, self.total_completion_ms
        );
        let mut first = true;
        for stage in Stage::ALL {
            let agg = self.stages[stage.index()];
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"tasks\":{},\"total_ms\":{},\"max_ms\":{}}}",
                stage.label(),
                agg.tasks,
                agg.total_ms,
                agg.max_ms
            );
        }
        out.push_str("},\"ends\":{");
        for (i, end) in TaskEnd::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", end.label(), self.ends[end.index()]);
        }
        out.push_str("}}");
        out
    }
}

/// The lifecycle-tracing bundle a traced replay owns: the per-task tracer
/// plus the backend's flight recorder.
pub struct Lifecycle {
    /// The per-task span recorder.
    pub tasks: TaskTracer,
    /// The bounded ring of recent sim events, dumped on anomalies.
    pub flight: FlightRecorder,
}

impl Lifecycle {
    /// Build the bundle from a [`TraceConfig`].
    pub fn new(cfg: &TraceConfig) -> Lifecycle {
        Lifecycle {
            tasks: TaskTracer::new(cfg.sample_every),
            flight: FlightRecorder::new(cfg.flight_capacity, cfg.max_dumps),
        }
    }

    /// Snapshot both halves into a deterministic report.
    pub fn report(&self) -> LifecycleReport {
        LifecycleReport { traces: self.tasks.snapshot(), flight: self.flight.snapshot() }
    }
}

/// Point-in-time export of a [`Lifecycle`]: the task traces plus the
/// flight-recorder state (anomaly dumps with their causal event history).
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleReport {
    /// The sampled task traces.
    pub traces: TaskTraceSet,
    /// The flight recorder's anomaly dumps.
    pub flight: FlightSnapshot,
}

impl LifecycleReport {
    /// Latency attribution over the recorded traces.
    pub fn attribution(&self) -> Attribution {
        self.traces.attribution()
    }

    /// Stamp the run context (active scheduler kind, scenario name) into
    /// both exports' metadata headers: the Chrome trace's `otherData`
    /// and the flight dump's top-level fields. The replay layer calls
    /// this so cross-scheduler dump diffs are unambiguous.
    pub fn set_context(&mut self, scheduler: &str, scenario: &str) {
        self.traces.set_context(scheduler, scenario);
        self.flight.set_context(scheduler, scenario);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_tracer() -> TaskTracer {
        let tracer = TaskTracer::new(1);
        // Task 0: hit → queue → fetch, completes at 1300.
        tracer.instant(0, Stage::Arrival, 100, None);
        tracer.instant(0, Stage::CacheLookup, 100, Some("hit"));
        tracer.span(0, Stage::Queue, 100, 400, None);
        tracer.instant(0, Stage::Admission, 400, Some("telecom"));
        tracer.span(0, Stage::Fetch, 400, 1300, None);
        tracer.finish(0, TaskEnd::Completed, 1300);
        // Task 1: miss → pre-download stagnates at 5000.
        tracer.instant(1, Stage::Arrival, 200, None);
        tracer.instant(1, Stage::CacheLookup, 200, Some("miss"));
        tracer.span(1, Stage::Predownload, 200, 5000, Some("seeds"));
        tracer.finish(1, TaskEnd::Stagnated, 5000);
        tracer
    }

    #[test]
    fn stage_sums_equal_completion_times() {
        let attribution = demo_tracer().snapshot().attribution();
        assert_eq!(attribution.tasks, 2);
        assert_eq!(attribution.total_stage_ms(), attribution.total_completion_ms);
        assert_eq!(attribution.total_completion_ms, 1200 + 4800);
        assert_eq!(attribution.ends[TaskEnd::Completed.index()], 1);
        assert_eq!(attribution.ends[TaskEnd::Stagnated.index()], 1);
    }

    #[test]
    fn sampling_drops_whole_tasks() {
        let tracer = TaskTracer::new(3);
        for task in 0..10u64 {
            tracer.instant(task, Stage::Arrival, task, None);
            tracer.span(task, Stage::Fetch, task, task + 5, None);
            tracer.finish(task, TaskEnd::Completed, task + 5);
        }
        let set = tracer.snapshot();
        let ids: Vec<u64> = set.traces.iter().map(|t| t.task).collect();
        assert_eq!(ids, vec![0, 3, 6, 9]);
        for trace in &set.traces {
            // Sampled tasks carry their complete span set and terminal.
            assert_eq!(trace.spans.len(), 2);
            assert!(trace.end.is_some());
        }
    }

    #[test]
    fn snapshot_orders_spans_by_start_then_stage() {
        let tracer = TaskTracer::new(1);
        tracer.span(7, Stage::Fetch, 50, 90, None);
        tracer.instant(7, Stage::Arrival, 10, None);
        tracer.instant(7, Stage::Admission, 50, None);
        let set = tracer.snapshot();
        let stages: Vec<Stage> = set.traces[0].spans.iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec![Stage::Arrival, Stage::Admission, Stage::Fetch]);
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let whole = demo_tracer().snapshot().attribution();
        // Split the same recording into two single-task attributions.
        let set = demo_tracer().snapshot();
        let halves: Vec<Attribution> = set
            .traces
            .iter()
            .map(|t| {
                TaskTraceSet {
                    traces: vec![t.clone()],
                    sample_every: 1,
                    scheduler: String::new(),
                    scenario: String::new(),
                }
                .attribution()
            })
            .collect();
        let mut ab = halves[0].clone();
        ab.merge(&halves[1]);
        let mut ba = halves[1].clone();
        ba.merge(&halves[0]);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn waterfall_and_json_are_deterministic() {
        let a = demo_tracer().snapshot().attribution();
        let b = demo_tracer().snapshot().attribution();
        assert_eq!(a.waterfall(), b.waterfall());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.waterfall().contains("predownload"));
        assert!(a.to_json().starts_with("{\"tasks\":2"));
        assert!(a.to_json().contains("\"stagnated\":1"));
    }
}
