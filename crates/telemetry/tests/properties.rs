//! Property-based tests for the telemetry histogram and registry export:
//! quantile error bounds, exact/associative merging, and deterministic
//! serialization.

use odx_telemetry::{Histogram, Registry};
use proptest::prelude::*;

/// Split `values` into chunks and record each chunk into its own histogram.
fn shard(values: &[u64], chunks: usize) -> Vec<Histogram> {
    let per = values.len().div_ceil(chunks.max(1)).max(1);
    values
        .chunks(per)
        .map(|c| {
            let mut h = Histogram::new();
            for &v in c {
                h.record(v);
            }
            h
        })
        .collect()
}

proptest! {
    /// The reported quantile never undershoots the true quantile, and its
    /// relative overshoot is bounded by the sub-bucket precision (1/32).
    #[test]
    fn quantile_bounds_hold(
        unsorted in prop::collection::vec(0u64..1_000_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &v in &unsorted {
            h.record(v);
        }
        let mut values = unsorted;
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let reported = h.value_at_quantile(q);
        prop_assert!(reported >= exact, "reported {reported} < exact {exact}");
        // The reported value is the upper edge of exact's bucket, so the
        // overshoot is below one sub-bucket width: 1/32 of the value's
        // octave (plus one for the integer bucket edges).
        let bound = exact + exact / 32 + 1;
        prop_assert!(reported <= bound, "reported {reported} > bound {bound} (exact {exact})");
    }

    /// Merging shards is exact: any sharding of the sample stream merges
    /// back to the histogram of the whole stream.
    #[test]
    fn merge_is_exact_over_any_sharding(
        values in prop::collection::vec(any::<u64>(), 1..200),
        chunks in 1usize..8,
    ) {
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut merged = Histogram::new();
        for part in shard(&values, chunks) {
            merged.merge(&part);
        }
        prop_assert_eq!(merged, whole);
    }

    /// Merge is associative: left-fold and right-fold of the same shard
    /// list are identical histograms.
    #[test]
    fn merge_is_associative(
        values in prop::collection::vec(0u64..1_000_000, 3..200),
        chunks in 2usize..6,
    ) {
        let shards = shard(&values, chunks);
        let mut left = Histogram::new();
        for s in &shards {
            left.merge(s);
        }
        let mut right = Histogram::new();
        for s in shards.iter().rev() {
            right.merge(s);
        }
        prop_assert_eq!(left, right);
    }

    /// Count, sum, min and max are always exact regardless of bucketing.
    #[test]
    fn aggregates_are_exact(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| u128::from(v)).sum::<u128>());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }

    /// Replaying the same recording sequence into two fresh registries
    /// yields byte-identical JSON and CSV exports.
    #[test]
    fn exports_are_deterministic(
        counters in prop::collection::vec(("[a-z]{1,8}", 0u64..1000), 0..20),
        samples in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let build = || {
            let registry = Registry::new();
            for (name, n) in &counters {
                registry.counter(name).add(*n);
            }
            let h = registry.histogram("h");
            for &v in &samples {
                h.record(v);
            }
            registry.gauge("g").set(samples.len() as f64);
            registry.tracer().instant("mark", samples.len() as u64);
            registry.snapshot()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.to_json(), b.to_json());
        prop_assert_eq!(a.to_csv(), b.to_csv());
    }
}
