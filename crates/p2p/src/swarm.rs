//! The P2P swarm model: availability and per-leecher throughput.

use odx_stats::dist::{u01, Dist, LogNormal};
use rand::Rng;
use serde::Serialize;

use crate::{FailureCause, SourceOutcome};

/// Calibration constants for [`SwarmModel`].
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SwarmConfig {
    /// Maximum per-attempt failure probability (files nobody requests).
    pub fail_p_max: f64,
    /// Floor failure probability (even hot swarms occasionally stall out).
    pub fail_p_min: f64,
    /// Popularity pivot of the availability logistic (weekly requests at
    /// which failure probability is halfway between max and min).
    pub fail_pivot: f64,
    /// Logistic width in log-popularity space; smaller = sharper transition
    /// between "dead tail" and "healthy swarm".
    pub fail_width: f64,
    /// Median per-leecher rate of a barely-alive swarm (KBps).
    pub rate_base_median_kbps: f64,
    /// Popularity exponent of the rate median: median × (1 + w/pivot)^exp.
    pub rate_pop_exponent: f64,
    /// Popularity scale for the rate boost.
    pub rate_pop_pivot: f64,
    /// Log-space sigma of the per-leecher rate.
    pub rate_sigma: f64,
    /// Hard cap on any single download's source rate (KBps). 2.37 MBps — the
    /// highest speed either the cloud's VMs or the APs ever observed on their
    /// 20 Mbps links.
    pub rate_cap_kbps: f64,
    /// Median *deliverable capacity* of a seed-abundant (highly popular)
    /// swarm toward one end-user peer (KBps). This is the bandwidth
    /// multiplier effect of refs 64 and 66: with plentiful seeds the swarm
    /// can usually saturate a residential access link, so the user's own
    /// line — not the swarm — ends up the bottleneck (callers take the min
    /// with the access rate).
    pub direct_hot_median_kbps: f64,
    /// Log-space sigma for the direct-download rate.
    pub direct_hot_sigma: f64,
    /// Weekly-request threshold above which a file counts as highly popular
    /// (the paper's 84 requests/week).
    pub highly_popular_threshold: f64,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            fail_p_max: 0.72,
            fail_p_min: 0.008,
            fail_pivot: 4.5,
            fail_width: 0.35,
            rate_base_median_kbps: 28.0,
            rate_pop_exponent: 0.35,
            rate_pop_pivot: 84.0,
            rate_sigma: 1.2,
            rate_cap_kbps: odx_net::ADSL_PAYLOAD_KBPS,
            direct_hot_median_kbps: 800.0,
            direct_hot_sigma: 0.8,
            highly_popular_threshold: 84.0,
        }
    }
}

/// Stochastic model of BitTorrent/eMule swarms keyed by file popularity.
///
/// The paper's mechanism: a file's swarm population tracks its request rate,
/// so files requested < 7 times/week frequently have zero seeds (the
/// "insufficient seeds" failure), while per-leecher throughput grows only
/// mildly with popularity — seeds and leechers scale together, so the
/// seed-upload/leecher ratio stays within the same order of magnitude. The
/// observable result is the paper's pair of near-identical pre-download speed
/// CDFs for the cloud and the APs (Figs 8 and 13).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwarmModel {
    cfg: SwarmConfig,
}

impl SwarmModel {
    /// Model with explicit configuration.
    pub fn new(cfg: SwarmConfig) -> Self {
        SwarmModel { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SwarmConfig {
        &self.cfg
    }

    /// Per-attempt failure probability for a file requested `weekly_requests`
    /// times per week: a logistic in log-popularity between `fail_p_max` and
    /// `fail_p_min`.
    pub fn failure_probability(&self, weekly_requests: f64) -> f64 {
        let w = weekly_requests.max(1.0);
        let x = (self.cfg.fail_pivot.ln() - w.ln()) / self.cfg.fail_width;
        let sigmoid = 1.0 / (1.0 + (-x).exp());
        self.cfg.fail_p_min + (self.cfg.fail_p_max - self.cfg.fail_p_min) * sigmoid
    }

    /// Median per-leecher (proxy-side) rate for a swarm of this popularity.
    pub fn rate_median(&self, weekly_requests: f64) -> f64 {
        let boost = (1.0 + weekly_requests.max(0.0) / self.cfg.rate_pop_pivot)
            .powf(self.cfg.rate_pop_exponent);
        self.cfg.rate_base_median_kbps * boost
    }

    /// One pre-download attempt by a *proxy* (cloud VM or smart AP):
    /// either a sustained rate or an insufficient-seeds failure.
    pub fn proxy_attempt(&self, weekly_requests: f64, rng: &mut dyn Rng) -> SourceOutcome {
        self.proxy_attempt_decayed(weekly_requests, 0, 1.0, rng)
    }

    /// A retry-aware proxy attempt: each prior failed attempt multiplies the
    /// failure probability by `retry_decay` (< 1), modeling seed churn — a
    /// swarm dead at one instant may revive later, which is how the cloud's
    /// repeated attempts across requests slowly drain the failure pool.
    pub fn proxy_attempt_decayed(
        &self,
        weekly_requests: f64,
        prior_failures: u32,
        retry_decay: f64,
        rng: &mut dyn Rng,
    ) -> SourceOutcome {
        let p = self.failure_probability(weekly_requests)
            * retry_decay.powi(prior_failures.min(30) as i32);
        if u01(rng) < p {
            return SourceOutcome::Failed { cause: FailureCause::InsufficientSeeds };
        }
        let dist = LogNormal::from_median(self.rate_median(weekly_requests), self.cfg.rate_sigma);
        let rate = dist.sample(rng).min(self.cfg.rate_cap_kbps);
        SourceOutcome::Serving { rate_kbps: rate }
    }

    /// One *direct* download attempt by an end-user peer. For seed-abundant
    /// (highly popular) swarms the bandwidth-multiplier effect applies and
    /// rates approach user access speeds; otherwise it behaves like a proxy
    /// attempt. ODR only redirects highly popular P2P files here.
    pub fn direct_attempt(&self, weekly_requests: f64, rng: &mut dyn Rng) -> SourceOutcome {
        if weekly_requests <= self.cfg.highly_popular_threshold {
            return self.proxy_attempt(weekly_requests, rng);
        }
        if u01(rng) < self.failure_probability(weekly_requests) {
            return SourceOutcome::Failed { cause: FailureCause::InsufficientSeeds };
        }
        let dist =
            LogNormal::from_median(self.cfg.direct_hot_median_kbps, self.cfg.direct_hot_sigma);
        SourceOutcome::Serving { rate_kbps: dist.sample(rng).min(self.cfg.rate_cap_kbps) }
    }

    /// Expected seed count for a swarm (exposed for the multiplier model and
    /// diagnostics): grows sub-linearly with popularity.
    pub fn expected_seeds(&self, weekly_requests: f64) -> f64 {
        (1.0 - self.failure_probability(weekly_requests)) * (1.0 + weekly_requests * 0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> SwarmModel {
        SwarmModel::default()
    }

    #[test]
    fn failure_probability_is_monotone_decreasing() {
        let m = model();
        let mut prev = 1.0;
        for w in [1.0, 2.0, 4.0, 7.0, 20.0, 84.0, 1000.0] {
            let p = m.failure_probability(w);
            assert!(p < prev, "p({w}) = {p} should be < {prev}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn unpopular_failure_ratio_matches_paper() {
        // §5.2: smart APs fail on ≈ 42 % of unpopular files (w < 7), the
        // request-weighted average over the unpopular class. Approximate the
        // class with the trace crate's count distribution (power law on 1..6,
        // exponent 0.8) weighted by request count.
        let m = model();
        let weights: Vec<f64> = (1..=6).map(|k| (k as f64).powf(-0.8) * k as f64).collect();
        let total: f64 = weights.iter().sum();
        let avg: f64 =
            (1..=6).map(|k| m.failure_probability(k as f64) * weights[k - 1]).sum::<f64>() / total;
        // Swarm-only failure sits a touch above 42 % so that the blended
        // P2P+HTTP class failure lands on 42 % (HTTP fails less).
        assert!((avg - 0.45).abs() < 0.04, "unpopular swarm failure {avg}");
    }

    #[test]
    fn popular_files_rarely_fail() {
        let m = model();
        assert!(m.failure_probability(31.0) < 0.05, "{}", m.failure_probability(31.0));
        assert!(m.failure_probability(336.0) < 0.015);
    }

    #[test]
    fn proxy_rates_match_fig8_shape() {
        // Unpopular-file proxy attempts should have a median in the 25–40
        // KBps range and a heavy tail — the shape of the cloud's
        // pre-downloading CDF (Fig 8), which is dominated by cache misses
        // (i.e. unpopular files).
        let m = model();
        let mut rng = StdRng::seed_from_u64(30);
        let mut rates: Vec<f64> = Vec::new();
        for _ in 0..40_000 {
            if let SourceOutcome::Serving { rate_kbps } = m.proxy_attempt(2.8, &mut rng) {
                rates.push(rate_kbps);
            }
        }
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rates[rates.len() / 2];
        assert!((25.0..45.0).contains(&median), "median {median}");
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(mean > 1.8 * median, "heavy tail expected: mean {mean} vs median {median}");
        assert!(rates.last().unwrap() <= &2370.0);
    }

    #[test]
    fn direct_attempts_on_hot_swarms_are_fast() {
        // §4.2 / refs 64 and 66: highly popular files download directly "with
        // as good or greater performance than what the cloud provides"
        // (cloud fetch median = 287 KBps).
        let m = model();
        let mut rng = StdRng::seed_from_u64(31);
        let mut rates: Vec<f64> = Vec::new();
        for _ in 0..20_000 {
            if let SourceOutcome::Serving { rate_kbps } = m.direct_attempt(336.0, &mut rng) {
                rates.push(rate_kbps);
            }
        }
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rates[rates.len() / 2];
        assert!(median > 287.0, "direct hot median {median} should beat cloud fetch median");
    }

    #[test]
    fn direct_attempt_on_cold_swarm_degrades_to_proxy_behaviour() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(32);
        let mut failures = 0;
        let n = 20_000;
        for _ in 0..n {
            if m.direct_attempt(2.0, &mut rng).is_failure() {
                failures += 1;
            }
        }
        let ratio = failures as f64 / n as f64;
        let expected = m.failure_probability(2.0);
        assert!((ratio - expected).abs() < 0.02, "{ratio} vs {expected}");
    }

    #[test]
    fn rate_median_grows_mildly_with_popularity() {
        let m = model();
        let cold = m.rate_median(1.0);
        let hot = m.rate_median(336.0);
        assert!(hot > cold);
        // Mild: under an order of magnitude across the whole range — the
        // reason Fig 13's AP speeds look like Fig 8's cloud speeds.
        assert!(hot / cold < 5.0, "{hot} / {cold}");
    }

    #[test]
    fn expected_seeds_scale() {
        let m = model();
        assert!(m.expected_seeds(1.0) < 1.0, "dead-ish tail");
        assert!(m.expected_seeds(336.0) > 50.0, "hot swarms have many seeds");
    }
}
