//! A mechanistic, piece-level BitTorrent swarm micro-simulator.
//!
//! [`crate::SwarmModel`] is *statistical*: it maps popularity directly to
//! availability and per-leecher throughput, calibrated to the paper. This
//! module is the *mechanistic* counterpart — pieces, rarest-first selection,
//! tit-for-tat choking with optimistic unchoke, seeds and leechers with
//! asymmetric up/down capacities — used to validate the statistical model's
//! shape assumptions:
//!
//! * per-leecher throughput grows with the seed population but saturates at
//!   the leecher's own download capacity (the bandwidth-multiplier effect
//!   ODR relies on for highly popular files);
//! * a swarm without seeds and without full piece coverage stalls — the
//!   "insufficient seeds" failure behind Bottleneck 3;
//! * tit-for-tat forces a downloading peer to upload, producing total
//!   traffic well above the file size (§4.1's 196 %).
//!
//! The simulation is round-based (one choke interval per round, as in the
//! BitTorrent spec's 10-second rechoke) and deterministic in its RNG.

use odx_stats::dist::u01;
use rand::Rng;

/// A compact bitset over piece indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PieceSet {
    bits: Vec<u64>,
    len: usize,
    count: usize,
}

impl PieceSet {
    /// An empty set over `len` pieces.
    pub fn empty(len: usize) -> Self {
        PieceSet { bits: vec![0; len.div_ceil(64)], len, count: 0 }
    }

    /// A full set over `len` pieces.
    pub fn full(len: usize) -> Self {
        let mut s = PieceSet::empty(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Number of pieces in the set.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total pieces in the torrent.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no piece is held.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether every piece is held.
    pub fn is_complete(&self) -> bool {
        self.count == self.len
    }

    /// Membership test.
    pub fn contains(&self, piece: usize) -> bool {
        debug_assert!(piece < self.len);
        self.bits[piece / 64] & (1 << (piece % 64)) != 0
    }

    /// Insert a piece; returns whether it was new.
    pub fn insert(&mut self, piece: usize) -> bool {
        debug_assert!(piece < self.len);
        let word = &mut self.bits[piece / 64];
        let mask = 1 << (piece % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Iterate over held pieces.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }
}

/// Swarm configuration.
#[derive(Debug, Clone, Copy)]
pub struct PieceSimConfig {
    /// Number of pieces in the file.
    pub pieces: usize,
    /// Piece size in KB (BitTorrent commonly 256 KB–1 MB).
    pub piece_kb: f64,
    /// Initial seeds (hold everything).
    pub seeds: usize,
    /// Leechers beside the observer (start empty).
    pub leechers: usize,
    /// Seed upload capacity (KBps).
    pub seed_upload_kbps: f64,
    /// Leecher upload capacity (KBps) — tit-for-tat currency.
    pub leecher_upload_kbps: f64,
    /// Leecher download cap (KBps) — the access link.
    pub leecher_download_kbps: f64,
    /// Unchoke slots per peer (the classic 4 + 1 optimistic).
    pub unchoke_slots: usize,
    /// Choke-interval length (seconds per round).
    pub round_secs: f64,
    /// Per-round probability that a seed departs (churn).
    pub seed_departure_prob: f64,
    /// Give up after this many rounds without the observer completing.
    pub max_rounds: usize,
}

impl Default for PieceSimConfig {
    fn default() -> Self {
        PieceSimConfig {
            pieces: 256,
            piece_kb: 512.0,
            seeds: 3,
            leechers: 8,
            seed_upload_kbps: 64.0,
            leecher_upload_kbps: 48.0,
            leecher_download_kbps: 400.0,
            unchoke_slots: 4,
            round_secs: 10.0,
            seed_departure_prob: 0.0,
            max_rounds: 20_000,
        }
    }
}

/// What happened to the observer leecher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PieceSimOutcome {
    /// Whether the observer completed the file.
    pub completed: bool,
    /// Wall-clock seconds until completion (or until the give-up horizon).
    pub elapsed_secs: f64,
    /// The observer's average download rate (KBps) over the elapsed time.
    pub download_kbps: f64,
    /// Bytes the observer uploaded to others (KB) — tit-for-tat overhead.
    pub uploaded_kb: f64,
    /// Bytes the observer downloaded (KB).
    pub downloaded_kb: f64,
    /// Rounds the observer spent with zero progress at the end (stagnation
    /// detector input).
    pub trailing_stalled_rounds: usize,
}

impl PieceSimOutcome {
    /// Total traffic (up + down) relative to the file size — the §4.1
    /// overhead factor as seen by this peer.
    pub fn traffic_factor(&self, file_kb: f64) -> f64 {
        (self.downloaded_kb + self.uploaded_kb) / file_kb
    }
}

struct Peer {
    have: PieceSet,
    is_seed: bool,
    departed: bool,
    upload_kbps: f64,
    download_kbps: f64,
    /// KB received from each other peer in the last round (reciprocity).
    credit: Vec<f64>,
    /// In-flight KB from each uploader, not yet a whole piece (a pair's
    /// per-round budget is usually smaller than one piece, so progress
    /// carries across rounds like a real pipelined request queue).
    pending: Vec<f64>,
    downloaded_kb: f64,
    uploaded_kb: f64,
}

/// Run one swarm simulation; index 0 is the observer leecher.
pub fn simulate(cfg: &PieceSimConfig, rng: &mut dyn Rng) -> PieceSimOutcome {
    assert!(cfg.pieces > 0 && cfg.piece_kb > 0.0, "non-empty file required");
    let n = 1 + cfg.leechers + cfg.seeds;
    let mut peers: Vec<Peer> = (0..n)
        .map(|i| {
            let is_seed = i > cfg.leechers;
            Peer {
                have: if is_seed {
                    PieceSet::full(cfg.pieces)
                } else {
                    PieceSet::empty(cfg.pieces)
                },
                is_seed,
                departed: false,
                upload_kbps: if is_seed { cfg.seed_upload_kbps } else { cfg.leecher_upload_kbps },
                download_kbps: cfg.leecher_download_kbps,
                credit: vec![0.0; n],
                pending: vec![0.0; n],
                downloaded_kb: 0.0,
                uploaded_kb: 0.0,
            }
        })
        .collect();

    let file_kb = cfg.pieces as f64 * cfg.piece_kb;
    let mut rounds = 0usize;
    let mut stalled = 0usize;
    let mut optimistic_rotor = 0usize;

    while rounds < cfg.max_rounds && !peers[0].have.is_complete() {
        rounds += 1;

        // Seed churn.
        for p in peers.iter_mut().filter(|p| p.is_seed && !p.departed) {
            if u01(rng) < cfg.seed_departure_prob {
                p.departed = true;
            }
        }

        // Piece availability across present peers (for rarest-first).
        let mut availability = vec![0u32; cfg.pieces];
        for p in peers.iter().filter(|p| !p.departed) {
            for piece in p.have.iter() {
                availability[piece] += 1;
            }
        }

        // Each present peer unchokes its best reciprocators + one optimistic.
        optimistic_rotor = optimistic_rotor.wrapping_add(1);
        let mut transfers: Vec<(usize, usize, f64)> = Vec::new(); // (from, to, kb)
        for u in 0..n {
            if peers[u].departed {
                continue;
            }
            // Interested peers: present, not complete, missing something we have.
            let mut interested: Vec<usize> = (0..n)
                .filter(|&d| {
                    d != u
                        && !peers[d].departed
                        && !peers[d].have.is_complete()
                        && peers[u].have.iter().any(|p| !peers[d].have.contains(p))
                })
                .collect();
            if interested.is_empty() {
                continue;
            }
            // Tit-for-tat: seeds rotate; leechers rank by received credit.
            if peers[u].is_seed {
                interested.sort_unstable();
                let rot = optimistic_rotor % interested.len();
                interested.rotate_left(rot);
            } else {
                interested.sort_by(|&a, &b| {
                    peers[u].credit[b].partial_cmp(&peers[u].credit[a]).expect("finite")
                });
            }
            let mut unchoked: Vec<usize> =
                interested.iter().copied().take(cfg.unchoke_slots).collect();
            // Optimistic unchoke: one extra rotating peer.
            if interested.len() > unchoked.len() {
                let extra = interested[(optimistic_rotor + u) % interested.len()];
                if !unchoked.contains(&extra) {
                    unchoked.push(extra);
                }
            }
            let share = peers[u].upload_kbps * cfg.round_secs / unchoked.len() as f64;
            for d in unchoked {
                transfers.push((u, d, share));
            }
        }

        // Apply transfers: receiver-side download caps, rarest-first piece
        // completion with per-pair carryover (a pair's per-round budget is
        // typically a fraction of a piece).
        let mut progress = false;
        let mut received = vec![0.0f64; n];
        for (u, d, kb) in transfers {
            let cap = peers[d].download_kbps * cfg.round_secs - received[d];
            let kb = kb.min(cap.max(0.0));
            if kb <= 0.0 {
                continue;
            }
            peers[d].downloaded_kb += kb;
            peers[u].uploaded_kb += kb;
            peers[d].credit[u] += kb;
            peers[d].pending[u] += kb;
            received[d] += kb;
            progress = true;
            // Complete as many whole pieces as the accumulated in-flight
            // bytes from this uploader cover.
            while peers[d].pending[u] >= cfg.piece_kb && !peers[d].have.is_complete() {
                let want = peers[u]
                    .have
                    .iter()
                    .filter(|&p| !peers[d].have.contains(p))
                    .min_by_key(|&p| availability[p]);
                let Some(piece) = want else {
                    // Nothing useful left from this uploader; drop the
                    // surplus (wasted duplicate bytes).
                    peers[d].pending[u] = 0.0;
                    break;
                };
                peers[d].pending[u] -= cfg.piece_kb;
                peers[d].have.insert(piece);
                availability[piece] += 1;
            }
        }

        // Decay reciprocity so rankings track recent behaviour.
        for p in peers.iter_mut() {
            for c in p.credit.iter_mut() {
                *c *= 0.5;
            }
        }

        if received[0] > 0.0 {
            stalled = 0;
        } else {
            stalled += 1;
        }
        // Global stall: if no bytes moved this round and the remaining
        // peers do not jointly cover every piece, the swarm is dead and no
        // later round can differ — stop early.
        if !progress && availability.contains(&0) {
            break;
        }
    }

    let observer = &peers[0];
    let elapsed = rounds as f64 * cfg.round_secs;
    PieceSimOutcome {
        completed: observer.have.is_complete(),
        elapsed_secs: elapsed,
        download_kbps: if elapsed > 0.0 { observer.downloaded_kb / elapsed } else { 0.0 },
        uploaded_kb: observer.uploaded_kb,
        downloaded_kb: observer.downloaded_kb,
        trailing_stalled_rounds: stalled,
    }
    .normalized(file_kb)
}

impl PieceSimOutcome {
    fn normalized(self, _file_kb: f64) -> Self {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(cfg: &PieceSimConfig, seed: u64) -> PieceSimOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        simulate(cfg, &mut rng)
    }

    #[test]
    fn pieceset_basics() {
        let mut s = PieceSet::empty(100);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.count(), 1);
        assert_eq!(PieceSet::full(100).count(), 100);
        assert!(PieceSet::full(100).is_complete());
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn healthy_swarm_completes() {
        let out = run(&PieceSimConfig::default(), 1);
        assert!(out.completed, "{out:?}");
        assert!(out.download_kbps > 10.0, "{out:?}");
    }

    #[test]
    fn throughput_grows_with_seeds_then_saturates() {
        // The statistical model's core assumption, and the basis for ODR's
        // direct-download redirection: more seeds → faster, until the
        // observer's own access link binds.
        let rate_with = |seeds: usize| {
            let cfg = PieceSimConfig { seeds, ..PieceSimConfig::default() };
            run(&cfg, 2).download_kbps
        };
        let r1 = rate_with(1);
        let r4 = rate_with(4);
        let r16 = rate_with(16);
        let r64 = rate_with(64);
        assert!(r4 > r1, "{r1} {r4}");
        assert!(r16 > r4, "{r4} {r16}");
        // Saturation: the last doubling gains far less than the first.
        assert!(r64 <= PieceSimConfig::default().leecher_download_kbps * 1.01);
        assert!(r64 - r16 < r16 - r1, "saturating: {r1} {r4} {r16} {r64}");
    }

    #[test]
    fn seedless_incomplete_swarm_stalls() {
        let cfg = PieceSimConfig { seeds: 0, leechers: 6, max_rounds: 400, ..Default::default() };
        let out = run(&cfg, 3);
        assert!(!out.completed, "{out:?}");
        assert!(out.download_kbps < 1.0);
    }

    #[test]
    fn seed_churn_can_kill_a_download() {
        // With one flaky seed the observer often stalls partway — the
        // mechanism behind the paper's 1-hour stagnation timeouts.
        let cfg = PieceSimConfig {
            seeds: 1,
            leechers: 4,
            seed_departure_prob: 0.05,
            max_rounds: 2_000,
            ..Default::default()
        };
        let failures = (0..20).filter(|&i| !run(&cfg, 100 + i).completed).count();
        assert!(failures >= 5, "churny single-seed swarms should often fail: {failures}/20");
    }

    #[test]
    fn tit_for_tat_produces_upload_overhead() {
        let cfg = PieceSimConfig::default();
        let out = run(&cfg, 5);
        assert!(out.completed);
        let file_kb = cfg.pieces as f64 * cfg.piece_kb;
        let factor = out.traffic_factor(file_kb);
        // §4.1: P2P traffic is 150–250 % of the file size. The exact value
        // depends on swarm shape; the mechanism must at least force
        // meaningful upload.
        assert!(factor > 1.2, "observer must upload while downloading: {factor}");
        assert!(out.uploaded_kb > 0.2 * file_kb, "{out:?}");
    }

    #[test]
    fn leechers_help_distribute_popular_content() {
        // Fixing one seed, adding leechers must not collapse per-peer
        // throughput proportionally — peers exchange pieces among
        // themselves (the multiplier effect).
        let rate_with = |leechers: usize| {
            let cfg = PieceSimConfig { seeds: 1, leechers, ..PieceSimConfig::default() };
            run(&cfg, 6).download_kbps
        };
        let few = rate_with(2);
        let many = rate_with(16);
        assert!(
            many > few / 4.0,
            "9x the leechers should not mean anywhere near 9x slower: {few} vs {many}"
        );
    }

    #[test]
    fn deterministic_in_the_seed() {
        let cfg = PieceSimConfig { seed_departure_prob: 0.02, ..Default::default() };
        assert_eq!(run(&cfg, 7), run(&cfg, 7));
    }

    #[test]
    fn observer_rate_matches_statistical_model_order_of_magnitude() {
        // Cross-validation: a modest swarm (what an unpopular-but-alive
        // file looks like) should land in the tens-of-KBps regime the
        // statistical SwarmModel emits for such files.
        let cfg = PieceSimConfig {
            seeds: 1,
            leechers: 3,
            seed_upload_kbps: 48.0,
            leecher_upload_kbps: 24.0,
            ..Default::default()
        };
        let out = run(&cfg, 8);
        assert!(out.completed);
        assert!(
            (5.0..120.0).contains(&out.download_kbps),
            "tens of KBps expected: {}",
            out.download_kbps
        );
    }
}
