//! The bandwidth multiplier effect and the cloud-seeding upload governor.
//!
//! §4.2 argues that the cloud wastes upload bandwidth delivering highly
//! popular P2P files: seeding a swarm with `Sᵢ` of cloud bandwidth yields an
//! aggregate distribution bandwidth `Dᵢ = mᵢ·Sᵢ` with multiplier `mᵢ > 1`
//! (refs 64 and 66), because peers then exchange data among themselves. ODR
//! exploits this by redirecting highly popular P2P files to direct download.
//!
//! This module provides:
//!
//! * [`BandwidthMultiplier`] — `mᵢ` as a function of swarm size, the standard
//!   logarithmic form from the hybrid cloud-P2P literature;
//! * [`SeedGovernor`] — a LEDBAT-flavoured token-bucket governor that lets
//!   the cloud seed swarms only with *idle* upload capacity (§6.1 discusses
//!   LEDBAT, RFC 6817, as a future refinement of ODR).

use odx_sim::{SimTime, TokenBucket};

/// Multiplier model: `m(seeds+leechers) = 1 + eta · ln(1 + swarm_size)`.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthMultiplier {
    /// Logarithmic gain; calibrated so large swarms reach the 3–10×
    /// multipliers reported for hybrid cloud-P2P systems.
    pub eta: f64,
}

impl Default for BandwidthMultiplier {
    fn default() -> Self {
        BandwidthMultiplier { eta: 0.9 }
    }
}

impl BandwidthMultiplier {
    /// The multiplier for a swarm with `swarm_size` active peers.
    pub fn multiplier(&self, swarm_size: f64) -> f64 {
        1.0 + self.eta * (1.0 + swarm_size.max(0.0)).ln()
    }

    /// Aggregate distribution bandwidth from seeding `seed_kbps` into a
    /// swarm of the given size.
    pub fn aggregate_kbps(&self, seed_kbps: f64, swarm_size: f64) -> f64 {
        seed_kbps * self.multiplier(swarm_size)
    }

    /// Cloud upload bandwidth needed to serve demand `demand_kbps` through
    /// the swarm instead of direct uploads — the saving ODR banks on.
    pub fn required_seed_kbps(&self, demand_kbps: f64, swarm_size: f64) -> f64 {
        demand_kbps / self.multiplier(swarm_size)
    }
}

/// A LEDBAT-style background-transport governor for cloud seeding: seeding
/// traffic may only consume capacity the foreground (user fetches) leaves
/// idle, enforced with a token bucket refilled by the idle headroom.
#[derive(Debug)]
pub struct SeedGovernor {
    capacity_kbps: f64,
    bucket: TokenBucket,
}

impl SeedGovernor {
    /// Governor over a pool with `capacity_kbps` total upload capacity.
    /// `burst_secs` controls how much idle headroom may be banked.
    pub fn new(capacity_kbps: f64, burst_secs: f64) -> Self {
        assert!(capacity_kbps > 0.0, "capacity must be positive");
        SeedGovernor {
            capacity_kbps,
            bucket: TokenBucket::new(capacity_kbps, capacity_kbps * burst_secs.max(0.001)),
        }
    }

    /// The seeding rate permitted at `now` given current foreground usage.
    /// Foreground traffic always wins; seeding gets `capacity − foreground`,
    /// further limited by banked tokens.
    pub fn allowance_kbps(&mut self, now: SimTime, foreground_kbps: f64) -> f64 {
        let idle = (self.capacity_kbps - foreground_kbps).max(0.0);
        let banked = self.bucket.available(now);
        idle.min(banked.max(0.0))
    }

    /// Consume `kb` kilobytes of seeding traffic at `now`. Returns whether
    /// the bucket covered it.
    pub fn consume(&mut self, now: SimTime, kb: f64) -> bool {
        self.bucket.try_consume(now, kb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_sim::SimDuration;

    #[test]
    fn multiplier_grows_logarithmically() {
        let m = BandwidthMultiplier::default();
        assert!((m.multiplier(0.0) - 1.0 - 0.9 * 1f64.ln()).abs() < 1e-12);
        let m10 = m.multiplier(10.0);
        let m100 = m.multiplier(100.0);
        let m1000 = m.multiplier(1000.0);
        assert!(m10 < m100 && m100 < m1000);
        // Log growth: equal ratios add roughly equal increments.
        assert!(((m1000 - m100) - (m100 - m10)).abs() < 0.15);
    }

    #[test]
    fn hot_swarm_multiplier_is_substantial() {
        // A highly popular file (≈ 100+ peers) should multiply cloud seed
        // bandwidth several times — the basis of ODR's 35 % burden saving.
        let m = BandwidthMultiplier::default();
        assert!(m.multiplier(100.0) > 4.0, "{}", m.multiplier(100.0));
    }

    #[test]
    fn required_seed_inverts_aggregate() {
        let m = BandwidthMultiplier::default();
        let demand = 1000.0;
        let seed = m.required_seed_kbps(demand, 50.0);
        assert!((m.aggregate_kbps(seed, 50.0) - demand).abs() < 1e-9);
        assert!(seed < demand);
    }

    #[test]
    fn governor_yields_to_foreground() {
        let mut g = SeedGovernor::new(1000.0, 1.0);
        let t0 = SimTime::ZERO;
        assert!(g.allowance_kbps(t0, 1000.0) <= 0.0, "fully busy: no seeding");
        assert!(g.allowance_kbps(t0, 400.0) <= 600.0 + 1e-9);
        assert!(g.allowance_kbps(t0, 0.0) > 0.0);
    }

    #[test]
    fn governor_bucket_limits_bursts() {
        let mut g = SeedGovernor::new(1000.0, 0.5);
        let t0 = SimTime::ZERO;
        assert!(g.consume(t0, 500.0), "burst allowance available");
        assert!(!g.consume(t0, 500.0), "bucket drained");
        let later = t0 + SimDuration::from_millis(300);
        assert!(g.consume(later, 250.0), "refilled at capacity rate");
    }
}
