#![warn(missing_docs)]

//! # odx-p2p — data-source substrate: P2P swarms and HTTP/FTP servers
//!
//! 87 % of the files requested from offline-downloading services live in P2P
//! data swarms (68 % BitTorrent, 19 % eMule) and 13 % on HTTP/FTP servers
//! (§3). Both the cloud's pre-downloaders and the smart APs download from
//! these sources with the same tools (aria2/wget on the APs, equivalent
//! machinery in the cloud), so one source model serves both systems.
//!
//! The pieces:
//!
//! * [`SwarmModel`] — seed availability and per-leecher throughput as a
//!   function of a file's weekly request count. Unpopular files often have
//!   dead swarms (no seeds), the direct cause of the paper's Bottleneck 3:
//!   smart APs fail on 42 % of unpopular files, and 86 % of all AP failures
//!   are "insufficient seeds".
//! * [`HttpFtpModel`] — stable servers with higher rates but a failure mode
//!   of their own (no persistent/resumable download), 10 % of AP failures.
//! * [`FailureCause`] — the failure taxonomy of §5.2.
//! * [`piece_sim`] — a mechanistic piece-level swarm micro-simulator
//!   (rarest-first, tit-for-tat choking, seed churn) that validates the
//!   statistical model's shape assumptions from first principles.
//! * [`multiplier`] — the "bandwidth multiplier effect" of cloud-seeded
//!   swarms (§4.2, refs 64 and 66) plus a LEDBAT-style upload governor; these
//!   justify ODR's redirection of highly popular P2P files to direct
//!   download.
//!
//! ## Calibration
//!
//! All constants live in [`SwarmConfig`] / [`HttpFtpConfig`] and are tuned so
//! that replaying the paper's workload mix reproduces its headline numbers
//! (see `EXPERIMENTS.md`): pre-download speed median/mean ≈ 25–27 / 64–69
//! KBps, unpopular-file failure ≈ 42 % without a cache, overall fresh-attempt
//! failure ≈ 16.4–16.8 %.

mod httpftp;
pub mod multiplier;
pub mod piece_sim;
mod swarm;

pub use httpftp::{HttpFtpConfig, HttpFtpModel};
pub use swarm::{SwarmConfig, SwarmModel};

use serde::Serialize;

/// Why a pre-download attempt failed (§5.2 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FailureCause {
    /// The P2P swarm had no (or too few) seeds and progress stagnated past
    /// the timeout. 86 % of smart-AP failures.
    InsufficientSeeds,
    /// The HTTP/FTP server would not sustain a persistent/resumable
    /// download. 10 % of smart-AP failures.
    PoorConnection,
    /// Firmware/system bug in the downloader. 4 % of smart-AP failures.
    SystemBug,
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureCause::InsufficientSeeds => "insufficient seeds",
            FailureCause::PoorConnection => "poor HTTP/FTP connection",
            FailureCause::SystemBug => "system bug",
        };
        f.write_str(s)
    }
}

/// Outcome of one pre-download attempt from a data source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum SourceOutcome {
    /// The source can serve; steady-state rate in KBps (before any proxy- or
    /// storage-side caps).
    Serving {
        /// Sustained source rate (KBps).
        rate_kbps: f64,
    },
    /// The attempt fails after the stagnation timeout.
    Failed {
        /// The failure cause for the §5.2 taxonomy.
        cause: FailureCause,
    },
}

impl SourceOutcome {
    /// The serving rate, or `None` if the attempt failed.
    pub fn rate(&self) -> Option<f64> {
        match self {
            SourceOutcome::Serving { rate_kbps } => Some(*rate_kbps),
            SourceOutcome::Failed { .. } => None,
        }
    }

    /// Whether the attempt failed.
    pub fn is_failure(&self) -> bool {
        matches!(self, SourceOutcome::Failed { .. })
    }
}
