//! HTTP/FTP data-source model.

use odx_stats::dist::{u01, Dist, LogNormal};
use rand::Rng;
use serde::Serialize;

use crate::{FailureCause, SourceOutcome};

/// Calibration constants for [`HttpFtpModel`].
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HttpFtpConfig {
    /// Failure probability floor (well-run servers).
    pub fail_p_min: f64,
    /// Failure probability ceiling (obscure servers hosting rare files:
    /// closed, moved, or refusing ranged/resumable downloads).
    pub fail_p_max: f64,
    /// Popularity pivot: below this weekly request count servers get flaky.
    pub fail_pivot: f64,
    /// Logistic width in log-popularity space.
    pub fail_width: f64,
    /// Median serving rate (KBps). Servers are faster and more predictable
    /// than swarms (§3: "HTTP and FTP servers are usually stable with more
    /// predictable performance").
    pub rate_median_kbps: f64,
    /// Log-space sigma of the serving rate (tighter than swarms).
    pub rate_sigma: f64,
    /// Hard cap (KBps).
    pub rate_cap_kbps: f64,
}

impl Default for HttpFtpConfig {
    fn default() -> Self {
        HttpFtpConfig {
            fail_p_min: 0.03,
            fail_p_max: 0.26,
            fail_pivot: 4.5,
            fail_width: 0.5,
            rate_median_kbps: 150.0,
            rate_sigma: 0.9,
            rate_cap_kbps: odx_net::ADSL_PAYLOAD_KBPS,
        }
    }
}

/// Stochastic model of HTTP/FTP origins.
#[derive(Debug, Clone, Copy, Default)]
pub struct HttpFtpModel {
    cfg: HttpFtpConfig,
}

impl HttpFtpModel {
    /// Model with explicit configuration.
    pub fn new(cfg: HttpFtpConfig) -> Self {
        HttpFtpModel { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HttpFtpConfig {
        &self.cfg
    }

    /// Per-attempt failure probability (server gone / won't resume).
    pub fn failure_probability(&self, weekly_requests: f64) -> f64 {
        let w = weekly_requests.max(1.0);
        let x = (self.cfg.fail_pivot.ln() - w.ln()) / self.cfg.fail_width;
        let sigmoid = 1.0 / (1.0 + (-x).exp());
        self.cfg.fail_p_min + (self.cfg.fail_p_max - self.cfg.fail_p_min) * sigmoid
    }

    /// One download attempt from the origin server.
    pub fn attempt(&self, weekly_requests: f64, rng: &mut dyn Rng) -> SourceOutcome {
        self.attempt_decayed(weekly_requests, 0, 1.0, rng)
    }

    /// Retry-aware attempt: each prior failure multiplies the failure
    /// probability by `retry_decay` (servers come back, mirrors appear).
    pub fn attempt_decayed(
        &self,
        weekly_requests: f64,
        prior_failures: u32,
        retry_decay: f64,
        rng: &mut dyn Rng,
    ) -> SourceOutcome {
        let p = self.failure_probability(weekly_requests)
            * retry_decay.powi(prior_failures.min(30) as i32);
        if u01(rng) < p {
            return SourceOutcome::Failed { cause: FailureCause::PoorConnection };
        }
        let dist = LogNormal::from_median(self.cfg.rate_median_kbps, self.cfg.rate_sigma);
        SourceOutcome::Serving { rate_kbps: dist.sample(rng).min(self.cfg.rate_cap_kbps) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn failure_decreases_with_popularity() {
        let m = HttpFtpModel::default();
        assert!(m.failure_probability(1.0) > m.failure_probability(10.0));
        assert!(m.failure_probability(10.0) > m.failure_probability(500.0));
        assert!(m.failure_probability(500.0) >= 0.03);
    }

    #[test]
    fn servers_fail_less_than_cold_swarms() {
        // §5.2: only 10 % of AP failures are HTTP/FTP vs 86 % seeds, while
        // HTTP/FTP carries 13 % of requests and P2P 87 %. Per-request HTTP
        // failure must therefore be well below per-request swarm failure on
        // the same (unpopular) files.
        let http = HttpFtpModel::default();
        let swarm = crate::SwarmModel::default();
        for w in [1.0, 2.0, 4.0] {
            assert!(http.failure_probability(w) < 0.5 * swarm.failure_probability(w));
        }
    }

    #[test]
    fn rates_are_faster_and_tighter_than_swarms() {
        let m = HttpFtpModel::default();
        let mut rng = StdRng::seed_from_u64(33);
        let mut rates: Vec<f64> = Vec::new();
        for _ in 0..20_000 {
            if let SourceOutcome::Serving { rate_kbps } = m.attempt(3.0, &mut rng) {
                rates.push(rate_kbps);
            }
        }
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rates[rates.len() / 2];
        assert!((120.0..200.0).contains(&median), "median {median}");
        assert!(rates.iter().all(|&r| r <= 2370.0));
    }

    #[test]
    fn attempt_failure_ratio_matches_probability() {
        let m = HttpFtpModel::default();
        let mut rng = StdRng::seed_from_u64(34);
        let n = 40_000;
        let failures = (0..n).filter(|_| m.attempt(2.0, &mut rng).is_failure()).count();
        let ratio = failures as f64 / n as f64;
        assert!((ratio - m.failure_probability(2.0)).abs() < 0.01);
    }
}
