//! A minimal JSON implementation: value model, writer, and parser.
//!
//! Covers the full JSON grammar (RFC 8259) with two deliberate limits:
//! nesting depth is capped (stack safety) and numbers are `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (IEEE-754 double, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps serialization deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize to a compact string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Parse a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            if n.is_finite() {
                if *n == n.trunc() && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            } else {
                // JSON has no NaN/Inf; emit null like most encoders.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let ch = if (0xD800..=0xDBFF).contains(&cp) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid code point"))?);
                            // hex4 leaves pos past the digits; continue
                            // without the generic advance below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad hex"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad hex"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        Json::parse(&v.to_string_compact()).expect("round trip parse")
    }

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": null}], "c": "x"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        match v.get("a") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("quote\" slash\\ newline\n tab\t unicode: 旋风 \u{1}".into());
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn surrogate_pairs() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v, Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "tru", "1 2", "{\"a\"}", "\"\u{1}\"", "nan"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn object_round_trip_is_deterministic() {
        let v = Json::obj([
            ("zeta", Json::Num(1.0)),
            ("alpha", Json::Bool(false)),
            ("mid", Json::Arr(vec![Json::Null])),
        ]);
        let s1 = v.to_string_compact();
        let s2 = round_trip(&v).to_string_compact();
        assert_eq!(s1, s2);
        assert!(s1.find("alpha").unwrap() < s1.find("zeta").unwrap(), "sorted keys");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(125.0).to_string_compact(), "125");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }
}
