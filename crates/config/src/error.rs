//! Typed configuration errors: every failure names the dotted field path it
//! occurred at and, for unknown names, the nearest valid alternative.

use std::fmt;

/// A validation or parse error in a scenario specification.
///
/// `path` is the dotted field path the error is anchored at (e.g.
/// `cache.policy`, `ap_fleet.1.device`, or empty for document-level
/// problems); `message` states the violated bound or the unknown name —
/// with a "did you mean" suggestion where one exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Dotted path of the offending field ("" for document-level errors).
    pub path: String,
    /// What went wrong, including the violated bound where applicable.
    pub message: String,
}

impl ConfigError {
    /// An error anchored at `path`.
    pub fn at(path: impl Into<String>, message: impl Into<String>) -> ConfigError {
        ConfigError { path: path.into(), message: message.into() }
    }

    /// A document-level error (no single field to blame).
    pub fn doc(message: impl Into<String>) -> ConfigError {
        ConfigError { path: String::new(), message: message.into() }
    }

    /// An unknown-name error at `path`: names the rejected value and the
    /// nearest valid alternative from `candidates`.
    pub fn unknown(
        path: impl Into<String>,
        what: &str,
        got: &str,
        candidates: impl IntoIterator<Item = impl AsRef<str>>,
    ) -> ConfigError {
        let mut message = format!("unknown {what} `{got}`");
        if let Some(best) = suggest(got, candidates) {
            message.push_str(&format!(" (did you mean `{best}`?)"));
        }
        ConfigError { path: path.into(), message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "config error: {}", self.message)
        } else {
            write!(f, "config error at `{}`: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

/// The nearest valid alternative to `got` among `candidates` by edit
/// distance (ties broken by listing order). `None` when there are no
/// candidates at all — a typo always has *some* nearest neighbour, and
/// suggesting it beats silence even when the distance is large.
pub fn suggest(got: &str, candidates: impl IntoIterator<Item = impl AsRef<str>>) -> Option<String> {
    let mut best: Option<(usize, String)> = None;
    for cand in candidates {
        let cand = cand.as_ref();
        let d = levenshtein(got, cand);
        if best.as_ref().map(|(bd, _)| d < *bd).unwrap_or(true) {
            best = Some((d, cand.to_owned()));
        }
    }
    best.map(|(_, name)| name)
}

/// Classic two-row Levenshtein distance over chars.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_the_field_path() {
        let e = ConfigError::at("demand_factor", "must be > 0 (got -1)");
        assert_eq!(e.to_string(), "config error at `demand_factor`: must be > 0 (got -1)");
        let d = ConfigError::doc("expected a JSON object");
        assert_eq!(d.to_string(), "config error: expected a JSON object");
    }

    #[test]
    fn suggest_picks_the_edit_distance_minimum() {
        let names = ["paper-default", "ablate-cache", "cache-pressure"];
        assert_eq!(suggest("ablate-cach", names).as_deref(), Some("ablate-cache"));
        assert_eq!(suggest("cache-presure", names).as_deref(), Some("cache-pressure"));
        assert_eq!(suggest("x", [] as [&str; 0]), None);
    }

    #[test]
    fn unknown_errors_carry_the_suggestion() {
        let e = ConfigError::unknown("cache.policy", "cache policy", "lrru", ["lru", "gdsf"]);
        assert!(e.message.contains("unknown cache policy `lrru`"));
        assert!(e.message.contains("did you mean `lru`?"), "{}", e.message);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }
}
