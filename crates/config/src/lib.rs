//! # odx-config — scenarios as data
//!
//! The layered, validated scenario model for the offline-downloading
//! study, plus the zero-dependency canonical JSON codec it serializes
//! through. This crate is deliberately **std-only and dependency-free**:
//! it sits below every other crate in the workspace (`odx-proto`
//! re-exports [`json`]; `odx-backend` resolves [`ScenarioSpec`] into its
//! runnable `Scenario`).
//!
//! Layering order (outermost wins, axes expand last):
//!
//! 1. paper baseline — [`ScenarioSpec::baseline`]
//! 2. named preset delta — the built-ins registered by `odx-backend`
//! 3. user scenario file — [`ScenarioSpec::apply_delta`]
//! 4. CLI `--set dotted.path=value` — [`ScenarioSpec::set_path`]
//! 5. sweep-axis expansion — [`ScenarioSpec::expand_axes`]
//!
//! Every failure is a [`ConfigError`] naming the dotted field path and
//! the violated bound, with a nearest-alternative suggestion for unknown
//! names. [`ScenarioSpec::to_canonical_json`] is byte-stable:
//! `dump → parse → dump` is the identity on bytes.

#![warn(missing_docs)]

pub mod error;
pub mod json;
pub mod spec;

pub use error::{suggest, ConfigError};
pub use json::Json;
pub use spec::{axis_paths, ApSpec, BackendSpec, CacheSpec, ScenarioSpec, SimSpec, KNOWN_PATHS};
