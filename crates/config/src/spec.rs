//! The owned, serializable scenario model and its layering operations.
//!
//! A [`ScenarioSpec`] is pure data: strings and numbers, no engine types.
//! It resolves into a runnable `odx_backend::Scenario` *after* typed
//! validation (that conversion lives in `odx-backend`, which knows the
//! enum vocabularies; this crate owns the numeric bounds and the document
//! shape). Layering order, outermost last:
//!
//! 1. the paper baseline ([`ScenarioSpec::baseline`]),
//! 2. a named preset delta (the built-ins in `odx-backend`),
//! 3. a user scenario file ([`ScenarioSpec::apply_delta`]),
//! 4. CLI `--set dotted.path=value` overrides ([`ScenarioSpec::set_path`]).
//!
//! Sweep axes declared in a spec (`"axes": {"demand_factor": [1, 2]}`)
//! expand into a grid of concrete specs via [`ScenarioSpec::expand_axes`];
//! expansion happens *after* the override layers, so an axis on a key
//! always wins over a `--set` of the same key.
//!
//! [`ScenarioSpec::to_canonical_json`] emits a byte-stable dump: object
//! keys are sorted (the codec's `BTreeMap` representation), numbers render
//! through one deterministic formatter, and `dump → parse → dump` is the
//! identity on bytes (property-tested).

use std::collections::BTreeMap;

use crate::error::ConfigError;
use crate::json::Json;

/// Evaluation-layer tuning knobs (mirrors `odx_backend::BackendConfig`).
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSpec {
    /// Probability residual Internet dynamics degrade a fetch, in `[0, 1]`.
    pub dynamics_probability: f64,
    /// Warm-cache popularity pivot, `> 0`.
    pub warm_cache_pivot: f64,
    /// Failure-probability decay per failed attempt, in `(0, 1]`.
    pub retry_decay: f64,
    /// Fleet-level retry factor, in `(0, 1]`.
    pub cloud_retry_factor: f64,
    /// ADSL payload cap (KBps), `> 0`.
    pub line_payload_kbps: f64,
}

/// The pool's replacement policy and shard count, by name.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSpec {
    /// Policy name (`lru`, `lfu`, `gdsf`, `s3fifo` — validated by the
    /// resolver, which owns the policy registry).
    pub policy: String,
    /// Deterministic FxHash shard count, `>= 1`.
    pub shards: u32,
}

/// Engine-layer knobs (which future-event list the DES runs on).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// Scheduler name (`heap`, `wheel` — validated by the resolver, which
    /// owns the scheduler vocabulary). Both produce byte-identical runs;
    /// they differ only in wall-clock cost.
    pub scheduler: String,
}

/// Observability-layer knobs (the virtual-time series recorder).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySpec {
    /// Virtual seconds between metric-series samples, `> 0`. The default
    /// (one sim-hour) matches the diurnal granularity of the paper's
    /// figures; `--set telemetry.series_interval_s=60` zooms in.
    pub series_interval_s: f64,
}

/// Fault-injection knobs (mirrors `odx_faults::FaultsConfig`; the
/// baseline injects nothing, keeping default replays byte-identical).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsSpec {
    /// Fraction of the week each fault domain spends under an active
    /// window, in `[0, 1]`; `0` disables injection entirely.
    pub intensity: f64,
    /// Mean fault-window length in seconds, `> 0`.
    pub window_s: f64,
    /// Fetch-rate multiplier during net degradation windows, in `(0, 1]`.
    pub net_slowdown: f64,
    /// Pre-download rate multiplier during cloud brownouts, in `(0, 1]`.
    pub cloud_slowdown: f64,
    /// Smart-AP rate multiplier during disk-stall windows, in `(0, 1]`.
    pub ap_slowdown: f64,
}

/// Retry/backoff knobs (mirrors `odx_faults::RetryConfig`; the baseline
/// policy `none` matches the paper's observed no-retry behaviour).
#[derive(Debug, Clone, PartialEq)]
pub struct RetrySpec {
    /// Policy name (`none`, `fixed`, `expo` — validated by the resolver,
    /// which owns the retry vocabulary).
    pub policy: String,
    /// Base re-dispatch delay in seconds, `> 0`.
    pub base_delay_s: f64,
    /// Per-task retry cap (retries after the first dispatch).
    pub max_attempts: u32,
    /// Jitter fraction applied to each delay, in `[0, 1]`.
    pub jitter: f64,
}

/// One AP of the benchmark fleet, by hardware names.
#[derive(Debug, Clone, PartialEq)]
pub struct ApSpec {
    /// AP product name (`hiwifi`, `miwifi`, `newifi`).
    pub model: String,
    /// Storage device name (`sd-card`, `usb-flash`, `sata-hdd`, `usb-hdd`).
    pub device: String,
    /// Filesystem name (`fat`, `ntfs`, `ext4`).
    pub fs: String,
}

impl ApSpec {
    fn new(model: &str, device: &str, fs: &str) -> ApSpec {
        ApSpec { model: model.into(), device: device.into(), fs: fs.into() }
    }
}

/// One named experiment configuration, as data.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registry key (what `repro --scenario` takes).
    pub name: String,
    /// One-line description shown by `repro list`.
    pub summary: String,
    /// Backend tuning knobs.
    pub backend: BackendSpec,
    /// Whether the cloud's collaborative cache is enabled.
    pub cache_enabled: bool,
    /// Replacement policy and shard count of the pool.
    pub cache: CacheSpec,
    /// Multiplier on the pool's byte budget, `> 0`.
    pub cache_capacity_factor: f64,
    /// Whether privileged intra-ISP upload paths are enabled.
    pub privileged_paths: bool,
    /// User-base multiplier, `> 0`.
    pub demand_factor: f64,
    /// Override for CERNET's user share, in `[0, 1)`; `None` keeps the
    /// default 2015 mix.
    pub cernet_share: Option<f64>,
    /// Fault-injection knobs (zero intensity in the baseline).
    pub faults: FaultsSpec,
    /// Retry/backoff knobs (policy `none` in the baseline).
    pub retry: RetrySpec,
    /// The three-AP benchmark fleet.
    pub ap_fleet: Vec<ApSpec>,
    /// Engine-layer knobs.
    pub sim: SimSpec,
    /// Observability knobs (series sampling cadence).
    pub telemetry: TelemetrySpec,
    /// Sweep axes: dotted path → the values the grid takes on that axis.
    pub axes: BTreeMap<String, Vec<Json>>,
}

/// Every dotted path `set_path` accepts, in canonical listing order.
/// (`axes` itself is layered through [`ScenarioSpec::apply_delta`], not
/// through a dotted path.)
pub const KNOWN_PATHS: &[&str] = &[
    "name",
    "summary",
    "backend.dynamics_probability",
    "backend.warm_cache_pivot",
    "backend.retry_decay",
    "backend.cloud_retry_factor",
    "backend.line_payload_kbps",
    "cache_enabled",
    "cache.policy",
    "cache.shards",
    "cache_capacity_factor",
    "privileged_paths",
    "demand_factor",
    "cernet_share",
    "faults.intensity",
    "faults.window_s",
    "faults.net_slowdown",
    "faults.cloud_slowdown",
    "faults.ap_slowdown",
    "retry.policy",
    "retry.base_delay_s",
    "retry.max_attempts",
    "retry.jitter",
    "ap_fleet.0.model",
    "ap_fleet.0.device",
    "ap_fleet.0.fs",
    "ap_fleet.1.model",
    "ap_fleet.1.device",
    "ap_fleet.1.fs",
    "ap_fleet.2.model",
    "ap_fleet.2.device",
    "ap_fleet.2.fs",
    "sim.scheduler",
    "telemetry.series_interval_s",
];

/// The paths that may serve as sweep axes (everything settable except the
/// identity fields).
pub fn axis_paths() -> impl Iterator<Item = &'static str> {
    KNOWN_PATHS.iter().copied().filter(|p| *p != "name" && *p != "summary")
}

impl ScenarioSpec {
    /// The paper's measured configuration under `name` — layer 1. The
    /// numbers mirror `odx_backend::BackendConfig::default()` and friends;
    /// `odx-backend` pins the two baselines equal under test.
    pub fn baseline(name: &str, summary: &str) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_owned(),
            summary: summary.to_owned(),
            backend: BackendSpec {
                dynamics_probability: 0.09,
                warm_cache_pivot: 2.5,
                retry_decay: 0.97,
                cloud_retry_factor: 0.75,
                line_payload_kbps: 2370.0,
            },
            cache_enabled: true,
            cache: CacheSpec { policy: "lru".into(), shards: 1 },
            cache_capacity_factor: 1.0,
            privileged_paths: true,
            demand_factor: 1.0,
            cernet_share: None,
            faults: FaultsSpec {
                intensity: 0.0,
                window_s: 1800.0,
                net_slowdown: 0.35,
                cloud_slowdown: 0.4,
                ap_slowdown: 0.3,
            },
            retry: RetrySpec {
                policy: "none".into(),
                base_delay_s: 300.0,
                max_attempts: 3,
                jitter: 0.5,
            },
            ap_fleet: vec![
                ApSpec::new("hiwifi", "sd-card", "fat"),
                ApSpec::new("miwifi", "sata-hdd", "ext4"),
                ApSpec::new("newifi", "usb-flash", "ntfs"),
            ],
            sim: SimSpec { scheduler: "heap".into() },
            telemetry: TelemetrySpec { series_interval_s: 3600.0 },
            axes: BTreeMap::new(),
        }
    }

    /// Set one field through its dotted path — layer 4, and the axis
    /// mechanism. Rejects unknown paths (naming the nearest known one) and
    /// type mismatches; numeric *bounds* are checked by
    /// [`ScenarioSpec::validate`], not here, so layering stays order-free.
    pub fn set_path(&mut self, path: &str, value: &Json) -> Result<(), ConfigError> {
        match path {
            "name" => self.name = str_at(path, value)?,
            "summary" => self.summary = str_at(path, value)?,
            "backend.dynamics_probability" => {
                self.backend.dynamics_probability = num_at(path, value)?
            }
            "backend.warm_cache_pivot" => self.backend.warm_cache_pivot = num_at(path, value)?,
            "backend.retry_decay" => self.backend.retry_decay = num_at(path, value)?,
            "backend.cloud_retry_factor" => self.backend.cloud_retry_factor = num_at(path, value)?,
            "backend.line_payload_kbps" => self.backend.line_payload_kbps = num_at(path, value)?,
            "cache_enabled" => self.cache_enabled = bool_at(path, value)?,
            "cache.policy" => self.cache.policy = str_at(path, value)?,
            "cache.shards" => self.cache.shards = u32_at(path, value)?,
            "cache_capacity_factor" => self.cache_capacity_factor = num_at(path, value)?,
            "privileged_paths" => self.privileged_paths = bool_at(path, value)?,
            "demand_factor" => self.demand_factor = num_at(path, value)?,
            "cernet_share" => {
                self.cernet_share = match value {
                    Json::Null => None,
                    other => Some(num_at(path, other)?),
                }
            }
            "faults.intensity" => self.faults.intensity = num_at(path, value)?,
            "faults.window_s" => self.faults.window_s = num_at(path, value)?,
            "faults.net_slowdown" => self.faults.net_slowdown = num_at(path, value)?,
            "faults.cloud_slowdown" => self.faults.cloud_slowdown = num_at(path, value)?,
            "faults.ap_slowdown" => self.faults.ap_slowdown = num_at(path, value)?,
            "retry.policy" => self.retry.policy = str_at(path, value)?,
            "retry.base_delay_s" => self.retry.base_delay_s = num_at(path, value)?,
            "retry.max_attempts" => self.retry.max_attempts = u32_at(path, value)?,
            "retry.jitter" => self.retry.jitter = num_at(path, value)?,
            "sim.scheduler" => self.sim.scheduler = str_at(path, value)?,
            "telemetry.series_interval_s" => {
                self.telemetry.series_interval_s = num_at(path, value)?
            }
            _ => {
                if let Some(rest) = path.strip_prefix("ap_fleet.") {
                    return self.set_fleet_path(path, rest, value);
                }
                return Err(ConfigError::unknown("", "config path", path, KNOWN_PATHS));
            }
        }
        Ok(())
    }

    /// `ap_fleet.<i>.<field>` paths (the fleet is always indexed 0..3).
    fn set_fleet_path(&mut self, path: &str, rest: &str, value: &Json) -> Result<(), ConfigError> {
        let Some((index, field)) = rest.split_once('.') else {
            return Err(ConfigError::unknown("", "config path", path, KNOWN_PATHS));
        };
        let slot = match index.parse::<usize>() {
            Ok(i) if i < self.ap_fleet.len() => &mut self.ap_fleet[i],
            _ => {
                return Err(ConfigError::at(
                    path,
                    format!("AP index must be 0..{} (got `{index}`)", self.ap_fleet.len()),
                ))
            }
        };
        match field {
            "model" => slot.model = str_at(path, value)?,
            "device" => slot.device = str_at(path, value)?,
            "fs" => slot.fs = str_at(path, value)?,
            _ => return Err(ConfigError::unknown("", "config path", path, KNOWN_PATHS)),
        }
        Ok(())
    }

    /// Apply a JSON object as a delta over this spec — layer 3 (scenario
    /// files). Accepts nested objects for `backend` / `cache` / `faults` /
    /// `retry` (and `sim` / `telemetry`), a complete
    /// three-entry `ap_fleet` array (or partial per-entry objects), an
    /// `axes` object (which *replaces* any existing axes), and literal
    /// dotted keys (`"cache.policy": "gdsf"`). The reserved key `base` is
    /// the caller's concern (it names the preset this delta layers on) and
    /// is skipped here. Unknown keys are rejected with a suggestion.
    pub fn apply_delta(&mut self, delta: &Json) -> Result<(), ConfigError> {
        let Json::Obj(map) = delta else {
            return Err(ConfigError::doc("a scenario must be a JSON object"));
        };
        for (key, value) in map {
            match key.as_str() {
                "base" => {
                    str_at("base", value)?;
                }
                "backend" | "cache" | "sim" | "telemetry" | "faults" | "retry" => {
                    let Json::Obj(nested) = value else {
                        return Err(ConfigError::at(key, "expected a JSON object"));
                    };
                    for (k, v) in nested {
                        self.set_path(&format!("{key}.{k}"), v)?;
                    }
                }
                "ap_fleet" => self.apply_fleet_delta(value)?,
                "axes" => self.axes = parse_axes(value)?,
                _ => self.set_path(key, value)?,
            }
        }
        Ok(())
    }

    /// An `ap_fleet` delta: an array of exactly three objects, each holding
    /// any subset of `model` / `device` / `fs` applied onto that slot.
    fn apply_fleet_delta(&mut self, value: &Json) -> Result<(), ConfigError> {
        let Json::Arr(entries) = value else {
            return Err(ConfigError::at("ap_fleet", "expected a JSON array of 3 APs"));
        };
        if entries.len() != self.ap_fleet.len() {
            return Err(ConfigError::at(
                "ap_fleet",
                format!(
                    "fleet must have exactly {} APs (got {})",
                    self.ap_fleet.len(),
                    entries.len()
                ),
            ));
        }
        for (i, entry) in entries.iter().enumerate() {
            let Json::Obj(fields) = entry else {
                return Err(ConfigError::at(format!("ap_fleet.{i}"), "expected a JSON object"));
            };
            for (field, v) in fields {
                self.set_path(&format!("ap_fleet.{i}.{field}"), v)?;
            }
        }
        Ok(())
    }

    /// Validate every numeric bound and the document shape. Enum *names*
    /// (policy, AP model, device, filesystem) are validated by the
    /// resolver in `odx-backend`, which owns those vocabularies.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let b = &self.backend;
        check_range("backend.dynamics_probability", b.dynamics_probability, 0.0..=1.0)?;
        check_positive("backend.warm_cache_pivot", b.warm_cache_pivot)?;
        check_unit_interval_open_low("backend.retry_decay", b.retry_decay)?;
        check_unit_interval_open_low("backend.cloud_retry_factor", b.cloud_retry_factor)?;
        check_positive("backend.line_payload_kbps", b.line_payload_kbps)?;
        check_positive("cache_capacity_factor", self.cache_capacity_factor)?;
        check_positive("demand_factor", self.demand_factor)?;
        check_positive("telemetry.series_interval_s", self.telemetry.series_interval_s)?;
        check_range("faults.intensity", self.faults.intensity, 0.0..=1.0)?;
        check_positive("faults.window_s", self.faults.window_s)?;
        check_unit_interval_open_low("faults.net_slowdown", self.faults.net_slowdown)?;
        check_unit_interval_open_low("faults.cloud_slowdown", self.faults.cloud_slowdown)?;
        check_unit_interval_open_low("faults.ap_slowdown", self.faults.ap_slowdown)?;
        check_positive("retry.base_delay_s", self.retry.base_delay_s)?;
        check_range("retry.jitter", self.retry.jitter, 0.0..=1.0)?;
        if self.cache.shards == 0 {
            return Err(ConfigError::at("cache.shards", "must be >= 1 (got 0)"));
        }
        if let Some(share) = self.cernet_share {
            if !share.is_finite() || !(0.0..1.0).contains(&share) {
                return Err(ConfigError::at(
                    "cernet_share",
                    format!(
                        "must lie in [0, 1) so every ISP share stays non-negative (got {share})"
                    ),
                ));
            }
        }
        if self.ap_fleet.len() != 3 {
            return Err(ConfigError::at(
                "ap_fleet",
                format!("fleet must have exactly 3 APs (got {})", self.ap_fleet.len()),
            ));
        }
        self.validate_axes()
    }

    /// Axis keys must be sweepable paths; axis values must be non-empty
    /// lists of distinct scalars (duplicates would collide in the sweep's
    /// `(scenario, seed)` merge key and silently drop cells).
    fn validate_axes(&self) -> Result<(), ConfigError> {
        for (key, values) in &self.axes {
            if !axis_paths().any(|p| p == key) {
                return Err(ConfigError::unknown("axes", "axis path", key, axis_paths()));
            }
            let path = format!("axes.{key}");
            if values.is_empty() {
                return Err(ConfigError::at(&path, "axis must list at least one value"));
            }
            let mut seen = Vec::with_capacity(values.len());
            for v in values {
                if matches!(v, Json::Arr(_) | Json::Obj(_)) {
                    return Err(ConfigError::at(&path, "axis values must be scalars"));
                }
                let rendered = v.to_string_compact();
                if seen.contains(&rendered) {
                    return Err(ConfigError::at(
                        &path,
                        format!("axis values must be distinct (got {rendered} twice)"),
                    ));
                }
                seen.push(rendered);
            }
        }
        Ok(())
    }

    /// Expand the declared sweep axes into concrete specs: the cross
    /// product in lexicographic key order, each variant named
    /// `<name>/<key>=<value>/…` with its axes cleared and the axis value
    /// applied through [`ScenarioSpec::set_path`]. A spec without axes
    /// expands to itself. Deterministic: depends only on the spec.
    pub fn expand_axes(&self) -> Result<Vec<ScenarioSpec>, ConfigError> {
        self.validate_axes()?;
        let mut grid = vec![self.without_axes()];
        for (key, values) in &self.axes {
            let mut next = Vec::with_capacity(grid.len() * values.len());
            for base in &grid {
                for value in values {
                    let mut spec = base.clone();
                    spec.set_path(key, value)
                        .map_err(|e| ConfigError::at(format!("axes.{key}"), e.message))?;
                    spec.name = format!("{}/{key}={}", base.name, render_axis_value(value));
                    next.push(spec);
                }
            }
            grid = next;
        }
        Ok(grid)
    }

    /// This spec with its axes stripped (the per-cell payload).
    pub fn without_axes(&self) -> ScenarioSpec {
        ScenarioSpec { axes: BTreeMap::new(), ..self.clone() }
    }

    /// The canonical JSON value: every field present, object keys sorted.
    pub fn to_json(&self) -> Json {
        let fleet = self
            .ap_fleet
            .iter()
            .map(|ap| {
                Json::obj([
                    ("model", Json::Str(ap.model.clone())),
                    ("device", Json::Str(ap.device.clone())),
                    ("fs", Json::Str(ap.fs.clone())),
                ])
            })
            .collect();
        let axes = self.axes.iter().map(|(k, v)| (k.clone(), Json::Arr(v.clone()))).collect();
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("summary", Json::Str(self.summary.clone())),
            (
                "backend",
                Json::obj([
                    ("dynamics_probability", Json::Num(self.backend.dynamics_probability)),
                    ("warm_cache_pivot", Json::Num(self.backend.warm_cache_pivot)),
                    ("retry_decay", Json::Num(self.backend.retry_decay)),
                    ("cloud_retry_factor", Json::Num(self.backend.cloud_retry_factor)),
                    ("line_payload_kbps", Json::Num(self.backend.line_payload_kbps)),
                ]),
            ),
            ("cache_enabled", Json::Bool(self.cache_enabled)),
            (
                "cache",
                Json::obj([
                    ("policy", Json::Str(self.cache.policy.clone())),
                    ("shards", Json::Num(f64::from(self.cache.shards))),
                ]),
            ),
            ("cache_capacity_factor", Json::Num(self.cache_capacity_factor)),
            ("privileged_paths", Json::Bool(self.privileged_paths)),
            ("demand_factor", Json::Num(self.demand_factor)),
            ("cernet_share", self.cernet_share.map(Json::Num).unwrap_or(Json::Null)),
            (
                "faults",
                Json::obj([
                    ("intensity", Json::Num(self.faults.intensity)),
                    ("window_s", Json::Num(self.faults.window_s)),
                    ("net_slowdown", Json::Num(self.faults.net_slowdown)),
                    ("cloud_slowdown", Json::Num(self.faults.cloud_slowdown)),
                    ("ap_slowdown", Json::Num(self.faults.ap_slowdown)),
                ]),
            ),
            (
                "retry",
                Json::obj([
                    ("policy", Json::Str(self.retry.policy.clone())),
                    ("base_delay_s", Json::Num(self.retry.base_delay_s)),
                    ("max_attempts", Json::Num(f64::from(self.retry.max_attempts))),
                    ("jitter", Json::Num(self.retry.jitter)),
                ]),
            ),
            ("ap_fleet", Json::Arr(fleet)),
            ("sim", Json::obj([("scheduler", Json::Str(self.sim.scheduler.clone()))])),
            (
                "telemetry",
                Json::obj([("series_interval_s", Json::Num(self.telemetry.series_interval_s))]),
            ),
            ("axes", Json::Obj(axes)),
        ])
    }

    /// The byte-stable canonical dump: compact JSON with sorted keys and
    /// deterministic number rendering. `dump → parse → dump` is the
    /// identity on bytes for every valid spec.
    pub fn to_canonical_json(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Parse a complete canonical dump (every field present or defaulted
    /// from the paper baseline) back into a spec. The inverse of
    /// [`ScenarioSpec::to_canonical_json`].
    pub fn from_json(value: &Json) -> Result<ScenarioSpec, ConfigError> {
        let mut spec = ScenarioSpec::baseline("", "");
        spec.apply_delta(value)?;
        Ok(spec)
    }
}

/// Render one axis value for a variant name: strings bare (no quotes),
/// everything else in compact JSON.
fn render_axis_value(value: &Json) -> String {
    match value {
        Json::Str(s) => s.clone(),
        other => other.to_string_compact(),
    }
}

/// Parse the `axes` object: dotted path → non-empty array of scalars.
fn parse_axes(value: &Json) -> Result<BTreeMap<String, Vec<Json>>, ConfigError> {
    let Json::Obj(map) = value else {
        return Err(ConfigError::at("axes", "expected a JSON object of `path: [values]`"));
    };
    let mut axes = BTreeMap::new();
    for (key, values) in map {
        let Json::Arr(items) = values else {
            return Err(ConfigError::at(format!("axes.{key}"), "expected a JSON array of values"));
        };
        axes.insert(key.clone(), items.clone());
    }
    Ok(axes)
}

fn num_at(path: &str, value: &Json) -> Result<f64, ConfigError> {
    value.as_f64().ok_or_else(|| ConfigError::at(path, format!("expected a number (got {value})")))
}

fn str_at(path: &str, value: &Json) -> Result<String, ConfigError> {
    value
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| ConfigError::at(path, format!("expected a string (got {value})")))
}

fn bool_at(path: &str, value: &Json) -> Result<bool, ConfigError> {
    value
        .as_bool()
        .ok_or_else(|| ConfigError::at(path, format!("expected true or false (got {value})")))
}

fn u32_at(path: &str, value: &Json) -> Result<u32, ConfigError> {
    let n = num_at(path, value)?;
    if n.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&n) {
        return Err(ConfigError::at(path, format!("expected a non-negative integer (got {n})")));
    }
    Ok(n as u32)
}

fn check_positive(path: &str, v: f64) -> Result<(), ConfigError> {
    if !v.is_finite() || v <= 0.0 {
        return Err(ConfigError::at(path, format!("must be > 0 and finite (got {v})")));
    }
    Ok(())
}

fn check_range(
    path: &str,
    v: f64,
    range: std::ops::RangeInclusive<f64>,
) -> Result<(), ConfigError> {
    if !v.is_finite() || !range.contains(&v) {
        return Err(ConfigError::at(
            path,
            format!("must lie in [{}, {}] (got {v})", range.start(), range.end()),
        ));
    }
    Ok(())
}

fn check_unit_interval_open_low(path: &str, v: f64) -> Result<(), ConfigError> {
    if !(v.is_finite() && v > 0.0 && v <= 1.0) {
        return Err(ConfigError::at(path, format!("must lie in (0, 1] (got {v})")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> ScenarioSpec {
        ScenarioSpec::baseline("paper-default", "the paper's measured configuration")
    }

    #[test]
    fn baseline_validates() {
        baseline().validate().unwrap();
    }

    #[test]
    fn set_path_reaches_every_known_path() {
        let mut spec = baseline();
        for path in KNOWN_PATHS {
            let value = match *path {
                "name" | "summary" => Json::Str("x".into()),
                "cache_enabled" | "privileged_paths" => Json::Bool(false),
                "cache.policy" => Json::Str("gdsf".into()),
                "cache.shards" => Json::Num(4.0),
                "sim.scheduler" => Json::Str("wheel".into()),
                "cernet_share" => Json::Num(0.25),
                "retry.policy" => Json::Str("expo".into()),
                "retry.max_attempts" => Json::Num(2.0),
                p if p.starts_with("ap_fleet.") => Json::Str("newifi".into()),
                _ => Json::Num(0.5),
            };
            spec.set_path(path, &value).unwrap_or_else(|e| panic!("{path}: {e}"));
        }
    }

    #[test]
    fn unknown_path_names_the_nearest_alternative() {
        let mut spec = baseline();
        let err = spec.set_path("cache.polcy", &Json::Str("lru".into())).unwrap_err();
        assert!(err.message.contains("`cache.polcy`"), "{err}");
        assert!(err.message.contains("did you mean `cache.policy`?"), "{err}");
        let err = spec.set_path("demand_facto", &Json::Num(2.0)).unwrap_err();
        assert!(err.message.contains("did you mean `demand_factor`?"), "{err}");
    }

    #[test]
    fn type_mismatches_are_rejected_with_the_path() {
        let mut spec = baseline();
        let err = spec.set_path("demand_factor", &Json::Str("two".into())).unwrap_err();
        assert_eq!(err.path, "demand_factor");
        let err = spec.set_path("cache.shards", &Json::Num(1.5)).unwrap_err();
        assert_eq!(err.path, "cache.shards");
        assert!(err.message.contains("integer"));
        let err = spec.set_path("ap_fleet.7.model", &Json::Str("newifi".into())).unwrap_err();
        assert_eq!(err.path, "ap_fleet.7.model");
    }

    #[test]
    fn validation_rejects_the_previously_silent_configs() {
        // Regression: cernet_share outside [0, 1) used to produce negative
        // ISP shares silently; demand_factor <= 0 used to be accepted.
        for (path, value) in [
            ("cernet_share", 1.5),
            ("cernet_share", 1.0),
            ("cernet_share", -0.1),
            ("demand_factor", 0.0),
            ("demand_factor", -2.0),
            ("cache_capacity_factor", 0.0),
            ("cache_capacity_factor", -1.0),
            ("backend.retry_decay", 0.0),
            ("backend.dynamics_probability", 1.2),
            ("telemetry.series_interval_s", 0.0),
            ("telemetry.series_interval_s", -60.0),
            ("faults.intensity", 1.5),
            ("faults.intensity", -0.1),
            ("faults.window_s", 0.0),
            ("faults.net_slowdown", 0.0),
            ("faults.cloud_slowdown", 1.5),
            ("faults.ap_slowdown", -0.3),
            ("retry.base_delay_s", 0.0),
            ("retry.jitter", 1.5),
        ] {
            let mut spec = baseline();
            spec.set_path(path, &Json::Num(value)).unwrap();
            let err = spec.validate().unwrap_err();
            assert_eq!(err.path, path, "{path}={value} must fail at its own path");
        }
        let mut spec = baseline();
        spec.set_path("demand_factor", &Json::Num(f64::NAN)).unwrap();
        assert!(spec.validate().is_err(), "NaN must be rejected");
    }

    #[test]
    fn delta_layering_applies_nested_and_dotted_keys() {
        let mut spec = baseline();
        let delta = Json::parse(
            r#"{
                "name": "campus",
                "cache.policy": "gdsf",
                "backend": {"retry_decay": 0.9},
                "cernet_share": 0.3,
                "ap_fleet": [{}, {}, {"device": "usb-hdd", "fs": "ext4"}]
            }"#,
        )
        .unwrap();
        spec.apply_delta(&delta).unwrap();
        assert_eq!(spec.name, "campus");
        assert_eq!(spec.cache.policy, "gdsf");
        assert_eq!(spec.backend.retry_decay, 0.9);
        assert_eq!(spec.cernet_share, Some(0.3));
        assert_eq!(spec.ap_fleet[2].device, "usb-hdd");
        assert_eq!(spec.ap_fleet[2].fs, "ext4");
        // Untouched slots keep the baseline.
        assert_eq!(spec.ap_fleet[0].device, "sd-card");
        assert_eq!(spec.backend.dynamics_probability, 0.09);
    }

    #[test]
    fn delta_rejects_unknown_keys() {
        let mut spec = baseline();
        let delta = Json::parse(r#"{"demand_fator": 2}"#).unwrap();
        let err = spec.apply_delta(&delta).unwrap_err();
        assert!(err.message.contains("did you mean `demand_factor`?"), "{err}");
    }

    #[test]
    fn canonical_dump_round_trips_byte_identically() {
        let mut spec = baseline();
        spec.cernet_share = Some(0.3);
        spec.axes.insert("demand_factor".into(), vec![Json::Num(1.0), Json::Num(1.5)]);
        spec.axes
            .insert("cache.policy".into(), vec![Json::Str("lru".into()), Json::Str("gdsf".into())]);
        let dump = spec.to_canonical_json();
        let reparsed = ScenarioSpec::from_json(&Json::parse(&dump).unwrap()).unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.to_canonical_json(), dump);
    }

    #[test]
    fn axes_expand_to_the_cross_product_in_key_order() {
        let mut spec = baseline();
        spec.name = "grid".into();
        spec.axes.insert("demand_factor".into(), vec![Json::Num(1.0), Json::Num(2.0)]);
        spec.axes
            .insert("cache.policy".into(), vec![Json::Str("lru".into()), Json::Str("gdsf".into())]);
        let grid = spec.expand_axes().unwrap();
        assert_eq!(grid.len(), 4);
        // BTreeMap order: cache.policy is the outer axis.
        let names: Vec<&str> = grid.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "grid/cache.policy=lru/demand_factor=1",
                "grid/cache.policy=lru/demand_factor=2",
                "grid/cache.policy=gdsf/demand_factor=1",
                "grid/cache.policy=gdsf/demand_factor=2",
            ]
        );
        assert_eq!(grid[3].cache.policy, "gdsf");
        assert_eq!(grid[3].demand_factor, 2.0);
        assert!(grid.iter().all(|s| s.axes.is_empty()), "expanded specs carry no axes");
        // No axes: the spec expands to itself.
        let flat = baseline().expand_axes().unwrap();
        assert_eq!(flat, vec![baseline()]);
    }

    #[test]
    fn axes_validation_rejects_bad_declarations() {
        let mut spec = baseline();
        spec.axes.insert("name".into(), vec![Json::Str("x".into())]);
        assert!(spec.validate().is_err(), "identity fields cannot be axes");

        let mut spec = baseline();
        spec.axes.insert("demand_fator".into(), vec![Json::Num(1.0)]);
        let err = spec.validate().unwrap_err();
        assert!(err.message.contains("did you mean `demand_factor`?"), "{err}");

        let mut spec = baseline();
        spec.axes.insert("demand_factor".into(), vec![]);
        assert!(spec.validate().is_err(), "empty axis");

        let mut spec = baseline();
        spec.axes.insert("demand_factor".into(), vec![Json::Num(1.0), Json::Num(1.0)]);
        let err = spec.validate().unwrap_err();
        assert!(err.message.contains("distinct"), "{err}");
    }

    #[test]
    fn fleet_delta_must_cover_exactly_three_aps() {
        let mut spec = baseline();
        let short = Json::parse(r#"{"ap_fleet": [{}]}"#).unwrap();
        let err = spec.apply_delta(&short).unwrap_err();
        assert_eq!(err.path, "ap_fleet");
        assert!(err.message.contains("exactly 3"));
    }
}
