//! Property-based tests for the scenario-spec subsystem: the canonical
//! dump round-trips byte-identically for arbitrary valid specs, layering
//! is order-free with respect to validation, and axis expansion is a
//! deterministic cross product.

use odx_config::{ApSpec, Json, ScenarioSpec};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy for arbitrary *valid* scenario specs: every field inside its
/// validated bound, axes drawn from the sweepable numeric paths with
/// distinct values.
fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    let name = "[a-z0-9\\-]{1,16}";
    let summary = "[a-zA-Z0-9 ,.\\-]{0,40}";
    let backend = (
        0.0f64..1.0,
        0.1f64..10.0,
        (1u32..=100).prop_map(|n| f64::from(n) / 100.0),
        (1u32..=100).prop_map(|n| f64::from(n) / 100.0),
        10.0f64..10_000.0,
    );
    let cache = ("[a-z0-9]{1,8}", 1u32..8);
    let fleet = prop::collection::vec(
        ("[a-z]{2,8}", "[a-z\\-]{1,8}", "[a-z]{2,4}").prop_map(|(model, device, fs)| ApSpec {
            model,
            device,
            fs,
        }),
        3,
    );
    let axes = prop::collection::btree_map(
        prop_oneof![
            Just("demand_factor".to_owned()),
            Just("cache_capacity_factor".to_owned()),
            Just("backend.warm_cache_pivot".to_owned()),
        ],
        prop::collection::vec(1u32..50, 1..4).prop_map(|mut values| {
            values.sort_unstable();
            values.dedup();
            values.into_iter().map(|n| Json::Num(f64::from(n) / 4.0)).collect::<Vec<_>>()
        }),
        0..3,
    );
    (
        (name, summary, backend, cache),
        (
            any::<bool>(),
            0.01f64..100.0,
            any::<bool>(),
            0.01f64..100.0,
            prop::option::of(0.0f64..0.999),
            fleet,
            axes,
        ),
    )
        .prop_map(
            |(
                (name, summary, backend, cache),
                (
                    cache_enabled,
                    cache_capacity_factor,
                    privileged_paths,
                    demand_factor,
                    cernet_share,
                    ap_fleet,
                    axes,
                ),
            )| {
                let mut spec = ScenarioSpec::baseline(&name, &summary);
                (
                    spec.backend.dynamics_probability,
                    spec.backend.warm_cache_pivot,
                    spec.backend.retry_decay,
                    spec.backend.cloud_retry_factor,
                    spec.backend.line_payload_kbps,
                ) = backend;
                (spec.cache.policy, spec.cache.shards) = cache;
                spec.cache_enabled = cache_enabled;
                spec.cache_capacity_factor = cache_capacity_factor;
                spec.privileged_paths = privileged_paths;
                spec.demand_factor = demand_factor;
                spec.cernet_share = cernet_share;
                spec.ap_fleet = ap_fleet;
                spec.axes = axes;
                spec
            },
        )
}

proptest! {
    /// dump → parse → dump is the identity on bytes for every valid spec.
    #[test]
    fn canonical_dump_round_trips_byte_identically(spec in arb_spec()) {
        prop_assert!(spec.validate().is_ok(), "strategy must yield valid specs");
        let dump = spec.to_canonical_json();
        let parsed = ScenarioSpec::from_json(&Json::parse(&dump).unwrap())
            .expect("own dump re-parses");
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.to_canonical_json(), dump);
    }

    /// Applying a spec's own dump as a delta over an unrelated baseline
    /// reproduces the spec exactly — the dump is a complete delta.
    #[test]
    fn dump_is_a_complete_delta(spec in arb_spec()) {
        let dump = Json::parse(&spec.to_canonical_json()).unwrap();
        let mut other = ScenarioSpec::baseline("other", "unrelated starting point");
        other.set_path("demand_factor", &Json::Num(7.5)).unwrap();
        other.apply_delta(&dump).unwrap();
        prop_assert_eq!(other, spec);
    }

    /// Axis expansion is the full cross product, deterministic, and every
    /// expanded spec validates with no axes of its own.
    #[test]
    fn axis_expansion_is_a_deterministic_cross_product(spec in arb_spec()) {
        let grid = spec.expand_axes().unwrap();
        let want: usize = spec.axes.values().map(Vec::len).product();
        prop_assert_eq!(grid.len(), want.max(1));
        prop_assert_eq!(&grid, &spec.expand_axes().unwrap());
        let names: BTreeSet<&str> = grid.iter().map(|s| s.name.as_str()).collect();
        prop_assert_eq!(names.len(), grid.len(), "expanded names are distinct");
        for cell in &grid {
            prop_assert!(cell.axes.is_empty());
            prop_assert!(cell.validate().is_ok());
        }
    }

    /// The canonical form never depends on formatting of the input
    /// document: parsing a pretty-printed variant yields the same bytes.
    #[test]
    fn canonical_form_is_whitespace_insensitive(spec in arb_spec()) {
        let dump = spec.to_canonical_json();
        // Pad characters the string strategies never produce (`{`, `}`,
        // `:`) so string contents survive while every structural boundary
        // gains whitespace.
        let pretty = dump.replace('{', "{\n  ").replace('}', "\n}").replace(':', ": ");
        let reparsed = ScenarioSpec::from_json(&Json::parse(&pretty).unwrap()).unwrap();
        prop_assert_eq!(reparsed.to_canonical_json(), dump);
    }
}
