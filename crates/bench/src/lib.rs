#![warn(missing_docs)]

//! # odx-bench — benchmarks and the figure/table reproduction harness
//!
//! Two entry points:
//!
//! * `cargo run --release -p odx-bench --bin repro [-- <command>]` — print
//!   every table and figure of the paper next to the values this
//!   reproduction measures (and optionally dump the plotted series as TSV).
//! * `cargo bench -p odx-bench` — Criterion micro/macro benchmarks, one
//!   group per experiment plus core data-structure microbenchmarks.
//!
//! Shared helpers for both live here.

use odx::stats::Summary;

/// Format a `paper vs measured` row.
pub fn row(label: &str, paper: &str, measured: String) -> String {
    format!("  {label:<42} paper: {paper:<18} measured: {measured}")
}

/// Compact `min/median/mean/max` rendering of a summary.
pub fn mmmm(s: &Summary) -> String {
    format!("min {:.0} / med {:.0} / mean {:.0} / max {:.0}", s.min, s.median, s.mean, s.max)
}

/// Relative difference as a signed percentage string.
pub fn rel(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return String::from("n/a");
    }
    format!("{:+.0}%", 100.0 * (measured - paper) / paper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_formats_signed_percentages() {
        assert_eq!(rel(110.0, 100.0), "+10%");
        assert_eq!(rel(90.0, 100.0), "-10%");
        assert_eq!(rel(1.0, 0.0), "n/a");
    }

    #[test]
    fn row_alignment() {
        let r = row("x", "1", "2".to_owned());
        assert!(r.contains("paper: 1"));
        assert!(r.contains("measured: 2"));
    }
}
