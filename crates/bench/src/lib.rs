#![warn(missing_docs)]

//! # odx-bench — benchmarks and the figure/table reproduction harness
//!
//! Two entry points:
//!
//! * `cargo run --release -p odx-bench --bin repro [-- <command>]` — print
//!   every table and figure of the paper next to the values this
//!   reproduction measures (and optionally dump the plotted series as TSV).
//! * `cargo bench -p odx-bench` — Criterion micro/macro benchmarks, one
//!   group per experiment plus core data-structure microbenchmarks.
//!
//! Shared helpers for both live here.

use odx::stats::Summary;

/// Format a `paper vs measured` row.
pub fn row(label: &str, paper: &str, measured: String) -> String {
    format!("  {label:<42} paper: {paper:<18} measured: {measured}")
}

/// Compact `min/median/mean/max` rendering of a summary.
pub fn mmmm(s: &Summary) -> String {
    format!("min {:.0} / med {:.0} / mean {:.0} / max {:.0}", s.min, s.median, s.mean, s.max)
}

/// Relative difference as a signed percentage string.
pub fn rel(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return String::from("n/a");
    }
    format!("{:+.0}%", 100.0 * (measured - paper) / paper)
}

/// Peak resident set size in MB, read from `/proc/self/status` (`VmHWM`).
/// `None` wherever the platform doesn't expose procfs. Wall-section
/// material: nondeterministic, never part of a deterministic export.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_formats_signed_percentages() {
        assert_eq!(rel(110.0, 100.0), "+10%");
        assert_eq!(rel(90.0, 100.0), "-10%");
        assert_eq!(rel(1.0, 0.0), "n/a");
    }

    #[test]
    fn row_alignment() {
        let r = row("x", "1", "2".to_owned());
        assert!(r.contains("paper: 1"));
        assert!(r.contains("measured: 2"));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_reads_a_positive_high_water_mark() {
        let mb = peak_rss_mb().expect("procfs exposes VmHWM on Linux");
        assert!(mb > 0.0, "a running process has touched memory: {mb}");
    }
}
