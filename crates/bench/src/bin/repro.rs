//! `repro` — regenerate every table and figure of the paper and print the
//! measured values next to the published ones.
//!
//! ```sh
//! cargo run --release -p odx-bench --bin repro -- all --scale 0.1
//! cargo run --release -p odx-bench --bin repro -- fig8 fig9
//! cargo run --release -p odx-bench --bin repro -- headline --scenario ablate-cache
//! cargo run --release -p odx-bench --bin repro -- sweep --scenario all --seeds 5 --jobs 4
//! cargo run --release -p odx-bench --bin repro -- sweep --scenario all --seeds 5 --jobs 4 --progress
//! cargo run --release -p odx-bench --bin repro -- cache-compare --scenario all --seeds 3
//! cargo run --release -p odx-bench --bin repro -- attribute --scenario paper-default
//! cargo run --release -p odx-bench --bin repro -- series --out series.csv
//! cargo run --release -p odx-bench --bin repro -- profile
//! cargo run --release -p odx-bench --bin repro -- trace --out trace.json
//! cargo run --release -p odx-bench --bin repro -- bench --json BENCH_pr3.json
//! cargo run --release -p odx-bench --bin repro -- scenario show cache-pressure
//! cargo run --release -p odx-bench --bin repro -- scenario dump --all
//! cargo run --release -p odx-bench --bin repro -- --scenario-file examples/campus-pressure.json sweep --scenario campus-pressure
//! cargo run --release -p odx-bench --bin repro -- headline --set cernet_share=0.3
//! cargo run --release -p odx-bench --bin repro -- list
//! ```
//!
//! Commands: `table1 fig5 fig6 fig7 fig8 fig9 fig10 fig11 headline fig13
//! fig14 table2 fig15 fig16 fig17 ablate-cache ablate-privileged
//! ablate-storage ablate-dedup ablate-ledbat ablate-concurrency sweep-userbase sweep-cache
//! attribute trace check-trace sweep cache-compare bench series profile
//! export-traces list all`.
//! (`attribute`, `trace`, `check-trace`, `sweep`, `cache-compare`, `bench`,
//! `series`, `profile`, and `export-traces` are opt-in — they are not part
//! of `all`; `list` prints the available commands, scenario presets, and
//! cache policies.)

//! `cache-compare` sweeps every cache replacement policy (or just
//! `--policy NAME`) across the selected scenarios × seeds on the sweep
//! pool and prints per-policy offloading ratios against the paper's
//! headline numbers; its merged output is byte-identical for any `--jobs`.
//! For every other command `--policy NAME` swaps the pool's replacement
//! policy in the active scenario (the default everywhere is `lru`, the
//! paper's pool).
//!
//! Scenarios are data (`DESIGN.md` §scenarios-as-data): the active
//! configuration is built in layers — the paper baseline, a preset or
//! user-file delta, then CLI overrides. `--scenario NAME` (default
//! `paper-default`) resolves a scenario from the registry and applies it
//! to workload generation and every replay; `sweep` and `cache-compare`
//! additionally accept the selector `all`, expanding to every registered
//! scenario (and, per scenario, its declared sweep `axes` grid).
//! `--scenario-file FILE` (repeatable) loads scenario JSON — one object or
//! an array, each a delta over the baseline or over `"base": NAME` — into
//! the registry for every subcommand; later definitions replace same-name
//! earlier ones. `--set dotted.path=value` (repeatable) overrides one
//! field of the active scenario(s), e.g. `--set cache.policy=gdsf --set
//! demand_factor=2`. Any unknown name, unreadable file, or out-of-bounds
//! value exits 2 naming the offending field and the nearest valid
//! alternative.
//!
//! The `scenario` subcommand inspects the registry without running
//! anything: `scenario show NAME` and `scenario dump --all` print
//! byte-stable canonical JSON (stdout carries nothing else), and
//! `scenario check [--json FILE]` validates a scenario document from a
//! file or stdin — so `repro scenario dump --all | repro scenario check`
//! round-trips.
//!
//! `--scale` (default 0.1) sets the workload scale (1.0 =
//! the paper's full 4.08 M-task week); `--seed` the master seed; `--seeds N`
//! the sweep's seed-axis length (seeds `seed..seed+N`); `--jobs N` the
//! sweep worker-thread count (the merged output is byte-identical for any
//! value); `--sample` the §5.1/§6.2 sample size (default 1000, the
//! paper's); `--trace-sample N` enables lifecycle tracing of every `1/N`th
//! task in `sweep` (and thins `attribute`/`trace`, which otherwise trace
//! every task); `--out DIR` additionally dumps each figure's plotted series
//! as TSV (and the sweep's merged `sweep.json`/`sweep.csv`; for `trace` a
//! path ending in `.json` names the trace file itself); `--metrics FILE`
//! writes the final telemetry-registry snapshot as JSON (byte-identical
//! across same-seed runs of the same commands); `--json FILE` writes
//! `bench`'s wall-clock report and names `check-trace`'s input.
//!
//! Lifecycle observability (`DESIGN.md` §observability): `attribute`
//! replays the cloud week with per-task causal tracing and prints the
//! latency-attribution waterfall — virtual-time per stage (pre-download,
//! admission queueing, fetch, …) whose timed stages exactly tile every
//! task's arrival→completion interval. `trace` exports the same replay as
//! Chrome trace-event JSON (load in Perfetto / `chrome://tracing`) plus the
//! flight-recorder anomaly dumps next to it; `check-trace` validates such
//! a file with the in-tree parser. Both exports are byte-identical across
//! same-seed runs.
//!
//! Two clocks (`DESIGN.md` §two-clocks): `series` replays the selected
//! scenario(s) × seeds while sampling the telemetry registry every
//! `telemetry.series_interval_s` of *virtual* time (default one sim-hour,
//! `--set telemetry.series_interval_s=N`) and exports the merged
//! `(scenario, seed)`-keyed set as byte-stable JSON + CSV — identical for
//! any `--jobs`, any scheduler, and same-seed reruns. `profile` replays
//! with the per-handler *wall* profiler attached and prints the
//! nondeterministic breakdown (per-event-kind handler seconds, scheduler
//! pop cost, `other` residual) whose shares sum to exactly 100 % of
//! replay wall. `sweep --progress` streams live shard progress
//! (done/total, cumulative events/sec, ETA) to **stderr only**, leaving
//! stdout and every export byte-identical.

use std::collections::BTreeSet;
use std::io::Write;
use std::path::PathBuf;

use odx::backend::{Scenario, ScenarioRegistry};
use odx::cache::PolicyKind;
use odx::cloud::{CloudConfig, WeekReport};
use odx::config::{Json, ScenarioSpec};
use odx::net::kbps_to_gbps;
use odx::odr::replay::OdrEvalReport;
use odx::smartap::{table2, ApModel};
use odx::stats::fit::{fit_se, fit_zipf, rank_frequency};
use odx::stats::Ecdf;
use odx::storage::{DeviceKind, FsKind};
use odx::Study;
use odx_bench::{mmmm, peak_rss_mb, rel, row};
use odx_telemetry::{
    render_rows, rows_from_walls, validate_chrome_trace, LifecycleReport, Registry, TraceConfig,
};

const COMMANDS: &[&str] = &[
    "table1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "headline",
    "fig13",
    "fig14",
    "table2",
    "fig15",
    "fig16",
    "fig17",
    "ablate-cache",
    "ablate-privileged",
    "ablate-storage",
    "ablate-dedup",
    "ablate-ledbat",
    "ablate-concurrency",
    "sweep-userbase",
    "sweep-cache",
    "attribute",
    "trace",
    "check-trace",
    "sweep",
    "cache-compare",
    "resilience",
    "bench",
    "series",
    "profile",
    "export-traces",
    "list",
    "all",
];

struct Options {
    commands: BTreeSet<String>,
    /// The `scenario` subcommand's arguments (`show NAME`, `dump`,
    /// `check`) when that mode was invoked; it runs before the banner so
    /// stdout carries nothing but canonical JSON.
    scenario_cmd: Option<Vec<String>>,
    /// The scenario registry the run resolves against: the built-in
    /// presets plus every `--scenario-file` definition.
    registry: ScenarioRegistry,
    /// The active scenario after layering: baseline → preset/file delta →
    /// `--set` overrides (axes stripped; sweeps expand them per cell).
    scenario: Scenario,
    /// The raw `--scenario` selector; unlike `scenario` it may be `all`,
    /// which only `sweep`/`cache-compare` know how to expand.
    scenario_selector: String,
    /// `--set dotted.path=value` overrides, in flag order. Applied to the
    /// active scenario and to every spec a sweep selector resolves to.
    sets: Vec<(String, Json)>,
    /// `--all` (only `scenario dump` reads it).
    dump_all: bool,
    scale: f64,
    seed: u64,
    /// Sweep seed-axis length: seeds `seed..seed+seeds`.
    seeds: usize,
    /// Sweep worker threads (output is identical for any value).
    jobs: usize,
    sample: usize,
    /// Lifecycle-trace sampling: trace every `1/N`th task (0 = sweeps stay
    /// untraced; `attribute`/`trace` default to tracing every task).
    trace_sample: u64,
    out: Option<PathBuf>,
    metrics: Option<PathBuf>,
    /// Where `bench` writes its wall-clock JSON report.
    json: Option<PathBuf>,
    /// `--policy`: restrict `cache-compare` to one policy, and swap the
    /// pool policy of the active scenario for every other command.
    policy: Option<PolicyKind>,
    /// `--policy` when its value names a retry policy instead of a cache
    /// policy: restricts the `resilience` grid to baseline vs that policy.
    retry_policy: Option<odx::faults::RetryKind>,
    /// `--progress`: live shard progress on stderr for `sweep`,
    /// `cache-compare`, and `series` (stdout stays byte-identical).
    progress: bool,
}

impl Options {
    /// The lifecycle [`TraceConfig`] for `attribute`/`trace`: every task
    /// unless `--trace-sample N` thinned it.
    fn trace_config(&self) -> TraceConfig {
        if self.trace_sample > 1 {
            TraceConfig::sampled(self.trace_sample)
        } else {
            TraceConfig::full()
        }
    }
}

/// Print the valid subcommands and scenario presets to `out`.
fn print_usage(out: &mut dyn Write) {
    let _ = writeln!(out, "subcommands:");
    let _ = writeln!(out, "  {}", COMMANDS.join(" "));
    let _ =
        writeln!(out, "  scenario show NAME | scenario dump --all | scenario check [--json FILE]");
    let _ = writeln!(
        out,
        "flags: --scenario NAME --scenario-file FILE --set dotted.path=value --policy NAME \
         --scale F --seed N --seeds N --jobs N --sample N \
         --trace-sample N --out DIR --metrics FILE --json FILE --progress"
    );
    let _ = writeln!(out, "scenarios (--scenario):");
    for s in Study::scenarios().all() {
        let _ = writeln!(out, "  {:<18} {}", s.name, s.summary);
    }
    let _ = writeln!(out, "  {:<18} every preset above (sweep / cache-compare)", "all");
    let _ = writeln!(out, "cache policies (--policy / cache-compare):");
    for p in PolicyKind::ALL {
        let _ = writeln!(out, "  {:<18} {}", p.name(), p.summary());
    }
    let _ = writeln!(
        out,
        "retry policies (--policy / resilience): {}",
        odx::faults::RetryKind::ALL.map(|k| k.name()).join(" ")
    );
}

/// Reject `what` with the usage listing on stderr and a non-zero exit.
fn usage_error(what: &str) -> ! {
    fail_usage(&format!("unknown {what}"));
}

/// Reject the invocation: `message` plus the usage listing on stderr,
/// exit 2 (the CLI-usage exit code — runtime failures exit 1).
fn fail_usage(message: &str) -> ! {
    let mut err = std::io::stderr();
    let _ = writeln!(err, "repro: {message}");
    print_usage(&mut err);
    std::process::exit(2);
}

/// Parse a `--set dotted.path=value` operand. The value is JSON when it
/// parses as JSON (`2`, `true`, `["a","b"]`) and a bare string otherwise
/// (`gdsf` needs no quoting).
fn parse_set(operand: &str) -> (String, Json) {
    let Some((path, raw)) = operand.split_once('=') else {
        fail_usage(&format!("--set needs dotted.path=value (got `{operand}`)"));
    };
    let value = Json::parse(raw).unwrap_or_else(|_| Json::Str(raw.to_owned()));
    (path.to_owned(), value)
}

fn parse_args() -> Options {
    let mut commands = BTreeSet::new();
    let mut positionals: Vec<String> = Vec::new();
    let mut scenario_selector = "paper-default".to_owned();
    let mut scenario_files: Vec<PathBuf> = Vec::new();
    let mut sets: Vec<(String, Json)> = Vec::new();
    let mut dump_all = false;
    let mut scale = 0.1;
    let mut seed = 2015;
    let mut seeds = 1;
    let mut jobs = 1;
    let mut sample = 1000;
    let mut trace_sample = 0;
    let mut out = None;
    let mut metrics = None;
    let mut json = None;
    let mut policy = None;
    let mut retry_policy = None;
    let mut progress = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => scenario_selector = args.next().expect("--scenario value"),
            "--scenario-file" => {
                scenario_files.push(PathBuf::from(args.next().expect("--scenario-file value")))
            }
            "--set" => sets.push(parse_set(&args.next().expect("--set value"))),
            "--all" => dump_all = true,
            "--policy" => {
                // Cache and retry policy names share the flag (the two
                // namespaces are disjoint): `lru` narrows cache-compare,
                // `expo` narrows the resilience grid.
                let name = args.next().expect("--policy value");
                match (PolicyKind::parse(&name), odx::faults::RetryKind::parse(&name)) {
                    (Some(p), _) => policy = Some(p),
                    (None, Some(r)) => retry_policy = Some(r),
                    (None, None) => usage_error(&format!("cache or retry policy `{name}`")),
                }
            }
            "--scale" => scale = args.next().expect("--scale value").parse().expect("scale"),
            "--seed" => seed = args.next().expect("--seed value").parse().expect("seed"),
            "--seeds" => seeds = args.next().expect("--seeds value").parse().expect("seeds"),
            "--jobs" => jobs = args.next().expect("--jobs value").parse().expect("jobs"),
            "--sample" => sample = args.next().expect("--sample value").parse().expect("sample"),
            "--trace-sample" => {
                trace_sample =
                    args.next().expect("--trace-sample value").parse().expect("trace-sample")
            }
            "--out" => out = Some(PathBuf::from(args.next().expect("--out dir"))),
            "--metrics" => metrics = Some(PathBuf::from(args.next().expect("--metrics file"))),
            "--json" => json = Some(PathBuf::from(args.next().expect("--json file"))),
            "--progress" => progress = true,
            flag if flag.starts_with('-') => usage_error(&format!("flag `{flag}`")),
            word => positionals.push(word.to_owned()),
        }
    }

    // Layer 1+2: built-in presets, then user scenario files (for *every*
    // subcommand — sweeps, cache-compare, and the scenario inspector all
    // resolve against the same registry).
    let mut registry = Study::scenarios();
    for file in &scenario_files {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            fail_usage(&format!("cannot read scenario file `{}`: {e}", file.display()))
        });
        registry
            .load_json(&text)
            .unwrap_or_else(|e| fail_usage(&format!("in `{}`: {e}", file.display())));
    }

    // `scenario show/dump/check` is an inspector mode, not a figure
    // command: record it and let `main` run it before the banner.
    let scenario_cmd = if positionals.first().map(String::as_str) == Some("scenario") {
        Some(positionals.split_off(1))
    } else {
        for cmd in &positionals {
            if !COMMANDS.contains(&cmd.as_str()) {
                usage_error(&format!("subcommand `{cmd}`"));
            }
            commands.insert(cmd.clone());
        }
        if commands.is_empty() {
            commands.insert("all".to_owned());
        }
        None
    };

    // Layer 3+4: resolve the `--scenario` selector against the registry
    // (`all` is a sweep-only selector — single-scenario commands keep the
    // baseline), then apply the `--set` overrides. Typed validation runs
    // in `from_spec`; any violation exits 2 naming the field.
    let mut spec = registry.spec("paper-default").cloned().expect("builtin baseline");
    if scenario_selector != "all" {
        spec = registry.spec(&scenario_selector).cloned().unwrap_or_else(|| {
            let err = odx::config::ConfigError::unknown(
                "--scenario",
                "scenario",
                &scenario_selector,
                registry.names(),
            );
            fail_usage(&err.message)
        });
    }
    for (path, value) in &sets {
        spec.set_path(path, value).unwrap_or_else(|e| fail_usage(&e.to_string()));
    }
    let mut scenario =
        Scenario::from_spec(&spec.without_axes()).unwrap_or_else(|e| fail_usage(&e.to_string()));
    // `--policy` reconfigures the active scenario's pool for the
    // single-scenario commands; `cache-compare` reads it as an axis filter.
    if let Some(policy) = policy {
        scenario.cache.policy = policy;
    }
    Options {
        commands,
        scenario_cmd,
        registry,
        scenario,
        scenario_selector,
        sets,
        dump_all,
        scale,
        seed,
        seeds: seeds.max(1),
        jobs: jobs.max(1),
        sample,
        trace_sample,
        out,
        metrics,
        json,
        policy,
        retry_policy,
        progress,
    }
}

fn main() {
    let opts = parse_args();
    // The scenario inspector runs before the banner: its stdout is
    // canonical JSON (or the check verdict) and nothing else, so
    // `repro scenario dump --all | repro scenario check` round-trips.
    if let Some(args) = &opts.scenario_cmd {
        scenario_cmd(&opts, args);
        return;
    }
    if opts.commands.contains("list") {
        print_usage(&mut std::io::stdout());
        return;
    }
    let want = |c: &str| opts.commands.contains("all") || opts.commands.contains(c);
    println!(
        "odx repro — scenario {} scale {} seed {} sample {}  (paper: scale 1.0 = 4,084,417 tasks)",
        opts.scenario.name, opts.scale, opts.seed, opts.sample
    );
    if let Some(dir) = &opts.out {
        // `trace --out trace.json` names a file, not a directory.
        if dir.extension().is_none() {
            std::fs::create_dir_all(dir).expect("create --out dir");
        } else if let Some(parent) = dir.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).expect("create --out parent dir");
        }
    }

    // `sweep`, `bench`, and the lifecycle commands are standalone: they
    // build their own per-cell studies, so they run before (and can skip)
    // the shared study below.
    if opts.commands.contains("check-trace") {
        check_trace_cmd(&opts);
    }
    if opts.commands.contains("attribute") {
        attribute_cmd(&opts);
    }
    if opts.commands.contains("trace") {
        trace_cmd(&opts);
    }
    if opts.commands.contains("sweep") {
        sweep_grid(&opts);
    }
    if opts.commands.contains("cache-compare") {
        cache_compare(&opts);
    }
    if opts.commands.contains("resilience") {
        resilience_cmd(&opts);
    }
    if opts.commands.contains("bench") {
        bench_report(&opts);
    }
    if opts.commands.contains("series") {
        series_cmd(&opts);
    }
    if opts.commands.contains("profile") {
        profile_cmd(&opts);
    }
    let only_standalone = opts.commands.iter().all(|c| {
        matches!(
            c.as_str(),
            "sweep"
                | "cache-compare"
                | "resilience"
                | "bench"
                | "series"
                | "profile"
                | "attribute"
                | "trace"
                | "check-trace"
        )
    });
    if only_standalone {
        write_metrics(&opts);
        return;
    }

    let study = Study::generate_scenario(opts.scale, opts.seed, &opts.scenario);

    if want("table1") {
        table1();
    }
    if want("fig5") {
        fig5(&study, &opts);
    }
    if want("fig6") || want("fig7") {
        fig6_fig7(&study, &opts);
    }

    let needs_cloud =
        ["fig8", "fig9", "fig10", "fig11", "headline", "fig16"].iter().any(|c| want(c))
            || want("ablate-cache")
            || want("ablate-privileged");
    let cloud = needs_cloud.then(|| {
        // Wall-clock perf of the main replay rides along in the registry's
        // separate `wall` section (excluded from `--metrics`, printed by
        // `headline`, exported only by the full perf report).
        let registry = odx_telemetry::global();
        let events_before = registry.counter("sim.events").get();
        let start = std::time::Instant::now();
        let report = study.replay_cloud_scenario(&opts.scenario);
        let wall = start.elapsed().as_secs_f64();
        let events = registry.counter("sim.events").get() - events_before;
        registry.set_wall("sim.wall_secs", wall);
        registry.set_wall("sim.events_per_sec", events as f64 / wall.max(1e-9));
        report
    });

    if let Some(report) = &cloud {
        if want("fig8") {
            fig8(report, &opts);
        }
        if want("fig9") {
            fig9(report, &opts);
        }
        if want("fig10") {
            fig10(report);
        }
        if want("fig11") {
            fig11(report, &opts);
        }
        if want("headline") {
            headline(report);
        }
    }

    let needs_ap = want("fig13") || want("fig14") || want("headline");
    let aps = needs_ap.then(|| study.replay_smart_aps_scenario(opts.sample, &opts.scenario));
    if let Some(report) = &aps {
        if want("fig13") {
            fig13(report, &opts);
        }
        if want("fig14") {
            fig14(report, &opts);
        }
        if want("headline") {
            ap_headline(report);
        }
    }

    if want("table2") {
        print_table2();
    }
    if want("fig15") {
        fig15();
    }
    if want("fig16") || want("fig17") || want("headline") {
        let eval = study.replay_odr_scenario(opts.sample, &opts.scenario);
        if want("fig16") {
            fig16(cloud.as_ref(), &eval, opts.scale);
        }
        if want("fig17") {
            fig17(&eval, &opts);
        }
        if want("headline") {
            odr_headline(&eval);
            if let Some(report) = &cloud {
                fault_taxonomy(report);
            }
        }
    }
    if want("ablate-cache") {
        ablate_cache(&study, cloud.as_ref().expect("cloud replay present"));
    }
    if want("ablate-privileged") {
        ablate_privileged(&study, cloud.as_ref().expect("cloud replay present"));
    }
    if want("ablate-storage") {
        ablate_storage();
    }
    if want("sweep-userbase") {
        sweep_userbase(&study);
    }
    if want("ablate-dedup") {
        ablate_dedup(&study);
    }
    if want("ablate-ledbat") {
        ablate_ledbat(&study);
    }
    if want("ablate-concurrency") {
        ablate_concurrency(&study, opts.sample);
    }
    if want("sweep-cache") {
        sweep_cache(&study);
    }
    if opts.commands.contains("export-traces") {
        export_traces(&study, &opts);
    }

    write_metrics(&opts);
}

/// Record the process peak RSS in the (nondeterministic, export-excluded)
/// wall section, then write the deterministic global-registry snapshot if
/// `--metrics` asked. Runs at the end of every command path.
fn write_metrics(opts: &Options) {
    if let Some(mb) = peak_rss_mb() {
        odx_telemetry::global().set_wall("proc.peak_rss_mb", mb);
    }
    if let Some(path) = &opts.metrics {
        let json = odx_telemetry::global().snapshot().to_json();
        std::fs::write(path, &json).expect("write --metrics file");
        println!("\n[metrics snapshot → {}]", path.display());
    }
}

fn section(title: &str) {
    println!("\n=== {title} ===");
}

fn dump_cdf(opts: &Options, name: &str, ecdf: &Ecdf) {
    let Some(dir) = &opts.out else { return };
    let mut f = std::fs::File::create(dir.join(name)).expect("create tsv");
    writeln!(f, "value\tcdf").unwrap();
    for (x, p) in ecdf.curve(512) {
        writeln!(f, "{x}\t{p}").unwrap();
    }
    println!("  [series → {}]", dir.join(name).display());
}

fn table1() {
    section("Table 1 — smart AP hardware configurations");
    println!(
        "  {:<8} {:>9} {:>8}  {:<40} {:<28}",
        "AP", "CPU (MHz)", "RAM (MB)", "storage", "WiFi"
    );
    for ap in ApModel::ALL {
        let s = ap.bench_storage();
        let wifi = if ap.has_80211ac() {
            "802.11 b/g/n/ac @ 2.4/5.0 GHz"
        } else {
            "802.11 b/g/n @ 2.4 GHz"
        };
        println!(
            "  {:<8} {:>9.0} {:>8}  {:<40} {:<28}",
            ap.to_string(),
            ap.cpu_mhz(),
            ap.ram_mb(),
            format!("{} ({})", s.device, s.fs),
            wifi
        );
    }
}

fn fig5(study: &Study, opts: &Options) {
    section("Fig 5 — CDF of requested file size (MB)");
    let ecdf = Ecdf::new(study.catalog.sizes_mb());
    let s = ecdf.summary().unwrap();
    println!(
        "{}",
        row("median", "115 MB", format!("{:.0} MB ({})", s.median, rel(s.median, 115.0)))
    );
    println!("{}", row("average", "390 MB", format!("{:.0} MB ({})", s.mean, rel(s.mean, 390.0))));
    println!("{}", row("max", "4 GB", format!("{:.0} MB", s.max)));
    println!(
        "{}",
        row("fraction below 8 MB", "25%", format!("{:.1}%", 100.0 * ecdf.fraction_below(8.0)))
    );
    dump_cdf(opts, "fig5_file_size_cdf.tsv", &ecdf);
}

fn fig6_fig7(study: &Study, opts: &Options) {
    section("Figs 6–7 — popularity rank-frequency: Zipf vs stretched-exponential");
    let ranked = rank_frequency(&study.catalog.weekly_counts());
    let zipf = fit_zipf(&ranked);
    let se = fit_se(&ranked, 0.01);
    println!(
        "{}",
        row("Zipf avg rel. fit error", "15.3%", format!("{:.1}%", 100.0 * zipf.avg_rel_error))
    );
    println!("{}", row("Zipf exponent a1", "1.034", format!("{:.3}", zipf.a)));
    println!(
        "{}",
        row("SE (c=0.01) avg rel. fit error", "13.7%", format!("{:.1}%", 100.0 * se.avg_rel_error))
    );
    println!(
        "{}",
        row(
            "SE fits better than Zipf",
            "yes",
            if se.avg_rel_error <= zipf.avg_rel_error { "yes".into() } else { "NO".to_string() }
        )
    );
    if let Some(dir) = &opts.out {
        let mut f = std::fs::File::create(dir.join("fig6_7_rank_frequency.tsv")).unwrap();
        writeln!(f, "rank\tcount\tzipf_fit\tse_fit").unwrap();
        for (i, y) in ranked.iter().enumerate() {
            let x = (i + 1) as f64;
            writeln!(f, "{x}\t{y}\t{}\t{}", zipf.predict(x), se.predict(x)).unwrap();
        }
        println!("  [series → {}]", dir.join("fig6_7_rank_frequency.tsv").display());
    }
}

fn fig8(report: &WeekReport, opts: &Options) {
    section("Fig 8 — CDFs of cloud speeds (KBps)");
    let pd = report.predownload_speed_ecdf();
    let fetch = report.fetch_speed_ecdf();
    let e2e = report.end_to_end_speed_ecdf();
    println!(
        "{}",
        row("pre-downloading (misses)", "med 25 / mean 69", mmmm(&pd.summary().unwrap()))
    );
    println!("{}", row("fetching", "med 287 / mean 504", mmmm(&fetch.summary().unwrap())));
    println!("{}", row("end-to-end", "med 233 / mean 380", mmmm(&e2e.summary().unwrap())));
    dump_cdf(opts, "fig8_predownload_speed_cdf.tsv", &pd);
    dump_cdf(opts, "fig8_fetch_speed_cdf.tsv", &fetch);
    dump_cdf(opts, "fig8_end_to_end_speed_cdf.tsv", &e2e);
}

fn fig9(report: &WeekReport, opts: &Options) {
    section("Fig 9 — CDFs of cloud delays (minutes)");
    let pd = report.predownload_delay_ecdf();
    let fetch = report.fetch_delay_ecdf();
    let e2e = report.end_to_end_delay_ecdf();
    println!(
        "{}",
        row("pre-downloading (misses)", "med 82 / mean 370", mmmm(&pd.summary().unwrap()))
    );
    println!("{}", row("fetching", "med 7 / mean 27", mmmm(&fetch.summary().unwrap())));
    println!("{}", row("end-to-end", "med 10 / mean 68", mmmm(&e2e.summary().unwrap())));
    dump_cdf(opts, "fig9_predownload_delay_cdf.tsv", &pd);
    dump_cdf(opts, "fig9_fetch_delay_cdf.tsv", &fetch);
    dump_cdf(opts, "fig9_end_to_end_delay_cdf.tsv", &e2e);
}

fn fig10(report: &WeekReport) {
    section("Fig 10 — request popularity vs pre-downloading failure ratio");
    println!("  (unpopular < 7/wk, popular 7–84, highly popular > 84; cloud with cache)");
    for (w, ratio) in &report.failure_by_popularity {
        let class = if *w < 7.0 {
            "unpopular"
        } else if *w <= 84.0 {
            "popular"
        } else {
            "highly popular"
        };
        println!("  ~{:>5.0} req/wk  {:>5.1}%  ({class})", w, 100.0 * ratio);
    }
    let first = report.failure_by_popularity.first().map(|p| p.1).unwrap_or(0.0);
    let last = report.failure_by_popularity.last().map(|p| p.1).unwrap_or(0.0);
    println!(
        "{}",
        row(
            "failure falls with popularity",
            "yes",
            if first > last { "yes".into() } else { "NO".into() }
        )
    );
}

fn fig11(report: &WeekReport, opts: &Options) {
    section("Fig 11 — cloud upload bandwidth burden over the week (5-min bins)");
    let cap_gbps = 30.0 * report_scale(report);
    let (peak_bin, _) = report.burden_kbps.peak_bin();
    println!(
        "{}",
        row(
            "peak burden vs 30 Gbps purchased (scaled)",
            "34 Gbps (exceeds)",
            format!("{:.2} Gbps vs {:.2} Gbps cap", report.peak_burden_gbps(), cap_gbps)
        )
    );
    println!("{}", row("peak lands on day", "7", format!("{}", peak_bin * 300 / 86_400 + 1)));
    println!(
        "{}",
        row(
            "burden share of highly popular files",
            "≈40%",
            format!("{:.0}%", 100.0 * report.hot_burden_fraction())
        )
    );
    println!(
        "{}",
        row("rejected fetch requests", "1.5%", format!("{:.2}%", 100.0 * report.rejection_ratio()))
    );
    if let Some(dir) = &opts.out {
        let mut f = std::fs::File::create(dir.join("fig11_burden.tsv")).unwrap();
        writeln!(f, "t_secs\tburden_gbps\thot_gbps").unwrap();
        for ((t, all), (_, hot)) in
            report.burden_kbps.points().into_iter().zip(report.burden_hot_kbps.points())
        {
            writeln!(f, "{t}\t{}\t{}", kbps_to_gbps(all), kbps_to_gbps(hot)).unwrap();
        }
        println!("  [series → {}]", dir.join("fig11_burden.tsv").display());
    }
}

/// Infer the replay scale from the report (capacity scaling is linear).
fn report_scale(report: &WeekReport) -> f64 {
    // requests / paper tasks
    report.counters.requests as f64 / 4_084_417.0
}

fn headline(report: &WeekReport) {
    section("§4 headline statistics (cloud)");
    println!("{}", row("cache hit ratio", "89%", format!("{:.1}%", 100.0 * report.hit_ratio())));
    println!(
        "{}",
        row(
            "pre-download failure ratio",
            "8.7%",
            format!("{:.1}%", 100.0 * report.failure_ratio())
        )
    );
    println!(
        "{}",
        row(
            "pre-download traffic / payload",
            "196%",
            format!("{:.0}%", 100.0 * report.traffic_overhead_factor())
        )
    );
    println!(
        "{}",
        row(
            "impeded fetches (< 125 KBps)",
            "28%",
            format!("{:.1}%", 100.0 * report.impeded_ratio())
        )
    );
    let fetches = report.fetches.len() as f64;
    println!(
        "{}",
        row(
            "  of which ISP barrier",
            "9.6%",
            format!("{:.1}%", 100.0 * report.counters.impeded_barrier as f64 / fetches)
        )
    );
    println!(
        "{}",
        row(
            "  of which low access bandwidth",
            "10.8%",
            format!("{:.1}%", 100.0 * report.counters.impeded_low_access as f64 / fetches)
        )
    );
    println!(
        "{}",
        row("  of which rejected", "1.5%", format!("{:.2}%", 100.0 * report.rejection_ratio()))
    );
    println!(
        "{}",
        row(
            "  of which dynamics/unknown",
            "6.1%",
            format!("{:.1}%", 100.0 * report.counters.impeded_dynamics as f64 / fetches)
        )
    );
    let registry = odx_telemetry::global();
    if let (Some(wall), Some(eps)) =
        (registry.wall("sim.wall_secs"), registry.wall("sim.events_per_sec"))
    {
        let rss = peak_rss_mb().map_or(String::new(), |mb| format!(" — peak RSS {mb:.0} MB"));
        println!("  perf: cloud replay {wall:.2}s wall — {eps:.0} events/sec{rss} (wall section, excluded from --metrics)");
    }
}

/// Replay the cloud week with per-task lifecycle tracing under the shared
/// CLI knobs, recording replay wall-clock into the registry's (excluded)
/// wall section.
fn traced_cloud_replay(opts: &Options) -> LifecycleReport {
    let study = Study::generate_scenario(opts.scale, opts.seed, &opts.scenario);
    let registry = odx_telemetry::global();
    let start = std::time::Instant::now();
    let (_, lifecycle) = study.replay_cloud_traced(&opts.scenario, registry, &opts.trace_config());
    registry.set_wall("trace.wall_secs", start.elapsed().as_secs_f64());
    lifecycle
}

/// `--out` as the directory it names (ignoring `trace`'s file form).
fn out_dir(opts: &Options) -> Option<&PathBuf> {
    opts.out.as_ref().filter(|p| p.extension().is_none())
}

fn attribute_cmd(opts: &Options) {
    section(&format!(
        "Attribute — virtual-time latency waterfall ({}, every {} task(s))",
        opts.scenario.name,
        opts.trace_config().sample_every
    ));
    let lifecycle = traced_cloud_replay(opts);
    let attribution = lifecycle.attribution();
    for line in attribution.waterfall().lines() {
        println!("  {line}");
    }
    let flight = &lifecycle.flight;
    println!(
        "  flight recorder: {} anomaly dump(s) ({} past the cap), {} events recorded",
        flight.dumps.len(),
        flight.dropped_dumps,
        flight.recorded
    );
    if let Some(dir) = out_dir(opts) {
        let path = dir.join("attribution.json");
        std::fs::write(&path, attribution.to_json()).expect("write attribution.json");
        println!("  [attribution → {}]", path.display());
    }
}

fn trace_cmd(opts: &Options) {
    section(&format!("Trace — Chrome trace-event export ({})", opts.scenario.name));
    let lifecycle = traced_cloud_replay(opts);
    let chrome = lifecycle.traces.to_chrome_json();
    let stats = validate_chrome_trace(&chrome).expect("exporter emits valid Chrome trace JSON");
    let path = match &opts.out {
        Some(p) if p.extension().is_some() => p.clone(),
        Some(dir) => dir.join("trace.json"),
        None => PathBuf::from("trace.json"),
    };
    std::fs::write(&path, &chrome).expect("write trace file");
    let flight_path = path.with_extension("flight.json");
    std::fs::write(&flight_path, lifecycle.flight.to_json()).expect("write flight file");
    println!(
        "  {} event(s): {} spans + {} instants across {} task lane(s)",
        stats.events, stats.complete, stats.instants, stats.lanes
    );
    println!(
        "  [trace → {} — load in Perfetto (ui.perfetto.dev) or chrome://tracing]",
        path.display()
    );
    println!(
        "  [flight dumps → {} — {} anomaly dump(s)]",
        flight_path.display(),
        lifecycle.flight.dumps.len()
    );
}

fn check_trace_cmd(opts: &Options) {
    section("Check — validate a Chrome trace-event file");
    let Some(path) = &opts.json else { usage_error("check-trace without --json FILE") };
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    match validate_chrome_trace(&text) {
        Ok(stats) => println!(
            "  {} is valid: {} event(s), {} spans, {} instants, {} lane(s)",
            path.display(),
            stats.events,
            stats.complete,
            stats.instants,
            stats.lanes
        ),
        Err(e) => {
            eprintln!("repro: {} is not a valid Chrome trace: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// `scenario show NAME | dump --all | check [--json FILE]` — inspect and
/// validate the layered registry without running any replay. `show` and
/// `dump` print byte-stable canonical JSON; `check` validates a scenario
/// document from a file or stdin against a fresh copy of the registry.
fn scenario_cmd(opts: &Options, args: &[String]) {
    match args.first().map(String::as_str) {
        Some("show") => {
            let Some(name) = args.get(1) else {
                fail_usage("scenario show needs a scenario NAME");
            };
            let spec = opts.registry.spec(name).unwrap_or_else(|| {
                let err = odx::config::ConfigError::unknown(
                    "scenario show",
                    "scenario",
                    name,
                    opts.registry.names(),
                );
                fail_usage(&err.message)
            });
            println!("{}", spec.to_canonical_json());
        }
        Some("dump") => {
            if !opts.dump_all {
                fail_usage("scenario dump needs --all (one scenario: `scenario show NAME`)");
            }
            let dumps: Vec<String> =
                opts.registry.all_specs().iter().map(ScenarioSpec::to_canonical_json).collect();
            println!("[{}]", dumps.join(","));
        }
        Some("check") => {
            let text = match &opts.json {
                Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
                    fail_usage(&format!("cannot read `{}`: {e}", path.display()))
                }),
                None => std::io::read_to_string(std::io::stdin())
                    .unwrap_or_else(|e| fail_usage(&format!("cannot read stdin: {e}"))),
            };
            let mut probe = opts.registry.clone();
            match probe.load_json(&text) {
                Ok(n) => println!("ok: {n} scenario(s)"),
                Err(e) => {
                    eprintln!("repro: {e}");
                    std::process::exit(2);
                }
            }
        }
        _ => fail_usage("scenario needs show NAME, dump --all, or check [--json FILE]"),
    }
}

/// Expand the `--scenario` selector into concrete sweep scenarios against
/// the layered registry: each selected spec gets the `--set` overrides,
/// then its `axes` grid (a single cell when it declares none). Any
/// unknown name or invalid override exits 2 naming the field.
fn resolve_scenarios(opts: &Options) -> Vec<Scenario> {
    let specs: Vec<ScenarioSpec> = if opts.scenario_selector == "all" {
        opts.registry.all_specs().to_vec()
    } else {
        let spec = opts.registry.spec(&opts.scenario_selector).cloned().unwrap_or_else(|| {
            let err = odx::config::ConfigError::unknown(
                "--scenario",
                "scenario",
                &opts.scenario_selector,
                opts.registry.names(),
            );
            fail_usage(&err.message)
        });
        vec![spec]
    };
    let mut out = Vec::new();
    for mut spec in specs {
        for (path, value) in &opts.sets {
            spec.set_path(path, value).unwrap_or_else(|e| fail_usage(&e.to_string()));
        }
        let cells = spec.expand_axes().unwrap_or_else(|e| fail_usage(&e.to_string()));
        for cell in cells {
            out.push(Scenario::from_spec(&cell).unwrap_or_else(|e| fail_usage(&e.to_string())));
        }
    }
    out
}

fn sweep_grid(opts: &Options) {
    use odx::sweep::{run_sweep, SweepSpec};
    let scenarios = resolve_scenarios(opts);
    let seeds: Vec<u64> = (0..opts.seeds as u64).map(|i| opts.seed + i).collect();
    section(&format!(
        "Sweep — {} scenario(s) × {} seed(s) at scale {} on {} worker(s)",
        scenarios.len(),
        seeds.len(),
        opts.scale,
        opts.jobs
    ));
    // Sweeps stay untraced unless `--trace-sample N` opts in: tracing off
    // is the perf-neutral default for grid runs.
    let trace = (opts.trace_sample > 0).then(|| TraceConfig::sampled(opts.trace_sample));
    let spec = SweepSpec {
        scenarios,
        seeds,
        scale: opts.scale,
        jobs: opts.jobs,
        trace,
        series_interval_ms: None,
        progress: opts.progress,
    };
    let report = run_sweep(&spec);
    // Per-shard wall perf rides in the registry's wall section (excluded
    // from the deterministic `--metrics` snapshot).
    report.record_wall(odx_telemetry::global());
    println!(
        "  {:<18} {:>6} {:>9} {:>6} {:>6} {:>8} {:>10}",
        "scenario", "seed", "requests", "hit%", "fail%", "impeded%", "events"
    );
    for c in &report.cells {
        println!(
            "  {:<18} {:>6} {:>9} {:>6.1} {:>6.1} {:>8.1} {:>10}",
            c.scenario,
            c.seed,
            c.requests,
            100.0 * c.hit_ratio,
            100.0 * c.failure_ratio,
            100.0 * c.impeded_ratio,
            c.sim_events
        );
    }
    println!(
        "  {} cell(s) on {} worker(s) in {:.2}s — {:.0} events/sec aggregate",
        report.cells.len(),
        report.jobs,
        report.wall_secs,
        report.events_per_sec()
    );
    if let Some(attribution) = report.attribution() {
        println!("  merged latency attribution across all cells:");
        for line in attribution.waterfall().lines() {
            println!("  {line}");
        }
    }
    if let Some(dir) = out_dir(opts) {
        let json_path = dir.join("sweep.json");
        let csv_path = dir.join("sweep.csv");
        std::fs::write(&json_path, report.to_json()).expect("write sweep.json");
        std::fs::write(&csv_path, report.to_csv()).expect("write sweep.csv");
        println!("  [deterministic snapshots → {} / {}]", json_path.display(), csv_path.display());
        if let Some(attribution) = report.attribution() {
            let attr_path = dir.join("attribution.json");
            std::fs::write(&attr_path, attribution.to_json()).expect("write attribution.json");
            println!("  [merged attribution → {}]", attr_path.display());
        }
    }
}

/// `cache-compare`: sweep every replacement policy (or just `--policy`)
/// across the selected scenarios × seeds on the shared sweep pool, then
/// print per-policy offloading means against the paper's §2.1/§4.1
/// headlines (89 % cache hit, 8.7 % pre-download failure). Cells merge in
/// spec order, so the table and the `--out` snapshots are byte-identical
/// for any `--jobs`.
fn cache_compare(opts: &Options) {
    use odx::sweep::{policy_variants, run_sweep, SweepSpec};
    let scenarios = resolve_scenarios(opts);
    let policies: Vec<PolicyKind> = match opts.policy {
        Some(p) => vec![p],
        None => PolicyKind::ALL.to_vec(),
    };
    let variants = policy_variants(&scenarios, &policies);
    let seeds: Vec<u64> = (0..opts.seeds as u64).map(|i| opts.seed + i).collect();
    section(&format!(
        "Cache compare — {} scenario(s) × {} polic{} × {} seed(s) at scale {} on {} worker(s)",
        scenarios.len(),
        policies.len(),
        if policies.len() == 1 { "y" } else { "ies" },
        seeds.len(),
        opts.scale,
        opts.jobs
    ));
    let spec = SweepSpec {
        scenarios: variants.clone(),
        seeds,
        scale: opts.scale,
        jobs: opts.jobs,
        trace: None,
        series_interval_ms: None,
        progress: opts.progress,
    };
    let report = run_sweep(&spec);
    report.record_wall(odx_telemetry::global());
    println!(
        "  {:<28} {:>6} {:>9} {:>6} {:>6} {:>9} {:>10}",
        "scenario/policy", "seed", "requests", "hit%", "fail%", "misses", "events"
    );
    for c in &report.cells {
        println!(
            "  {:<28} {:>6} {:>9} {:>6.1} {:>6.1} {:>9} {:>10}",
            c.scenario,
            c.seed,
            c.requests,
            100.0 * c.hit_ratio,
            100.0 * c.failure_ratio,
            c.requests - c.cache_hits,
            c.sim_events
        );
    }
    println!("  means per policy vs the paper (hit 89.0 %, failure 8.7 %):");
    for variant in &variants {
        let cells: Vec<_> = report.cells.iter().filter(|c| c.scenario == variant.name).collect();
        if cells.is_empty() {
            continue;
        }
        let n = cells.len() as f64;
        let hit = 100.0 * cells.iter().map(|c| c.hit_ratio).sum::<f64>() / n;
        let fail = 100.0 * cells.iter().map(|c| c.failure_ratio).sum::<f64>() / n;
        println!(
            "  {:<28} hit {:>5.1}% (\u{0394}{:+5.1})   failure {:>5.1}% (\u{0394}{:+5.1})",
            variant.name,
            hit,
            hit - 89.0,
            fail,
            fail - 8.7
        );
    }
    println!(
        "  {} cell(s) on {} worker(s) in {:.2}s — {:.0} events/sec aggregate",
        report.cells.len(),
        report.jobs,
        report.wall_secs,
        report.events_per_sec()
    );
    if let Some(dir) = out_dir(opts) {
        let json_path = dir.join("cache_compare.json");
        let csv_path = dir.join("cache_compare.csv");
        std::fs::write(&json_path, report.to_json()).expect("write cache_compare.json");
        std::fs::write(&csv_path, report.to_csv()).expect("write cache_compare.csv");
        println!("  [deterministic snapshots → {} / {}]", json_path.display(), csv_path.display());
    }
}

/// `resilience`: sweep a fault-intensity × retry-policy grid over the
/// selected scenario(s) and diff every cell against its scenario's
/// uninjected `fault=0/retry=none` baseline cell (same seed). Per-cell
/// rows show failure share, stagnated pre-downloads, and goodput
/// (completed fetches per request) with their deltas; per-variant means
/// summarize the grid. `--policy none|fixed|expo` narrows the retry axis
/// to baseline-vs-that-policy. The deterministic exports
/// (`resilience.{json,csv}` under `--out DIR`) are byte-identical for
/// any `--jobs` value and either scheduler.
fn resilience_cmd(opts: &Options) {
    use odx::faults::RetryKind;
    use odx::sweep::{resilience_variants, run_sweep, SweepSpec};
    let scenarios = resolve_scenarios(opts);
    let intensities = [0.0, 0.1, 0.25];
    let policies: Vec<RetryKind> = match opts.retry_policy {
        Some(RetryKind::None) => vec![RetryKind::None],
        Some(p) => vec![RetryKind::None, p],
        None => RetryKind::ALL.to_vec(),
    };
    let variants = resilience_variants(&scenarios, &intensities, &policies);
    let seeds: Vec<u64> = (0..opts.seeds as u64).map(|i| opts.seed + i).collect();
    section(&format!(
        "Resilience — {} scenario(s) × {} intensit{} × {} polic{} × {} seed(s) at scale {} on {} worker(s)",
        scenarios.len(),
        intensities.len(),
        if intensities.len() == 1 { "y" } else { "ies" },
        policies.len(),
        if policies.len() == 1 { "y" } else { "ies" },
        seeds.len(),
        opts.scale,
        opts.jobs
    ));
    let spec = SweepSpec {
        scenarios: variants.clone(),
        seeds,
        scale: opts.scale,
        jobs: opts.jobs,
        trace: None,
        series_interval_ms: None,
        progress: opts.progress,
    };
    let report = run_sweep(&spec);
    report.record_wall(odx_telemetry::global());
    // Baseline lookup: the scenario's own zero-fault, no-retry cell at
    // the same seed (always in the grid — intensity 0 and `none` are).
    let baseline = |scenario: &str, seed: u64| {
        let base = scenario.split("/fault=").next().unwrap_or(scenario);
        let name = format!("{base}/fault=0/retry=none");
        report.cells.iter().find(|c| c.scenario == name && c.seed == seed)
    };
    let goodput = |c: &odx::sweep::SweepCell| c.completed_fetches as f64 / c.requests.max(1) as f64;
    println!(
        "  {:<40} {:>6} {:>9} {:>6} {:>7} {:>9} {:>7} {:>8}",
        "scenario/fault/retry", "seed", "requests", "fail%", "Δfail", "stagnant", "good%", "Δgood"
    );
    for c in &report.cells {
        let base = baseline(&c.scenario, c.seed).expect("zero-fault baseline cell in grid");
        println!(
            "  {:<40} {:>6} {:>9} {:>6.2} {:>+7.2} {:>9} {:>7.2} {:>+8.2}",
            c.scenario,
            c.seed,
            c.requests,
            100.0 * c.failure_ratio,
            100.0 * (c.failure_ratio - base.failure_ratio),
            c.predownload_failures,
            100.0 * goodput(c),
            100.0 * (goodput(c) - goodput(base)),
        );
    }
    println!("  means per grid cell vs the uninjected baseline:");
    for variant in &variants {
        let cells: Vec<_> = report.cells.iter().filter(|c| c.scenario == variant.name).collect();
        if cells.is_empty() {
            continue;
        }
        let n = cells.len() as f64;
        let fail = 100.0 * cells.iter().map(|c| c.failure_ratio).sum::<f64>() / n;
        let good = 100.0 * cells.iter().map(|c| goodput(c)).sum::<f64>() / n;
        let (bfail, bgood) = {
            let bases: Vec<_> =
                cells.iter().filter_map(|c| baseline(&c.scenario, c.seed)).collect();
            let bn = bases.len().max(1) as f64;
            (
                100.0 * bases.iter().map(|c| c.failure_ratio).sum::<f64>() / bn,
                100.0 * bases.iter().map(|c| goodput(c)).sum::<f64>() / bn,
            )
        };
        println!(
            "  {:<40} failure {:>5.2}% (\u{0394}{:+5.2})   goodput {:>5.2}% (\u{0394}{:+5.2})",
            variant.name,
            fail,
            fail - bfail,
            good,
            good - bgood
        );
    }
    println!(
        "  {} cell(s) on {} worker(s) in {:.2}s — {:.0} events/sec aggregate",
        report.cells.len(),
        report.jobs,
        report.wall_secs,
        report.events_per_sec()
    );
    if let Some(dir) = out_dir(opts) {
        let json_path = dir.join("resilience.json");
        let csv_path = dir.join("resilience.csv");
        std::fs::write(&json_path, report.to_json()).expect("write resilience.json");
        std::fs::write(&csv_path, report.to_csv()).expect("write resilience.csv");
        println!("  [deterministic snapshots → {} / {}]", json_path.display(), csv_path.display());
    }
}

/// `series`: replay the selected scenario(s) × seeds on the sweep pool
/// with virtual-time series recording and export the merged `(scenario,
/// seed)`-keyed set as byte-stable JSON + CSV. The cadence is the active
/// scenario's `telemetry.series_interval_s` (default one sim-hour,
/// `--set telemetry.series_interval_s=N`); the exports are byte-identical
/// for any `--jobs`, either scheduler, and same-seed reruns. `--out
/// series.csv` names the CSV (sibling `.json` alongside); `--out DIR`
/// writes `DIR/series.{csv,json}`; the default is `./series.{csv,json}`.
fn series_cmd(opts: &Options) {
    use odx::sweep::{run_sweep, SweepSpec};
    let scenarios = resolve_scenarios(opts);
    let seeds: Vec<u64> = (0..opts.seeds as u64).map(|i| opts.seed + i).collect();
    let interval_ms = opts.scenario.series_interval_ms();
    section(&format!(
        "Series — virtual-time metrics every {interval_ms} ms over {} scenario(s) × {} seed(s)",
        scenarios.len(),
        seeds.len()
    ));
    let spec = SweepSpec {
        scenarios,
        seeds,
        scale: opts.scale,
        jobs: opts.jobs,
        trace: None,
        series_interval_ms: Some(interval_ms),
        progress: opts.progress,
    };
    let report = run_sweep(&spec);
    report.record_wall(odx_telemetry::global());
    let set = report.series().expect("series recording was enabled");
    for ((scenario, seed), snapshot) in &set.cells {
        println!(
            "  {:<28} seed {:<6} {:>4} sample(s) × {} metric(s)",
            scenario,
            seed,
            snapshot.times.len(),
            snapshot.series.len()
        );
    }
    let json = set.to_json();
    // Make the freshly recorded document available to `GET
    // /metrics?series=1` when a proto server runs in this process.
    odx_telemetry::publish_series(json.clone());
    let (csv_path, json_path) = match &opts.out {
        Some(p) if p.extension().is_some() => (p.clone(), p.with_extension("json")),
        Some(dir) => (dir.join("series.csv"), dir.join("series.json")),
        None => (PathBuf::from("series.csv"), PathBuf::from("series.json")),
    };
    std::fs::write(&csv_path, set.to_csv()).expect("write series CSV");
    std::fs::write(&json_path, &json).expect("write series JSON");
    println!(
        "  [series → {} / {} — byte-identical for any --jobs]",
        csv_path.display(),
        json_path.display()
    );
}

/// `profile`: replay the cloud week with the per-handler wall profiler
/// attached and print the breakdown — wall seconds, events, and
/// percent-of-replay per event-kind handler plus scheduler-pop cost; the
/// `other` residual (chunk injection, loop overhead) makes the shares sum
/// to exactly 100 % of replay wall. Everything here is wall-clock and
/// therefore nondeterministic; nothing lands in deterministic exports.
fn profile_cmd(opts: &Options) {
    section(&format!(
        "Profile — per-handler wall breakdown ({}, {} scheduler, nondeterministic)",
        opts.scenario.name,
        opts.scenario.scheduler.name()
    ));
    let study = Study::generate_scenario(opts.scale, opts.seed, &opts.scenario);
    let registry = Registry::new();
    let report = study.replay_cloud_profiled(&opts.scenario, &registry);
    let wall = registry.snapshot().wall;
    let (rows, run_secs) = rows_from_walls(&wall).expect("profiled replay flushed prof.* walls");
    for line in render_rows(&rows, run_secs).lines() {
        println!("  {line}");
    }
    println!(
        "  {} request(s) replayed in {run_secs:.2}s — shares sum to 100% of replay wall",
        report.counters.requests
    );
}

/// One deterministic churn workload over either event-queue implementation:
/// `n` schedules at LCG-drawn deltas past the last fired time (monotone,
/// as the engine requires of every world), ~60 % cancels of random
/// earlier ids, pops interleaved every 7th op, then a full drain.
/// Identical call sequences land on both queues — pop order is fully
/// determined by `(time, seq)` — so the popped-event counts must agree.
macro_rules! churn {
    ($queue:expr, $n:expr) => {{
        let start = std::time::Instant::now();
        let mut q = $queue;
        let mut ids = Vec::with_capacity($n);
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        let mut pops = 0u64;
        let mut now = 0u64;
        for i in 0..$n as u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ids.push(q.schedule(odx::sim::SimTime::from_millis(now + (x >> 33) % 1_000_000), i));
            if i % 5 != 0 && i % 5 != 3 {
                q.cancel(ids[((x >> 20) as usize) % ids.len()]);
            }
            if i % 7 == 0 {
                if let Some((t, _)) = q.pop() {
                    now = t.as_millis();
                    pops += 1;
                }
            }
        }
        while let Some((t, _)) = q.pop() {
            now = t.as_millis();
            pops += 1;
        }
        let _ = now;
        (pops, start.elapsed().as_secs_f64())
    }};
}

fn bench_report(opts: &Options) {
    use odx::sweep::{run_sweep, SweepSpec};
    section("Bench — DES hot-path wall-clock report (nondeterministic)");

    let ops: usize = 120_000;
    let (slab_pops, slab_secs) = churn!(odx::sim::EventQueue::with_capacity(ops), ops);
    let (legacy_pops, legacy_secs) = churn!(odx::sim::legacy::EventQueue::new(), ops);
    let (wheel_pops, wheel_secs) = churn!(odx::sim::TimingWheel::with_capacity(ops), ops);
    assert_eq!(slab_pops, legacy_pops, "both queues must fire the same events");
    assert_eq!(slab_pops, wheel_pops, "the wheel must fire the same events");
    let slab_eps = slab_pops as f64 / slab_secs.max(1e-9);
    let legacy_eps = legacy_pops as f64 / legacy_secs.max(1e-9);
    let wheel_eps = wheel_pops as f64 / wheel_secs.max(1e-9);
    let speedup = slab_eps / legacy_eps;
    println!("  event-queue churn ({ops} schedules, ~60% cancels, {slab_pops} fired):");
    println!("    slab   queue  {slab_eps:>12.0} events/sec  ({slab_secs:.3}s)");
    println!("    legacy queue  {legacy_eps:>12.0} events/sec  ({legacy_secs:.3}s)");
    println!("    timing wheel  {wheel_eps:>12.0} events/sec  ({wheel_secs:.3}s)");
    println!("    speedup {speedup:.2}x (slab vs legacy)");

    let shard = run_sweep(&SweepSpec {
        scenarios: vec![opts.scenario.clone()],
        seeds: vec![opts.seed],
        scale: opts.scale,
        jobs: 1,
        trace: None,
        series_interval_ms: None,
        progress: false,
    });
    let cell = &shard.cells[0];
    let shard_eps = cell.sim_events as f64 / cell.wall_secs.max(1e-9);
    println!(
        "  cloud week shard ({} @ scale {}): {} events in {:.2}s — {:.0} events/sec",
        cell.scenario, opts.scale, cell.sim_events, cell.wall_secs, shard_eps
    );

    // Lifecycle-tracing overhead on the same shard: sampled 1/16 tracing
    // should stay cheap, and the `trace: None` path must stay essentially
    // free (the criterion bench in `benches/des.rs` holds it under 5%).
    let traced = run_sweep(&SweepSpec {
        scenarios: vec![opts.scenario.clone()],
        seeds: vec![opts.seed],
        scale: opts.scale,
        jobs: 1,
        trace: Some(TraceConfig::sampled(16)),
        series_interval_ms: None,
        progress: false,
    });
    let traced_cell = &traced.cells[0];
    let traced_eps = traced_cell.sim_events as f64 / traced_cell.wall_secs.max(1e-9);
    let trace_overhead = traced_cell.wall_secs / cell.wall_secs.max(1e-9) - 1.0;
    println!(
        "  same shard, lifecycle tracing 1/16: {:.2}s — {:.0} events/sec ({:+.1}% wall)",
        traced_cell.wall_secs,
        traced_eps,
        100.0 * trace_overhead
    );

    let sweep_scale = (opts.scale / 10.0).max(0.002);
    let sweep = run_sweep(&SweepSpec {
        scenarios: Study::scenarios().all().to_vec(),
        seeds: vec![opts.seed, opts.seed + 1],
        scale: sweep_scale,
        jobs: opts.jobs,
        trace: None,
        series_interval_ms: None,
        progress: false,
    });
    println!(
        "  full sweep ({} cells @ scale {} on {} worker(s)): {:.2}s — {:.0} events/sec aggregate",
        sweep.cells.len(),
        sweep_scale,
        sweep.jobs,
        sweep.wall_secs,
        sweep.events_per_sec()
    );

    // Per-policy cache churn: one LCG-driven lookup/insert mix per policy
    // at a budget tight enough to keep eviction on the hot path. Purely a
    // wall-clock probe — correctness is pinned by the odx-cache tests.
    let cache_ops: usize = 200_000;
    println!("  cache churn ({cache_ops} ops, 4096-key universe, 5 GB budget):");
    let mut cache_json = String::from("{");
    for (i, policy) in PolicyKind::ALL.iter().enumerate() {
        let mut cache = policy.build(5_000.0, 1024);
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        let mut hits = 0u64;
        let mut evictions = 0u64;
        let start = std::time::Instant::now();
        for op in 0..cache_ops as u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 40) % 4096;
            if x & 1 == 0 {
                hits += u64::from(cache.lookup(key, op).is_some());
            } else {
                let size_mb = 1.0 + ((x >> 16) % 64) as f64;
                evictions += cache.insert(key, size_mb, op).len() as u64;
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let ops_per_sec = cache_ops as f64 / secs.max(1e-9);
        println!(
            "    {:<8} {ops_per_sec:>12.0} ops/sec  ({secs:.3}s, {hits} hits, {evictions} evictions)",
            policy.name()
        );
        if i > 0 {
            cache_json.push(',');
        }
        cache_json.push_str(&format!(
            "\"{}\":{{\"secs\":{secs:.3},\"ops_per_sec\":{ops_per_sec:.0},             \"hits\":{hits},\"evictions\":{evictions}}}",
            policy.name()
        ));
    }
    cache_json.push('}');

    // Full-scale week, both schedulers. The headline number for the
    // timing-wheel PR: the paper's whole measurement week (scale 1.0,
    // 4.08 M tasks) generated once, then replayed on the binary heap and
    // on the hierarchical timing wheel — interleaved best-of-N so the two
    // schedulers time the *same* in-memory workload under the same
    // machine conditions, with byte-identical metrics exports asserted
    // before timing is even reported. `ODX_BENCH_QUICK=1` shrinks the
    // scale so smoke runs stay fast.
    let full_scale = if std::env::var_os("ODX_BENCH_QUICK").is_some() { 0.01 } else { 1.0 };
    // Wall-clock on shared machines is noisy; interleaving the two
    // schedulers rep by rep and keeping each one's best makes the
    // ratio robust to transient load.
    let reps = 5;
    println!(
        "  full week ({} @ scale {full_scale}, heap vs wheel, replay only, best of {reps}):",
        opts.scenario.name
    );
    let study = odx::Study::generate_scenario(full_scale, opts.seed, &opts.scenario);
    let kinds = odx::sim::SchedulerKind::ALL;
    let mut best_secs = [f64::INFINITY; 2];
    let mut best_prof_secs = f64::INFINITY;
    let prof_registry = Registry::new();
    let mut snapshots: [Option<String>; 2] = [None, None];
    let mut sim_events = 0u64;
    for _ in 0..reps {
        // A profiled heap rep rides in the same interleaving, so its
        // overhead ratio sees the same machine conditions as the plain
        // replays it is compared against.
        let start = std::time::Instant::now();
        let _ = study.replay_cloud_profiled(&opts.scenario, &prof_registry);
        best_prof_secs = best_prof_secs.min(start.elapsed().as_secs_f64());
        for (k, kind) in kinds.into_iter().enumerate() {
            let mut scenario = opts.scenario.clone();
            scenario.scheduler = kind;
            let cfg = study.scenario_cloud_config(&scenario);
            let registry = odx::telemetry::Registry::new();
            let start = std::time::Instant::now();
            odx::cloud::XuanfengCloud::replay_with_registry(
                &study.catalog,
                &study.population,
                &study.workload,
                cfg,
                &study.rngs,
                &registry,
            );
            let secs = start.elapsed().as_secs_f64();
            best_secs[k] = best_secs[k].min(secs);
            let snap = registry.snapshot();
            sim_events = snap.counters["sim.events"];
            snapshots[k] = Some(snap.to_json());
        }
    }
    assert_eq!(snapshots[0], snapshots[1], "heap and wheel metrics exports must be byte-identical");
    for (k, kind) in kinds.into_iter().enumerate() {
        println!(
            "    {:<5} {:>12.0} events/sec  ({} events, {:.2}s)",
            kind.name(),
            sim_events as f64 / best_secs[k].max(1e-9),
            sim_events,
            best_secs[k]
        );
    }
    let wheel_speedup = best_secs[0] / best_secs[1].max(1e-9);
    let rss = peak_rss_mb();
    println!(
        "    exports byte-identical; wheel speedup {wheel_speedup:.2}x{}",
        rss.map_or(String::new(), |mb| format!("; peak RSS {mb:.0} MB"))
    );

    // The measured handler/scheduler split: BENCH_pr8 inferred ~75 % /
    // ~25 % from end-to-end subtraction; the profiler buckets it per
    // event kind. Shares come from the last profiled rep (ratios are
    // stable across reps), the overhead from best-of-{reps} walls.
    let prof_wall = prof_registry.snapshot().wall;
    let (prof_rows, prof_run_secs) =
        rows_from_walls(&prof_wall).expect("profiled replay flushed prof.* walls");
    println!("  same week, per-handler wall profiler attached (heap, best of {reps}):");
    for line in render_rows(&prof_rows, prof_run_secs).lines() {
        println!("    {line}");
    }
    let handler_secs: f64 =
        prof_rows.iter().filter(|r| r.label.starts_with("handler.")).map(|r| r.secs).sum();
    let sched_secs =
        prof_rows.iter().find(|r| r.label == "sched.pop").map(|r| r.secs).unwrap_or(0.0);
    let handler_share = handler_secs / prof_run_secs.max(1e-9);
    let sched_share = sched_secs / prof_run_secs.max(1e-9);
    let prof_overhead = best_prof_secs / best_secs[0].max(1e-9) - 1.0;
    println!(
        "    handlers {:.0}% / scheduler {:.0}% of replay wall (BENCH_pr8 inferred ~75/~25); \
         profiler overhead {:+.1}% vs plain heap",
        100.0 * handler_share,
        100.0 * sched_share,
        100.0 * prof_overhead
    );
    let profile_json = format!(
        "{{\"secs\":{best_prof_secs:.3},\"run_secs\":{prof_run_secs:.3},\
         \"handler_share\":{handler_share:.3},\"sched_share\":{sched_share:.3},\
         \"overhead\":{prof_overhead:.3}}}"
    );
    let full_week_json = format!(
        "{{\"scenario\":\"{}\",\"scale\":{full_scale},\"sim_events\":{sim_events},\
         \"heap\":{{\"secs\":{:.3},\"events_per_sec\":{:.0}}},\
         \"wheel\":{{\"secs\":{:.3},\"events_per_sec\":{:.0}}},\
         \"wheel_speedup\":{wheel_speedup:.2},\"exports_identical\":true,\
         \"peak_rss_mb\":{}}}",
        opts.scenario.name,
        best_secs[0],
        sim_events as f64 / best_secs[0].max(1e-9),
        best_secs[1],
        sim_events as f64 / best_secs[1].max(1e-9),
        rss.map_or("null".to_owned(), |mb| format!("{mb:.0}"))
    );

    if let Some(path) = &opts.json {
        let json = format!(
            "{{\"event_queue_churn\":{{\"schedules\":{ops},\"fired\":{slab_pops},\
             \"slab\":{{\"secs\":{slab_secs},\"events_per_sec\":{slab_eps:.0}}},\
             \"legacy\":{{\"secs\":{legacy_secs},\"events_per_sec\":{legacy_eps:.0}}},\
             \"wheel\":{{\"secs\":{wheel_secs},\"events_per_sec\":{wheel_eps:.0}}},\
             \"speedup\":{speedup:.2}}},\
             \"cloud_week\":{{\"scenario\":\"{}\",\"scale\":{},\"sim_events\":{},\
             \"secs\":{:.3},\"events_per_sec\":{:.0}}},\
             \"cloud_week_traced\":{{\"sample_every\":16,\"secs\":{:.3},\
             \"events_per_sec\":{traced_eps:.0},\"overhead\":{trace_overhead:.3}}},\
             \"sweep\":{{\"cells\":{},\"jobs\":{},\"scale\":{},\"total_events\":{},\
             \"secs\":{:.3},\"events_per_sec\":{:.0}}},\
             \"cache_churn\":{{\"ops\":{cache_ops},\"policies\":{cache_json}}},\
             \"full_week\":{full_week_json},\"profile\":{profile_json}}}\n",
            cell.scenario,
            opts.scale,
            cell.sim_events,
            cell.wall_secs,
            shard_eps,
            traced_cell.wall_secs,
            sweep.cells.len(),
            sweep.jobs,
            sweep_scale,
            sweep.total_events(),
            sweep.wall_secs,
            sweep.events_per_sec()
        );
        std::fs::write(path, &json).expect("write --json file");
        println!("  [bench report → {}]", path.display());
    }
}

fn fig13(report: &odx::backend::ApBenchReport, opts: &Options) {
    section("Fig 13 — smart AP pre-downloading speed CDF (KBps)");
    let ecdf = report.speed_ecdf();
    println!("{}", row("all APs", "med 27 / mean 64", mmmm(&ecdf.summary().unwrap())));
    for ap in ApModel::ALL {
        let paper = if ap == ApModel::Newifi { "930" } else { "2370" };
        println!(
            "{}",
            row(&format!("max on {ap}"), paper, format!("{:.0}", report.max_speed_kbps(ap)))
        );
    }
    dump_cdf(opts, "fig13_ap_speed_cdf.tsv", &ecdf);
}

fn fig14(report: &odx::backend::ApBenchReport, opts: &Options) {
    section("Fig 14 — smart AP pre-downloading delay CDF (minutes)");
    let ecdf = report.delay_ecdf();
    println!("{}", row("all APs", "med 77 / mean 402", mmmm(&ecdf.summary().unwrap())));
    dump_cdf(opts, "fig14_ap_delay_cdf.tsv", &ecdf);
}

fn ap_headline(report: &odx::backend::ApBenchReport) {
    section("§5.2 headline statistics (smart APs)");
    println!(
        "{}",
        row("overall failure ratio", "16.8%", format!("{:.1}%", 100.0 * report.failure_ratio()))
    );
    println!(
        "{}",
        row(
            "unpopular-file failure ratio",
            "42%",
            format!("{:.1}%", 100.0 * report.unpopular_failure_ratio())
        )
    );
    let [seeds, conn, bug] = report.cause_shares();
    println!(
        "{}",
        row(
            "failure causes (seeds/connection/bugs)",
            "86% / 10% / 4%",
            format!("{:.0}% / {:.0}% / {:.0}%", 100.0 * seeds, 100.0 * conn, 100.0 * bug)
        )
    );
}

fn odr_headline(eval: &OdrEvalReport) {
    use odx::odr::Decision;
    section("§6.2 headline statistics (ODR)");
    println!("{}", row("impeded fetches", "9%", format!("{:.1}%", 100.0 * eval.impeded_ratio())));
    println!(
        "{}",
        row(
            "cloud upload bytes vs all-cloud",
            "-35%",
            format!("{:+.0}%", 100.0 * (eval.cloud_upload_fraction() - 1.0))
        )
    );
    println!(
        "{}",
        row("incorrect redirections", "<1%", format!("{:.2}%", 100.0 * eval.incorrect_ratio()))
    );
    let counts = eval.decision_counts();
    println!("  decisions per proxy:");
    for d in [
        Decision::UserDevice,
        Decision::Cloud,
        Decision::SmartAp,
        Decision::CloudThenSmartAp,
        Decision::CloudPredownload,
    ] {
        println!("    {:<18} {:>6}", d.to_string(), counts.get(&d).copied().unwrap_or(0));
    }
}

/// The fault/retry taxonomy of the cloud replay, printed next to the
/// §6.2 decision counts when — and only when — a fault plan or retry
/// policy actually fired. Default runs inject nothing and print nothing,
/// keeping the headline output byte-identical to pre-fault builds.
fn fault_taxonomy(report: &WeekReport) {
    let c = &report.counters;
    if c.fault_windows == 0 && c.retry_attempts == 0 {
        return;
    }
    section("fault injection & recovery (active plan)");
    println!("    {:<34} {:>8}", "injected fault windows", c.fault_windows);
    println!("    {:<34} {:>8}", "  forced pre-download failures", c.fault_forced_failures);
    println!("    {:<34} {:>8}", "  slowed pre-downloads", c.fault_slowed_predownloads);
    println!("    {:<34} {:>8}", "  degraded fetches", c.fault_degraded_fetches);
    println!("    {:<34} {:>8}", "retries attempted", c.retry_attempts);
    println!("    {:<34} {:>8}", "  tasks rescued", c.retry_rescued);
    println!("    {:<34} {:>8}", "  retries exhausted", c.retry_exhausted);
}

fn print_table2() {
    section("Table 2 — max pre-download speed (MBps) and iowait per (device, fs)");
    let paper: &[(DeviceKind, FsKind, f64, f64)] = &[
        (DeviceKind::SdCard, FsKind::Fat, 2.37, 0.421),
        (DeviceKind::SataHdd, FsKind::Ext4, 2.37, 0.297),
        (DeviceKind::UsbFlash, FsKind::Fat, 2.12, 0.663),
        (DeviceKind::UsbFlash, FsKind::Ntfs, 0.93, 0.151),
        (DeviceKind::UsbFlash, FsKind::Ext4, 2.13, 0.55),
        (DeviceKind::UsbHdd, FsKind::Fat, 2.37, 0.42),
        (DeviceKind::UsbHdd, FsKind::Ntfs, 1.13, 0.098),
        (DeviceKind::UsbHdd, FsKind::Ext4, 2.37, 0.174),
    ];
    println!(
        "  {:<8} {:<22} {:<6} {:>14} {:>16}",
        "AP", "device", "fs", "speed (paper)", "iowait (paper)"
    );
    for r in table2::table2() {
        let reference = paper.iter().find(|(d, f, _, _)| *d == r.device && *f == r.fs);
        let (ps, pi) = reference.map(|(_, _, s, i)| (*s, *i)).unwrap_or((f64::NAN, f64::NAN));
        println!(
            "  {:<8} {:<22} {:<6} {:>6.2} ({:>5.2}) {:>8.1}% ({:>5.1}%)",
            r.ap.to_string(),
            r.device.to_string(),
            r.fs.to_string(),
            r.max_speed_mbps,
            ps,
            100.0 * r.iowait,
            100.0 * pi
        );
    }
    let best = table2::best_newifi_setup();
    println!(
        "{}",
        row("best Newifi setup", "USB HDD + EXT4", format!("{} + {}", best.device, best.fs))
    );
}

fn fig15() {
    section("Fig 15 — ODR decision table (the workflow state machine)");
    use odx::odr::{ApContext, OdrEngine, OdrRequest};
    use odx::trace::{PopularityClass, Protocol};
    let engine = OdrEngine::default();
    println!(
        "  {:<15} {:<10} {:<7} {:<8} {:>7}  decision",
        "popularity", "protocol", "cached", "isp", "access"
    );
    let grid = [
        (
            PopularityClass::HighlyPopular,
            Protocol::BitTorrent,
            true,
            odx::net::Isp::Telecom,
            2500.0,
        ),
        (PopularityClass::HighlyPopular, Protocol::BitTorrent, true, odx::net::Isp::Telecom, 400.0),
        (PopularityClass::HighlyPopular, Protocol::Http, true, odx::net::Isp::Telecom, 400.0),
        (PopularityClass::HighlyPopular, Protocol::Http, false, odx::net::Isp::Telecom, 400.0),
        (PopularityClass::Popular, Protocol::BitTorrent, true, odx::net::Isp::Telecom, 400.0),
        (PopularityClass::Popular, Protocol::BitTorrent, true, odx::net::Isp::Other, 400.0),
        (PopularityClass::Popular, Protocol::BitTorrent, true, odx::net::Isp::Telecom, 80.0),
        (PopularityClass::Unpopular, Protocol::BitTorrent, false, odx::net::Isp::Telecom, 400.0),
        (PopularityClass::Unpopular, Protocol::Ftp, true, odx::net::Isp::Telecom, 400.0),
    ];
    for (pop, proto, cached, isp, access) in grid {
        let verdict = engine.decide(&OdrRequest {
            popularity: pop,
            protocol: proto,
            cached_in_cloud: cached,
            isp,
            access_kbps: access,
            ap: Some(ApContext::bench(ApModel::Newifi)),
        });
        println!(
            "  {:<15} {:<10} {:<7} {:<8} {:>7.0}  {}",
            pop.to_string(),
            proto.to_string(),
            cached,
            isp.to_string(),
            access,
            verdict.decision
        );
    }
}

fn fig16(cloud: Option<&WeekReport>, eval: &OdrEvalReport, scale: f64) {
    section("Fig 16 — the four bottlenecks: baseline vs ODR");
    let base_impeded = cloud.map(|c| c.impeded_ratio()).unwrap_or(0.28);
    println!(
        "{}",
        row(
            "B1 impeded fetches",
            "28% → 9%",
            format!("{:.1}% → {:.1}%", 100.0 * base_impeded, 100.0 * eval.impeded_ratio())
        )
    );
    if let Some(cloud) = cloud {
        let cap = kbps_to_gbps(CloudConfig::at_scale(scale).scaled_upload_kbps());
        let peak = cloud.peak_burden_gbps();
        let odr_peak = peak * eval.cloud_upload_fraction();
        println!(
            "{}",
            row(
                "B2 purchased / peak burden",
                "0.88 → 1.36",
                format!("{:.2} → {:.2}", cap / peak, cap / odr_peak)
            )
        );
    }
    println!(
        "{}",
        row(
            "B2 cloud upload bytes (vs all-cloud)",
            "-35%",
            format!("{:+.0}%", 100.0 * (eval.cloud_upload_fraction() - 1.0))
        )
    );
    println!(
        "{}",
        row(
            "B3 unpopular failures (AP → ODR)",
            "42% → 13%",
            format!(
                "{:.1}% → {:.1}%",
                100.0 * eval.baseline_ap().unpopular_failure_ratio(),
                100.0 * eval.unpopular_failure_ratio()
            )
        )
    );
    println!(
        "{}",
        row(
            "B4 storage restrictions (at-risk → ODR)",
            "avoided",
            format!(
                "{:.1}% → {:.1}%",
                100.0 * eval.baseline_b4_ratio(),
                100.0 * eval.storage_limited_ratio()
            )
        )
    );
    println!(
        "{}",
        row("incorrect redirections", "<1%", format!("{:.2}%", 100.0 * eval.incorrect_ratio()))
    );
}

fn fig17(eval: &OdrEvalReport, opts: &Options) {
    section("Fig 17 — fetching speeds using ODR (KBps)");
    let ecdf = eval.fetch_speed_ecdf();
    println!(
        "{}",
        row("ODR fetches", "med 368 / mean 509 / max 2370", mmmm(&ecdf.summary().unwrap()))
    );
    dump_cdf(opts, "fig17_odr_fetch_speed_cdf.tsv", &ecdf);
}

fn ablate_cache(study: &Study, baseline: &WeekReport) {
    section("Ablation — remove the cloud storage pool (§4.1 counterfactual)");
    let scenario = Study::scenarios().get("ablate-cache").expect("builtin preset").clone();
    let report = study.replay_cloud_scenario(&scenario);
    println!(
        "{}",
        row("failure ratio with pool", "8.7%", format!("{:.1}%", 100.0 * baseline.failure_ratio()))
    );
    println!(
        "{}",
        row(
            "failure ratio without pool",
            "16.4%",
            format!("{:.1}%", 100.0 * report.failure_ratio())
        )
    );
}

fn ablate_privileged(study: &Study, baseline: &WeekReport) {
    section("Ablation — disable privileged-path construction");
    let scenario = Study::scenarios().get("ablate-privileged").expect("builtin preset").clone();
    let report = study.replay_cloud_scenario(&scenario);
    println!(
        "{}",
        row(
            "impeded fetches, privileged paths on",
            "28%",
            format!("{:.1}%", 100.0 * baseline.impeded_ratio())
        )
    );
    println!(
        "{}",
        row(
            "impeded fetches, every fetch cross-ISP",
            "(not measured)",
            format!("{:.1}%", 100.0 * report.impeded_ratio())
        )
    );
    println!(
        "{}",
        row(
            "fetch median, privileged on → off",
            "287 → (collapses)",
            format!(
                "{:.0} → {:.0} KBps",
                baseline.fetch_speed_ecdf().median().unwrap(),
                report.fetch_speed_ecdf().median().unwrap()
            )
        )
    );
}

fn ablate_storage() {
    section("Ablation — storage sweep: when does the write path bind?");
    println!("  effective rate (MBps) by offered network rate, Newifi-class CPU (580 MHz):");
    println!(
        "  {:<22} {:<6} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "device", "fs", "0.5", "1.0", "2.37", "5.0", "10.0"
    );
    for device in DeviceKind::ALL {
        for fs in FsKind::ALL {
            let rates: Vec<String> = [0.5, 1.0, 2.37, 5.0, 10.0]
                .iter()
                .map(|&offered| {
                    let eff =
                        odx::storage::effective_rate_kbps(device, fs, 580.0, offered * 1000.0)
                            / 1000.0;
                    format!("{eff:>7.2}")
                })
                .collect();
            println!("  {:<22} {:<6} {}", device.to_string(), fs.to_string(), rates.join(""));
        }
    }
    println!("  (cells < offered indicate the storage path, not the network, is binding)");
}

fn sweep_cache(study: &Study) {
    section("Extension — storage-pool size vs cache hits and failures");
    println!("  (the paper's pool is 2 PB ≈ catalog-sized; how small could it be?)");
    for fraction in [0.0001_f64, 0.001, 0.01, 0.1, 1.0] {
        let mut cfg = CloudConfig::at_scale(study.scale);
        cfg.cache_capacity_mb *= fraction;
        let report = study.replay_cloud_with(cfg);
        println!(
            "  pool ×{fraction:<7}: hit {:>5.1}%  failure {:>4.1}%  impeded {:>5.1}%",
            100.0 * report.hit_ratio(),
            100.0 * report.failure_ratio(),
            100.0 * report.impeded_ratio()
        );
    }
    println!("  (hits collapse once the LRU can no longer hold the working set)");
}

fn ablate_concurrency(study: &Study, sample_size: usize) {
    section("Extension — sequential vs concurrent AP replay (aria2 job slots)");
    use odx::smartap::concurrent::replay_concurrent;
    let sample = study.benchmark_sample(sample_size.min(300));
    println!(
        "  ({} tasks on MiWiFi; same pre-drawn sources, only concurrency varies)",
        sample.len()
    );
    for slots in [1usize, 2, 4, 8] {
        let report =
            replay_concurrent(ApModel::MiWiFi, &sample, slots, &study.rngs.child("concurrency"));
        println!(
            "  {slots} slot(s): makespan {:>9}  failure {:>5.1}%",
            format!("{}", report.makespan),
            100.0 * report.failure_ratio()
        );
    }
    println!("  (the paper's sequential §5.1 methodology = 1 slot)");
}

fn export_traces(study: &Study, opts: &Options) {
    section("Export — the dataset's three traces as TSV");
    let dir = opts.out.clone().unwrap_or_else(|| PathBuf::from("out"));
    std::fs::create_dir_all(&dir).expect("create output dir");
    let report = study.replay_cloud();

    // Workload trace.
    let workload_records: Vec<odx::trace::records::WorkloadRecord> = study
        .workload
        .requests()
        .iter()
        .map(|r| {
            let user = study.population.user(r.user);
            let file = study.catalog.file(r.file);
            odx::trace::records::WorkloadRecord {
                user_id: r.user,
                isp: user.isp,
                access_kbps: user.reports_bandwidth.then_some(user.access_kbps),
                request_time: r.at,
                file_type: file.ftype,
                size_mb: file.size_mb,
                source_link: file.source_link(),
                protocol: file.protocol,
            }
        })
        .collect();
    for (name, write) in
        [("workload_trace.tsv", 0usize), ("predownload_trace.tsv", 1), ("fetch_trace.tsv", 2)]
    {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create trace file");
        match write {
            0 => odx::trace::io::write_tsv(&mut f, &workload_records).unwrap(),
            1 => odx::trace::io::write_tsv(&mut f, &report.predownloads).unwrap(),
            _ => odx::trace::io::write_tsv(&mut f, &report.fetches).unwrap(),
        }
        println!("  wrote {}", path.display());
    }
}

fn ablate_dedup(study: &Study) {
    section("Ablation — chunk-level vs file-level deduplication (§2.1)");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
    let est = odx::cloud::dedup::estimate(
        &study.catalog,
        &odx::cloud::dedup::DedupConfig::default(),
        &mut rng,
    );
    println!(
        "{}",
        row(
            "extra saving of chunk-level dedup",
            "< 1%",
            format!("{:.2}%", 100.0 * est.extra_saving())
        )
    );
    println!(
        "{}",
        row(
            "index entries: chunks vs files",
            "(much larger)",
            format!("{} vs {}", est.chunk_count, study.catalog.len())
        )
    );
}

fn ablate_ledbat(study: &Study) {
    section("Extension — LEDBAT-style cloud seeding of hot swarms (§6.1 discussion)");
    use odx::p2p::multiplier::{BandwidthMultiplier, SeedGovernor};
    use odx::sim::SimTime;
    let report = study.replay_cloud();
    let cap_kbps = CloudConfig::at_scale(study.scale).scaled_upload_kbps();
    let mult = BandwidthMultiplier::default();
    let mut governor = SeedGovernor::new(cap_kbps, 300.0);

    // Walk the measured burden series: whatever headroom the fetch traffic
    // leaves becomes background seeding budget, which the multiplier turns
    // into aggregate swarm distribution bandwidth.
    let mut seed_amount_kb = 0.0;
    let mut distributed_kb = 0.0;
    let swarm_size = 120.0; // a typical highly-popular swarm
    for (t, burden) in report.burden_kbps.points() {
        let now = SimTime::from_millis((t * 1000.0) as u64);
        let allowance = governor.allowance_kbps(now, burden);
        let kb = allowance * report.burden_kbps.bin_width();
        if governor.consume(now, kb) {
            seed_amount_kb += kb;
            distributed_kb += kb * mult.multiplier(swarm_size);
        }
    }
    let week_secs = 7.0 * 86_400.0;
    println!(
        "{}",
        row(
            "idle capacity usable for seeding",
            "(unquantified)",
            format!("{:.2} Gbps average", kbps_to_gbps(seed_amount_kb / week_secs))
        )
    );
    println!(
        "{}",
        row(
            "aggregate distribution via multiplier",
            "(unquantified)",
            format!(
                "{:.1} Gbps average ({:.1}x the seeding spend)",
                kbps_to_gbps(distributed_kb / week_secs),
                mult.multiplier(swarm_size)
            )
        )
    );
    println!("  (LEDBAT yields to foreground fetches, so rejections are unaffected)");
}

fn sweep_userbase(study: &Study) {
    section("Extension — user-base growth vs fetch rejections (Bottleneck 2's trend)");
    println!("  demand grows while the purchased 30 Gbps (scaled) stays fixed:");
    let preset = Study::scenarios().get("sweep-userbase").expect("builtin preset").clone();
    for factor in [1.0_f64, 1.25, 1.5, 2.0] {
        // Same workload, proportionally less capacity = proportionally more
        // demand per unit capacity.
        let mut scenario = preset.clone();
        scenario.demand_factor = factor;
        let report = study.replay_cloud_scenario(&scenario);
        println!(
            "  demand ×{factor:<4} → rejected {:>5.2}%   impeded {:>5.1}%",
            100.0 * report.rejection_ratio(),
            100.0 * report.impeded_ratio()
        );
    }
    println!("  (paper: \"the cloud will have to reject more (>1.5%) fetching requests\")");
}
