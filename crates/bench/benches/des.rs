//! DES hot-path benchmarks: event-queue churn (slab vs the preserved
//! legacy implementation), one cloud week shard, and a full scenario × seed
//! sweep. `ODX_BENCH_QUICK=1` (set by `ci.sh`) shrinks sample counts and
//! scales so the suite doubles as a smoke test.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odx::sim::{EventQueue, SimTime, TimingWheel};
use odx::sweep::{run_sweep, SweepSpec};
use odx::telemetry::TraceConfig;
use odx::Study;

fn quick() -> bool {
    std::env::var_os("ODX_BENCH_QUICK").is_some()
}

/// Deterministic churn workload: schedule with LCG-drawn times, cancel
/// ~60 % of events, pop interleaved, then drain. Mirrors the `repro bench`
/// subcommand so criterion and BENCH_pr3.json measure the same shape.
macro_rules! churn {
    ($queue:expr, $n:expr) => {{
        let mut q = $queue;
        let mut ids = Vec::with_capacity($n);
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        let mut pops = 0u64;
        let mut now = 0u64;
        for i in 0..$n as u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ids.push(q.schedule(SimTime::from_millis(now + (x >> 33) % 1_000_000), i));
            if i % 5 != 0 && i % 5 != 3 {
                q.cancel(ids[((x >> 20) as usize) % ids.len()]);
            }
            if i % 7 == 0 {
                if let Some((t, _)) = q.pop() {
                    now = t.as_millis();
                    pops += 1;
                }
            }
        }
        while let Some((t, _)) = q.pop() {
            now = t.as_millis();
            pops += 1;
        }
        let _ = now;
        pops
    }};
}

fn bench_event_queue_churn(c: &mut Criterion) {
    let n: usize = if quick() { 10_000 } else { 50_000 };
    let mut group = c.benchmark_group("des");
    group.sample_size(if quick() { 2 } else { 10 });
    group.bench_function("event_queue_churn_slab", |b| {
        b.iter(|| black_box(churn!(EventQueue::with_capacity(n), n)))
    });
    group.bench_function("event_queue_churn_legacy", |b| {
        b.iter(|| black_box(churn!(odx::sim::legacy::EventQueue::new(), n)))
    });
    group.bench_function("event_queue_churn_wheel", |b| {
        b.iter(|| black_box(churn!(TimingWheel::with_capacity(n), n)))
    });
    group.finish();
}

fn bench_cloud_week_shard(c: &mut Criterion) {
    let scale = if quick() { 0.002 } else { 0.01 };
    let mut group = c.benchmark_group("des");
    group.sample_size(2);
    // Three variants of the same shard prove the lifecycle-tracing cost
    // model: `trace: None` must stay within 5% of the pre-tracing baseline
    // (the acceptance bar vs BENCH_pr3.json), sampled tracing within
    // budget, and full tracing is the worst case.
    for (name, trace) in [
        ("cloud_week_shard", None),
        ("cloud_week_shard_traced_1_16", Some(TraceConfig::sampled(16))),
        ("cloud_week_shard_traced_full", Some(TraceConfig::full())),
    ] {
        let trace = &trace;
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_sweep(&SweepSpec {
                    scenarios: vec![Study::scenarios().get("paper-default").unwrap().clone()],
                    seeds: vec![2015],
                    scale,
                    jobs: 1,
                    trace: *trace,
                    series_interval_ms: None,
                    progress: false,
                });
                black_box(report.total_events())
            })
        });
    }
    // The same untraced shard on the timing wheel: the headline scheduler
    // comparison criterion tracks alongside `repro bench --json`'s
    // `full_week` section.
    group.bench_function("cloud_week_shard_wheel", |b| {
        b.iter(|| {
            let mut scenario = Study::scenarios().get("paper-default").unwrap().clone();
            scenario.scheduler = odx::sim::SchedulerKind::Wheel;
            let report = run_sweep(&SweepSpec {
                scenarios: vec![scenario],
                seeds: vec![2015],
                scale,
                jobs: 1,
                trace: None,
                series_interval_ms: None,
                progress: false,
            });
            black_box(report.total_events())
        })
    });
    group.finish();
}

fn bench_full_sweep(c: &mut Criterion) {
    let scale = if quick() { 0.001 } else { 0.002 };
    let mut group = c.benchmark_group("des");
    group.sample_size(2);
    group.bench_function("full_sweep_6x2", |b| {
        b.iter(|| {
            let report = run_sweep(&SweepSpec {
                scenarios: Study::scenarios().all().to_vec(),
                seeds: vec![2015, 2016],
                scale,
                jobs: 4,
                trace: None,
                series_interval_ms: None,
                progress: false,
            });
            black_box(report.total_events())
        })
    });
    group.finish();
}

criterion_group!(des, bench_event_queue_churn, bench_cloud_week_shard, bench_full_sweep);
criterion_main!(des);
