//! Macro-benchmarks: one group per reproduced experiment, measuring the cost
//! of regenerating each table/figure end to end (at reduced scale, so the
//! suite stays in seconds; the `repro` binary runs the big versions).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odx::stats::fit::{fit_se, fit_zipf, rank_frequency};
use odx::stats::Ecdf;
use odx::Study;

fn bench_fig05_file_sizes(c: &mut Criterion) {
    let study = Study::generate(0.01, 1);
    c.bench_function("fig05/catalog_generation_0.01", |b| {
        b.iter(|| black_box(Study::generate(0.01, 2).catalog.len()))
    });
    c.bench_function("fig05/size_cdf_summary", |b| {
        b.iter(|| {
            let ecdf = Ecdf::new(study.catalog.sizes_mb());
            black_box(ecdf.summary())
        })
    });
}

fn bench_fig06_07_fits(c: &mut Criterion) {
    let study = Study::generate(0.02, 3);
    let ranked = rank_frequency(&study.catalog.weekly_counts());
    c.bench_function("fig06/zipf_fit", |b| b.iter(|| black_box(fit_zipf(&ranked))));
    c.bench_function("fig07/se_fit", |b| b.iter(|| black_box(fit_se(&ranked, 0.01))));
}

fn bench_fig08_11_cloud_week(c: &mut Criterion) {
    let study = Study::generate(0.002, 4);
    let mut group = c.benchmark_group("fig08_11");
    group.sample_size(10);
    group.bench_function("cloud_week_replay_0.002", |b| {
        b.iter(|| black_box(study.replay_cloud().counters.requests))
    });
    let report = study.replay_cloud();
    group.bench_function("fetch_speed_cdf", |b| {
        b.iter(|| black_box(report.fetch_speed_ecdf().median()))
    });
    group.finish();
}

fn bench_fig13_14_smartap(c: &mut Criterion) {
    let study = Study::generate(0.01, 5);
    let mut group = c.benchmark_group("fig13_14");
    group.sample_size(20);
    group.bench_function("smartap_replay_300", |b| {
        b.iter(|| black_box(study.replay_smart_aps(300).failure_ratio()))
    });
    group.finish();
}

fn bench_table2_sweep(c: &mut Criterion) {
    c.bench_function("table2/full_sweep", |b| {
        b.iter(|| black_box(odx::smartap::table2::table2().len()))
    });
}

fn bench_fig16_17_odr(c: &mut Criterion) {
    let study = Study::generate(0.01, 6);
    let mut group = c.benchmark_group("fig16_17");
    group.sample_size(20);
    group.bench_function("odr_eval_300", |b| {
        b.iter(|| black_box(study.replay_odr(300).impeded_ratio()))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig05_file_sizes,
    bench_fig06_07_fits,
    bench_fig08_11_cloud_week,
    bench_fig13_14_smartap,
    bench_table2_sweep,
    bench_fig16_17_odr
);
criterion_main!(figures);
