//! Micro-benchmarks for the core data structures and hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odx::cloud::LruCache;
use odx::net::Isp;
use odx::odr::{ApContext, OdrEngine, OdrRequest};
use odx::proto::http::Request;
use odx::proto::Json;
use odx::sim::fluid::{max_min_rates, FlowSpec};
use odx::sim::{EventQueue, SimTime};
use odx::smartap::ApModel;
use odx::stats::dist::{Dist, LogNormal, Zipf};
use odx::stats::Ecdf;
use odx::trace::{PopularityClass, Protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_decision_engine(c: &mut Criterion) {
    let engine = OdrEngine::default();
    let req = OdrRequest {
        popularity: PopularityClass::Popular,
        protocol: Protocol::BitTorrent,
        cached_in_cloud: true,
        isp: Isp::Other,
        access_kbps: 400.0,
        ap: Some(ApContext::bench(ApModel::Newifi)),
    };
    c.bench_function("micro/odr_decide", |b| b.iter(|| black_box(engine.decide(&req))));
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("micro/event_queue_10k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_millis(i * 7919 % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("micro/lru_insert_touch_10k", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(5_000.0);
            for i in 0..10_000u32 {
                cache.insert(i, 1.0);
                cache.touch(&(i / 2));
            }
            black_box(cache.len())
        })
    });
}

fn bench_fluid_solver(c: &mut Criterion) {
    let caps: Vec<f64> = (0..16).map(|i| 1000.0 + i as f64 * 37.0).collect();
    let flows: Vec<FlowSpec> = (0..200)
        .map(|i| FlowSpec::capped(vec![i % 16, (i * 7) % 16], 50.0 + (i % 9) as f64 * 25.0))
        .collect();
    c.bench_function("micro/max_min_200_flows_16_links", |b| {
        b.iter(|| black_box(max_min_rates(&caps, &flows)))
    });
}

fn bench_sampling(c: &mut Criterion) {
    let lognormal = LogNormal::from_median(400.0, 0.93);
    let zipf = Zipf::new(100_000, 1.034);
    let mut rng = StdRng::seed_from_u64(9);
    c.bench_function("micro/lognormal_sample", |b| {
        b.iter(|| black_box(lognormal.sample(&mut rng)))
    });
    c.bench_function("micro/zipf_sample_100k_support", |b| {
        b.iter(|| black_box(zipf.sample_rank(&mut rng)))
    });
}

fn bench_ecdf(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(10);
    let d = LogNormal::from_median(100.0, 1.0);
    let samples = d.sample_n(&mut rng, 100_000);
    c.bench_function("micro/ecdf_build_100k", |b| {
        b.iter(|| black_box(Ecdf::new(samples.clone()).median()))
    });
    let ecdf = Ecdf::new(samples);
    c.bench_function("micro/ecdf_quantile", |b| b.iter(|| black_box(ecdf.quantile(0.37))));
}

fn bench_wire(c: &mut Criterion) {
    let body = r#"{"link": "magnet:?xt=urn:btih:0123456789abcdef0123456789abcdef",
                   "isp": "unicom", "access_kbps": 512.0,
                   "ap": {"model": "newifi", "device": "usb-flash", "fs": "ntfs"}}"#;
    c.bench_function("micro/json_parse_decide_body", |b| {
        b.iter(|| black_box(Json::parse(body).unwrap()))
    });
    let raw = format!(
        "POST /decide HTTP/1.1\r\nhost: odr\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    c.bench_function("micro/http_parse_request", |b| {
        b.iter(|| black_box(Request::read_from(raw.as_bytes()).unwrap()))
    });
}

criterion_group!(
    micro,
    bench_decision_engine,
    bench_event_queue,
    bench_lru,
    bench_fluid_solver,
    bench_sampling,
    bench_ecdf,
    bench_wire
);
criterion_main!(micro);
