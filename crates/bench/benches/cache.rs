//! Cache-policy benchmarks: per-policy churn on a synthetic LCG workload
//! (mirrors the `repro bench` cache section) and a cloud-week shard under
//! the `cache-pressure` preset for each policy. `ODX_BENCH_QUICK=1` (set
//! by `ci.sh`) shrinks op counts and scales so the suite doubles as a
//! smoke test.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odx::cache::{PolicyKind, ShardedCache};
use odx::sweep::{policy_variants, run_sweep, SweepSpec};
use odx::Study;

fn quick() -> bool {
    std::env::var_os("ODX_BENCH_QUICK").is_some()
}

/// The `repro bench` churn shape: LCG-driven 50/50 lookup/insert mix over
/// a 4096-key universe at a budget tight enough to keep eviction hot.
fn churn(cache: &mut dyn odx::cache::CachePolicy, ops: u64) -> u64 {
    let mut x: u64 = 0x2545_f491_4f6c_dd1d;
    let mut touched = 0u64;
    for op in 0..ops {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let key = (x >> 40) % 4096;
        if x & 1 == 0 {
            touched += u64::from(cache.lookup(key, op).is_some());
        } else {
            let size_mb = 1.0 + ((x >> 16) % 64) as f64;
            touched += cache.insert(key, size_mb, op).len() as u64;
        }
    }
    touched
}

fn bench_policy_churn(c: &mut Criterion) {
    let ops: u64 = if quick() { 20_000 } else { 100_000 };
    let mut group = c.benchmark_group("cache");
    group.sample_size(if quick() { 2 } else { 10 });
    for policy in PolicyKind::ALL {
        group.bench_function(&format!("churn_{}", policy.name()), |b| {
            b.iter(|| {
                let mut cache = policy.build(5_000.0, 1024);
                black_box(churn(cache.as_mut(), ops))
            })
        });
    }
    // The sharded wrapper's FxHash routing overhead on the same workload.
    group.bench_function("churn_lru_4shards", |b| {
        b.iter(|| {
            let mut cache = ShardedCache::new(PolicyKind::Lru, 5_000.0, 4, 1024);
            black_box(churn(&mut cache, ops))
        })
    });
    group.finish();
}

fn bench_cache_pressure_week(c: &mut Criterion) {
    let scale = if quick() { 0.001 } else { 0.005 };
    let registry = Study::scenarios();
    let base = vec![registry.get("cache-pressure").expect("builtin preset").clone()];
    let mut group = c.benchmark_group("cache");
    group.sample_size(2);
    for policy in PolicyKind::ALL {
        let scenarios = policy_variants(&base, &[policy]);
        group.bench_function(&format!("cloud_week_pressure_{}", policy.name()), |b| {
            b.iter(|| {
                let report = run_sweep(&SweepSpec {
                    scenarios: scenarios.clone(),
                    seeds: vec![2015],
                    scale,
                    jobs: 1,
                    trace: None,
                    series_interval_ms: None,
                    progress: false,
                });
                black_box(report.total_events())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy_churn, bench_cache_pressure_week);
criterion_main!(benches);
