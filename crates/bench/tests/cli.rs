//! CLI-contract tests for the `repro` binary: usage errors exit 2 and
//! name the offending field plus the nearest valid alternative, and the
//! `scenario` inspector keeps stdout pipe-clean canonical JSON.
//!
//! These run the real binary (`CARGO_BIN_EXE_repro`), so they cover the
//! argument parsing and layering that the library tests cannot reach.

use std::path::Path;
use std::process::{Command, Output, Stdio};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("spawn repro")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn unknown_scenario_exits_2_with_a_suggestion() {
    let out = repro(&["headline", "--scenario", "cache-presure"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown scenario `cache-presure`"), "{err}");
    assert!(err.contains("did you mean `cache-pressure`?"), "{err}");
}

#[test]
fn unreadable_scenario_file_exits_2_naming_the_file() {
    let out = repro(&["--scenario-file", "/nonexistent/nope.json", "list"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot read scenario file `/nonexistent/nope.json`"));
}

#[test]
fn bad_set_path_and_value_exit_2_with_field_paths() {
    let out = repro(&["headline", "--set", "demand_fator=2"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown config path `demand_fator`"), "{err}");
    assert!(err.contains("did you mean `demand_factor`?"), "{err}");

    let out = repro(&["headline", "--set", "demand_factor=-1"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("`demand_factor`"), "{err}");
    assert!(err.contains("must be > 0"), "{err}");

    let out = repro(&["headline", "--set", "no-equals-sign"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--set needs dotted.path=value"));
}

#[test]
fn bad_scheduler_vocab_exits_2_with_a_suggestion() {
    let out = repro(&["headline", "--set", "sim.scheduler=whel"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("config error at `sim.scheduler`"), "{err}");
    assert!(err.contains("unknown scheduler `whel`"), "{err}");
    assert!(err.contains("did you mean `wheel`?"), "{err}");
}

#[test]
fn unknown_subcommand_still_exits_2() {
    let out = repro(&["figg8"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown subcommand `figg8`"));
}

#[test]
fn scenario_show_prints_canonical_json_only() {
    let out = repro(&["scenario", "show", "paper-default"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.starts_with('{') && text.ends_with("}\n"), "stdout must be bare JSON: {text}");
    assert!(text.contains("\"name\":\"paper-default\""));
    // Byte-stable: two invocations agree.
    assert_eq!(text, stdout(&repro(&["scenario", "show", "paper-default"])));

    let out = repro(&["scenario", "show", "paper-defalt"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("did you mean `paper-default`?"));
}

#[test]
fn scenario_dump_all_round_trips_through_check() {
    let dump = repro(&["scenario", "dump", "--all"]);
    assert_eq!(dump.status.code(), Some(0));
    let text = stdout(&dump);
    assert!(text.starts_with('[') && text.ends_with("]\n"), "stdout must be a JSON array");

    let mut check = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["scenario", "check"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repro scenario check");
    use std::io::Write;
    check.stdin.take().unwrap().write_all(text.as_bytes()).unwrap();
    let out = check.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("ok: 7 scenario(s)"));
}

#[test]
fn scenario_check_rejects_invalid_documents_with_exit_2() {
    let dir = std::env::temp_dir().join("repro-cli-check");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    std::fs::write(&path, r#"{"name": "x", "cernet_share": 2}"#).unwrap();
    let out = repro(&["scenario", "check", "--json", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cernet_share"));
}

#[test]
fn example_scenario_file_drives_the_sweep() {
    let example = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/campus-pressure.json");
    let out = repro(&[
        "--scenario-file",
        example.to_str().unwrap(),
        "sweep",
        "--scenario",
        "campus-pressure",
        "--seeds",
        "1",
        "--scale",
        "0.0005",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    for cell in ["cache.policy=lru/demand_factor=1", "cache.policy=gdsf/demand_factor=1.5"] {
        assert!(text.contains(cell), "axis cell `{cell}` missing from sweep output:\n{text}");
    }
}
