//! Property-based tests for workload generation.

use odx_stats::dist::u01;
use odx_trace::{
    Catalog, CatalogConfig, PopularityClass, Population, PopulationConfig, Workload, WorkloadConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Catalog invariants hold for any seed and any (small) size.
    #[test]
    fn catalog_invariants(seed in any::<u64>(), files in 500usize..4000) {
        let cfg = CatalogConfig { files, ..CatalogConfig::scaled(0.01) };
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(&cfg, &mut rng);
        prop_assert_eq!(catalog.len(), files);

        let mut total = 0u64;
        for f in catalog.files() {
            prop_assert!(f.size_mb >= cfg.min_mb && f.size_mb <= cfg.max_mb, "{}", f.size_mb);
            prop_assert!(f.weekly_requests >= 1);
            prop_assert!(f64::from(f.weekly_requests) <= cfg.max_weekly_requests + 0.5);
            total += u64::from(f.weekly_requests);
            // Class boundaries are respected by construction.
            match f.class() {
                PopularityClass::Unpopular => prop_assert!(f.weekly_requests < 7),
                PopularityClass::Popular => {
                    prop_assert!((7..=84).contains(&f.weekly_requests))
                }
                PopularityClass::HighlyPopular => prop_assert!(f.weekly_requests > 84),
            }
        }
        prop_assert_eq!(total, catalog.total_requests());

        // Class file-shares are exact by construction (±1 file rounding).
        let (hot_share, _) = catalog.class_shares(PopularityClass::HighlyPopular);
        prop_assert!((hot_share - 0.0084).abs() < 2.0 / files as f64, "{hot_share}");
    }

    /// Workload expansion is an exact inverse of the catalog's counts, for
    /// any temporal profile.
    #[test]
    fn workload_matches_counts(
        seed in any::<u64>(),
        amplitude in 0.0f64..0.95,
        peak_hour in 0.0f64..24.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(
            &CatalogConfig { files: 800, ..CatalogConfig::scaled(0.01) },
            &mut rng,
        );
        let population = Population::generate(&PopulationConfig::scaled(0.002), &mut rng);
        let cfg = WorkloadConfig {
            diurnal_amplitude: amplitude,
            diurnal_peak_hour: peak_hour,
            ..WorkloadConfig::default()
        };
        let workload = Workload::generate(&catalog, &population, &cfg, &mut rng);
        prop_assert_eq!(workload.len() as u64, catalog.total_requests());

        // Per-file counts survive the expansion exactly.
        let mut counts = vec![0u32; catalog.len()];
        for r in workload.requests() {
            counts[r.file as usize] += 1;
        }
        for (i, f) in catalog.files().iter().enumerate() {
            prop_assert_eq!(counts[i], f.weekly_requests);
        }

        // Sorted arrival times inside the week.
        let mut prev = odx_sim::SimTime::ZERO;
        for r in workload.requests() {
            prop_assert!(r.at >= prev);
            prop_assert!(r.at.as_millis() < odx_trace::WEEK.as_millis());
            prev = r.at;
        }
    }

    /// The ISP mix sampler covers the support and never panics.
    #[test]
    fn isp_mix_total_coverage(seed in any::<u64>()) {
        let mix = odx_net::IspMix::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut saw_major = false;
        let mut saw_other = false;
        for _ in 0..2000 {
            let isp = mix.sample(&mut rng);
            if isp.is_major() {
                saw_major = true;
            } else {
                saw_other = true;
            }
            // u01 keeps working on the same stream.
            let _ = u01(&mut rng);
        }
        prop_assert!(saw_major);
        prop_assert!(saw_other);
    }
}
