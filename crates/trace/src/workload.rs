//! Request-stream generation over the measurement week.

use odx_sim::SimTime;
use odx_stats::dist::u01;
use rand::Rng;
use serde::Serialize;

use crate::{Catalog, Population};

/// One offline-downloading request: who wants which file, when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Request {
    /// Index into the [`Population`].
    pub user: u32,
    /// Index into the [`Catalog`].
    pub file: u32,
    /// Request arrival time.
    pub at: SimTime,
}

/// Temporal shape of the request stream.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Relative volume per day of the week. The paper's Fig 11 shows load
    /// growing through the week and peaking on day 7 (when the 30 Gbps
    /// upload capacity was exceeded).
    pub day_weights: [f64; 7],
    /// Amplitude of the diurnal sinusoid (0 = flat, 1 = full swing).
    pub diurnal_amplitude: f64,
    /// Hour of day (0–24) of the diurnal peak; Chinese residential traffic
    /// peaks in the evening.
    pub diurnal_peak_hour: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            day_weights: [0.86, 0.89, 0.92, 0.96, 1.02, 1.08, 1.28],
            diurnal_amplitude: 0.70,
            diurnal_peak_hour: 21.0,
        }
    }
}

impl WorkloadConfig {
    /// Relative intensity at an instant (product of day weight and diurnal
    /// factor); used by the arrival sampler and tests.
    pub fn intensity(&self, at: SimTime) -> f64 {
        let day = (at.day() as usize).min(6);
        let hour = at.time_of_day().as_secs_f64() / 3600.0;
        let phase = (hour - self.diurnal_peak_hour) / 24.0 * std::f64::consts::TAU;
        self.day_weights[day] * (1.0 + self.diurnal_amplitude * phase.cos())
    }
}

/// Streaming, chunked expansion of the catalog's ground-truth weekly
/// counts into requests, in generation (file-major) order.
///
/// The stream draws from the RNG in exactly the order the old eager loop
/// did — per request: the arrival-time rejection sampler first, then the
/// user index — so any consumer that drains it reproduces
/// [`Workload::generate`]'s request sequence byte for byte (pinned under
/// test). Consumers that don't need the whole week at once (admission
/// pipelines, samplers) can process one bounded chunk at a time instead of
/// materializing millions of requests up front.
pub struct RequestStream<'a, 'r> {
    catalog: &'a Catalog,
    population: &'a Population,
    cfg: &'a WorkloadConfig,
    rng: &'r mut dyn Rng,
    max_intensity: f64,
    file_idx: usize,
    emitted_for_file: u32,
}

impl<'a, 'r> RequestStream<'a, 'r> {
    /// A stream over the whole catalog, starting at the first file.
    pub fn new(
        catalog: &'a Catalog,
        population: &'a Population,
        cfg: &'a WorkloadConfig,
        rng: &'r mut dyn Rng,
    ) -> Self {
        let max_intensity =
            cfg.day_weights.iter().fold(0.0f64, |a, &b| a.max(b)) * (1.0 + cfg.diurnal_amplitude);
        RequestStream {
            catalog,
            population,
            cfg,
            rng,
            max_intensity,
            file_idx: 0,
            emitted_for_file: 0,
        }
    }

    /// Clear `buf` and fill it with up to `max` requests in generation
    /// order. Returns `false` (with `buf` empty) once the stream is
    /// exhausted. The buffer is caller-owned so a full drain allocates one
    /// chunk, not one `Vec` per call.
    pub fn next_chunk(&mut self, buf: &mut Vec<Request>, max: usize) -> bool {
        buf.clear();
        while buf.len() < max && self.file_idx < self.catalog.len() {
            let file = self.catalog.file(self.file_idx as u32);
            if self.emitted_for_file >= file.weekly_requests {
                self.file_idx += 1;
                self.emitted_for_file = 0;
                continue;
            }
            self.emitted_for_file += 1;
            let at = sample_arrival(self.cfg, self.max_intensity, self.rng);
            buf.push(Request {
                user: self.population.sample_index(self.rng),
                file: self.file_idx as u32,
                at,
            });
        }
        !buf.is_empty()
    }
}

/// Requests per [`RequestStream`] chunk during workload generation.
const GENERATE_CHUNK: usize = 65_536;

/// The generated request stream, sorted by arrival time.
#[derive(Debug, Clone)]
pub struct Workload {
    requests: Vec<Request>,
}

impl Workload {
    /// Expand the catalog's ground-truth weekly counts into timestamped
    /// requests assigned to random users. Deterministic in `rng`.
    ///
    /// Generation flows through the chunked [`RequestStream`] (one bounded
    /// buffer at a time) and a final stable sort by arrival time — the
    /// request sequence is byte-identical to the old eager file-major
    /// loop. The sorted array itself stays materialized: replay handlers,
    /// trace exporters, and samplers index it randomly, and at 16 bytes a
    /// request even the full-scale week is ~65 MB — the multi-hundred-MB
    /// cost the streaming path eliminates is the up-front event-queue
    /// population, which now streams through chunked admission instead.
    pub fn generate(
        catalog: &Catalog,
        population: &Population,
        cfg: &WorkloadConfig,
        rng: &mut dyn Rng,
    ) -> Self {
        let mut requests = Vec::with_capacity(catalog.total_requests() as usize);
        let mut stream = RequestStream::new(catalog, population, cfg, rng);
        let mut chunk = Vec::with_capacity(GENERATE_CHUNK.min(requests.capacity()));
        while stream.next_chunk(&mut chunk, GENERATE_CHUNK) {
            requests.extend_from_slice(&chunk);
        }
        requests.sort_by_key(|r| r.at);
        Workload { requests }
    }

    /// The requests, sorted by time.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// The sorted requests in bounded slices of at most `n`, for consumers
    /// that admit the week piecewise (the cloud replay's streamed arrival
    /// injection) instead of holding every future event at once.
    pub fn chunks(&self, n: usize) -> impl Iterator<Item = &[Request]> {
        self.requests.chunks(n.max(1))
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// Rejection-sample an arrival time across the week according to the
/// intensity profile.
fn sample_arrival(cfg: &WorkloadConfig, max_intensity: f64, rng: &mut dyn Rng) -> SimTime {
    loop {
        let t = SimTime::from_millis((u01(rng) * crate::WEEK.as_millis() as f64) as u64);
        if u01(rng) * max_intensity <= cfg.intensity(t) {
            return t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CatalogConfig, PopulationConfig};
    use odx_sim::SimDuration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> (Catalog, Population, Workload) {
        let mut rng = StdRng::seed_from_u64(60);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let w = Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        (catalog, population, w)
    }

    #[test]
    fn chunked_stream_matches_the_eager_loop_byte_for_byte() {
        let mut rng = StdRng::seed_from_u64(60);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let cfg = WorkloadConfig::default();

        // The pre-streaming implementation: one eager file-major pass.
        let mut eager_rng = rng.clone();
        let mut generate_rng = rng.clone();
        let max_intensity =
            cfg.day_weights.iter().fold(0.0f64, |a, &b| a.max(b)) * (1.0 + cfg.diurnal_amplitude);
        let mut eager = Vec::new();
        for (file_idx, file) in catalog.files().iter().enumerate() {
            for _ in 0..file.weekly_requests {
                let at = sample_arrival(&cfg, max_intensity, &mut eager_rng);
                eager.push(Request {
                    user: population.sample_index(&mut eager_rng),
                    file: file_idx as u32,
                    at,
                });
            }
        }

        // Drain the stream with a deliberately awkward chunk size so
        // chunk boundaries land mid-file.
        let mut streamed = Vec::new();
        let mut stream = RequestStream::new(&catalog, &population, &cfg, &mut rng);
        let mut chunk = Vec::new();
        while stream.next_chunk(&mut chunk, 7) {
            assert!(chunk.len() <= 7);
            streamed.extend_from_slice(&chunk);
        }
        assert_eq!(streamed, eager);

        // And Workload::generate is exactly the stable sort of that
        // generation-order sequence.
        let mut sorted = eager;
        sorted.sort_by_key(|r| r.at);
        let w = Workload::generate(&catalog, &population, &cfg, &mut generate_rng);
        assert_eq!(w.requests(), &sorted[..]);
    }

    #[test]
    fn chunks_partition_the_sorted_requests() {
        let (_, _, w) = workload();
        let rejoined: Vec<Request> = w.chunks(1000).flat_map(|c| c.iter().copied()).collect();
        assert_eq!(rejoined, w.requests());
        assert!(w.chunks(1000).all(|c| c.len() <= 1000));
        // A zero chunk size is clamped rather than looping forever.
        assert_eq!(w.chunks(0).next().map(|c| c.len()), Some(1));
    }

    #[test]
    fn request_count_matches_catalog_ground_truth() {
        let (catalog, _, w) = workload();
        assert_eq!(w.len() as u64, catalog.total_requests());
    }

    #[test]
    fn requests_sorted_and_within_week() {
        let (_, _, w) = workload();
        let mut prev = SimTime::ZERO;
        for r in w.requests() {
            assert!(r.at >= prev);
            assert!(r.at < SimTime::ZERO + crate::WEEK);
            prev = r.at;
        }
    }

    #[test]
    fn indices_are_valid() {
        let (catalog, population, w) = workload();
        for r in w.requests() {
            assert!((r.file as usize) < catalog.len());
            assert!((r.user as usize) < population.len());
        }
    }

    #[test]
    fn day7_is_the_busiest() {
        let (_, _, w) = workload();
        let mut per_day = [0usize; 7];
        for r in w.requests() {
            per_day[(r.at.day() as usize).min(6)] += 1;
        }
        let busiest = per_day.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(busiest, 6, "per-day counts: {per_day:?}");
        // Growth through the week, loosely monotone.
        assert!(per_day[6] as f64 > per_day[0] as f64 * 1.15);
    }

    #[test]
    fn diurnal_shape_has_evening_peak() {
        let (_, _, w) = workload();
        let mut per_hour = [0usize; 24];
        for r in w.requests() {
            per_hour[(r.at.time_of_day().as_secs_f64() / 3600.0) as usize % 24] += 1;
        }
        let peak = per_hour.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        let trough = per_hour.iter().enumerate().min_by_key(|(_, &c)| c).unwrap().0;
        assert!((18..=23).contains(&peak), "peak hour {peak}");
        assert!((6..=12).contains(&trough), "trough hour {trough}");
    }

    #[test]
    fn intensity_profile_is_positive() {
        let cfg = WorkloadConfig::default();
        for h in 0..(24 * 7) {
            let t = SimTime::ZERO + SimDuration::from_hours(h);
            assert!(cfg.intensity(t) > 0.0);
        }
    }
}
