//! Request-stream generation over the measurement week.

use odx_sim::SimTime;
use odx_stats::dist::u01;
use rand::Rng;
use serde::Serialize;

use crate::{Catalog, Population};

/// One offline-downloading request: who wants which file, when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Request {
    /// Index into the [`Population`].
    pub user: u32,
    /// Index into the [`Catalog`].
    pub file: u32,
    /// Request arrival time.
    pub at: SimTime,
}

/// Temporal shape of the request stream.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Relative volume per day of the week. The paper's Fig 11 shows load
    /// growing through the week and peaking on day 7 (when the 30 Gbps
    /// upload capacity was exceeded).
    pub day_weights: [f64; 7],
    /// Amplitude of the diurnal sinusoid (0 = flat, 1 = full swing).
    pub diurnal_amplitude: f64,
    /// Hour of day (0–24) of the diurnal peak; Chinese residential traffic
    /// peaks in the evening.
    pub diurnal_peak_hour: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            day_weights: [0.86, 0.89, 0.92, 0.96, 1.02, 1.08, 1.28],
            diurnal_amplitude: 0.70,
            diurnal_peak_hour: 21.0,
        }
    }
}

impl WorkloadConfig {
    /// Relative intensity at an instant (product of day weight and diurnal
    /// factor); used by the arrival sampler and tests.
    pub fn intensity(&self, at: SimTime) -> f64 {
        let day = (at.day() as usize).min(6);
        let hour = at.time_of_day().as_secs_f64() / 3600.0;
        let phase = (hour - self.diurnal_peak_hour) / 24.0 * std::f64::consts::TAU;
        self.day_weights[day] * (1.0 + self.diurnal_amplitude * phase.cos())
    }
}

/// The generated request stream, sorted by arrival time.
#[derive(Debug, Clone)]
pub struct Workload {
    requests: Vec<Request>,
}

impl Workload {
    /// Expand the catalog's ground-truth weekly counts into timestamped
    /// requests assigned to random users. Deterministic in `rng`.
    pub fn generate(
        catalog: &Catalog,
        population: &Population,
        cfg: &WorkloadConfig,
        rng: &mut dyn Rng,
    ) -> Self {
        let max_intensity =
            cfg.day_weights.iter().fold(0.0f64, |a, &b| a.max(b)) * (1.0 + cfg.diurnal_amplitude);
        let mut requests = Vec::with_capacity(catalog.total_requests() as usize);
        for (file_idx, file) in catalog.files().iter().enumerate() {
            for _ in 0..file.weekly_requests {
                let at = sample_arrival(cfg, max_intensity, rng);
                requests.push(Request {
                    user: population.sample_index(rng),
                    file: file_idx as u32,
                    at,
                });
            }
        }
        requests.sort_by_key(|r| r.at);
        Workload { requests }
    }

    /// The requests, sorted by time.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// Rejection-sample an arrival time across the week according to the
/// intensity profile.
fn sample_arrival(cfg: &WorkloadConfig, max_intensity: f64, rng: &mut dyn Rng) -> SimTime {
    loop {
        let t = SimTime::from_millis((u01(rng) * crate::WEEK.as_millis() as f64) as u64);
        if u01(rng) * max_intensity <= cfg.intensity(t) {
            return t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CatalogConfig, PopulationConfig};
    use odx_sim::SimDuration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> (Catalog, Population, Workload) {
        let mut rng = StdRng::seed_from_u64(60);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let w = Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        (catalog, population, w)
    }

    #[test]
    fn request_count_matches_catalog_ground_truth() {
        let (catalog, _, w) = workload();
        assert_eq!(w.len() as u64, catalog.total_requests());
    }

    #[test]
    fn requests_sorted_and_within_week() {
        let (_, _, w) = workload();
        let mut prev = SimTime::ZERO;
        for r in w.requests() {
            assert!(r.at >= prev);
            assert!(r.at < SimTime::ZERO + crate::WEEK);
            prev = r.at;
        }
    }

    #[test]
    fn indices_are_valid() {
        let (catalog, population, w) = workload();
        for r in w.requests() {
            assert!((r.file as usize) < catalog.len());
            assert!((r.user as usize) < population.len());
        }
    }

    #[test]
    fn day7_is_the_busiest() {
        let (_, _, w) = workload();
        let mut per_day = [0usize; 7];
        for r in w.requests() {
            per_day[(r.at.day() as usize).min(6)] += 1;
        }
        let busiest = per_day.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(busiest, 6, "per-day counts: {per_day:?}");
        // Growth through the week, loosely monotone.
        assert!(per_day[6] as f64 > per_day[0] as f64 * 1.15);
    }

    #[test]
    fn diurnal_shape_has_evening_peak() {
        let (_, _, w) = workload();
        let mut per_hour = [0usize; 24];
        for r in w.requests() {
            per_hour[(r.at.time_of_day().as_secs_f64() / 3600.0) as usize % 24] += 1;
        }
        let peak = per_hour.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        let trough = per_hour.iter().enumerate().min_by_key(|(_, &c)| c).unwrap().0;
        assert!((18..=23).contains(&peak), "peak hour {peak}");
        assert!((6..=12).contains(&trough), "trough hour {trough}");
    }

    #[test]
    fn intensity_profile_is_positive() {
        let cfg = WorkloadConfig::default();
        for h in 0..(24 * 7) {
            let t = SimTime::ZERO + SimDuration::from_hours(h);
            assert!(cfg.intensity(t) > 0.0);
        }
    }
}
