#![warn(missing_docs)]

//! # odx-trace — workload models and trace schemas
//!
//! The paper's dataset is one week of complete Xuanfeng logs (Feb 22–28,
//! 2015): 4,084,417 offline-downloading tasks over 563,517 unique files from
//! 783,944 users, recorded as three traces (workload / pre-downloading /
//! fetching). We cannot have those logs, so this crate generates synthetic
//! equivalents whose marginals are calibrated to every §3 statistic:
//!
//! * **File sizes** (Fig 5): min 4 B, median 115 MB, mean 390 MB, max 4 GB,
//!   25 % below 8 MB.
//! * **File types**: 75 % video, 15 % software, 10 % other.
//! * **Protocols**: 68 % BitTorrent, 19 % eMule, 13 % HTTP/FTP.
//! * **Popularity** (Figs 6–7, 10): 93.2 % of files unpopular (< 7
//!   requests/week) receiving 36 % of requests; 0.84 % highly popular (> 84)
//!   receiving 39 %; rank-frequency fits SE better than Zipf.
//!
//! Contents:
//!
//! * [`FileMeta`] / [`Catalog`] — the file population.
//! * [`Population`] — users (ISP, access bandwidth, reporting behaviour).
//! * [`Workload`] — timestamped requests across a simulated week with a
//!   diurnal + day-of-week profile.
//! * [`records`] — the three trace-record schemas with TSV round-tripping.
//! * [`sample_benchmark_workload`] — the §5.1 procedure: 1000 random
//!   Unicom-user requests that carry access-bandwidth information.

mod catalog;
mod file;
pub mod io;
pub mod records;
mod sample;
mod users;
mod workload;

pub use catalog::{Catalog, CatalogConfig};
pub use file::{FileId, FileMeta, FileType, PopularityClass, Protocol};
pub use sample::{sample_benchmark_workload, sample_eval_workload, SampledRequest};
pub use users::{Population, PopulationConfig, User};

// Re-exported for convenience: the ISP type every record carries.
pub use odx_net::Isp;
pub use workload::{Request, RequestStream, Workload, WorkloadConfig};

/// The measurement week: 7 simulated days.
pub const WEEK: odx_sim::SimDuration = odx_sim::SimDuration::from_days(7);

/// Scale of the real dataset: unique files in the measurement week.
pub const PAPER_UNIQUE_FILES: usize = 563_517;

/// Scale of the real dataset: offline-downloading tasks in the week.
pub const PAPER_TASKS: usize = 4_084_417;

/// Scale of the real dataset: distinct users in the week.
pub const PAPER_USERS: usize = 783_944;
