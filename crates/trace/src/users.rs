//! The user population.

use odx_net::{AccessModel, Isp, IspMix};
use odx_stats::dist::u01;
use rand::Rng;
use serde::Serialize;

/// One service user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct User {
    /// The user's ISP (decides privileged-path eligibility).
    pub isp: Isp,
    /// Last-mile download bandwidth (KBps).
    pub access_kbps: f64,
    /// Whether this user's client reports access bandwidth (§4.2 note 2:
    /// some users don't; §5.1 sampling requires it).
    pub reports_bandwidth: bool,
}

/// Generator configuration for the population.
#[derive(Debug, Clone, Copy)]
pub struct PopulationConfig {
    /// Number of users.
    pub users: usize,
    /// ISP mix.
    pub isp_mix: IspMix,
    /// Access-bandwidth model.
    pub access: AccessModel,
    /// Fraction of users whose client reports access bandwidth.
    pub reporting_fraction: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            users: crate::PAPER_USERS,
            isp_mix: IspMix::default(),
            access: AccessModel::default(),
            reporting_fraction: 0.8,
        }
    }
}

impl PopulationConfig {
    /// A population scaled to `scale` × the paper's user count.
    pub fn scaled(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        PopulationConfig {
            users: ((crate::PAPER_USERS as f64 * scale) as usize).max(50),
            ..PopulationConfig::default()
        }
    }
}

/// The generated user population.
#[derive(Debug, Clone)]
pub struct Population {
    users: Vec<User>,
}

impl Population {
    /// Generate users from the config. Deterministic in `rng`.
    pub fn generate(cfg: &PopulationConfig, rng: &mut dyn Rng) -> Self {
        let users = (0..cfg.users)
            .map(|_| User {
                isp: cfg.isp_mix.sample(rng),
                access_kbps: cfg.access.sample(rng),
                reports_bandwidth: u01(rng) < cfg.reporting_fraction,
            })
            .collect();
        Population { users }
    }

    /// All users.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Look up by index.
    pub fn user(&self, index: u32) -> &User {
        &self.users[index as usize]
    }

    /// Draw a uniformly random user index.
    pub fn sample_index(&self, rng: &mut dyn Rng) -> u32 {
        (rng.next_u64() % self.users.len() as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population() -> Population {
        let mut rng = StdRng::seed_from_u64(50);
        Population::generate(&PopulationConfig::scaled(0.05), &mut rng)
    }

    #[test]
    fn isp_mix_has_barrier_population() {
        let p = population();
        let outside =
            p.users().iter().filter(|u| !u.isp.is_major()).count() as f64 / p.len() as f64;
        assert!((outside - 0.096).abs() < 0.01, "outside majors: {outside}");
    }

    #[test]
    fn access_bandwidth_spans_paper_range() {
        let p = population();
        let below_hd =
            p.users().iter().filter(|u| u.access_kbps < 125.0).count() as f64 / p.len() as f64;
        assert!((below_hd - 0.108).abs() < 0.02, "below HD: {below_hd}");
    }

    #[test]
    fn most_users_report_bandwidth() {
        let p = population();
        let reporting =
            p.users().iter().filter(|u| u.reports_bandwidth).count() as f64 / p.len() as f64;
        assert!((reporting - 0.8).abs() < 0.02, "{reporting}");
    }

    #[test]
    fn sample_index_in_range() {
        let p = population();
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..1000 {
            assert!((p.sample_index(&mut rng) as usize) < p.len());
        }
    }
}
