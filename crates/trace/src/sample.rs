//! The §5.1 benchmark sampling procedure.
//!
//! "We randomly sample 1000 real offline downloading requests issued by
//! Unicom users in the workload trace … Each selected request record should
//! contain the user's access bandwidth information." The replay then ignores
//! user ID, IP and request time, but reuses access bandwidth, file type,
//! file size, source link and protocol.

use odx_stats::dist::u01;
use rand::Rng;
use serde::Serialize;

use crate::file::{FileType, PopularityClass, Protocol};
use crate::{Catalog, Isp, Population, Workload};

/// One sampled request, carrying exactly the fields §5.1 says the replay
/// reuses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SampledRequest {
    /// The sampled user's home ISP (always Unicom for the §5.1 benchmark
    /// sample; the user's real ISP for the §6.2 unbiased evaluation sample).
    pub isp: Isp,
    /// The sampled user's recorded access bandwidth (KBps) — the replay
    /// restricts the AP's pre-download speed to this.
    pub access_kbps: f64,
    /// File type.
    pub file_type: FileType,
    /// File size (MB).
    pub size_mb: f64,
    /// File-transfer protocol.
    pub protocol: Protocol,
    /// Ground-truth popularity of the requested file (requests/week) — used
    /// by the simulators and by ODR's content-DB lookups.
    pub weekly_requests: u32,
    /// Catalog index of the file (for content-DB queries).
    pub file_index: u32,
}

impl SampledRequest {
    /// Popularity class of the requested file.
    pub fn class(&self) -> PopularityClass {
        PopularityClass::of(self.weekly_requests)
    }
}

/// Draw `n` requests uniformly from the workload with no ISP restriction —
/// the "unbiased sample of Xuanfeng users' offline downloading requests"
/// that §1/§6.2 evaluate ODR on. Requests must carry access-bandwidth
/// information (ODR asks the user for it).
pub fn sample_eval_workload(
    workload: &Workload,
    catalog: &Catalog,
    population: &Population,
    n: usize,
    rng: &mut dyn Rng,
) -> Vec<SampledRequest> {
    sample_filtered(workload, catalog, population, n, rng, |u| u.reports_bandwidth)
}

/// Draw `n` requests uniformly from the workload, restricted to Unicom users
/// that report access bandwidth. Panics if the workload has no eligible
/// requests.
pub fn sample_benchmark_workload(
    workload: &Workload,
    catalog: &Catalog,
    population: &Population,
    n: usize,
    rng: &mut dyn Rng,
) -> Vec<SampledRequest> {
    sample_filtered(workload, catalog, population, n, rng, |u| {
        u.isp == Isp::Unicom && u.reports_bandwidth
    })
}

fn sample_filtered(
    workload: &Workload,
    catalog: &Catalog,
    population: &Population,
    n: usize,
    rng: &mut dyn Rng,
    eligible_user: impl Fn(&crate::User) -> bool,
) -> Vec<SampledRequest> {
    let eligible: Vec<&crate::Request> =
        workload.requests().iter().filter(|r| eligible_user(population.user(r.user))).collect();
    assert!(!eligible.is_empty(), "no eligible requests to sample");

    (0..n)
        .map(|_| {
            let r = eligible[(u01(rng) * eligible.len() as f64) as usize % eligible.len()];
            let user = population.user(r.user);
            let file = catalog.file(r.file);
            SampledRequest {
                isp: user.isp,
                access_kbps: user.access_kbps,
                file_type: file.ftype,
                size_mb: file.size_mb,
                protocol: file.protocol,
                weekly_requests: file.weekly_requests,
                file_index: r.file,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CatalogConfig, PopulationConfig, WorkloadConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampled() -> (Catalog, Vec<SampledRequest>) {
        let mut rng = StdRng::seed_from_u64(70);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        let sample = sample_benchmark_workload(&workload, &catalog, &population, 1000, &mut rng);
        (catalog, sample)
    }

    #[test]
    fn sample_has_requested_size() {
        let (_, s) = sampled();
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn sample_reflects_request_level_popularity_mix() {
        // §5.2 relies on ~36 % of sampled requests being for unpopular files
        // (requests, not files, so the mix matches request shares).
        let (_, s) = sampled();
        let unpopular = s.iter().filter(|r| r.class() == PopularityClass::Unpopular).count() as f64
            / s.len() as f64;
        let highly = s.iter().filter(|r| r.class() == PopularityClass::HighlyPopular).count()
            as f64
            / s.len() as f64;
        assert!((unpopular - 0.36).abs() < 0.08, "unpopular {unpopular}");
        assert!((highly - 0.39).abs() < 0.09, "highly popular {highly}");
    }

    #[test]
    fn sample_fields_match_catalog() {
        let (catalog, s) = sampled();
        for r in &s {
            let f = catalog.file(r.file_index);
            assert_eq!(r.size_mb, f.size_mb);
            assert_eq!(r.protocol, f.protocol);
            assert_eq!(r.weekly_requests, f.weekly_requests);
        }
    }

    #[test]
    fn access_bandwidth_is_present_and_positive() {
        let (_, s) = sampled();
        assert!(s.iter().all(|r| r.access_kbps > 0.0));
    }
}
