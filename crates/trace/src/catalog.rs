//! The file catalog: sizes, types, protocols, and weekly popularity.

use odx_stats::dist::{u01, BoundedPareto, DiscretePowerLaw, Dist, LogNormal, LogUniform};
use rand::Rng;
use serde::Serialize;

use crate::file::{FileId, FileMeta, FileType, PopularityClass, Protocol};

/// Calibration knobs of the catalog generator. Defaults reproduce §3.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CatalogConfig {
    /// Number of unique files to generate.
    pub files: usize,
    /// Probability a file belongs to the small-file mass (< 8 MB): demo
    /// videos, pictures, documents, small packages. Fig 5: 25 %.
    pub small_fraction: f64,
    /// Median (MB) and log-sigma of the small-file size component.
    pub small_median_mb: f64,
    /// Log-sigma of the small-file component.
    pub small_sigma: f64,
    /// Median (MB) and log-sigma of the large-file body. Chosen so the
    /// overall median is 115 MB and the overall mean ≈ 390 MB.
    pub large_median_mb: f64,
    /// Log-sigma of the large-file body.
    pub large_sigma: f64,
    /// Smallest possible file (Fig 5's 4-byte minimum), in MB.
    pub min_mb: f64,
    /// Cap at the 4 GB maximum of Fig 5 (BitTorrent piece-table era limits).
    pub max_mb: f64,
    /// Fraction of files that are highly popular (> 84 requests/week).
    pub highly_popular_files: f64,
    /// Fraction of files that are popular (7–84 requests/week).
    pub popular_files: f64,
    /// Target mean weekly count of a highly popular file: 39 % of requests
    /// over 0.84 % of files ⇒ ≈ 336 requests/week. The truncated-Pareto
    /// shape is solved from this so the request-share calibration is
    /// independent of the tail cap.
    pub hot_mean_weekly: f64,
    /// Upper bound for a single file's weekly count. Scaled catalogs shrink
    /// this proportionally (a 5 %-scale service has 5 % of the audience), so
    /// no single file dominates a small catalog's request volume.
    pub max_weekly_requests: f64,
    /// Exponent of the discrete power law for unpopular weekly counts.
    pub unpopular_exponent: f64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            files: crate::PAPER_UNIQUE_FILES,
            small_fraction: 0.25,
            small_median_mb: 1.2,
            small_sigma: 1.6,
            large_median_mb: 209.0,
            large_sigma: 1.35,
            min_mb: 4e-6,
            max_mb: 4096.0,
            highly_popular_files: 0.0084,
            popular_files: 0.0596,
            hot_mean_weekly: 336.0,
            max_weekly_requests: 60_000.0,
            unpopular_exponent: 0.8,
        }
    }
}

impl CatalogConfig {
    /// A catalog scaled to `scale` × the paper's size (0 < scale ≤ 1 for
    /// tests, 1.0 for the full repro).
    pub fn scaled(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        CatalogConfig {
            files: ((crate::PAPER_UNIQUE_FILES as f64 * scale) as usize).max(100),
            max_weekly_requests: (60_000.0 * scale).clamp(1_500.0, 60_000.0),
            ..CatalogConfig::default()
        }
    }
}

/// The generated file population.
#[derive(Debug, Clone)]
pub struct Catalog {
    files: Vec<FileMeta>,
    total_requests: u64,
}

impl Catalog {
    /// Generate a catalog from the config. Deterministic in `rng`.
    pub fn generate(cfg: &CatalogConfig, rng: &mut dyn Rng) -> Self {
        let small_size = LogNormal::from_median(cfg.small_median_mb, cfg.small_sigma);
        let large_size = LogNormal::from_median(cfg.large_median_mb, cfg.large_sigma);
        let hot_alpha =
            BoundedPareto::solve_alpha(85.0, cfg.max_weekly_requests, cfg.hot_mean_weekly);
        let hot_counts = BoundedPareto::new(hot_alpha, 85.0, cfg.max_weekly_requests);
        let popular_counts = LogUniform::new(
            PopularityClass::POPULAR_MIN as f64,
            PopularityClass::POPULAR_MAX as f64,
        );
        let unpopular_counts = DiscretePowerLaw::new(
            1,
            (PopularityClass::POPULAR_MIN - 1) as u64,
            cfg.unpopular_exponent,
        );

        // Exact class sizes (not Bernoulli draws): the paper's file shares
        // (0.84 % / 5.96 % / 93.2 %) are population facts, and exactness
        // keeps the request-share calibration stable at small scales.
        let n_hot = ((cfg.files as f64) * cfg.highly_popular_files).round() as usize;
        let n_pop = ((cfg.files as f64) * cfg.popular_files).round() as usize;

        let mut files = Vec::with_capacity(cfg.files);
        let mut total_requests = 0u64;
        for i in 0..cfg.files {
            let small = u01(rng) < cfg.small_fraction;
            let size_mb = if small {
                // Strictly below the 8 MB boundary so Fig 5's "25 % of files
                // are smaller than 8 MB" holds after clamping.
                small_size.sample(rng).clamp(cfg.min_mb, 7.999)
            } else {
                large_size.sample(rng).clamp(8.0, cfg.max_mb)
            };
            let ftype = sample_type(small, rng);
            let protocol = sample_protocol(rng);
            let weekly_requests = if i < n_hot {
                hot_counts.sample(rng).round() as u32
            } else if i < n_hot + n_pop {
                popular_counts.sample(rng).round().clamp(7.0, 84.0) as u32
            } else {
                unpopular_counts.sample_int(rng) as u32
            };
            total_requests += u64::from(weekly_requests);
            files.push(FileMeta {
                id: FileId(((i as u128) << 64) | rng.next_u64() as u128),
                size_mb,
                ftype,
                protocol,
                weekly_requests,
            });
        }
        Catalog { files, total_requests }
    }

    /// All files.
    pub fn files(&self) -> &[FileMeta] {
        &self.files
    }

    /// Number of unique files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Look up a file by catalog index.
    pub fn file(&self, index: u32) -> &FileMeta {
        &self.files[index as usize]
    }

    /// Ground-truth total requests implied by the weekly counts.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// `(file share, request share)` of a popularity class.
    pub fn class_shares(&self, class: PopularityClass) -> (f64, f64) {
        let files = self.files.iter().filter(|f| f.class() == class).count();
        let requests: u64 = self
            .files
            .iter()
            .filter(|f| f.class() == class)
            .map(|f| u64::from(f.weekly_requests))
            .sum();
        (files as f64 / self.files.len() as f64, requests as f64 / self.total_requests as f64)
    }

    /// Weekly counts as a vector (for rank-frequency fitting).
    pub fn weekly_counts(&self) -> Vec<u64> {
        self.files.iter().map(|f| u64::from(f.weekly_requests)).collect()
    }

    /// Sizes (MB) of all files (for the Fig 5 CDF, file-weighted as in the
    /// paper's "requested files").
    pub fn sizes_mb(&self) -> Vec<f64> {
        self.files.iter().map(|f| f.size_mb).collect()
    }
}

fn sample_type(small: bool, rng: &mut dyn Rng) -> FileType {
    let u = u01(rng);
    if small {
        // Demo videos, pictures, documents, small packages (§3).
        match u {
            u if u < 0.32 => FileType::Video,
            u if u < 0.62 => FileType::Software,
            u if u < 0.82 => FileType::Document,
            u if u < 0.95 => FileType::Image,
            _ => FileType::Other,
        }
    } else {
        // Large files are overwhelmingly videos; weights chosen so the
        // overall mix is 75 % video / 15 % software.
        match u {
            u if u < 0.8933 => FileType::Video,
            u if u < 0.9933 => FileType::Software,
            _ => FileType::Other,
        }
    }
}

fn sample_protocol(rng: &mut dyn Rng) -> Protocol {
    let u = u01(rng);
    match u {
        u if u < 0.68 => Protocol::BitTorrent,
        u if u < 0.87 => Protocol::EMule,
        u if u < 0.96 => Protocol::Http,
        _ => Protocol::Ftp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_stats::Ecdf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        let mut rng = StdRng::seed_from_u64(40);
        Catalog::generate(&CatalogConfig::scaled(0.1), &mut rng)
    }

    #[test]
    fn size_distribution_matches_fig5() {
        let c = catalog();
        let ecdf = Ecdf::new(c.sizes_mb());
        let s = ecdf.summary().unwrap();
        assert!((s.median - 115.0).abs() / 115.0 < 0.15, "median {}", s.median);
        assert!((s.mean - 390.0).abs() / 390.0 < 0.15, "mean {}", s.mean);
        assert!(s.max <= 4096.0);
        assert!(s.min >= 4e-6);
        let below_8mb = ecdf.fraction_below(8.0);
        assert!((below_8mb - 0.25).abs() < 0.03, "P[<8MB] = {below_8mb}");
    }

    #[test]
    fn type_mix_matches_section3() {
        let c = catalog();
        let video =
            c.files().iter().filter(|f| f.ftype == FileType::Video).count() as f64 / c.len() as f64;
        let software = c.files().iter().filter(|f| f.ftype == FileType::Software).count() as f64
            / c.len() as f64;
        assert!((video - 0.75).abs() < 0.03, "video {video}");
        assert!((software - 0.15).abs() < 0.02, "software {software}");
    }

    #[test]
    fn protocol_mix_matches_section3() {
        let c = catalog();
        let n = c.len() as f64;
        let bt = c.files().iter().filter(|f| f.protocol == Protocol::BitTorrent).count() as f64 / n;
        let emule = c.files().iter().filter(|f| f.protocol == Protocol::EMule).count() as f64 / n;
        let p2p = c.files().iter().filter(|f| f.protocol.is_p2p()).count() as f64 / n;
        assert!((bt - 0.68).abs() < 0.02, "bt {bt}");
        assert!((emule - 0.19).abs() < 0.02, "emule {emule}");
        assert!((p2p - 0.87).abs() < 0.02, "p2p {p2p}");
    }

    #[test]
    fn popularity_classes_match_section4() {
        let c = catalog();
        let (uf, ur) = c.class_shares(PopularityClass::Unpopular);
        let (hf, hr) = c.class_shares(PopularityClass::HighlyPopular);
        // Files: 93.2 % unpopular, 0.84 % highly popular.
        assert!((uf - 0.932).abs() < 0.01, "unpopular files {uf}");
        assert!((hf - 0.0084).abs() < 0.003, "highly popular files {hf}");
        // Requests: 36 % to unpopular, 39 % to highly popular.
        assert!((ur - 0.36).abs() < 0.05, "unpopular requests {ur}");
        assert!((hr - 0.39).abs() < 0.07, "highly popular requests {hr}");
    }

    #[test]
    fn total_requests_track_paper_scale() {
        let c = catalog();
        // 10 % scale of 4.08 M ≈ 408 k, within a generous band.
        let total = c.total_requests() as f64;
        assert!((total - 408_441.0).abs() / 408_441.0 < 0.25, "total {total}");
    }

    #[test]
    fn ids_are_unique() {
        let c = catalog();
        let mut ids: Vec<u128> = c.files().iter().map(|f| f.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), c.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let mut rng1 = StdRng::seed_from_u64(41);
        let mut rng2 = StdRng::seed_from_u64(41);
        let cfg = CatalogConfig::scaled(0.01);
        let a = Catalog::generate(&cfg, &mut rng1);
        let b = Catalog::generate(&cfg, &mut rng2);
        assert_eq!(a.files()[..50], b.files()[..50]);
        assert_eq!(a.total_requests(), b.total_requests());
    }
}
