//! The three trace-record schemas of the Xuanfeng dataset (§3).
//!
//! Field lists follow the paper verbatim; every record round-trips through
//! the TSV codec in [`crate::io`].

use odx_net::Isp;
use odx_sim::SimTime;
use serde::Serialize;

use crate::file::{FileType, Protocol};
use crate::io::{FromTsv, ParseError, ToTsv};
use odx_p2p::FailureCause;

/// Workload-trace row: one user request (§3, part 1).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadRecord {
    /// User identifier.
    pub user_id: u32,
    /// The user's ISP (standing in for the IP address the real trace logs).
    pub isp: Isp,
    /// Access bandwidth if the client reported it (KBps).
    pub access_kbps: Option<f64>,
    /// Request arrival time.
    pub request_time: SimTime,
    /// File type.
    pub file_type: FileType,
    /// File size (MB).
    pub size_mb: f64,
    /// Link to the original data source.
    pub source_link: String,
    /// File-transfer protocol.
    pub protocol: Protocol,
}

/// Pre-downloading-trace row: proxy-side performance (§3, part 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PredownloadRecord {
    /// Start of the pre-downloading process.
    pub start: SimTime,
    /// Finish (success) or give-up (failure) time.
    pub finish: SimTime,
    /// Bytes of the file actually acquired (MB).
    pub acquired_mb: f64,
    /// Network traffic consumed (MB), including protocol overhead.
    pub traffic_mb: f64,
    /// Whether the request hit the cloud cache (always `false` for APs).
    pub cache_hit: bool,
    /// Average downloading speed (KBps).
    pub avg_kbps: f64,
    /// Peak downloading speed (KBps).
    pub peak_kbps: f64,
    /// Success or failure.
    pub success: bool,
    /// Failure cause when `success` is false.
    pub failure_cause: Option<FailureCause>,
}

impl PredownloadRecord {
    /// Pre-downloading delay (the paper's Fig 9/14 metric).
    pub fn delay(&self) -> odx_sim::SimDuration {
        self.finish.since(self.start)
    }
}

/// Fetching-trace row: user-side performance (§3, part 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FetchRecord {
    /// User identifier.
    pub user_id: u32,
    /// The user's ISP.
    pub isp: Isp,
    /// Access bandwidth if reported (KBps).
    pub access_kbps: Option<f64>,
    /// Fetch start time.
    pub start: SimTime,
    /// Finish/pause time.
    pub finish: SimTime,
    /// Bytes acquired (MB).
    pub acquired_mb: f64,
    /// Network traffic consumed (MB).
    pub traffic_mb: f64,
    /// Average fetching speed (KBps); zero for rejected fetches.
    pub avg_kbps: f64,
    /// Peak fetching speed (KBps).
    pub peak_kbps: f64,
    /// Whether the cloud rejected the fetch for lack of upload bandwidth.
    pub rejected: bool,
}

impl FetchRecord {
    /// Fetching delay.
    pub fn delay(&self) -> odx_sim::SimDuration {
        self.finish.since(self.start)
    }
}

// ---- TSV codecs ----------------------------------------------------------

fn isp_to_str(isp: Isp) -> &'static str {
    match isp {
        Isp::Unicom => "unicom",
        Isp::Telecom => "telecom",
        Isp::Mobile => "mobile",
        Isp::Cernet => "cernet",
        Isp::Other => "other",
    }
}

fn isp_from_str(s: &str) -> Result<Isp, ParseError> {
    match s {
        "unicom" => Ok(Isp::Unicom),
        "telecom" => Ok(Isp::Telecom),
        "mobile" => Ok(Isp::Mobile),
        "cernet" => Ok(Isp::Cernet),
        "other" => Ok(Isp::Other),
        _ => Err(ParseError::bad_field("isp", s)),
    }
}

fn opt_f64_to_str(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x}"),
        None => "-".to_owned(),
    }
}

fn opt_f64_from_str(s: &str) -> Result<Option<f64>, ParseError> {
    if s == "-" {
        Ok(None)
    } else {
        s.parse().map(Some).map_err(|_| ParseError::bad_field("optional f64", s))
    }
}

fn cause_to_str(c: Option<FailureCause>) -> &'static str {
    match c {
        None => "-",
        Some(FailureCause::InsufficientSeeds) => "seeds",
        Some(FailureCause::PoorConnection) => "connection",
        Some(FailureCause::SystemBug) => "bug",
    }
}

fn cause_from_str(s: &str) -> Result<Option<FailureCause>, ParseError> {
    match s {
        "-" => Ok(None),
        "seeds" => Ok(Some(FailureCause::InsufficientSeeds)),
        "connection" => Ok(Some(FailureCause::PoorConnection)),
        "bug" => Ok(Some(FailureCause::SystemBug)),
        _ => Err(ParseError::bad_field("failure_cause", s)),
    }
}

impl ToTsv for WorkloadRecord {
    const HEADER: &'static str =
        "user_id\tisp\taccess_kbps\trequest_time_ms\tfile_type\tsize_mb\tsource_link\tprotocol";

    fn to_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.user_id,
            isp_to_str(self.isp),
            opt_f64_to_str(self.access_kbps),
            self.request_time.as_millis(),
            self.file_type,
            self.size_mb,
            self.source_link,
            self.protocol,
        )
    }
}

impl FromTsv for WorkloadRecord {
    fn from_row(row: &str) -> Result<Self, ParseError> {
        let f: Vec<&str> = row.split('\t').collect();
        if f.len() != 8 {
            return Err(ParseError::wrong_arity(8, f.len()));
        }
        Ok(WorkloadRecord {
            user_id: f[0].parse().map_err(|_| ParseError::bad_field("user_id", f[0]))?,
            isp: isp_from_str(f[1])?,
            access_kbps: opt_f64_from_str(f[2])?,
            request_time: SimTime::from_millis(
                f[3].parse().map_err(|_| ParseError::bad_field("request_time_ms", f[3]))?,
            ),
            file_type: match f[4] {
                "video" => FileType::Video,
                "software" => FileType::Software,
                "document" => FileType::Document,
                "image" => FileType::Image,
                "other" => FileType::Other,
                s => return Err(ParseError::bad_field("file_type", s)),
            },
            size_mb: f[5].parse().map_err(|_| ParseError::bad_field("size_mb", f[5]))?,
            source_link: f[6].to_owned(),
            protocol: match f[7] {
                "bittorrent" => Protocol::BitTorrent,
                "emule" => Protocol::EMule,
                "http" => Protocol::Http,
                "ftp" => Protocol::Ftp,
                s => return Err(ParseError::bad_field("protocol", s)),
            },
        })
    }
}

impl ToTsv for PredownloadRecord {
    const HEADER: &'static str = "start_ms\tfinish_ms\tacquired_mb\ttraffic_mb\tcache_hit\tavg_kbps\tpeak_kbps\tsuccess\tfailure_cause";

    fn to_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.start.as_millis(),
            self.finish.as_millis(),
            self.acquired_mb,
            self.traffic_mb,
            self.cache_hit,
            self.avg_kbps,
            self.peak_kbps,
            self.success,
            cause_to_str(self.failure_cause),
        )
    }
}

impl FromTsv for PredownloadRecord {
    fn from_row(row: &str) -> Result<Self, ParseError> {
        let f: Vec<&str> = row.split('\t').collect();
        if f.len() != 9 {
            return Err(ParseError::wrong_arity(9, f.len()));
        }
        let ms = |s: &str, name| -> Result<SimTime, ParseError> {
            Ok(SimTime::from_millis(s.parse().map_err(|_| ParseError::bad_field(name, s))?))
        };
        let num = |s: &str, name| -> Result<f64, ParseError> {
            s.parse().map_err(|_| ParseError::bad_field(name, s))
        };
        let flag = |s: &str, name| -> Result<bool, ParseError> {
            s.parse().map_err(|_| ParseError::bad_field(name, s))
        };
        Ok(PredownloadRecord {
            start: ms(f[0], "start_ms")?,
            finish: ms(f[1], "finish_ms")?,
            acquired_mb: num(f[2], "acquired_mb")?,
            traffic_mb: num(f[3], "traffic_mb")?,
            cache_hit: flag(f[4], "cache_hit")?,
            avg_kbps: num(f[5], "avg_kbps")?,
            peak_kbps: num(f[6], "peak_kbps")?,
            success: flag(f[7], "success")?,
            failure_cause: cause_from_str(f[8])?,
        })
    }
}

impl ToTsv for FetchRecord {
    const HEADER: &'static str = "user_id\tisp\taccess_kbps\tstart_ms\tfinish_ms\tacquired_mb\ttraffic_mb\tavg_kbps\tpeak_kbps\trejected";

    fn to_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.user_id,
            isp_to_str(self.isp),
            opt_f64_to_str(self.access_kbps),
            self.start.as_millis(),
            self.finish.as_millis(),
            self.acquired_mb,
            self.traffic_mb,
            self.avg_kbps,
            self.peak_kbps,
            self.rejected,
        )
    }
}

impl FromTsv for FetchRecord {
    fn from_row(row: &str) -> Result<Self, ParseError> {
        let f: Vec<&str> = row.split('\t').collect();
        if f.len() != 10 {
            return Err(ParseError::wrong_arity(10, f.len()));
        }
        let num = |s: &str, name| -> Result<f64, ParseError> {
            s.parse().map_err(|_| ParseError::bad_field(name, s))
        };
        Ok(FetchRecord {
            user_id: f[0].parse().map_err(|_| ParseError::bad_field("user_id", f[0]))?,
            isp: isp_from_str(f[1])?,
            access_kbps: opt_f64_from_str(f[2])?,
            start: SimTime::from_millis(
                f[3].parse().map_err(|_| ParseError::bad_field("start_ms", f[3]))?,
            ),
            finish: SimTime::from_millis(
                f[4].parse().map_err(|_| ParseError::bad_field("finish_ms", f[4]))?,
            ),
            acquired_mb: num(f[5], "acquired_mb")?,
            traffic_mb: num(f[6], "traffic_mb")?,
            avg_kbps: num(f[7], "avg_kbps")?,
            peak_kbps: num(f[8], "peak_kbps")?,
            rejected: f[9].parse().map_err(|_| ParseError::bad_field("rejected", f[9]))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_sim::SimDuration;

    #[test]
    fn workload_record_round_trips() {
        let r = WorkloadRecord {
            user_id: 42,
            isp: Isp::Cernet,
            access_kbps: Some(512.5),
            request_time: SimTime::from_millis(123_456),
            file_type: FileType::Video,
            size_mb: 700.25,
            source_link: "magnet:?xt=urn:btih:deadbeef".to_owned(),
            protocol: Protocol::BitTorrent,
        };
        let parsed = WorkloadRecord::from_row(&r.to_row()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn workload_record_without_bandwidth() {
        let r = WorkloadRecord {
            user_id: 1,
            isp: Isp::Other,
            access_kbps: None,
            request_time: SimTime::ZERO,
            file_type: FileType::Document,
            size_mb: 0.004,
            source_link: "http://x/y".to_owned(),
            protocol: Protocol::Http,
        };
        let parsed = WorkloadRecord::from_row(&r.to_row()).unwrap();
        assert_eq!(parsed.access_kbps, None);
    }

    #[test]
    fn predownload_record_round_trips() {
        let r = PredownloadRecord {
            start: SimTime::from_millis(1000),
            finish: SimTime::from_millis(61_000),
            acquired_mb: 10.0,
            traffic_mb: 19.6,
            cache_hit: false,
            avg_kbps: 166.7,
            peak_kbps: 400.0,
            success: false,
            failure_cause: Some(FailureCause::InsufficientSeeds),
        };
        let parsed = PredownloadRecord::from_row(&r.to_row()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.delay(), SimDuration::from_secs(60));
    }

    #[test]
    fn fetch_record_round_trips() {
        let r = FetchRecord {
            user_id: 7,
            isp: Isp::Unicom,
            access_kbps: Some(2500.0),
            start: SimTime::from_millis(5000),
            finish: SimTime::from_millis(425_000),
            acquired_mb: 115.0,
            traffic_mb: 123.0,
            avg_kbps: 273.8,
            peak_kbps: 300.0,
            rejected: false,
        };
        assert_eq!(FetchRecord::from_row(&r.to_row()).unwrap(), r);
    }

    #[test]
    fn malformed_rows_error() {
        assert!(WorkloadRecord::from_row("nope").is_err());
        assert!(PredownloadRecord::from_row("1\t2\t3").is_err());
        assert!(FetchRecord::from_row(&"x\t".repeat(10)).is_err());
    }
}
