//! File identities and static attributes.

use serde::Serialize;
use std::fmt;

/// Content identity: stands in for the MD5 hash Xuanfeng uses for file-level
/// deduplication (§2.1). Equal ids ⇒ identical content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct FileId(pub u128);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Broad content type of a requested file (§3 "File type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FileType {
    /// Full-length videos — 75 % of requests, and the size-dominant class.
    Video,
    /// Software packages — 15 % of requests.
    Software,
    /// Documents (most live in the < 8 MB small-file mass).
    Document,
    /// Pictures.
    Image,
    /// Everything else.
    Other,
}

impl fmt::Display for FileType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileType::Video => "video",
            FileType::Software => "software",
            FileType::Document => "document",
            FileType::Image => "image",
            FileType::Other => "other",
        };
        f.write_str(s)
    }
}

/// File-transfer protocol of the original data source (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Protocol {
    /// BitTorrent swarms: 68 % of requested files.
    BitTorrent,
    /// eMule swarms: 19 %.
    EMule,
    /// HTTP servers: ~9 %.
    Http,
    /// FTP servers: ~4 %.
    Ftp,
}

impl Protocol {
    /// Whether the source is a P2P data swarm (87 % of files).
    pub fn is_p2p(self) -> bool {
        matches!(self, Protocol::BitTorrent | Protocol::EMule)
    }

    /// URI scheme used when synthesizing source links for trace records.
    pub fn scheme(self) -> &'static str {
        match self {
            Protocol::BitTorrent => "magnet",
            Protocol::EMule => "ed2k",
            Protocol::Http => "http",
            Protocol::Ftp => "ftp",
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Protocol::BitTorrent => "bittorrent",
            Protocol::EMule => "emule",
            Protocol::Http => "http",
            Protocol::Ftp => "ftp",
        };
        f.write_str(s)
    }
}

/// The paper's popularity classes (§4.1 / Fig 10): requests per week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PopularityClass {
    /// Fewer than 7 downloads per week — 93.2 % of files, 36 % of requests.
    Unpopular,
    /// 7–84 downloads per week.
    Popular,
    /// More than 84 downloads per week — 0.84 % of files, 39 % of requests.
    HighlyPopular,
}

impl PopularityClass {
    /// Lower bound of the popular class (downloads/week).
    pub const POPULAR_MIN: u32 = 7;
    /// Upper bound of the popular class (inclusive).
    pub const POPULAR_MAX: u32 = 84;

    /// Classify a weekly request count.
    pub fn of(weekly_requests: u32) -> Self {
        if weekly_requests < Self::POPULAR_MIN {
            PopularityClass::Unpopular
        } else if weekly_requests <= Self::POPULAR_MAX {
            PopularityClass::Popular
        } else {
            PopularityClass::HighlyPopular
        }
    }
}

impl fmt::Display for PopularityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PopularityClass::Unpopular => "unpopular",
            PopularityClass::Popular => "popular",
            PopularityClass::HighlyPopular => "highly-popular",
        };
        f.write_str(s)
    }
}

/// Static attributes of one unique file in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FileMeta {
    /// Content identity (MD5 stand-in).
    pub id: FileId,
    /// Size in MB (decimal).
    pub size_mb: f64,
    /// Content type.
    pub ftype: FileType,
    /// Transfer protocol of the original source.
    pub protocol: Protocol,
    /// Ground-truth requests in the measurement week.
    pub weekly_requests: u32,
}

impl FileMeta {
    /// The file's popularity class.
    pub fn class(&self) -> PopularityClass {
        PopularityClass::of(self.weekly_requests)
    }

    /// A synthetic link to the original data source, in the shape the
    /// workload trace records (§3).
    pub fn source_link(&self) -> String {
        match self.protocol {
            Protocol::BitTorrent => format!("magnet:?xt=urn:btih:{}", self.id),
            Protocol::EMule => {
                format!("ed2k://|file|{}|{}|{}|/", self.id, (self.size_mb * 1e6) as u64, self.id)
            }
            Protocol::Http => format!("http://origin.example.cn/files/{}", self.id),
            Protocol::Ftp => format!("ftp://origin.example.cn/pub/{}", self.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_thresholds_match_paper() {
        assert_eq!(PopularityClass::of(0), PopularityClass::Unpopular);
        assert_eq!(PopularityClass::of(6), PopularityClass::Unpopular);
        assert_eq!(PopularityClass::of(7), PopularityClass::Popular);
        assert_eq!(PopularityClass::of(84), PopularityClass::Popular);
        assert_eq!(PopularityClass::of(85), PopularityClass::HighlyPopular);
    }

    #[test]
    fn p2p_classification() {
        assert!(Protocol::BitTorrent.is_p2p());
        assert!(Protocol::EMule.is_p2p());
        assert!(!Protocol::Http.is_p2p());
        assert!(!Protocol::Ftp.is_p2p());
    }

    #[test]
    fn source_links_embed_identity() {
        let meta = FileMeta {
            id: FileId(0xabc),
            size_mb: 100.0,
            ftype: FileType::Video,
            protocol: Protocol::BitTorrent,
            weekly_requests: 3,
        };
        let link = meta.source_link();
        assert!(link.starts_with("magnet:?xt=urn:btih:"));
        assert!(link.contains("00000000000000000000000000000abc"));
    }

    #[test]
    fn file_id_displays_as_md5_like_hex() {
        assert_eq!(FileId(0xff).to_string().len(), 32);
    }
}
