//! Minimal TSV serialization for trace records.
//!
//! Hand-rolled (no external codec crates): records are single lines of
//! tab-separated fields with a fixed header, the standard interchange shape
//! for measurement traces.

use std::fmt;
use std::io::{self, BufRead, Write};

/// A record that can be written as a TSV row.
pub trait ToTsv {
    /// Header line (without trailing newline).
    const HEADER: &'static str;

    /// Serialize to one row (no trailing newline, no embedded tabs except as
    /// separators).
    fn to_row(&self) -> String;
}

/// A record that can be parsed from a TSV row.
pub trait FromTsv: Sized {
    /// Parse one row.
    fn from_row(row: &str) -> Result<Self, ParseError>;
}

/// TSV parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    /// A field failed to parse.
    pub fn bad_field(name: &str, value: &str) -> Self {
        ParseError { message: format!("bad {name}: {value:?}") }
    }

    /// Wrong number of fields in the row.
    pub fn wrong_arity(expected: usize, got: usize) -> Self {
        ParseError { message: format!("expected {expected} fields, got {got}") }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}

/// Write a header plus all records to `w`.
pub fn write_tsv<R: ToTsv>(w: &mut impl Write, records: &[R]) -> io::Result<()> {
    writeln!(w, "{}", R::HEADER)?;
    for r in records {
        writeln!(w, "{}", r.to_row())?;
    }
    Ok(())
}

/// Read records from `r`, expecting (and skipping) the header line.
pub fn read_tsv<R: ToTsv + FromTsv>(r: &mut impl BufRead) -> io::Result<Vec<R>> {
    let mut lines = r.lines();
    match lines.next() {
        Some(header) => {
            let header = header?;
            if header != R::HEADER {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected header: {header:?}"),
                ));
            }
        }
        None => return Ok(Vec::new()),
    }
    let mut out = Vec::new();
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        out.push(
            R::from_row(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Pair(u32, f64);

    impl ToTsv for Pair {
        const HEADER: &'static str = "a\tb";
        fn to_row(&self) -> String {
            format!("{}\t{}", self.0, self.1)
        }
    }

    impl FromTsv for Pair {
        fn from_row(row: &str) -> Result<Self, ParseError> {
            let f: Vec<&str> = row.split('\t').collect();
            if f.len() != 2 {
                return Err(ParseError::wrong_arity(2, f.len()));
            }
            Ok(Pair(
                f[0].parse().map_err(|_| ParseError::bad_field("a", f[0]))?,
                f[1].parse().map_err(|_| ParseError::bad_field("b", f[1]))?,
            ))
        }
    }

    #[test]
    fn write_then_read_round_trips() {
        let records = vec![Pair(1, 2.5), Pair(3, 4.0)];
        let mut buf = Vec::new();
        write_tsv(&mut buf, &records).unwrap();
        let parsed: Vec<Pair> = read_tsv(&mut buf.as_slice()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn empty_input_is_empty_vec() {
        let parsed: Vec<Pair> = read_tsv(&mut "".as_bytes()).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn wrong_header_is_an_error() {
        let err = read_tsv::<Pair>(&mut "x\ty\n1\t2".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let parsed: Vec<Pair> = read_tsv(&mut "a\tb\n1\t2\n\n3\t4\n".as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn bad_row_is_an_error() {
        assert!(read_tsv::<Pair>(&mut "a\tb\noops".as_bytes()).is_err());
    }
}
