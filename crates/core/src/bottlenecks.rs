//! The four performance bottlenecks and their detectors.

use serde::Serialize;
use std::fmt;

use crate::decision::OdrRequest;
use odx_net::HD_THRESHOLD_KBPS;
use odx_trace::PopularityClass;

/// The four bottlenecks of §1's key results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Bottleneck {
    /// Impeded cloud fetches: cross-ISP path, low access bandwidth, or
    /// cloud upload exhaustion.
    B1CloudFetchImpeded,
    /// Cloud upload bandwidth wasted on highly popular files.
    B2CloudUploadWaste,
    /// Smart APs failing on unpopular files (dead swarms).
    B3ApUnpopularFailure,
    /// AP storage device/filesystem capping pre-download speed.
    B4ApStorageRestriction,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Bottleneck::B1CloudFetchImpeded => "B1 (impeded cloud fetch)",
            Bottleneck::B2CloudUploadWaste => "B2 (cloud upload waste)",
            Bottleneck::B3ApUnpopularFailure => "B3 (AP unpopular failure)",
            Bottleneck::B4ApStorageRestriction => "B4 (AP storage restriction)",
        };
        f.write_str(s)
    }
}

impl Bottleneck {
    /// All four bottlenecks, in §1 order.
    pub const ALL: [Bottleneck; 4] = [
        Bottleneck::B1CloudFetchImpeded,
        Bottleneck::B2CloudUploadWaste,
        Bottleneck::B3ApUnpopularFailure,
        Bottleneck::B4ApStorageRestriction,
    ];

    /// Short machine-readable key, used for metric names.
    pub fn key(self) -> &'static str {
        match self {
            Bottleneck::B1CloudFetchImpeded => "b1",
            Bottleneck::B2CloudUploadWaste => "b2",
            Bottleneck::B3ApUnpopularFailure => "b3",
            Bottleneck::B4ApStorageRestriction => "b4",
        }
    }

    /// B1 risk: would a cloud fetch for this user be impeded? §6.1 Case 1:
    /// "if the user-side access bandwidth is low (< 1 Mbps = 125 KBps) or
    /// the user is located in a different ISP other than the four ISPs
    /// supported by the cloud".
    pub fn b1_at_risk(req: &OdrRequest) -> bool {
        req.access_kbps < HD_THRESHOLD_KBPS || !req.isp.is_major()
    }

    /// B2 opportunity: is this a highly popular file whose delivery the
    /// cloud should shed?
    pub fn b2_applies(req: &OdrRequest) -> bool {
        req.popularity == PopularityClass::HighlyPopular
    }

    /// B3 risk: would a smart AP pre-download of this file likely fail?
    /// Unpopular files have dead swarms / dead links far too often.
    pub fn b3_at_risk(req: &OdrRequest) -> bool {
        req.popularity == PopularityClass::Unpopular
    }

    /// B4 risk: would the user's AP storage throttle this download below
    /// what the network can deliver? §6.1's example: a 20 Mbps user with a
    /// USB-flash or NTFS AP should download on their own device.
    pub fn b4_at_risk(req: &OdrRequest) -> bool {
        match req.ap {
            Some(ap) => {
                let offered = req.access_kbps.min(odx_net::ADSL_LINK_KBPS);
                ap.storage_capped_kbps(offered) < offered - 1e-9
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::ApContext;
    use odx_net::Isp;
    use odx_smartap::ApModel;
    use odx_trace::Protocol;

    fn req() -> OdrRequest {
        OdrRequest {
            popularity: PopularityClass::Popular,
            protocol: Protocol::BitTorrent,
            cached_in_cloud: true,
            isp: Isp::Telecom,
            access_kbps: 400.0,
            ap: Some(ApContext::bench(ApModel::MiWiFi)),
        }
    }

    #[test]
    fn b1_triggers_on_low_access_or_foreign_isp() {
        let mut r = req();
        assert!(!Bottleneck::b1_at_risk(&r));
        r.access_kbps = 100.0;
        assert!(Bottleneck::b1_at_risk(&r));
        r.access_kbps = 400.0;
        r.isp = Isp::Other;
        assert!(Bottleneck::b1_at_risk(&r));
    }

    #[test]
    fn b2_is_popularity_only() {
        let mut r = req();
        assert!(!Bottleneck::b2_applies(&r));
        r.popularity = PopularityClass::HighlyPopular;
        assert!(Bottleneck::b2_applies(&r));
    }

    #[test]
    fn b3_is_unpopular_only() {
        let mut r = req();
        assert!(!Bottleneck::b3_at_risk(&r));
        r.popularity = PopularityClass::Unpopular;
        assert!(Bottleneck::b3_at_risk(&r));
    }

    #[test]
    fn b4_depends_on_storage_and_access() {
        let mut r = req();
        // MiWiFi's SATA+EXT4 passes the full line rate: no B4.
        r.access_kbps = 2500.0;
        assert!(!Bottleneck::b4_at_risk(&r));
        // Newifi's NTFS flash caps at ~0.96 MBps: B4 for a 20 Mbps user…
        r.ap = Some(ApContext::bench(ApModel::Newifi));
        assert!(Bottleneck::b4_at_risk(&r));
        // …but not for a 0.5 Mbps user (storage is never the constraint).
        r.access_kbps = 62.0;
        assert!(!Bottleneck::b4_at_risk(&r));
        // No AP, no B4.
        r.ap = None;
        r.access_kbps = 2500.0;
        assert!(!Bottleneck::b4_at_risk(&r));
    }
}
