#![warn(missing_docs)]

//! # odx-odr — ODR, the Offline Downloading Redirector (§6)
//!
//! The paper's contribution: a middleware that takes an offline-downloading
//! request plus a little user context and redirects it to wherever the best
//! performance is expected — the cloud, the user's smart AP, the user's own
//! device, or a cloud→AP relay — addressing the four bottlenecks the
//! measurement study uncovered:
//!
//! 1. **B1** — cloud fetches are impeded (below 1 Mbps) by cross-ISP
//!    delivery, low access bandwidth, or cloud upload exhaustion;
//! 2. **B2** — the cloud wastes upload bandwidth on highly popular files
//!    that swarms could serve;
//! 3. **B3** — smart APs fail on 42 % of unpopular files (dead swarms);
//! 4. **B4** — AP storage devices/filesystems cap pre-download speeds.
//!
//! Contents:
//!
//! * [`OdrEngine`] — the Figure 15 decision state machine. Pure, total, and
//!   property-tested: every input produces exactly one decision with an
//!   explicit rationale.
//! * [`Bottleneck`] — detectors for B1–B4 over a request's context.
//! * [`replay`] — the §6.2 evaluation: replay a sampled workload through
//!   ODR against the same simulators the baselines use, producing the
//!   Fig 16 bottleneck comparison and the Fig 17 fetch-speed CDF.
//!
//! ODR never transfers file bytes itself and requires no modification to
//! the cloud or the APs; the deployable web-service wrapper lives in
//! `odx-proto`.

mod bottlenecks;
mod decision;
mod engine;
pub mod replay;

pub use bottlenecks::Bottleneck;
pub use decision::{ApContext, Decision, OdrRequest, Verdict};
pub use engine::{OdrConfig, OdrEngine};
