//! The §6.2 evaluation: replay a sampled workload through ODR.
//!
//! Every task is routed by the [`OdrEngine`] and then executed by the
//! matching `odx-backend` proxy ([`UserDeviceBackend`], [`CloudBackend`],
//! [`SmartApBackend`], [`CloudAssistedApBackend`]) — the *same* execution
//! layer the baseline systems use, so differences are attributable to the
//! redirection policy alone. The report carries both the ODR-side
//! measurements and an embedded all-AP baseline over the identical sample
//! (the all-cloud baseline is the §4 week replay in `odx-cloud`).

use std::collections::HashMap;

use odx_backend::{
    ApBenchReport, CloudAssistedApBackend, CloudBackend, CloudContentState, ExecCtx, ProxyBackend,
    ProxyRequest, SmartApBackend, SmartApBenchmark, UserDeviceBackend,
};
use odx_net::HD_THRESHOLD_KBPS;
use odx_sim::{RngFactory, SimDuration};
use odx_stats::Ecdf;
use odx_telemetry::{
    Lifecycle, LifecycleReport, Registry, SeriesRecorder, SeriesSnapshot, Stage, TaskEnd,
    TraceConfig,
};
use odx_trace::{PopularityClass, SampledRequest};
use serde::Serialize;

use crate::decision::{ApContext, Decision, OdrRequest, Verdict};
use crate::OdrEngine;

/// Evaluation knobs — the shared backend configuration, re-exported under
/// its historical name (the §6.2 defaults are `BackendConfig::default()`).
pub use odx_backend::BackendConfig as ReplayConfig;

/// One evaluated task.
#[derive(Debug, Clone, Serialize)]
pub struct OdrTask {
    /// The replayed request.
    pub request: SampledRequest,
    /// ODR's routing verdict.
    pub verdict: Verdict,
    /// Whether the download ultimately succeeded.
    pub success: bool,
    /// The user-perceived fetching speed (KBps); zero on failure.
    pub fetch_kbps: f64,
    /// Bytes the cloud had to upload for this task (MB).
    pub cloud_upload_mb: f64,
    /// Whether AP storage capped the transfer below what the user's own
    /// path could otherwise have carried (Bottleneck 4 incidence).
    pub storage_limited: bool,
    /// Whether this task's (AP, access) pair was at B4 risk at decision
    /// time — what would have throttled without ODR.
    pub b4_at_risk: bool,
}

/// The evaluation results (Figs 16–17).
pub struct OdrEvalReport {
    tasks: Vec<OdrTask>,
    baseline_ap: ApBenchReport,
    baseline_cloud_upload_mb: f64,
}

impl OdrEvalReport {
    /// All evaluated tasks.
    pub fn tasks(&self) -> &[OdrTask] {
        &self.tasks
    }

    /// The all-AP baseline over the same sample.
    pub fn baseline_ap(&self) -> &ApBenchReport {
        &self.baseline_ap
    }

    /// ODR fetch-speed ECDF (Fig 17); failures contribute 0.
    pub fn fetch_speed_ecdf(&self) -> Ecdf {
        Ecdf::new(self.tasks.iter().map(|t| t.fetch_kbps).collect())
    }

    /// Fraction of *fetching processes* below the HD threshold (Fig 16, B1;
    /// §6.2: 9 %). Failed tasks never fetch, so they are excluded here, as
    /// in the paper's fetching-trace metric.
    pub fn impeded_ratio(&self) -> f64 {
        let ok = self.tasks.iter().filter(|t| t.success).count();
        if ok == 0 {
            return 0.0;
        }
        self.tasks.iter().filter(|t| t.success && t.fetch_kbps < HD_THRESHOLD_KBPS).count() as f64
            / ok as f64
    }

    /// Cloud upload bytes under ODR divided by the all-cloud baseline
    /// (§6.2: burden reduced by 35 % → ratio ≈ 0.65).
    pub fn cloud_upload_fraction(&self) -> f64 {
        let odr: f64 = self.tasks.iter().map(|t| t.cloud_upload_mb).sum();
        odr / self.baseline_cloud_upload_mb.max(1e-9)
    }

    /// Failure ratio over unpopular-file requests (Fig 16, B3; §6.2: 13 %).
    pub fn unpopular_failure_ratio(&self) -> f64 {
        let unpopular: Vec<_> =
            self.tasks.iter().filter(|t| t.request.class() == PopularityClass::Unpopular).collect();
        if unpopular.is_empty() {
            return 0.0;
        }
        unpopular.iter().filter(|t| !t.success).count() as f64 / unpopular.len() as f64
    }

    /// Overall failure ratio.
    pub fn failure_ratio(&self) -> f64 {
        self.tasks.iter().filter(|t| !t.success).count() as f64 / self.tasks.len().max(1) as f64
    }

    /// B4 incidence under ODR: tasks whose AP storage would throttle them
    /// (`b4_at_risk`) that ODR nevertheless routed through the throttling
    /// path with actual harm. §6.2: "almost completely avoided".
    pub fn storage_limited_ratio(&self) -> f64 {
        self.tasks.iter().filter(|t| t.success && t.storage_limited).count() as f64
            / self.tasks.len().max(1) as f64
    }

    /// B4 incidence without ODR: the fraction of tasks whose user would hit
    /// the storage restriction if (as the shipped hybrid solutions do) the
    /// download always went through their AP.
    pub fn baseline_b4_ratio(&self) -> f64 {
        self.tasks.iter().filter(|t| t.b4_at_risk).count() as f64 / self.tasks.len().max(1) as f64
    }

    /// How many tasks each decision received.
    pub fn decision_counts(&self) -> HashMap<Decision, usize> {
        let mut counts = HashMap::new();
        for t in &self.tasks {
            *counts.entry(t.verdict.decision).or_insert(0) += 1;
        }
        counts
    }

    /// Fraction of redirections that turned out wrong (direct/AP downloads
    /// of highly popular files that failed; §6.2: < 1 %).
    pub fn incorrect_ratio(&self) -> f64 {
        let wrong = self
            .tasks
            .iter()
            .filter(|t| {
                !t.success && matches!(t.verdict.decision, Decision::UserDevice | Decision::SmartAp)
            })
            .count();
        wrong as f64 / self.tasks.len().max(1) as f64
    }
}

/// The replay driver: routes each task with the [`OdrEngine`], then hands
/// it to the corresponding proxy backend.
pub struct OdrReplay {
    engine: OdrEngine,
    cfg: ReplayConfig,
    fleet: [ApContext; 3],
}

impl Default for OdrReplay {
    fn default() -> Self {
        OdrReplay::new(OdrEngine::default(), ReplayConfig::default())
    }
}

impl OdrReplay {
    /// A replay with explicit engine and config, over the §6.2 bench fleet.
    pub fn new(engine: OdrEngine, cfg: ReplayConfig) -> Self {
        OdrReplay::with_fleet(engine, cfg, ApContext::bench_fleet())
    }

    /// A replay whose round-robin AP assignment draws from an explicit
    /// fleet (the scenario layer's entry point).
    pub fn with_fleet(engine: OdrEngine, cfg: ReplayConfig, fleet: [ApContext; 3]) -> Self {
        OdrReplay { engine, cfg, fleet }
    }

    /// The replay a scenario preset describes: default engine, the
    /// scenario's backend config and AP fleet.
    pub fn for_scenario(scenario: &odx_backend::Scenario) -> Self {
        OdrReplay::with_fleet(OdrEngine::default(), scenario.backend, scenario.ap_fleet)
    }

    /// Replay `sample` through ODR. Tasks are assigned APs round-robin over
    /// the replay's fleet (the §6.2 environment uses the three benchmark
    /// boxes).
    pub fn run(&self, sample: &[SampledRequest], rngs: &RngFactory) -> OdrEvalReport {
        self.run_inner(sample, rngs, None, odx_telemetry::global(), None).0
    }

    /// Replay `sample` while recording a virtual-time metric series
    /// (`odr.tasks`, `odr.failures`, and the per-proxy `odr.decision.*`
    /// counters) at `interval_ms` on the replay's sequential virtual
    /// clock. Counters land in `registry` (not the process-global one),
    /// and the finished snapshot's last sample equals their final values.
    pub fn run_series(
        &self,
        sample: &[SampledRequest],
        rngs: &RngFactory,
        registry: &Registry,
        interval_ms: u64,
    ) -> (OdrEvalReport, SeriesSnapshot) {
        let recorder = SeriesRecorder::new(interval_ms);
        let (report, _) = self.run_inner(sample, rngs, None, registry, Some(&recorder));
        (report, recorder.snapshot())
    }

    /// Replay `sample` with per-task lifecycle tracing: each task records
    /// its ODR routing verdict as a decision instant and its backend
    /// execution as a timed span on the replay's sequential virtual
    /// clock; failures dump the flight recorder.
    pub fn run_traced(
        &self,
        sample: &[SampledRequest],
        rngs: &RngFactory,
        trace: &TraceConfig,
    ) -> (OdrEvalReport, LifecycleReport) {
        let (report, lifecycle) = self.run_inner(
            sample,
            rngs,
            Some(Lifecycle::new(trace)),
            odx_telemetry::global(),
            None,
        );
        (report, lifecycle.expect("tracing was requested"))
    }

    fn run_inner(
        &self,
        sample: &[SampledRequest],
        rngs: &RngFactory,
        lifecycle: Option<Lifecycle>,
        registry: &Registry,
        series: Option<&SeriesRecorder>,
    ) -> (OdrEvalReport, Option<LifecycleReport>) {
        // Per-file cloud state shared across the replay — the collaborative
        // cache and retry history every cloud-side backend reads and writes.
        let mut cloud_state = CloudContentState::new();
        let mut warm_rng = rngs.stream("odr-warm");
        let mut tasks = Vec::with_capacity(sample.len());

        // One backend per proxy; every task executes through the
        // ProxyBackend trait.
        let mut user_device = UserDeviceBackend::new(self.cfg);
        let mut cloud = CloudBackend::new(self.cfg);
        let mut smart_ap = SmartApBackend::hot_relay(self.cfg);
        let mut cloud_ap = CloudAssistedApBackend::new(self.cfg);

        // Per-proxy decision and bottleneck-detector counters, with
        // handles resolved once per replay rather than once per task.
        let tasks_counter = registry.counter("odr.tasks");
        let failures_counter = registry.counter("odr.failures");
        let decision_counters: Vec<(Decision, odx_telemetry::Counter)> = [
            Decision::UserDevice,
            Decision::Cloud,
            Decision::SmartAp,
            Decision::CloudThenSmartAp,
            Decision::CloudPredownload,
        ]
        .into_iter()
        .map(|d| (d, registry.counter(&format!("odr.decision.{d}"))))
        .collect();
        let bottleneck_counters: Vec<(crate::Bottleneck, odx_telemetry::Counter)> =
            crate::Bottleneck::ALL
                .into_iter()
                .map(|b| (b, registry.counter(&format!("odr.bottleneck.{}", b.key()))))
                .collect();

        if let Some(series) = series {
            for name in ["odr.tasks", "odr.failures"] {
                series.track_counter(name, registry.counter(name));
            }
            for (d, _) in &decision_counters {
                let name = format!("odr.decision.{d}");
                series.track_counter(&name, registry.counter(&name));
            }
        }

        // The evaluation replays its sample sequentially; the traced
        // variant lays tasks end to end on one virtual clock.
        let mut clock = SimDuration::ZERO;
        for (i, req) in sample.iter().enumerate() {
            // Same grid discipline as the engine: every grid point the
            // clock has passed is sampled before this task's counters.
            if let Some(series) = series {
                while series.next_due_ms() < clock.as_millis() {
                    series.sample_due();
                }
            }
            let mut rng = rngs.stream_indexed("odr-task", i as u64);
            let ap = self.fleet[i % self.fleet.len()];
            let is_cached = cloud_state.warm_cached(
                req.file_index,
                req.weekly_requests,
                self.cfg.warm_cache_pivot,
                &mut warm_rng,
            );
            let odr_req = OdrRequest {
                popularity: req.class(),
                protocol: req.protocol,
                cached_in_cloud: is_cached,
                isp: req.isp,
                access_kbps: req.access_kbps,
                ap: Some(ap),
            };
            let verdict = self.engine.decide(&odr_req);
            tasks_counter.inc();
            for (d, c) in &decision_counters {
                if *d == verdict.decision {
                    c.inc();
                }
            }
            for (b, c) in &bottleneck_counters {
                if verdict.addresses.contains(b) {
                    c.inc();
                }
            }

            let proxy_req = ProxyRequest::from_sampled(req, is_cached, Some(ap));
            // Cloud and CloudPredownload are the cached/uncached faces of
            // the same proxy; CloudBackend branches on `cached_in_cloud`,
            // which the engine guarantees matches the decision.
            let backend: &mut dyn ProxyBackend = match verdict.decision {
                Decision::UserDevice => &mut user_device,
                Decision::SmartAp => &mut smart_ap,
                Decision::Cloud | Decision::CloudPredownload => &mut cloud,
                Decision::CloudThenSmartAp => &mut cloud_ap,
            };
            let mut ctx = ExecCtx { rng: &mut rng, cloud: &mut cloud_state };
            let out = backend.execute(&proxy_req, &mut ctx);
            if !out.success {
                failures_counter.inc();
            }
            if let Some(lifecycle) = &lifecycle {
                let task = i as u64;
                let start = clock.as_millis();
                let end = (clock + out.duration).as_millis();
                let decision = match verdict.decision {
                    Decision::UserDevice => "user_device",
                    Decision::Cloud => "cloud",
                    Decision::SmartAp => "smart_ap",
                    Decision::CloudThenSmartAp => "cloud_then_smart_ap",
                    Decision::CloudPredownload => "cloud_predownload",
                };
                lifecycle.tasks.instant(task, Stage::Arrival, start, None);
                lifecycle.tasks.instant(task, Stage::Decision, start, Some(decision));
                lifecycle.tasks.span(task, Stage::Fetch, start, end, Some(decision));
                lifecycle.flight.record(start, "odr_task");
                if out.success {
                    lifecycle.tasks.finish(task, TaskEnd::Completed, end);
                } else {
                    lifecycle.tasks.finish(task, TaskEnd::Failed, end);
                    if lifecycle.tasks.sampled(task) {
                        lifecycle.flight.dump(task, "failure", end);
                    }
                }
            }
            clock = clock + out.duration;
            tasks.push(OdrTask {
                request: *req,
                verdict,
                success: out.success,
                fetch_kbps: out.rate_kbps,
                cloud_upload_mb: out.cloud_upload_mb,
                storage_limited: out.storage_limited,
                b4_at_risk: crate::Bottleneck::b4_at_risk(&odr_req),
            });
        }

        if let Some(series) = series {
            series.finish(clock.as_millis());
        }

        // Baselines over the identical sample (and the identical fleet).
        let baseline_ap =
            SmartApBenchmark::replay_fleet(sample, &self.fleet, &rngs.child("odr-baseline-ap"));
        let baseline_cloud_upload_mb = sample.iter().map(|r| r.size_mb).sum();

        (
            OdrEvalReport { tasks, baseline_ap, baseline_cloud_upload_mb },
            lifecycle.map(|lifecycle| lifecycle.report()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odx_trace::{
        sample_eval_workload, Catalog, CatalogConfig, Population, PopulationConfig, Workload,
        WorkloadConfig,
    };
    use rand::SeedableRng;

    fn eval(n: usize, seed: u64) -> OdrEvalReport {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        let sample = sample_eval_workload(&workload, &catalog, &population, n, &mut rng);
        OdrReplay::default().run(&sample, &RngFactory::new(seed))
    }

    #[test]
    fn impeded_ratio_drops_to_single_digits() {
        let r = eval(6000, 160);
        let impeded = r.impeded_ratio();
        assert!((impeded - 0.09).abs() < 0.04, "ODR impeded {impeded}");
    }

    #[test]
    fn cloud_burden_reduced_by_about_a_third() {
        let r = eval(6000, 161);
        let frac = r.cloud_upload_fraction();
        assert!((frac - 0.65).abs() < 0.08, "cloud upload fraction {frac}");
    }

    #[test]
    fn unpopular_failures_match_cloud_not_ap() {
        let r = eval(6000, 162);
        let odr = r.unpopular_failure_ratio();
        let ap = r.baseline_ap().unpopular_failure_ratio();
        assert!((odr - 0.13).abs() < 0.06, "ODR unpopular failure {odr}");
        assert!((ap - 0.42).abs() < 0.07, "AP baseline unpopular failure {ap}");
        assert!(odr < 0.5 * ap);
    }

    #[test]
    fn storage_restrictions_mostly_avoided() {
        let r = eval(6000, 163);
        let odr = r.storage_limited_ratio();
        let base = r.baseline_b4_ratio();
        assert!(odr < 0.02, "ODR storage-limited {odr}");
        assert!(base > 0.04, "a real fraction of users is at B4 risk: {base}");
        assert!(odr < 0.25 * base, "ODR {odr} ≪ baseline {base}");
    }

    #[test]
    fn fetch_speeds_match_fig17() {
        let r = eval(6000, 164);
        let s = r.fetch_speed_ecdf().summary().unwrap();
        // Fig 17: median 368, average 509, max 2.37 MBps.
        assert!((s.median - 368.0).abs() / 368.0 < 0.25, "median {}", s.median);
        assert!((s.mean - 509.0).abs() / 509.0 < 0.25, "mean {}", s.mean);
        assert!(s.max <= 2370.0 + 1e-9, "max {}", s.max);
    }

    #[test]
    fn few_incorrect_decisions() {
        let r = eval(6000, 165);
        let wrong = r.incorrect_ratio();
        assert!(wrong < 0.02, "incorrect decisions {wrong}");
    }

    #[test]
    fn every_decision_kind_appears() {
        let r = eval(6000, 166);
        let counts = r.decision_counts();
        assert!(counts.len() >= 4, "decision mix: {counts:?}");
    }

    #[test]
    fn series_replay_tracks_tasks_and_decisions_deterministically() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(167);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        let sample = sample_eval_workload(&workload, &catalog, &population, 400, &mut rng);
        let run = || {
            let registry = Registry::new();
            let (report, series) = OdrReplay::default().run_series(
                &sample,
                &RngFactory::new(167),
                &registry,
                3_600_000,
            );
            (report, series, registry.snapshot())
        };
        let (report, series, snapshot) = run();
        assert!(series.times.len() > 1, "a 400-task replay spans multiple sim-hours");
        let last = |name: &str| series.series[name].final_value().unwrap() as u64;
        assert_eq!(last("odr.tasks"), 400);
        assert_eq!(snapshot.counters["odr.tasks"], 400);
        assert_eq!(
            last("odr.failures"),
            report.tasks().iter().filter(|t| !t.success).count() as u64
        );
        // Decision counters in the series sum to the report's counts.
        let counts = report.decision_counts();
        let decided: u64 = counts.values().map(|&n| n as u64).sum();
        let tracked: u64 = series
            .series
            .iter()
            .filter(|(name, _)| name.starts_with("odr.decision."))
            .map(|(_, s)| s.final_value().unwrap() as u64)
            .sum();
        assert_eq!(tracked, decided);
        // Same inputs → byte-identical series; report matches the plain run.
        let (report2, series2, _) = run();
        assert_eq!(series.to_json(), series2.to_json());
        assert_eq!(report.impeded_ratio(), report2.impeded_ratio());
        let plain = OdrReplay::default().run(&sample, &RngFactory::new(167));
        assert_eq!(plain.impeded_ratio(), report.impeded_ratio());
    }

    #[test]
    fn decision_counters_track_tasks() {
        // The global registry is shared with concurrently running tests,
        // so assert only that our replay's contribution arrived.
        let tasks = odx_telemetry::global().counter("odr.tasks");
        let decisions: Vec<_> = [
            Decision::UserDevice,
            Decision::Cloud,
            Decision::SmartAp,
            Decision::CloudThenSmartAp,
            Decision::CloudPredownload,
        ]
        .into_iter()
        .map(|d| odx_telemetry::global().counter(&format!("odr.decision.{d}")))
        .collect();
        let tasks_before = tasks.get();
        let decisions_before: u64 = decisions.iter().map(|c| c.get()).sum();
        let r = eval(500, 168);
        assert_eq!(r.tasks().len(), 500);
        assert!(tasks.get() >= tasks_before + 500);
        // Every task got exactly one decision.
        assert!(decisions.iter().map(|c| c.get()).sum::<u64>() >= decisions_before + 500);
    }

    #[test]
    fn replay_is_deterministic() {
        let a = eval(500, 167);
        let b = eval(500, 167);
        assert_eq!(a.failure_ratio(), b.failure_ratio());
        assert_eq!(a.impeded_ratio(), b.impeded_ratio());
    }

    #[test]
    fn traced_replay_records_decisions_and_tiles_durations() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(169);
        let catalog = Catalog::generate(&CatalogConfig::scaled(0.02), &mut rng);
        let population = Population::generate(&PopulationConfig::scaled(0.02), &mut rng);
        let workload =
            Workload::generate(&catalog, &population, &WorkloadConfig::default(), &mut rng);
        let sample = sample_eval_workload(&workload, &catalog, &population, 400, &mut rng);
        let plain = OdrReplay::default().run(&sample, &RngFactory::new(169));
        let (traced, lifecycle) =
            OdrReplay::default().run_traced(&sample, &RngFactory::new(169), &TraceConfig::full());
        // Tracing must not perturb the evaluation.
        assert_eq!(plain.failure_ratio(), traced.failure_ratio());
        assert_eq!(lifecycle.traces.traces.len(), sample.len());
        for (trace, task) in lifecycle.traces.traces.iter().zip(traced.tasks()) {
            // Every task carries its routing verdict as a decision instant.
            let decision =
                trace.spans.iter().find(|s| s.stage == Stage::Decision).expect("decision instant");
            assert!(decision.detail.is_some());
            assert_eq!(trace.completion_ms(), Some(trace.stage_ms(Stage::Fetch)));
            let expected = if task.success { TaskEnd::Completed } else { TaskEnd::Failed };
            assert_eq!(trace.end.map(|(end, _)| end), Some(expected));
        }
        let failures = traced.tasks().iter().filter(|t| !t.success).count() as u64;
        assert_eq!(lifecycle.flight.dumps.len() as u64 + lifecycle.flight.dropped_dumps, failures);
    }
}
